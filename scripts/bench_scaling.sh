#!/usr/bin/env bash
# Sweep pipeline throughput across the pool's two concurrency caps:
# shards 1/2/4/8 at jobs 1/2/4, appending one history entry per run to
# BENCH_pipeline.json. The desc-exec pool never shrinks once grown, so
# each jobs value gets its own bench_pipeline process; within a
# process the shard axis is just a region cap and sweeps freely.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pipeline.json}"
cargo build --release -p desc-bench

for jobs in 1 2 4; do
  echo "==> bench_pipeline --jobs $jobs --shards 1,2,4,8"
  target/release/bench_pipeline "$OUT" --jobs "$jobs" --shards 1,2,4,8
done

echo "==> scaling sweep appended to $OUT"
