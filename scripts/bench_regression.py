#!/usr/bin/env python3
"""Warn-only throughput regression check for the bench history files.

Compares every row of the latest history entry against the most recent
earlier entry that measured the same row, and prints a warning for
every row that slowed down past the threshold. Rows are keyed on
whatever axes they carry (scheme/mode/micro + jobs/shards/batch/cache), and
the first throughput-like metric present is compared — so new axes
(e.g. the batched-transfer rows in BENCH_link.json) are learned
automatically and never warn the first time they appear. Always exits
0: bench numbers on shared CI runners are noisy, so regressions are
surfaced in the log rather than failing the build.
"""

import json
import sys

THRESHOLD = 0.90  # warn when current throughput < 90% of previous

# First metric present in a row wins; all are higher-is-better rates.
METRICS = (
    "cells_per_sec",
    "batched_blocks_per_sec",
    "current_transfers_per_sec",
    "word_fold_per_sec",
    "accesses_per_sec",
)


def rows(entry):
    out = {}
    for r in entry.get("results", []):
        name = r.get("scheme") or r.get("mode") or r.get("micro")
        key = (name, r.get("jobs", 1), r.get("shards", 1), r.get("batch", 0), r.get("cache", ""))
        for metric in METRICS:
            if metric in r:
                out[key] = (metric, r[metric])
                break
    return out


def describe_pool(doc):
    """Print the latest run's executor pool stanza, if present.

    Purely informational context for the rate comparisons below. Keys
    are read dynamically so stanza growth (e.g. the regions_nested and
    cap_rejections saturation counters) is picked up automatically and
    never warns on first appearance.
    """
    pool = doc.get("config", {}).get("pool")
    if not isinstance(pool, dict):
        return
    fields = " ".join(f"{k}={v}" for k, v in pool.items())
    print(f"pool: {fields}")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pipeline.json"
    with open(path) as f:
        doc = json.load(f)
    describe_pool(doc)
    history = doc.get("history", [])
    if len(history) < 2:
        print(f"{path}: fewer than two history entries, nothing to compare")
        return
    current = rows(history[-1])
    warned = 0
    compared = 0
    for key, (metric, now) in sorted(current.items()):
        before = None
        for entry in reversed(history[:-1]):
            prior = rows(entry).get(key)
            if prior and prior[0] == metric and prior[1]:
                before = prior[1]
                break
        if not before:
            continue  # new row (or new axis) — learn it, don't warn
        compared += 1
        ratio = now / before
        name, jobs, shards, batch, cache = key
        axes = f"jobs={jobs} shards={shards}"
        if batch:
            axes += f" batch={batch}"
        if cache:
            axes += f" cache={cache}"
        line = f"{name} {axes}: {before:.2f} -> {now:.2f} {metric} ({ratio:.2f}x)"
        if ratio < THRESHOLD:
            warned += 1
            print(f"WARNING: {line}")
        else:
            print(f"ok: {line}")
    if not compared:
        print(f"{path}: no earlier entry measures the latest rows, nothing to compare")
    if warned:
        print(
            f"{warned} row(s) slowed past {THRESHOLD:.0%} of the previous run; "
            "warn-only, not failing the build"
        )


if __name__ == "__main__":
    main()
