#!/usr/bin/env python3
"""Warn-only throughput regression check for BENCH_pipeline.json.

Compares every row of the latest history entry (rows are keyed on
scheme + jobs + shards) against the most recent earlier entry that
measured the same row, and prints a warning for every row that slowed
down past the threshold. Always exits 0: bench numbers on shared CI
runners are noisy, so regressions are surfaced in the log rather than
failing the build.
"""

import json
import sys

THRESHOLD = 0.90  # warn when current throughput < 90% of previous


def rows(entry):
    out = {}
    for r in entry.get("results", []):
        key = (r.get("scheme"), r.get("jobs", 1), r.get("shards", 1))
        out[key] = r.get("cells_per_sec", 0.0)
    return out


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pipeline.json"
    with open(path) as f:
        doc = json.load(f)
    history = doc.get("history", [])
    if len(history) < 2:
        print(f"{path}: fewer than two history entries, nothing to compare")
        return
    current = rows(history[-1])
    warned = 0
    compared = 0
    for key, now in sorted(current.items()):
        before = None
        for entry in reversed(history[:-1]):
            before = rows(entry).get(key)
            if before:
                break
        if not before:
            continue
        compared += 1
        ratio = now / before
        scheme, jobs, shards = key
        line = (
            f"{scheme} jobs={jobs} shards={shards}: "
            f"{before:.2f} -> {now:.2f} cells/s ({ratio:.2f}x)"
        )
        if ratio < THRESHOLD:
            warned += 1
            print(f"WARNING: {line}")
        else:
            print(f"ok: {line}")
    if not compared:
        print(f"{path}: no earlier entry measures the latest rows, nothing to compare")
    if warned:
        print(
            f"{warned} row(s) slowed past {THRESHOLD:.0%} of the previous run; "
            "warn-only, not failing the build"
        )


if __name__ == "__main__":
    main()
