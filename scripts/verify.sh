#!/usr/bin/env bash
# Repo verification: tier-1 (build + tests) plus lints. Fully offline —
# the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> OK"
