//! Nested-submission stress: many outer "cell" tasks each opening an
//! inner "partition" region, all sharing a pool configured to exactly
//! two units of concurrency (one worker thread + the caller). This is
//! the shape `run_matrix` × `SystemSim` produces in practice; the test
//! must neither deadlock nor perturb results.
//!
//! Lives in its own integration-test binary so no other test can have
//! raised the process-wide pool target above 2.

#[test]
fn many_cells_times_many_partitions_on_a_two_thread_pool() {
    desc_exec::configure(2);
    assert!(desc_exec::stats().workers >= 1, "pool must have a real worker");

    let expect: Vec<u64> = (0..48u64)
        .map(|c| (0..32u64).map(|p| c * 1_000 + p * p).sum::<u64>())
        .collect();

    for round in 0..10 {
        let got = desc_exec::run(48, 4, |c| {
            let c = c as u64;
            desc_exec::run(32, 4, |p| {
                let p = p as u64;
                // A little real work so claims interleave across threads.
                let mut acc = 0u64;
                for k in 0..200 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
                c * 1_000 + p * p
            })
            .into_iter()
            .sum::<u64>()
        });
        assert_eq!(got, expect, "round {round}");
    }
}
