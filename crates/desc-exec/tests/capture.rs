//! Pins the capture-propagation contract: a metric capture sink
//! installed on the thread that submits a region is mirrored into by
//! every pool worker that drains the region — including nested
//! regions submitted from inside pooled tasks — while the global
//! registry still sees every update (mirror, not redirect).
//!
//! Lives in its own integration test binary (= its own process)
//! because it flips the process-wide telemetry switch.

use desc_telemetry::{counter, CaptureSink};

#[test]
fn submitter_sink_is_mirrored_by_pool_workers() {
    desc_telemetry::set_enabled(true);
    desc_exec::configure(4);

    let sink = CaptureSink::new();
    let outputs = desc_telemetry::with_capture(&sink, || {
        desc_exec::run_labeled("capture_outer", 8, 4, |i| {
            counter!("exec.capture.test.outer").add(1);
            // A nested region: its tasks may run on yet other workers,
            // but Region::new snapshots this (pooled) thread's sink.
            let inner: Vec<u64> = desc_exec::run_labeled("capture_inner", 3, 2, |j| {
                counter!("exec.capture.test.inner").add(1);
                j as u64
            });
            // pool.* updates must never be captured.
            desc_telemetry::global().counter("pool.capture.test").add(1);
            i as u64 + inner.iter().sum::<u64>()
        })
    });
    assert_eq!(outputs.len(), 8);

    let delta = sink.snapshot();
    assert_eq!(delta.counter("exec.capture.test.outer"), Some(8));
    assert_eq!(delta.counter("exec.capture.test.inner"), Some(24));
    assert_eq!(delta.counter("pool.capture.test"), None);

    // Mirror, not redirect: the global registry saw the same totals.
    let reg = desc_telemetry::global();
    assert_eq!(reg.counter("exec.capture.test.outer").get(), 8);
    assert_eq!(reg.counter("exec.capture.test.inner").get(), 24);
    assert_eq!(reg.counter("pool.capture.test").get(), 8);

    // Outside the capture scope nothing is mirrored anywhere.
    let again: Vec<()> = desc_exec::run_labeled("capture_outer", 4, 4, |_| {
        counter!("exec.capture.test.outer").add(1);
    });
    assert_eq!(again.len(), 4);
    assert_eq!(sink.snapshot().counter("exec.capture.test.outer"), Some(8));
    assert_eq!(reg.counter("exec.capture.test.outer").get(), 12);
}
