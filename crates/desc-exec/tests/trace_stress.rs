//! Multi-thread tracing stress test: hammer the pool with nested,
//! labeled fork-join regions while telemetry is on, then check the
//! drained timeline is complete, time-sorted, and attributed to the
//! right workers and region labels — and that the utilization stanza
//! agrees with it.
//!
//! Telemetry state is process-global, so the whole scenario lives in
//! one `#[test]`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

const OUTER: usize = 24;
const INNER: usize = 16;

#[test]
fn stressed_pool_produces_a_complete_attributed_timeline() {
    desc_exec::configure(4);
    desc_telemetry::set_enabled(true);
    desc_telemetry::set_context("stress");
    let before = desc_exec::stats();
    let dropped_before = desc_telemetry::spans_dropped();

    // Nested fan-out: OUTER cells, each spinning briefly, each opening
    // its own span, and each submitting an INNER region — the shape of
    // a figure sweep over sharded simulations.
    let work = AtomicU64::new(0);
    let totals = desc_exec::run_labeled("stress-outer", OUTER, 4, |c| {
        let _span = desc_telemetry::span("stress-cell", format!("cell{c}"));
        let inner = desc_exec::run_labeled("stress-inner", INNER, 2, |p| {
            // Enough work for a nonzero clock reading now and then.
            let mut acc = 0u64;
            for i in 0..2_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i ^ (c as u64) ^ (p as u64));
            }
            work.fetch_add(1, Ordering::Relaxed);
            acc
        });
        inner.len()
    });
    assert_eq!(totals, vec![INNER; OUTER], "every inner region must complete");
    assert_eq!(work.load(Ordering::Relaxed), (OUTER * INNER) as u64);

    desc_telemetry::set_context("");
    desc_telemetry::set_enabled(false);
    let spans = desc_telemetry::drain_spans();
    let after = desc_exec::stats();

    // Complete: one cell span per outer task, one region span per
    // run_labeled call (nothing dropped, so the ring kept everything).
    assert_eq!(desc_telemetry::spans_dropped(), dropped_before, "rings overflowed mid-test");
    let cells: Vec<_> = spans.iter().filter(|s| s.name == "stress-cell").collect();
    assert_eq!(cells.len(), OUTER, "one span per outer cell");
    let mut labels: Vec<&str> = cells.iter().map(|s| s.label.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), OUTER, "cell labels are distinct");
    let regions: BTreeMap<&str, usize> = spans
        .iter()
        .filter(|s| s.name == "region")
        .fold(BTreeMap::new(), |mut m, s| {
            *m.entry(s.label.as_str()).or_default() += 1;
            m
        });
    assert_eq!(regions.get("stress-outer"), Some(&1));
    assert_eq!(regions.get("stress-inner"), Some(&OUTER));

    // Time-sorted, with every span carrying the context and a worker
    // ordinal that resolves to a registered thread name.
    let names = desc_telemetry::worker_names();
    for pair in spans.windows(2) {
        assert!(pair[0].start_us <= pair[1].start_us, "drain_spans must be time-sorted");
    }
    for s in spans.iter().filter(|s| s.name == "stress-cell" || s.name == "region") {
        assert_eq!(s.ctx, "stress", "span {}/{} lost its context", s.name, s.label);
        assert!(
            (s.worker as usize) < names.len(),
            "span worker {} has no registered name",
            s.worker
        );
    }

    // Worker attribution: with a 4-wide pool and 24 spinning cells,
    // more than one thread must have recorded cell spans, and each
    // cell span's worker must be either the submitting thread or a
    // pool worker (named desc-exec-*).
    let mut cell_workers: Vec<u32> = cells.iter().map(|s| s.worker).collect();
    cell_workers.sort_unstable();
    cell_workers.dedup();
    assert!(
        cell_workers.len() > 1,
        "all {OUTER} cells landed on one thread despite a 4-wide pool"
    );

    // Pool accounting agrees with the timeline: the outer region plus
    // one nested region per outer task, every inner submission counted
    // as nested.
    assert!(after.regions_nested >= before.regions_nested + OUTER as u64);
    assert!(
        after.tasks_executed >= before.tasks_executed + (OUTER + OUTER * INNER) as u64,
        "task count must cover outer and inner work"
    );

    // Utilization sees the same picture: both labels present, task
    // counts exact, and busy time attributed to the same workers that
    // recorded spans.
    let util = desc_exec::utilization();
    let by_label: BTreeMap<&str, &desc_telemetry::RegionUtilization> =
        util.regions.iter().map(|r| (r.label.as_str(), r)).collect();
    let outer = by_label.get("stress-outer").expect("outer region in utilization");
    let inner = by_label.get("stress-inner").expect("inner region in utilization");
    assert_eq!(outer.tasks, OUTER as u64);
    assert_eq!(inner.tasks, (OUTER * INNER) as u64);
    let bucket_total: u64 = outer.run_us_buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, outer.tasks, "sparse buckets must cover every task");
    let util_workers: Vec<u32> = util.workers.iter().map(|w| w.worker).collect();
    for w in &cell_workers {
        assert!(
            util_workers.contains(w),
            "worker {w} recorded spans but is missing from utilization"
        );
    }
}
