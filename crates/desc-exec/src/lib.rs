//! Process-wide deterministic fork-join executor.
//!
//! Every parallel layer of the DESC reproduction shares **one** pool of
//! persistent worker threads: `run_matrix` submits (config × app) cell
//! tasks and `SystemSim`/`SnucaSim` submit bank-partition tasks into
//! the same worker set, so `--jobs` and `--shards` *bound* concurrency
//! instead of multiplying threads, and no hot path ever spawns an OS
//! thread.
//!
//! # Task model
//!
//! A call to [`run`] (or [`run_mut`]) opens a **region**: `total`
//! independent tasks identified by index `0..total`, a concurrency cap,
//! and one result slot per index. The calling thread always
//! participates — it claims and executes tasks alongside the workers —
//! and blocks until every task in *its own* region has completed, then
//! collects the slots in index order. With an empty pool (1-CPU
//! machine, or before [`configure`] raises the target) a region
//! degrades to a plain serial loop on the caller with no
//! synchronisation at all.
//!
//! # Determinism is structural
//!
//! Workers claim task *indices* from a shared counter, so which thread
//! runs which task is scheduling-dependent — but each task is a pure
//! function of its index and each result lands in its index's slot.
//! Merges that consume the returned `Vec` in order therefore see
//! byte-identical inputs for any worker count, any cap, and any
//! interleaving. Nothing downstream needs to reason about the pool.
//!
//! # Fair cross-group scheduling
//!
//! Concurrently open regions are drained **weighted round-robin
//! across [`Group`]s**: a region is tagged with the group installed on
//! its submitting thread ([`install_group`]), every claimed task
//! charges the group's virtual time by `1/weight`, and workers run
//! one task at a time, each time re-picking the claimable region whose
//! group has received the least weighted service. A one-cell request
//! tagged with its own group therefore gets the next worker slot even
//! while a 1000-cell sweep is in flight. Untagged work shares one
//! default group, and same-group regions keep strict submission order
//! — a single-client process schedules exactly as before. Fairness
//! only redistributes *worker* help; the submitting caller still
//! drains its own region, which is what keeps determinism and the
//! no-deadlock argument below intact.
//!
//! # Nested submission cannot deadlock
//!
//! A task may itself call [`run`] (a `run_matrix` cell running a
//! sharded `SystemSim`). The nested caller helps execute its own
//! region first and only then waits, so it can only block on tasks
//! *claimed by other threads* — and a claimant never waits for work it
//! has not finished: either it is executing a leaf task (which runs to
//! completion) or it is itself a nested caller one level deeper. Every
//! chain of waiting threads ends at a thread making progress, so the
//! wait graph is well-founded for any pool size, including a pool of
//! zero workers.
//!
//! # Observability
//!
//! When `desc-telemetry` is enabled, the pool places itself on the
//! execution timeline (see `docs/TELEMETRY.md`): every
//! [`run_labeled`]/[`run_mut_labeled`] call opens a `region` span on
//! the submitting thread, every task records its queue wait
//! (submit→start) and run time into a per-label aggregation, and every
//! executing thread accumulates busy time under its stable
//! [`desc_telemetry::current_worker`] ordinal. [`utilization`] exports
//! the whole picture as the `pool_utilization` stanza of
//! `desc-run-report/v1`. When telemetry is disabled none of this reads
//! a clock or takes a lock — the only residue is the pool's lifetime
//! [`stats`] counters, which are plain relaxed atomics on cold paths.
//!
//! # Example
//!
//! ```
//! desc_exec::configure(2);
//! let squares = desc_exec::run(8, 2, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
// This crate is the one place in the workspace that uses `unsafe`: it
// erases closure lifetimes to hand borrowed task contexts to 'static
// worker threads. Soundness rests on a single invariant, documented at
// [`Region`]: the submitting call blocks until `done == total` before
// its borrows go out of scope.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::BTreeMap;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use desc_telemetry::Histogram;

/// Snapshot of the pool's lifetime statistics, exposed so benchmark
/// harnesses can stamp a `pool` stanza into their JSON output. These
/// are *internal* atomics, deliberately kept out of the
/// `desc-telemetry` registry: inline and pooled executions of the same
/// workload take different code paths here, and run reports must stay
/// byte-identical across `--jobs`/`--shards` settings.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Concurrency target (caller + workers) the pool was configured
    /// for; the high-water mark of every [`configure`] call.
    pub target: usize,
    /// Worker threads actually spawned (`target - 1`, lazily).
    pub workers: usize,
    /// Regions (fork-join scopes) executed through the pool.
    pub regions: u64,
    /// Tasks executed in total, on any thread.
    pub tasks_executed: u64,
    /// Tasks that ran on the serial fast path (no region opened).
    pub tasks_inline: u64,
    /// Tasks executed by their own submitting caller while helping.
    pub tasks_helped: u64,
    /// Tasks stolen by pool workers from a submitting caller.
    pub tasks_stolen: u64,
    /// Regions submitted from inside another region's task (nested
    /// fork-join, e.g. a sweep cell running a sharded simulation).
    pub regions_nested: u64,
    /// Times a worker raced for a region slot and lost to its
    /// concurrency cap — a saturation signal: how often spare threads
    /// found work they were not allowed to take.
    pub cap_rejections: u64,
}

/// Per-label timing aggregation for one region family (`"cells"`,
/// `"parts"`, …). Standalone [`Histogram`]s, *not* registry metrics —
/// wall-clock queue waits differ run to run, and the registry must
/// stay byte-identical across pool shapes.
#[derive(Default)]
struct RegionAgg {
    tasks: AtomicU64,
    queue_wait: Histogram,
    queue_wait_max: AtomicU64,
    run: Histogram,
    run_max: AtomicU64,
}

impl RegionAgg {
    fn record(&self, queue_wait_us: u64, run_us: u64) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        self.queue_wait.record(queue_wait_us);
        self.queue_wait_max.fetch_max(queue_wait_us, Ordering::Relaxed);
        self.run.record(run_us);
        self.run_max.fetch_max(run_us, Ordering::Relaxed);
    }
}

/// Per-label region aggregations, keyed by the `&'static str` label so
/// iteration order (and therefore report output order) is stable.
fn region_aggs() -> &'static Mutex<BTreeMap<&'static str, Arc<RegionAgg>>> {
    static AGGS: OnceLock<Mutex<BTreeMap<&'static str, Arc<RegionAgg>>>> = OnceLock::new();
    AGGS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn region_agg(label: &'static str) -> Arc<RegionAgg> {
    let mut aggs = region_aggs().lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(aggs.entry(label).or_default())
}

/// Per-thread busy-time cell, keyed by the thread's telemetry worker
/// ordinal so utilization rows line up with Chrome-trace lanes.
#[derive(Default)]
struct WorkerCell {
    busy_us: AtomicU64,
    tasks: AtomicU64,
}

fn worker_cells() -> &'static Mutex<BTreeMap<u32, Arc<WorkerCell>>> {
    static CELLS: OnceLock<Mutex<BTreeMap<u32, Arc<WorkerCell>>>> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// This thread's busy cell (registered on first timed task).
    static WORKER_CELL: Arc<WorkerCell> = {
        let worker = desc_telemetry::current_worker();
        let mut cells = worker_cells().lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(cells.entry(worker).or_default())
    };

    /// True while this thread is executing a region task; a region
    /// submitted in that state is a nested fork-join.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Restores the previous [`IN_TASK`] value even when the task unwinds,
/// so a caught panic cannot leave the thread permanently "in a task".
struct InTaskGuard {
    was: bool,
}

impl Drop for InTaskGuard {
    fn drop(&mut self) {
        IN_TASK.with(|f| f.set(self.was));
    }
}

/// Panic payload used to unwind out of a cancelled region. Callers
/// that wrap a cancellable scope in [`std::panic::catch_unwind`] can
/// downcast the payload to this type to distinguish an intentional
/// cancellation (a `desc-serve` request deadline) from a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("desc-exec region cancelled (deadline or explicit cancel)")
    }
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation handle, installed per thread with
/// [`install_cancel`] and snapshotted by every region submitted while
/// it is installed (exactly like the metric [`desc_telemetry::CaptureSink`]).
/// Once the token is cancelled — explicitly via [`CancelToken::cancel`]
/// or implicitly by its deadline passing — every subsequent task claim
/// in a covered region unwinds with a [`Cancelled`] payload, which
/// rides the executor's existing panic-propagation path: remaining
/// unclaimed tasks are cancelled and the payload is re-raised on the
/// submitting caller.
///
/// Cancellation is **best-effort and task-granular**: a task that is
/// already running is never interrupted mid-flight (results stay
/// deterministic and cache writes stay complete), so the latency of a
/// cancel is bounded by the longest single task, not the region.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A token that only cancels explicitly, never by deadline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels once `timeout` has elapsed from now.
    #[must_use]
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Requests cancellation. Idempotent; takes effect at the next
    /// task boundary of every covered region.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) was called or the deadline
    /// passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch so later checks skip the clock read.
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Unwinds with [`Cancelled`] if the token is cancelled.
    pub fn check(&self) {
        if self.is_cancelled() {
            panic_any(Cancelled);
        }
    }
}

thread_local! {
    static CANCEL: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the previously installed [`CancelToken`] (if any) when
/// dropped.
#[derive(Debug)]
pub struct CancelGuard {
    prev: Option<CancelToken>,
}

impl Drop for CancelGuard {
    fn drop(&mut self) {
        CANCEL.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `token` (or clears the installation with `None`) on the
/// current thread until the returned guard drops. Regions submitted
/// while a token is installed snapshot it and honour it on every
/// draining thread, so a deadline covers nested fork-join work no
/// matter which pool thread runs it.
#[must_use]
pub fn install_cancel(token: Option<CancelToken>) -> CancelGuard {
    CancelGuard { prev: CANCEL.with(|c| c.replace(token)) }
}

/// The cancel token installed on the current thread, if any.
#[must_use]
pub fn current_cancel() -> Option<CancelToken> {
    CANCEL.with(|c| c.borrow().clone())
}

/// Unwinds with [`Cancelled`] if the current thread's installed token
/// (if any) is cancelled. Cheap enough to call between coarse work
/// items (one thread-local borrow; a clock read only while a deadline
/// token is installed and not yet latched).
pub fn check_cancelled() {
    CANCEL.with(|c| {
        if let Some(token) = c.borrow().as_ref() {
            token.check();
        }
    });
}

/// Fixed-point scale for group virtual time: a weight-1 group is
/// charged this much per claimed task, a weight-`w` group `1/w` of it.
const WEIGHT_SCALE: u64 = 1 << 16;

#[derive(Debug)]
struct GroupInner {
    name: String,
    weight: u64,
    /// Weighted service received, in [`WEIGHT_SCALE`] fixed-point:
    /// grows by `WEIGHT_SCALE / weight` per task claimed by any region
    /// of this group. Workers prefer the claimable region whose group
    /// has the *smallest* virtual time, which is what makes the
    /// draining weighted-round-robin fair across groups.
    vtime: AtomicU64,
    /// Tasks claimed by this group's regions (service in plain units).
    tasks: AtomicU64,
}

/// A fair-share scheduling identity for pool work — one per client,
/// request, or logical job. Regions submitted while a group is
/// installed ([`install_group`]) are tagged with it, and pool workers
/// drain concurrently open regions **weighted round-robin across
/// groups**: after every task a worker re-picks the claimable region
/// whose group has received the least weighted service, so a one-cell
/// request tagged with its own group never waits for a 1000-cell
/// sweep's region to drain. A group with weight `w` receives `w`
/// shares; untagged regions all pool into one process-wide default
/// group.
///
/// Fairness only redistributes *worker* help — the submitting caller
/// still drains its own region itself, so determinism, nesting, and
/// the no-deadlock argument are untouched.
///
/// Cheap to clone (shared handle); service accounting is visible via
/// [`tasks`](Self::tasks) and [`vtime`](Self::vtime).
#[derive(Debug, Clone)]
pub struct Group {
    inner: Arc<GroupInner>,
}

impl Group {
    /// A new group with `weight` fair shares (clamped to at least 1).
    #[must_use]
    pub fn new(name: impl Into<String>, weight: u32) -> Self {
        Group {
            inner: Arc::new(GroupInner {
                name: name.into(),
                weight: u64::from(weight.max(1)),
                vtime: AtomicU64::new(0),
                tasks: AtomicU64::new(0),
            }),
        }
    }

    /// The group's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The group's fair-share weight.
    #[must_use]
    pub fn weight(&self) -> u32 {
        u32::try_from(self.inner.weight).unwrap_or(u32::MAX)
    }

    /// Tasks claimed by this group's regions so far.
    #[must_use]
    pub fn tasks(&self) -> u64 {
        self.inner.tasks.load(Ordering::Relaxed)
    }

    /// Weighted service received (fixed-point; see [`Group`]). Useful
    /// for tests and diagnostics, not meaningful in wall-clock units.
    #[must_use]
    pub fn vtime(&self) -> u64 {
        self.inner.vtime.load(Ordering::Relaxed)
    }

    fn charge(&self) {
        self.inner.tasks.fetch_add(1, Ordering::Relaxed);
        self.inner.vtime.fetch_add(WEIGHT_SCALE / self.inner.weight, Ordering::Relaxed);
    }

    /// True when `self` and `other` are handles to the *same* group
    /// (shared service accounting), as opposed to two groups that
    /// merely share a name. This is the identity the scheduler uses:
    /// fairness is per group instance, so callers that want several
    /// requests to share one fair-queue weight must clone one handle
    /// rather than construct groups with equal names.
    #[must_use]
    pub fn same(&self, other: &Group) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// The group untagged regions land in, so fairness between tagged and
/// untagged work still has two comparable parties.
fn default_group() -> Group {
    static DEFAULT: OnceLock<Group> = OnceLock::new();
    DEFAULT.get_or_init(|| Group::new("main", 1)).clone()
}

thread_local! {
    static GROUP: RefCell<Option<Group>> = const { RefCell::new(None) };
}

/// Restores the previously installed [`Group`] (if any) when dropped.
#[derive(Debug)]
pub struct GroupGuard {
    prev: Option<Group>,
}

impl Drop for GroupGuard {
    fn drop(&mut self) {
        GROUP.with(|g| *g.borrow_mut() = self.prev.take());
    }
}

/// Installs `group` (or clears the installation with `None`) on the
/// current thread until the returned guard drops. Regions submitted
/// while a group is installed are tagged with it — and, like the
/// capture sink and cancel token, the tag is mirrored onto every
/// thread that drains the region, so nested regions inherit it no
/// matter which pool thread submits them.
#[must_use]
pub fn install_group(group: Option<Group>) -> GroupGuard {
    GroupGuard { prev: GROUP.with(|g| g.replace(group)) }
}

/// The group installed on the current thread, if any.
#[must_use]
pub fn current_group() -> Option<Group> {
    GROUP.with(|g| g.borrow().clone())
}

/// One fork-join scope: `total` indexed tasks behind a type-erased
/// entry point.
///
/// # Safety invariant
///
/// `ctx` points at a stack frame of the submitting caller. The caller
/// blocks in [`Region::wait_done`] until `done == total` (completions
/// are `Release`, the caller's read is `Acquire`), and every execution
/// path — success, task panic, cancellation after a sibling's panic —
/// increments `done` exactly once per task index. Therefore no thread
/// can touch `ctx` after `wait_done` returns, and the erased lifetime
/// never outlives the borrow it erased.
struct Region {
    task: unsafe fn(*const (), usize),
    ctx: *const (),
    total: usize,
    cap: usize,
    /// Trace-timebase microsecond at which the region was submitted;
    /// per-task queue wait is measured from here. Only meaningful when
    /// `agg` is set.
    submitted_us: u64,
    /// Timing sink, captured at submit time iff telemetry was enabled
    /// — the per-task clock reads in `execute_until_empty` key off it.
    agg: Option<Arc<RegionAgg>>,
    /// Metric capture sink installed on the submitting thread, if any
    /// (see `desc_telemetry::capture`). Snapshotted at submit time and
    /// re-installed on every thread that drains the region, so a
    /// cached cell's nested partition work is captured no matter which
    /// pool thread runs it. The inline (0-worker / already-in-task)
    /// paths run on the submitting thread itself, where the sink is
    /// already installed.
    sink: Option<Arc<desc_telemetry::CaptureSink>>,
    /// Cancel token installed on the submitting thread, if any (see
    /// [`install_cancel`]); snapshotted at submit time like `sink` and
    /// re-installed on every draining thread, so nested regions
    /// submitted from pool workers inherit the same deadline. Checked
    /// once per task claim.
    cancel: Option<CancelToken>,
    /// Fair-share group this region's service is charged to (see
    /// [`Group`]); the thread-installed group at submit time, or the
    /// process default. Mirrored onto draining threads like `sink` and
    /// `cancel`, so nested regions inherit it.
    group: Group,
    /// Next unclaimed task index; CAS-claimed so it never exceeds
    /// `total` (which keeps the cancellation arithmetic on the panic
    /// path exact).
    next: AtomicUsize,
    /// Threads currently executing tasks of this region (the caller
    /// pre-counts as one); bounded by `cap`.
    active: AtomicUsize,
    /// Completed (or cancelled) task count; region is finished at
    /// `done == total`.
    done: AtomicUsize,
    /// First panic payload raised by a task, if any.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `ctx` is only dereferenced by `task` while the submitting
// caller provably keeps the pointee alive (see the struct docs); all
// other fields are Sync primitives.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    fn new(
        task: unsafe fn(*const (), usize),
        ctx: *const (),
        total: usize,
        cap: usize,
        label: &'static str,
    ) -> Self {
        let (submitted_us, agg) = if desc_telemetry::enabled() {
            (desc_telemetry::now_us(), Some(region_agg(label)))
        } else {
            (0, None)
        };
        Region {
            task,
            ctx,
            total,
            cap,
            submitted_us,
            agg,
            sink: desc_telemetry::capture_sink(),
            cancel: current_cancel(),
            group: current_group().unwrap_or_else(default_group),
            next: AtomicUsize::new(0),
            // The submitting caller counts as already active.
            active: AtomicUsize::new(1),
            done: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Cheap scan predicate for workers: unclaimed work exists and the
    /// concurrency cap has headroom.
    fn claimable(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.total
            && self.active.load(Ordering::Relaxed) < self.cap
    }

    /// Reserves an active slot; the loser of a race backs out.
    fn try_enter(&self) -> bool {
        if self.active.fetch_add(1, Ordering::Relaxed) >= self.cap {
            self.active.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    fn exit(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// CAS-claims the next task index, never moving `next` past
    /// `total`.
    fn claim(&self) -> Option<usize> {
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            if cur >= self.total {
                return None;
            }
            match self.next.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // Service accounting happens at claim time (not
                    // completion), so a group's virtual time reflects
                    // work already handed to it when workers pick
                    // their next region.
                    self.group.charge();
                    return Some(cur);
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Claims and executes tasks until none are left, returning how
    /// many this thread ran. A panicking task cancels the region's
    /// remaining unclaimed tasks (accounting them as done so the
    /// caller wakes) and records the first payload for re-raising on
    /// the submitting thread.
    fn execute_until_empty(&self) -> u64 {
        self.execute(usize::MAX)
    }

    /// [`Self::execute_until_empty`] bounded to at most `limit` tasks
    /// — the weighted-round-robin burst unit for pool workers, which
    /// re-pick the fairest claimable region after every task.
    fn execute(&self, limit: usize) -> u64 {
        // Mirror the submitter's metric capture (if any) for the whole
        // drain; the guard restores this thread's previous sink. On
        // the submitting thread itself this re-installs the same sink,
        // which is a no-op difference.
        let _capture = self
            .sink
            .as_ref()
            .map(|s| desc_telemetry::install_capture(Some(Arc::clone(s))));
        // Likewise mirror the submitter's cancel token so tasks (and
        // regions they nest) observe the same deadline on every
        // draining thread.
        let _cancel = self.cancel.as_ref().map(|t| install_cancel(Some(t.clone())));
        // And the fair-share group, so nested regions are charged to
        // the same client.
        let _group = install_group(Some(self.group.clone()));
        let mut ran = 0u64;
        while (ran as usize) < limit {
            let Some(i) = self.claim() else { break };
            ran += 1;
            let start_us = self.agg.as_ref().map(|_| desc_telemetry::now_us());
            // SAFETY: `i` was claimed exactly once and `ctx` is alive
            // (struct invariant).
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Cancellation is task-granular: a claimed task either
                // runs to completion or never starts. The panic rides
                // the existing cancel-remaining accounting below.
                if let Some(token) = &self.cancel {
                    if token.is_cancelled() {
                        panic_any(Cancelled);
                    }
                }
                let _in_task = InTaskGuard { was: IN_TASK.with(|f| f.replace(true)) };
                unsafe { (self.task)(self.ctx, i) }
            }));
            if let (Some(agg), Some(start_us)) = (&self.agg, start_us) {
                let run_us = desc_telemetry::now_us().saturating_sub(start_us);
                agg.record(start_us.saturating_sub(self.submitted_us), run_us);
                WORKER_CELL.with(|cell| {
                    cell.busy_us.fetch_add(run_us, Ordering::Relaxed);
                    cell.tasks.fetch_add(1, Ordering::Relaxed);
                });
            }
            match outcome {
                Ok(()) => self.complete(1),
                Err(payload) => {
                    {
                        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                    let already = self.next.swap(self.total, Ordering::Relaxed);
                    let cancelled = self.total - already.min(self.total);
                    self.complete(1 + cancelled);
                }
            }
        }
        ran
    }

    /// Marks `k` tasks finished; the final completion wakes the
    /// submitting caller. `Release` so the caller's `Acquire` read of
    /// `done == total` orders every slot write before the collection.
    fn complete(&self, k: usize) {
        let before = self.done.fetch_add(k, Ordering::Release);
        if before + k >= self.total {
            // Taking the lock pairs with the caller's check-then-wait,
            // closing the lost-wakeup window.
            let _guard = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.done_cv.notify_all();
        }
    }

    fn wait_done(&self) {
        if self.done.load(Ordering::Acquire) >= self.total {
            return;
        }
        let mut guard = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.done.load(Ordering::Acquire) < self.total {
            guard = self.done_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

struct Pool {
    /// Currently open regions, in submission order; workers take the
    /// first claimable one.
    open: Mutex<Vec<Arc<Region>>>,
    /// Signalled when a region is submitted or concurrency capacity
    /// frees up.
    work: Condvar,
    target: AtomicUsize,
    spawned: AtomicUsize,
    regions: AtomicU64,
    executed: AtomicU64,
    inline: AtomicU64,
    helped: AtomicU64,
    stolen: AtomicU64,
    nested: AtomicU64,
    rejected: AtomicU64,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            open: Mutex::new(Vec::new()),
            work: Condvar::new(),
            target: AtomicUsize::new(default_target()),
            spawned: AtomicUsize::new(0),
            regions: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            inline: AtomicU64::new(0),
            helped: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            nested: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Lazily brings the worker set up to `target - 1` threads (the
    /// caller of every region is the remaining unit of concurrency).
    /// Workers are never torn down; an idle worker is a parked thread.
    fn ensure_workers(&'static self) {
        let want = self.target.load(Ordering::Relaxed).saturating_sub(1);
        let mut cur = self.spawned.load(Ordering::Relaxed);
        while cur < want {
            match self.spawned.compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    std::thread::Builder::new()
                        .name(format!("desc-exec-{cur}"))
                        .spawn(move || self.worker_loop())
                        .expect("failed to spawn desc-exec worker");
                    cur += 1;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    fn worker_loop(&'static self) {
        loop {
            let region = {
                let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    // Weighted round-robin across groups: among the
                    // claimable regions, take the one whose group has
                    // received the least weighted service. Strict `<`
                    // keeps submission order as the tie-break, so
                    // same-group regions (and a single-client process)
                    // drain FIFO exactly as before.
                    let mut best: Option<&Arc<Region>> = None;
                    for r in open.iter().filter(|r| r.claimable()) {
                        if best.is_none_or(|b| r.group.vtime() < b.group.vtime()) {
                            best = Some(r);
                        }
                    }
                    if let Some(r) = best {
                        break Arc::clone(r);
                    }
                    open = self.work.wait(open).unwrap_or_else(|e| e.into_inner());
                }
            };
            // The claimability check above ran under the lock, but the
            // race with other claimants is resolved here; a loser just
            // rescans (and sleeps if nothing else is claimable).
            if region.try_enter() {
                // Burst of one task, then re-pick: this is what lets a
                // freshly submitted small region take the next worker
                // slot instead of waiting for a large region to drain.
                region.execute(1);
                region.exit();
                // Leaving may free cap headroom for a sibling worker,
                // and the fairest region may have changed.
                self.work.notify_all();
            } else {
                // Lost the race to the concurrency cap: spare capacity
                // existed but the region was not allowed to use it.
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn submit(&'static self, region: Arc<Region>) {
        let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
        // A group entering (or re-entering) service must not undercut
        // groups already being served: raise its virtual time to the
        // smallest among the other open regions' groups, so a fresh
        // client gets the *next* fair turn, not a monopolizing replay
        // of the service it never used.
        let floor = open
            .iter()
            .filter(|r| !r.group.same(&region.group))
            .map(|r| r.group.vtime())
            .min();
        if let Some(floor) = floor {
            region.group.inner.vtime.fetch_max(floor, Ordering::Relaxed);
        }
        open.push(region);
        drop(open);
        self.work.notify_all();
    }

    fn retire(&'static self, region: &Arc<Region>) {
        let mut open = self.open.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = open.iter().position(|r| Arc::ptr_eq(r, region)) {
            open.swap_remove(pos);
        }
    }
}

/// Concurrency target before any [`configure`] call: the `DESC_JOBS`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
fn default_target() -> usize {
    if let Ok(v) = std::env::var("DESC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Raises the pool's concurrency target (caller + workers) to
/// `threads` and spawns any missing workers. The pool never shrinks:
/// the target is a process-lifetime high-water mark, so `--jobs` can
/// only widen a run, and a target of 1 means a completely serial
/// process with zero pool threads.
///
/// Records the `pool.workers` gauge when telemetry is enabled — the
/// only registry metric this crate touches (see [`PoolStats`] for
/// why).
pub fn configure(threads: usize) {
    let pool = Pool::global();
    pool.target.fetch_max(threads.max(1), Ordering::Relaxed);
    pool.ensure_workers();
    if desc_telemetry::enabled() {
        desc_telemetry::gauge!("pool.workers").record_max(pool.spawned.load(Ordering::Relaxed) as u64);
    }
}

/// Current lifetime statistics of the process-wide pool.
#[must_use]
pub fn stats() -> PoolStats {
    let pool = Pool::global();
    PoolStats {
        target: pool.target.load(Ordering::Relaxed),
        workers: pool.spawned.load(Ordering::Relaxed),
        regions: pool.regions.load(Ordering::Relaxed),
        tasks_executed: pool.executed.load(Ordering::Relaxed),
        tasks_inline: pool.inline.load(Ordering::Relaxed),
        tasks_helped: pool.helped.load(Ordering::Relaxed),
        tasks_stolen: pool.stolen.load(Ordering::Relaxed),
        regions_nested: pool.nested.load(Ordering::Relaxed),
        cap_rejections: pool.rejected.load(Ordering::Relaxed),
    }
}

/// Wall-clock utilization of the pool on the shared trace timebase:
/// per-worker busy time and per-region-label queue-wait / run-time
/// distributions, in the shape the `desc-run-report/v1`
/// `pool_utilization` stanza serializes. Only populated while
/// telemetry is enabled (per-task clocks are off otherwise); worker
/// ordinals match span lanes and [`desc_telemetry::worker_names`].
#[must_use]
pub fn utilization() -> desc_telemetry::PoolUtilization {
    let names = desc_telemetry::worker_names();
    let workers = worker_cells()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(&worker, cell)| desc_telemetry::WorkerUtilization {
            worker,
            name: names
                .get(worker as usize)
                .cloned()
                .unwrap_or_else(|| format!("thread-{worker}")),
            busy_us: cell.busy_us.load(Ordering::Relaxed),
            tasks: cell.tasks.load(Ordering::Relaxed),
        })
        .collect();
    let regions = region_aggs()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(&label, agg)| desc_telemetry::RegionUtilization {
            label: label.to_owned(),
            tasks: agg.tasks.load(Ordering::Relaxed),
            queue_wait_us_sum: agg.queue_wait.sum(),
            queue_wait_us_max: agg.queue_wait_max.load(Ordering::Relaxed),
            queue_wait_us_buckets: desc_telemetry::RegionUtilization::sparse_buckets(
                &agg.queue_wait.buckets(),
            ),
            run_us_sum: agg.run.sum(),
            run_us_max: agg.run_max.load(Ordering::Relaxed),
            run_us_buckets: desc_telemetry::RegionUtilization::sparse_buckets(&agg.run.buckets()),
        })
        .collect();
    desc_telemetry::PoolUtilization {
        elapsed_us: desc_telemetry::now_us(),
        workers,
        regions,
    }
}

/// Per-task timing for the serial (inline) fast path, so a 1-job run
/// still produces a populated `pool_utilization` stanza and honest
/// busy-time lanes. Constructed only when telemetry is enabled.
struct TaskTimer {
    agg: Arc<RegionAgg>,
    opened_us: u64,
}

impl TaskTimer {
    fn new(label: &'static str) -> Self {
        TaskTimer { agg: region_agg(label), opened_us: desc_telemetry::now_us() }
    }

    fn time<R>(&self, g: impl FnOnce() -> R) -> R {
        let start_us = desc_telemetry::now_us();
        let result = g();
        let run_us = desc_telemetry::now_us().saturating_sub(start_us);
        self.agg.record(start_us.saturating_sub(self.opened_us), run_us);
        WORKER_CELL.with(|cell| {
            cell.busy_us.fetch_add(run_us, Ordering::Relaxed);
            cell.tasks.fetch_add(1, Ordering::Relaxed);
        });
        result
    }
}

struct RunCtx<'a, T, F> {
    f: &'a F,
    slots: &'a [Slot<T>],
}

/// [`run_labeled`] under the generic region label `"region"`.
pub fn run<T, F>(total: usize, cap: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_labeled("region", total, cap, f)
}

/// Runs `f(0)..f(total-1)` with at most `cap` tasks in flight at once
/// (the caller included) and returns the results in index order —
/// bit-identical to the serial loop for any pool size or schedule.
///
/// `label` names the region family on the execution timeline: it
/// becomes a `region` span on the submitting thread and keys the
/// per-label queue-wait / run-time distributions that [`utilization`]
/// reports (the DESC layers use `"cells"` for sweep cells and
/// `"parts"`/`"parts_mut"` for bank partitions). Labels are `'static`
/// so the hot path never hashes or allocates for attribution.
///
/// If any task panics, remaining unclaimed tasks are cancelled and the
/// first panic is re-raised on the calling thread after every in-flight
/// task has finished.
///
/// May be called from inside another `run` task (nested fork-join);
/// see the crate docs for why this cannot deadlock.
pub fn run_labeled<T, F>(label: &'static str, total: usize, cap: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let pool = Pool::global();
    if IN_TASK.with(Cell::get) {
        pool.nested.fetch_add(1, Ordering::Relaxed);
    }
    let _region_span = desc_telemetry::span("region", label);
    let cap = cap.max(1).min(total);
    if cap > 1 {
        pool.ensure_workers();
    }
    if cap == 1 || pool.spawned.load(Ordering::Relaxed) == 0 {
        pool.inline.fetch_add(total as u64, Ordering::Relaxed);
        pool.executed.fetch_add(total as u64, Ordering::Relaxed);
        let _in_task = InTaskGuard { was: IN_TASK.with(|fl| fl.replace(true)) };
        let cancel = current_cancel();
        let check = |i: usize| {
            if let Some(token) = &cancel {
                if token.is_cancelled() {
                    panic_any(Cancelled);
                }
            }
            i
        };
        if desc_telemetry::enabled() {
            let timer = TaskTimer::new(label);
            return (0..total).map(|i| timer.time(|| f(check(i)))).collect();
        }
        return (0..total).map(|i| f(check(i))).collect();
    }

    unsafe fn fill_slot<T, F>(ctx: *const (), i: usize)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // SAFETY: `ctx` points at the `RunCtx` on the submitting
        // caller's stack, alive until its `wait_done` returns (Region
        // invariant); each index is claimed exactly once, so the slot
        // write is unaliased.
        let ctx = unsafe { &*ctx.cast::<RunCtx<'_, T, F>>() };
        let value = (ctx.f)(i);
        unsafe { ctx.slots[i].write(value) };
    }

    let mut slots: Vec<Slot<T>> = Vec::new();
    slots.resize_with(total, Slot::new);
    let panicked = {
        let ctx = RunCtx { f: &f, slots: &slots };
        let region = Arc::new(Region::new(
            fill_slot::<T, F>,
            &ctx as *const RunCtx<'_, T, F> as *const (),
            total,
            cap,
            label,
        ));
        pool.submit(Arc::clone(&region));
        let mine = region.execute_until_empty();
        region.exit();
        // Our departure frees cap headroom; wake scanners.
        pool.work.notify_all();
        region.wait_done();
        pool.retire(&region);
        pool.regions.fetch_add(1, Ordering::Relaxed);
        pool.executed.fetch_add(total as u64, Ordering::Relaxed);
        pool.helped.fetch_add(mine, Ordering::Relaxed);
        pool.stolen.fetch_add(total as u64 - mine, Ordering::Relaxed);
        region.take_panic()
    };
    if let Some(payload) = panicked {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|mut s| s.take().expect("completed region left an empty slot"))
        .collect()
}

struct MutCtx<'a, S, F> {
    f: &'a F,
    base: *mut S,
    _marker: std::marker::PhantomData<&'a mut [S]>,
}

/// [`run_mut_labeled`] under the generic region label `"region"`.
pub fn run_mut<S, F>(states: &mut [S], cap: usize, f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    run_mut_labeled("region", states, cap, f);
}

/// Runs `f(i, &mut states[i])` for every index with at most `cap`
/// tasks in flight, in place — the mutable-state twin of
/// [`run_labeled`] used for buffers that persist across repeated
/// passes (e.g. the timing fixed-point). Panic, determinism, and
/// timeline-attribution semantics match [`run_labeled`].
pub fn run_mut_labeled<S, F>(label: &'static str, states: &mut [S], cap: usize, f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let total = states.len();
    if total == 0 {
        return;
    }
    let pool = Pool::global();
    if IN_TASK.with(Cell::get) {
        pool.nested.fetch_add(1, Ordering::Relaxed);
    }
    let _region_span = desc_telemetry::span("region", label);
    let cap = cap.max(1).min(total);
    if cap > 1 {
        pool.ensure_workers();
    }
    if cap == 1 || pool.spawned.load(Ordering::Relaxed) == 0 {
        pool.inline.fetch_add(total as u64, Ordering::Relaxed);
        pool.executed.fetch_add(total as u64, Ordering::Relaxed);
        let _in_task = InTaskGuard { was: IN_TASK.with(|fl| fl.replace(true)) };
        let cancel = current_cancel();
        let check = || {
            if let Some(token) = &cancel {
                if token.is_cancelled() {
                    panic_any(Cancelled);
                }
            }
        };
        if desc_telemetry::enabled() {
            let timer = TaskTimer::new(label);
            for (i, s) in states.iter_mut().enumerate() {
                check();
                timer.time(|| f(i, s));
            }
        } else {
            for (i, s) in states.iter_mut().enumerate() {
                check();
                f(i, s);
            }
        }
        return;
    }

    unsafe fn call_mut<S, F>(ctx: *const (), i: usize)
    where
        S: Send,
        F: Fn(usize, &mut S) + Sync,
    {
        // SAFETY: `ctx` is alive until the caller's `wait_done`
        // returns (Region invariant); indices are claimed exactly
        // once, so `base.add(i)` is a unique `&mut` into the slice.
        let ctx = unsafe { &*ctx.cast::<MutCtx<'_, S, F>>() };
        let state = unsafe { &mut *ctx.base.add(i) };
        (ctx.f)(i, state);
    }

    let panicked = {
        let ctx =
            MutCtx { f: &f, base: states.as_mut_ptr(), _marker: std::marker::PhantomData };
        let region = Arc::new(Region::new(
            call_mut::<S, F>,
            &ctx as *const MutCtx<'_, S, F> as *const (),
            total,
            cap,
            label,
        ));
        pool.submit(Arc::clone(&region));
        let mine = region.execute_until_empty();
        region.exit();
        pool.work.notify_all();
        region.wait_done();
        pool.retire(&region);
        pool.regions.fetch_add(1, Ordering::Relaxed);
        pool.executed.fetch_add(total as u64, Ordering::Relaxed);
        pool.helped.fetch_add(mine, Ordering::Relaxed);
        pool.stolen.fetch_add(total as u64 - mine, Ordering::Relaxed);
        region.take_panic()
    };
    if let Some(payload) = panicked {
        resume_unwind(payload);
    }
}

/// One result cell, written at most once by whichever thread claims
/// its index. This is the lock-free replacement for the old
/// per-partition `Mutex<&mut Option<T>>` pattern: disjoint indices
/// need no mutual exclusion, only a happens-before edge, which the
/// region's `done` counter provides.
struct Slot<T> {
    written: AtomicBool,
    value: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: a slot is written by exactly one claimant and read only by
// the submitting caller after the region's Release/Acquire completion
// handshake.
unsafe impl<T: Send> Sync for Slot<T> {}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot { written: AtomicBool::new(false), value: UnsafeCell::new(MaybeUninit::uninit()) }
    }

    /// # Safety
    /// Must be called at most once per slot, from the unique claimant
    /// of its index.
    unsafe fn write(&self, value: T) {
        unsafe { (*self.value.get()).write(value) };
        self.written.store(true, Ordering::Release);
    }

    fn take(&mut self) -> Option<T> {
        if *self.written.get_mut() {
            *self.written.get_mut() = false;
            // SAFETY: the flag says the value was initialised, and
            // clearing it transfers ownership to us.
            Some(unsafe { (*self.value.get()).assume_init_read() })
        } else {
            None
        }
    }
}

impl<T> Drop for Slot<T> {
    fn drop(&mut self) {
        if *self.written.get_mut() {
            // SAFETY: initialised and never taken (cancelled region).
            unsafe { (*self.value.get()).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_for_any_cap() {
        configure(4);
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for cap in [1, 2, 3, 8, 64, 200] {
            assert_eq!(run(100, cap, |i| i * i), expect, "cap={cap}");
        }
    }

    #[test]
    fn zero_and_single_task_regions() {
        configure(4);
        assert!(run(0, 8, |i| i).is_empty());
        assert_eq!(run(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn nested_regions_complete_and_stay_deterministic() {
        configure(4);
        let expect: Vec<usize> =
            (0..6).map(|c| (0..12).map(|p| c * 100 + p).sum::<usize>()).collect();
        for _ in 0..20 {
            let got = run(6, 4, |c| run(12, 3, |p| c * 100 + p).into_iter().sum::<usize>());
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn run_mut_updates_every_state_in_place() {
        configure(4);
        for cap in [1, 2, 8] {
            let mut states: Vec<u64> = (0..50).collect();
            run_mut(&mut states, cap, |i, s| *s += i as u64 * 10);
            let expect: Vec<u64> = (0..50).map(|i| i + i * 10).collect();
            assert_eq!(states, expect, "cap={cap}");
        }
    }

    #[test]
    fn task_panic_propagates_to_caller_and_pool_survives() {
        configure(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(64, 4, |i| {
                if i == 17 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(result.is_err(), "panic must reach the submitting caller");
        // The pool must not be wedged by the cancelled region.
        let expect: Vec<usize> = (0..32).map(|i| i * 3).collect();
        assert_eq!(run(32, 4, |i| i * 3), expect);
    }

    #[test]
    fn stats_count_tasks() {
        configure(2);
        let before = stats();
        let _ = run(10, 1, |i| i); // cap 1 -> inline path
        let _ = run(10, 4, |i| i);
        let after = stats();
        assert!(after.tasks_executed >= before.tasks_executed + 20);
        assert!(after.tasks_inline >= before.tasks_inline + 10);
        assert!(after.workers >= 1);
    }

    #[test]
    fn nested_regions_are_counted() {
        configure(2);
        let before = stats().regions_nested;
        // 4 outer tasks, each submitting one inner region (the inner
        // cap of 1 keeps it on the inline path — still a region).
        let _ = run(4, 2, |c| run(3, 1, move |p| c * 10 + p).len());
        let after = stats().regions_nested;
        assert!(after >= before + 4, "nested submissions: {before} -> {after}");
    }

    /// One test (not two) because `set_enabled` is process-global and
    /// the harness runs tests concurrently: the disabled-path check
    /// must not race a sibling that turns telemetry on.
    #[test]
    fn utilization_follows_the_telemetry_switch() {
        configure(2);

        // Disabled: a labeled run leaves no timing trace at all.
        desc_telemetry::set_enabled(false);
        let _ = run_labeled("test-dark", 16, 2, |i| i);
        let util = utilization();
        assert!(util.regions.iter().all(|r| r.label != "test-dark"));

        // Enabled: tasks, run time, buckets, and worker busy time all
        // land under the region's label.
        desc_telemetry::set_enabled(true);
        let _ = run_labeled("test-util", 8, 2, |i| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            i
        });
        desc_telemetry::set_enabled(false);
        let util = utilization();
        assert!(util.elapsed_us > 0);
        let region = util
            .regions
            .iter()
            .find(|r| r.label == "test-util")
            .expect("labeled region appears in utilization");
        assert_eq!(region.tasks, 8);
        assert!(region.run_us_sum > 0, "sleeping tasks must accrue run time");
        assert!(!region.run_us_buckets.is_empty());
        let busy: u64 = util.workers.iter().map(|w| w.busy_us).sum();
        let worked: u64 = util.workers.iter().map(|w| w.tasks).sum();
        assert!(busy >= region.run_us_sum, "worker busy time covers the region");
        assert!(worked >= 8);
    }

    #[test]
    fn group_service_is_charged_per_claim() {
        configure(2);
        let group = Group::new("charged", 2);
        let before_vtime = group.vtime();
        let guard = install_group(Some(group.clone()));
        let _ = run(10, 2, |i| i);
        drop(guard);
        assert_eq!(group.tasks(), 10);
        // Weight 2 => half a weight-1 charge per task; the submit-time
        // floor clamp can only raise vtime further.
        assert!(group.vtime() >= before_vtime + 10 * (WEIGHT_SCALE / 2), "{}", group.vtime());
        assert_eq!(group.name(), "charged");
        assert_eq!(group.weight(), 2);
    }

    #[test]
    fn freshly_submitted_group_inherits_the_service_floor() {
        configure(2);
        let holder_group = Group::new("floor-holder", 1);
        let release = Arc::new(AtomicBool::new(false));
        let holder = {
            let group = holder_group.clone();
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                let _g = install_group(Some(group));
                run(4, 2, move |_| {
                    while !release.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                });
            })
        };
        // Wait until the holder's region has been charged for at
        // least one claim, so the floor is provably nonzero.
        while holder_group.vtime() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let floor = holder_group.vtime();
        let fresh = Group::new("floor-fresh", 1);
        {
            let fresh = fresh.clone();
            std::thread::spawn(move || {
                let _g = install_group(Some(fresh));
                let _ = run(2, 2, |i| i);
            })
            .join()
            .unwrap();
        }
        release.store(true, Ordering::Relaxed);
        holder.join().unwrap();
        assert!(
            fresh.vtime() >= floor,
            "fresh group must not undercut active groups: {} < {floor}",
            fresh.vtime()
        );
    }

    #[test]
    fn small_region_completes_while_a_large_sweep_is_in_flight() {
        configure(4);
        let sweep_started = Arc::new(AtomicBool::new(false));
        let sweep = {
            let started = Arc::clone(&sweep_started);
            std::thread::spawn(move || {
                let _g = install_group(Some(Group::new("sweep", 1)));
                run(300, 4, move |_| {
                    started.store(true, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(2));
                });
            })
        };
        while !sweep_started.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The sweep has hundreds of milliseconds of work left; a
        // one-cell request in its own group must not wait for it.
        let _g = install_group(Some(Group::new("ping", 1)));
        let started = Instant::now();
        assert_eq!(run(2, 2, |i| i * 7), vec![0, 7]);
        let elapsed = started.elapsed();
        sweep.join().unwrap();
        assert!(
            elapsed < Duration::from_millis(200),
            "small region waited behind the sweep: {elapsed:?}"
        );
    }

    /// Unwraps a caught panic payload as a [`Cancelled`] marker.
    fn assert_cancelled(payload: Box<dyn std::any::Any + Send>) {
        assert!(
            payload.downcast_ref::<Cancelled>().is_some(),
            "expected a Cancelled payload, got something else"
        );
    }

    #[test]
    fn expired_deadline_cancels_a_pooled_region() {
        configure(2);
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        let guard = install_cancel(Some(token));
        let ran = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let ran = Arc::clone(&ran);
            run(64, 2, move |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
        }));
        drop(guard);
        assert_cancelled(result.expect_err("expired deadline must unwind"));
        assert_eq!(
            ran.load(Ordering::Relaxed),
            0,
            "no task may start after the deadline passed"
        );
        // The pool must stay healthy for subsequent regions.
        let values = run(8, 2, |i| i * 2);
        assert_eq!(values, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_cancel_stops_remaining_tasks_midway() {
        configure(2);
        let token = CancelToken::new();
        let _guard = install_cancel(Some(token.clone()));
        let ran = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let ran = Arc::clone(&ran);
            let token = token.clone();
            run(256, 2, move |i| {
                if i == 0 {
                    token.cancel();
                }
                ran.fetch_add(1, Ordering::Relaxed);
            })
        }));
        assert_cancelled(result.expect_err("cancelled region must unwind"));
        let done = ran.load(Ordering::Relaxed);
        assert!(done < 256, "cancellation must skip some of the 256 tasks (ran {done})");
    }

    #[test]
    fn inline_path_honours_the_installed_token() {
        // cap == 1 forces the inline fast path regardless of workers.
        let token = CancelToken::new();
        token.cancel();
        let _guard = install_cancel(Some(token));
        let result = catch_unwind(AssertUnwindSafe(|| run(4, 1, |i| i)));
        assert_cancelled(result.expect_err("inline run must observe the token"));

        let mut states = [0u64; 4];
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_mut(&mut states, 1, |_, s| *s += 1);
        }));
        assert_cancelled(result.expect_err("inline run_mut must observe the token"));
    }

    #[test]
    fn uncancelled_token_is_transparent_and_guard_restores() {
        let outer = CancelToken::new();
        let _outer_guard = install_cancel(Some(outer.clone()));
        {
            let inner = CancelToken::new();
            let _inner_guard = install_cancel(Some(inner));
            let values = run(8, 1, |i| i + 1);
            assert_eq!(values.len(), 8);
        }
        // Inner guard dropped: the outer token is installed again.
        let current = current_cancel().expect("outer token restored");
        outer.cancel();
        assert!(current.is_cancelled(), "restored handle shares the outer state");
    }
}
