//! Raw throughput of the transfer-scheme codecs: blocks encoded per
//! second per scheme, plus the cycle-stepped protocol and the SECDED
//! path. These are the hot loops of every experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use desc_core::protocol::{Link, LinkConfig};
use desc_core::schemes::{SchemeKind, SkipMode};
use desc_core::{ChunkSize, TransferScheme};
use desc_ecc::InterleavedBlock;
use desc_workloads::BenchmarkId;
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_transfer");
    let blocks: Vec<_> = {
        let mut stream = BenchmarkId::Ocean.profile().value_stream(1);
        (0..256).map(|_| stream.next_block()).collect()
    };
    group.throughput(Throughput::Elements(blocks.len() as u64));
    for kind in SchemeKind::ALL {
        group.bench_function(kind.label(), |b| {
            let mut scheme = kind.build_paper_config();
            b.iter(|| {
                let mut transitions = 0u64;
                for block in &blocks {
                    transitions += scheme.transfer(black_box(block)).total_transitions();
                }
                black_box(transitions)
            });
        });
    }
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    let blocks: Vec<_> = {
        let mut stream = BenchmarkId::Fft.profile().value_stream(2);
        (0..64).map(|_| stream.next_block()).collect()
    };
    group.throughput(Throughput::Elements(blocks.len() as u64));
    group.bench_function("cycle_stepped_link_128w", |b| {
        let cfg = LinkConfig {
            wires: 128,
            chunk_size: ChunkSize::PAPER_DEFAULT,
            mode: SkipMode::Zero,
            wire_delay: 2,
        };
        b.iter(|| {
            let mut link = Link::new(cfg);
            for block in &blocks {
                black_box(link.transfer(black_box(block)).cost.cycles);
            }
        });
    });
    group.finish();
}

fn bench_ecc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc");
    let blocks: Vec<_> = {
        let mut stream = BenchmarkId::Cg.profile().value_stream(3);
        (0..64).map(|_| stream.next_block()).collect()
    };
    group.throughput(Throughput::Elements(blocks.len() as u64));
    group.bench_function("interleave_encode_decode_137_128", |b| {
        b.iter(|| {
            for block in &blocks {
                let e = InterleavedBlock::encode_paper(black_box(block));
                black_box(e.decode().usable());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_protocol, bench_ecc);
criterion_main!(benches);
