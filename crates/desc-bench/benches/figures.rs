//! Criterion benchmarks regenerating every table and figure of the
//! paper at reduced scale — one benchmark per experiment, so
//! `cargo bench` both exercises and times the whole reproduction
//! harness. Run the `repro` binary for full-scale tables.

use criterion::{criterion_group, criterion_main, Criterion};
use desc_experiments::{experiment_names, run_experiment, Scale};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    for name in experiment_names() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let table = run_experiment(black_box(name), &scale);
                black_box(table.row_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
