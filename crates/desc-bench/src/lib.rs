//! # desc-bench
//!
//! Benchmark-only crate: dependency-free timing harnesses tracking the
//! throughput of the DESC reproduction's hot paths.
//!
//! * `bench_transfers` — steady-state `Link::transfer` throughput per
//!   skip mode (`BENCH_link.json`).
//! * `bench_codecs` — SECDED encode/decode and chunk-interleave
//!   throughput (`BENCH_ecc.json`).
//! * `bench_pipeline` — end-to-end simulate → price → roll-up pipeline
//!   throughput (`BENCH_pipeline.json`).
//!
//! Every harness appends to its JSON file through [`append_history`]:
//! the latest numbers stay at the top level (`results`) for scripts
//! that only want the current state, while `history` accumulates one
//! entry per run so regressions are visible as a time series.
//!
//! For full-scale figure regeneration use the `repro` binary from
//! `desc-experiments` instead; benches exist to keep the whole
//! reproduction harness fast and regression-tracked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use desc_telemetry::Json;
use std::path::Path;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Appends one benchmark run to `path` in the shared history format.
///
/// The written document keeps the original single-run layout at the
/// top level — `benchmark`, `config`, `results` always reflect the
/// *latest* run — and grows a `history` array with one entry per run
/// (`recorded_unix_s` + that run's `results`). Existing files are
/// parsed and extended; a pre-history file's `results` become the
/// first history entry, and an unparseable file is replaced with a
/// fresh single-entry history rather than aborting the run.
///
/// # Errors
///
/// Propagates the final write's I/O error.
pub fn append_history(
    path: &Path,
    benchmark: &str,
    config: Json,
    results: Json,
) -> std::io::Result<()> {
    let mut history: Vec<Json> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(old) = Json::parse(&text) {
            if let Some(entries) = old.get("history").and_then(Json::as_arr) {
                history = entries.to_vec();
            } else if let Some(previous) = old.get("results") {
                // Old single-run format: keep its numbers as the first
                // history entry (it carries no timestamp of its own).
                history.push(Json::obj().with("results", previous.clone()));
            }
        }
    }
    let recorded =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    history.push(
        Json::obj()
            .with("recorded_unix_s", Json::UInt(recorded))
            .with("results", results.clone()),
    );
    let doc = Json::obj()
        .with("benchmark", Json::Str(benchmark.to_owned()))
        .with("config", config)
        .with("results", results)
        .with("history", Json::Arr(history));
    std::fs::write(path, doc.to_pretty())
}

/// Times `work` over `reps` repetitions of `iters` iterations each and
/// returns the best iterations/second (the least scheduler-disturbed
/// repetition). The caller is responsible for warmup.
pub fn best_rate(iters: usize, reps: usize, mut work: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            work();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    iters as f64 / best
}

/// Where this run's [`desc_exec`] pool tasks actually executed, for the
/// `pool` stanza every bench config records: a history entry then
/// documents its own concurrency, so serial and pooled runs are never
/// compared blind.
#[must_use]
pub fn pool_stanza() -> Json {
    let s = desc_exec::stats();
    let host_cores =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    Json::obj()
        .with("host_cores", Json::UInt(host_cores as u64))
        .with("target", Json::UInt(s.target as u64))
        .with("workers", Json::UInt(s.workers as u64))
        .with("regions", Json::UInt(s.regions))
        .with("tasks_executed", Json::UInt(s.tasks_executed))
        .with("tasks_inline", Json::UInt(s.tasks_inline))
        .with("tasks_helped", Json::UInt(s.tasks_helped))
        .with("tasks_stolen", Json::UInt(s.tasks_stolen))
        .with("regions_nested", Json::UInt(s.regions_nested))
        .with("cap_rejections", Json::UInt(s.cap_rejections))
}

/// Shared scaffolding for the bench binaries: collects result rows,
/// then writes benchmark + config (with the [`pool_stanza`] appended)
/// + rows through [`append_history`] and exits non-zero on I/O error.
pub struct Harness {
    benchmark: &'static str,
    out_path: String,
    results: Vec<Json>,
}

impl Harness {
    /// Creates a harness writing to `out_path`.
    #[must_use]
    pub fn new(benchmark: &'static str, out_path: String) -> Self {
        Self { benchmark, out_path, results: Vec::new() }
    }

    /// Creates a harness writing to the first non-flag CLI argument,
    /// or `default_out` when none is given.
    #[must_use]
    pub fn from_args(benchmark: &'static str, default_out: &str) -> Self {
        let out_path = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .unwrap_or_else(|| default_out.to_owned());
        Self::new(benchmark, out_path)
    }

    /// Adds one result row to the run.
    pub fn push(&mut self, row: Json) {
        self.results.push(row);
    }

    /// Appends the run to the history file and reports the outcome;
    /// exits the process with status 1 if the write fails.
    pub fn finish(self, config: Json) {
        let config = config.with("pool", pool_stanza());
        match append_history(
            Path::new(&self.out_path),
            self.benchmark,
            config,
            Json::Arr(self.results),
        ) {
            Ok(()) => println!("\nwrote {}", self.out_path),
            Err(e) => {
                eprintln!("failed to write {}: {e}", self.out_path);
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_appends_and_preserves_old_results() {
        let dir = std::env::temp_dir().join(format!("desc-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("hist.json");
        // Seed with an old-format (history-less) document.
        std::fs::write(
            &path,
            "{\"benchmark\": \"t\", \"config\": {}, \"results\": [{\"x\": 1}]}\n",
        )
        .expect("seed file");
        let results = Json::Arr(vec![Json::obj().with("x", Json::UInt(2))]);
        append_history(&path, "t", Json::obj(), results.clone()).expect("first append");
        append_history(&path, "t", Json::obj(), results).expect("second append");
        let doc = Json::parse(&std::fs::read_to_string(&path).expect("read"))
            .expect("parse history file");
        let history = doc.get("history").and_then(Json::as_arr).expect("history array");
        // Old results + two appends.
        assert_eq!(history.len(), 3);
        let first_x = history[0]
            .get("results")
            .and_then(|r| r.as_arr())
            .and_then(|a| a.first())
            .and_then(|e| e.get("x"))
            .and_then(Json::as_u64);
        assert_eq!(first_x, Some(1), "old-format results preserved as first entry");
        assert!(history[2].get("recorded_unix_s").is_some());
        // Top level keeps the latest run.
        let top_x = doc
            .get("results")
            .and_then(Json::as_arr)
            .and_then(|a| a.first())
            .and_then(|e| e.get("x"))
            .and_then(Json::as_u64);
        assert_eq!(top_x, Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unparseable_file_is_replaced() {
        let dir = std::env::temp_dir().join(format!("desc-bench-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json at all").expect("seed file");
        append_history(&path, "t", Json::obj(), Json::Arr(Vec::new())).expect("append");
        let doc = Json::parse(&std::fs::read_to_string(&path).expect("read")).expect("parse");
        assert_eq!(doc.get("history").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn best_rate_is_positive() {
        let mut n = 0u64;
        let rate = best_rate(100, 2, || n = n.wrapping_add(1));
        assert!(rate > 0.0);
        assert_eq!(n, 200);
    }
}
