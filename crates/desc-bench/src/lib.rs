//! # desc-bench
//!
//! Benchmark-only crate. The Criterion harnesses live in `benches/`:
//!
//! * `figures` — regenerates every table and figure of the paper at
//!   reduced scale, one benchmark per experiment (`cargo bench -p
//!   desc-bench --bench figures`).
//! * `codecs` — raw throughput of the transfer-scheme encoders, the
//!   cycle-stepped protocol, and the SECDED interleave path.
//!
//! For full-scale figure regeneration use the `repro` binary from
//! `desc-experiments` instead; benches exist to keep the whole
//! reproduction harness fast and regression-tracked.

#![forbid(unsafe_code)]
