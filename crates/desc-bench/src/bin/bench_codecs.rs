//! `bench_codecs` — throughput harness for the ECC codec hot paths.
//!
//! ```text
//! cargo run --release -p desc-bench --bin bench_codecs [-- OUTPUT.json]
//! ```
//!
//! Measures SECDED encode and decode rates for the paper's (72,64) and
//! (137,128) codes plus the full chunk-interleaved encode → corrupt →
//! correct round trip on 64-byte blocks, and appends the numbers to
//! `BENCH_ecc.json` in the shared history format (latest run in
//! `results`, every run in `history`).

use desc_bench::{best_rate, Harness};
use desc_core::Block;
use desc_ecc::{InterleavedBlock, SecdedCode};
use desc_telemetry::Json;
use desc_workloads::BenchmarkId;
use std::hint::black_box;

const ITERS: usize = 20_000;
const REPS: usize = 5;
const POOL: usize = 256;

fn bench_secded(code: &SecdedCode, data: &[Vec<u8>]) -> (f64, f64) {
    // Warmup + corpus of clean codewords for the decode side.
    let codewords: Vec<Vec<bool>> = data.iter().map(|d| code.encode(d)).collect();
    let encode_rate = best_rate(ITERS, REPS, {
        let mut i = 0;
        move || {
            black_box(code.encode(&data[i % data.len()]));
            i += 1;
        }
    });
    let mut scratch = codewords.clone();
    let decode_rate = best_rate(ITERS, REPS, {
        let mut i = 0;
        move || {
            let w = &mut scratch[i % POOL];
            black_box(code.decode(w).is_usable());
            i += 1;
        }
    });
    (encode_rate, decode_rate)
}

fn main() {
    let mut harness = Harness::from_args("ecc_codecs", "BENCH_ecc.json");
    let mut stream = BenchmarkId::Ocean.profile().value_stream(2013);
    let blocks: Vec<Block> = (0..POOL).map(|_| stream.next_block()).collect();

    println!("{:<28} {:>16}", "codec", "ops/sec");
    let mut record = |name: &str, rate: f64| {
        println!("{name:<28} {rate:>16.0}");
        harness.push(
            Json::obj()
                .with("codec", Json::Str(name.to_owned()))
                .with("ops_per_sec", Json::Num(rate.round())),
        );
    };

    for (label, code, seg_bytes) in
        [("secded_72_64", SecdedCode::c72_64(), 8), ("secded_137_128", SecdedCode::c137_128(), 16)]
    {
        let data: Vec<Vec<u8>> =
            blocks.iter().map(|b| b.as_bytes()[..seg_bytes].to_vec()).collect();
        let (enc, dec) = bench_secded(&code, &data);
        record(&format!("{label}_encode"), enc);
        record(&format!("{label}_decode"), dec);
    }

    // Full interleaved path: encode a block into chunk-interleaved
    // codewords, flip one chunk bit, and correct it back.
    let interleave_rate = best_rate(ITERS / 4, REPS, {
        let mut i = 0;
        move || {
            let mut cw = InterleavedBlock::encode_paper(&blocks[i % POOL]);
            cw.corrupt_chunk(i % cw.chunks().len(), 1);
            black_box(cw.decode().usable());
            i += 1;
        }
    });
    record("interleave_paper_roundtrip", interleave_rate);

    let config = Json::obj()
        .with("block_bytes", Json::UInt(64))
        .with("workload", Json::Str("ocean value stream, seed 2013".to_owned()))
        .with("iters", Json::UInt(ITERS as u64))
        .with("reps", Json::UInt(REPS as u64));
    harness.finish(config);
}
