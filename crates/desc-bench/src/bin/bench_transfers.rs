//! `bench_transfers` — dependency-free throughput harness for the
//! cycle-stepped DESC link hot path.
//!
//! ```text
//! cargo run --release -p desc-bench --bin bench_transfers [-- OUTPUT.json]
//! ```
//!
//! Measures steady-state `Link::transfer` throughput (transfers/sec
//! and payload bytes/sec) for each skip mode on the paper's 128-wire,
//! 4-bit-chunk link carrying Ocean-profile 64-byte blocks, and writes
//! `BENCH_link.json` recording both the frozen pre-optimisation
//! baseline and the current numbers side by side. The file is
//! append-mode: `results` holds the latest run and `history` keeps a
//! time series of every run (see `desc_bench::append_history`).
//!
//! Two further axes ride along:
//!
//! * **batch** — scalar-vs-batched speedup per scheme mode at slab
//!   sizes 1/16/256: per-block `transfer` calls against one
//!   `transfer_many` (or `Link::transfer_many`) over the same blocks.
//! * **micro** — `Block::hamming_distance`'s u64 word fold against a
//!   byte-at-a-time reference loop.
//!
//! Timing uses `std::time::Instant` only: each measurement is warmed
//! up and then timed over several repetitions, keeping the best (least
//! scheduler-disturbed) repetition.

use desc_bench::{best_rate, Harness};
use desc_core::protocol::{Link, LinkConfig, TraceCapture};
use desc_core::schemes::{BinaryScheme, BusInvertScheme, DescScheme, DzcScheme, SkipMode};
use desc_core::{Block, BlockSlab, ChunkSize, TransferCost, TransferScheme};
use desc_telemetry::Json;
use desc_workloads::BenchmarkId;
use std::hint::black_box;

/// Pre-optimisation throughput on this harness's exact workload
/// (recorded before the hot-path rework: `Vec<bool>` traces always
/// captured, per-transfer allocations, O(rounds²) chained decode).
const BASELINE: [(SkipMode, f64); 3] = [
    (SkipMode::None, 106_796.0),
    (SkipMode::Zero, 104_566.0),
    (SkipMode::LastValue, 98_700.0),
];

const BLOCK_BYTES: f64 = 64.0;
const POOL: usize = 256;
const TRANSFERS_PER_REP: usize = 16_000;
/// Blocks moved per repetition on the batch axis (scalar and batched
/// sides move the same count, so the rates compare directly).
const BATCH_BLOCKS_PER_REP: usize = 8_192;
const BATCH_SIZES: [usize; 3] = [1, 16, 256];
const REPS: usize = 5;

fn mode_name(mode: SkipMode) -> &'static str {
    match mode {
        SkipMode::None => "basic",
        SkipMode::Zero => "zero_skip",
        SkipMode::LastValue => "last_value_skip",
    }
}

fn link_config(mode: SkipMode) -> LinkConfig {
    LinkConfig {
        wires: 128,
        chunk_size: ChunkSize::PAPER_DEFAULT,
        mode,
        wire_delay: 2,
        trace: TraceCapture::Off,
    }
}

fn bench_mode(mode: SkipMode, blocks: &[Block]) -> f64 {
    let mut link = Link::new(link_config(mode));
    // Warmup: fault in the pool and let the scratch buffers size
    // themselves.
    for b in blocks {
        black_box(link.transfer(b).cost.cycles);
    }
    let mut i = 0usize;
    best_rate(TRANSFERS_PER_REP, REPS, || {
        black_box(link.transfer(&blocks[i % blocks.len()]).cost.cycles);
        i += 1;
    })
}

/// Packs the pool into slabs of `batch` blocks each.
fn slabs_of(blocks: &[Block], batch: usize) -> Vec<BlockSlab> {
    blocks
        .chunks(batch)
        .map(|chunk| {
            let mut slab = BlockSlab::with_capacity(blocks[0].byte_len(), chunk.len());
            for b in chunk {
                slab.push(b);
            }
            slab
        })
        .collect()
}

/// Times `scalar_step` per block against `batched_step` per slab over
/// the same pool; returns (scalar, batched) blocks/sec.
fn bench_batch(
    blocks: &[Block],
    batch: usize,
    mut scalar_step: impl FnMut(&Block),
    mut batched_step: impl FnMut(&BlockSlab),
) -> (f64, f64) {
    for b in blocks {
        scalar_step(b);
    }
    let mut i = 0usize;
    let scalar = best_rate(BATCH_BLOCKS_PER_REP, REPS, || {
        scalar_step(&blocks[i % blocks.len()]);
        i += 1;
    });

    let slabs = slabs_of(blocks, batch);
    for slab in &slabs {
        batched_step(slab);
    }
    let mut k = 0usize;
    let iters = (BATCH_BLOCKS_PER_REP / batch).max(1);
    let batched = best_rate(iters, REPS, || {
        batched_step(&slabs[k % slabs.len()]);
        k += 1;
    }) * batch as f64;
    (scalar, batched)
}

/// Byte-at-a-time Hamming distance — the pre-word-fold reference the
/// micro row compares [`Block::hamming_distance`] against.
fn hamming_bytewise(a: &Block, b: &Block) -> u32 {
    a.as_bytes().iter().zip(b.as_bytes()).map(|(x, y)| (x ^ y).count_ones()).sum()
}

fn main() {
    let mut harness = Harness::from_args("link_transfers", "BENCH_link.json");
    let mut stream = BenchmarkId::Ocean.profile().value_stream(2013);
    let blocks: Vec<Block> = (0..POOL).map(|_| stream.next_block()).collect();

    println!(
        "{:<16} {:>14} {:>14} {:>16} {:>8}",
        "mode", "baseline t/s", "current t/s", "current bytes/s", "speedup"
    );
    for &(mode, baseline_tps) in &BASELINE {
        let tps = bench_mode(mode, &blocks);
        let speedup = tps / baseline_tps;
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>16.0} {:>7.2}x",
            mode_name(mode),
            baseline_tps,
            tps,
            tps * BLOCK_BYTES,
            speedup
        );
        harness.push(
            Json::obj()
                .with("mode", Json::Str(mode_name(mode).to_owned()))
                .with("baseline_transfers_per_sec", Json::UInt(baseline_tps as u64))
                .with("baseline_bytes_per_sec", Json::UInt((baseline_tps * BLOCK_BYTES) as u64))
                .with("current_transfers_per_sec", Json::Num((tps * 10.0).round() / 10.0))
                .with(
                    "current_bytes_per_sec",
                    Json::Num((tps * BLOCK_BYTES * 10.0).round() / 10.0),
                )
                .with("speedup", Json::Num((speedup * 1000.0).round() / 1000.0)),
        );
    }

    // ---- Batch axis: scalar vs transfer_many per scheme mode. -------
    println!(
        "\n{:<20} {:>6} {:>16} {:>17} {:>8}",
        "mode", "batch", "scalar blk/s", "batched blk/s", "speedup"
    );
    let batch_row = |harness: &mut Harness, mode: &str, batch: usize, rates: (f64, f64)| {
        let (scalar, batched) = rates;
        let speedup = batched / scalar;
        println!("{mode:<20} {batch:>6} {scalar:>16.0} {batched:>17.0} {speedup:>7.2}x");
        harness.push(
            Json::obj()
                .with("mode", Json::Str(mode.to_owned()))
                .with("batch", Json::UInt(batch as u64))
                .with("scalar_blocks_per_sec", Json::Num((scalar * 10.0).round() / 10.0))
                .with("batched_blocks_per_sec", Json::Num((batched * 10.0).round() / 10.0))
                .with("batch_speedup", Json::Num((speedup * 1000.0).round() / 1000.0)),
        );
    };
    for &batch in &BATCH_SIZES {
        // Analytic schemes, scalar transfer vs specialized kernels.
        let mut s = BinaryScheme::new(128);
        let mut b = s.clone();
        let mut costs: Vec<TransferCost> = Vec::with_capacity(batch);
        let rates = bench_batch(
            &blocks,
            batch,
            |blk| {
                black_box(s.transfer(blk).cycles);
            },
            |slab| {
                costs.clear();
                b.transfer_many(slab, &mut costs);
                black_box(costs.len());
            },
        );
        batch_row(&mut harness, "conventional_binary", batch, rates);

        let mut s = DzcScheme::new(128, 8);
        let mut b = s.clone();
        let mut costs: Vec<TransferCost> = Vec::with_capacity(batch);
        let rates = bench_batch(
            &blocks,
            batch,
            |blk| {
                black_box(s.transfer(blk).cycles);
            },
            |slab| {
                costs.clear();
                b.transfer_many(slab, &mut costs);
                black_box(costs.len());
            },
        );
        batch_row(&mut harness, "dzc", batch, rates);

        let mut s = BusInvertScheme::new(128, 32);
        let mut b = s.clone();
        let mut costs: Vec<TransferCost> = Vec::with_capacity(batch);
        let rates = bench_batch(
            &blocks,
            batch,
            |blk| {
                black_box(s.transfer(blk).cycles);
            },
            |slab| {
                costs.clear();
                b.transfer_many(slab, &mut costs);
                black_box(costs.len());
            },
        );
        batch_row(&mut harness, "bus_invert", batch, rates);

        let mut s = DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero);
        let mut b = s.clone();
        let mut costs: Vec<TransferCost> = Vec::with_capacity(batch);
        let rates = bench_batch(
            &blocks,
            batch,
            |blk| {
                black_box(s.transfer(blk).cycles);
            },
            |slab| {
                costs.clear();
                b.transfer_many(slab, &mut costs);
                black_box(costs.len());
            },
        );
        batch_row(&mut harness, "zero_skip_analytic", batch, rates);

        // The cycle-stepped link: batched entry skips the event list
        // and receiver entirely when capture is off.
        for mode in [SkipMode::None, SkipMode::Zero, SkipMode::LastValue] {
            let mut s = Link::new(link_config(mode));
            let mut b = Link::new(link_config(mode));
            let mut costs: Vec<TransferCost> = Vec::with_capacity(batch);
            let rates = bench_batch(
                &blocks,
                batch,
                |blk| {
                    black_box(s.transfer(blk).cost.cycles);
                },
                |slab| {
                    costs.clear();
                    b.transfer_many(slab, &mut costs);
                    black_box(costs.len());
                },
            );
            batch_row(&mut harness, mode_name(mode), batch, rates);
        }
    }

    // ---- Micro: hamming distance, byte loop vs u64 word fold. -------
    let pairs: Vec<(&Block, &Block)> =
        (0..blocks.len()).map(|i| (&blocks[i], &blocks[(i + 1) % blocks.len()])).collect();
    let mut i = 0usize;
    let bytewise = best_rate(BATCH_BLOCKS_PER_REP, REPS, || {
        let (a, b) = pairs[i % pairs.len()];
        black_box(hamming_bytewise(a, b));
        i += 1;
    });
    let mut i = 0usize;
    let folded = best_rate(BATCH_BLOCKS_PER_REP, REPS, || {
        let (a, b) = pairs[i % pairs.len()];
        black_box(a.hamming_distance(b));
        i += 1;
    });
    let speedup = folded / bytewise;
    println!(
        "\nhamming_distance     bytewise {bytewise:>14.0}/s  word-fold {folded:>14.0}/s  {speedup:>5.2}x"
    );
    harness.push(
        Json::obj()
            .with("micro", Json::Str("hamming_distance".to_owned()))
            .with("bytewise_per_sec", Json::Num((bytewise * 10.0).round() / 10.0))
            .with("word_fold_per_sec", Json::Num((folded * 10.0).round() / 10.0))
            .with("speedup", Json::Num((speedup * 1000.0).round() / 1000.0)),
    );

    let config = Json::obj()
        .with("wires", Json::UInt(128))
        .with("chunk_bits", Json::UInt(4))
        .with("wire_delay", Json::UInt(2))
        .with("block_bytes", Json::UInt(BLOCK_BYTES as u64))
        .with("workload", Json::Str("ocean value stream, seed 2013".to_owned()))
        .with("transfers_per_rep", Json::UInt(TRANSFERS_PER_REP as u64))
        .with("batch_blocks_per_rep", Json::UInt(BATCH_BLOCKS_PER_REP as u64))
        .with(
            "batch_sizes",
            Json::Arr(BATCH_SIZES.iter().map(|&b| Json::UInt(b as u64)).collect()),
        )
        .with("reps", Json::UInt(REPS as u64));
    harness.finish(config);
}
