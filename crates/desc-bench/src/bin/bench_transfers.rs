//! `bench_transfers` — dependency-free throughput harness for the
//! cycle-stepped DESC link hot path.
//!
//! ```text
//! cargo run --release -p desc-bench --bin bench_transfers [-- OUTPUT.json]
//! ```
//!
//! Measures steady-state `Link::transfer` throughput (transfers/sec
//! and payload bytes/sec) for each skip mode on the paper's 128-wire,
//! 4-bit-chunk link carrying Ocean-profile 64-byte blocks, and writes
//! `BENCH_link.json` recording both the frozen pre-optimisation
//! baseline and the current numbers side by side. The file is
//! append-mode: `results` holds the latest run and `history` keeps a
//! time series of every run (see `desc_bench::append_history`).
//!
//! Timing uses `std::time::Instant` only: each mode is warmed up and
//! then timed over several repetitions, keeping the best (least
//! scheduler-disturbed) repetition.

use desc_bench::{best_rate, Harness};
use desc_core::protocol::{Link, LinkConfig, TraceCapture};
use desc_core::schemes::SkipMode;
use desc_core::{Block, ChunkSize};
use desc_telemetry::Json;
use desc_workloads::BenchmarkId;
use std::hint::black_box;

/// Pre-optimisation throughput on this harness's exact workload
/// (recorded before the hot-path rework: `Vec<bool>` traces always
/// captured, per-transfer allocations, O(rounds²) chained decode).
const BASELINE: [(SkipMode, f64); 3] = [
    (SkipMode::None, 106_796.0),
    (SkipMode::Zero, 104_566.0),
    (SkipMode::LastValue, 98_700.0),
];

const BLOCK_BYTES: f64 = 64.0;
const POOL: usize = 256;
const TRANSFERS_PER_REP: usize = 16_000;
const REPS: usize = 5;

fn mode_name(mode: SkipMode) -> &'static str {
    match mode {
        SkipMode::None => "basic",
        SkipMode::Zero => "zero_skip",
        SkipMode::LastValue => "last_value_skip",
    }
}

fn bench_mode(mode: SkipMode, blocks: &[Block]) -> f64 {
    let cfg = LinkConfig {
        wires: 128,
        chunk_size: ChunkSize::PAPER_DEFAULT,
        mode,
        wire_delay: 2,
        trace: TraceCapture::Off,
    };
    let mut link = Link::new(cfg);
    // Warmup: fault in the pool and let the scratch buffers size
    // themselves.
    for b in blocks {
        black_box(link.transfer(b).cost.cycles);
    }
    let mut i = 0usize;
    best_rate(TRANSFERS_PER_REP, REPS, || {
        black_box(link.transfer(&blocks[i % blocks.len()]).cost.cycles);
        i += 1;
    })
}

fn main() {
    let mut harness = Harness::from_args("link_transfers", "BENCH_link.json");
    let mut stream = BenchmarkId::Ocean.profile().value_stream(2013);
    let blocks: Vec<Block> = (0..POOL).map(|_| stream.next_block()).collect();

    println!(
        "{:<16} {:>14} {:>14} {:>16} {:>8}",
        "mode", "baseline t/s", "current t/s", "current bytes/s", "speedup"
    );
    for &(mode, baseline_tps) in &BASELINE {
        let tps = bench_mode(mode, &blocks);
        let speedup = tps / baseline_tps;
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>16.0} {:>7.2}x",
            mode_name(mode),
            baseline_tps,
            tps,
            tps * BLOCK_BYTES,
            speedup
        );
        harness.push(
            Json::obj()
                .with("mode", Json::Str(mode_name(mode).to_owned()))
                .with("baseline_transfers_per_sec", Json::UInt(baseline_tps as u64))
                .with("baseline_bytes_per_sec", Json::UInt((baseline_tps * BLOCK_BYTES) as u64))
                .with("current_transfers_per_sec", Json::Num((tps * 10.0).round() / 10.0))
                .with(
                    "current_bytes_per_sec",
                    Json::Num((tps * BLOCK_BYTES * 10.0).round() / 10.0),
                )
                .with("speedup", Json::Num((speedup * 1000.0).round() / 1000.0)),
        );
    }

    let config = Json::obj()
        .with("wires", Json::UInt(128))
        .with("chunk_bits", Json::UInt(4))
        .with("wire_delay", Json::UInt(2))
        .with("block_bytes", Json::UInt(BLOCK_BYTES as u64))
        .with("workload", Json::Str("ocean value stream, seed 2013".to_owned()))
        .with("transfers_per_rep", Json::UInt(TRANSFERS_PER_REP as u64))
        .with("reps", Json::UInt(REPS as u64));
    harness.finish(config);
}
