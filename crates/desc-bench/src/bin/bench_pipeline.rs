//! `bench_pipeline` — throughput harness for the full experiment
//! pipeline: trace generation → cache simulation → energy pricing →
//! processor roll-up.
//!
//! ```text
//! cargo run --release -p desc-bench --bin bench_pipeline [-- OUTPUT.json]
//! ```
//!
//! Times `run_app` (one complete simulate-and-price cell, exactly what
//! every figure sweep executes per cell) for conventional binary and
//! zero-skipped DESC across a sweep of intra-cell shard counts, plus
//! one S-NUCA-1 cell (`SnucaSim::run`, the fig23/fig24 unit) on the
//! same shard axis, and appends simulated-accesses-per-second to
//! `BENCH_pipeline.json` in the shared history format. Each entry
//! records its `shards` axis so the history distinguishes serial from
//! bank-sharded throughput; results are bit-identical across the
//! axis, only wall-clock moves.

use desc_bench::{append_history, best_rate};
use desc_core::schemes::SchemeKind;
use desc_experiments::common::run_app;
use desc_experiments::Scale;
use desc_sim::{SimConfig, SnucaSim};
use desc_telemetry::Json;
use desc_workloads::BenchmarkId;
use std::hint::black_box;

const ACCESSES: usize = 4_000;
const REPS: usize = 5;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pipeline.json".to_owned());
    let scale = Scale { accesses: ACCESSES, apps: 1, seed: 2013, jobs: 1, shards: 1 };
    let profile = BenchmarkId::Ocean.profile();

    let mut results = Vec::new();
    println!("{:<24} {:>7} {:>14} {:>18}", "scheme", "shards", "cells/sec", "accesses/sec");
    for (label, kind) in [
        ("conventional_binary", SchemeKind::ConventionalBinary),
        ("zero_skip_desc", SchemeKind::ZeroSkippedDesc),
    ] {
        for shards in [1usize, 2, 4, 8] {
            let scale = scale.with_shards(shards);
            // Warmup one cell, then time whole cells.
            black_box(run_app(kind, &profile, &scale).l2_energy());
            let cells_per_sec = best_rate(3, REPS, || {
                black_box(run_app(kind, &profile, &scale).l2_energy());
            });
            let accesses_per_sec = cells_per_sec * ACCESSES as f64;
            println!("{label:<24} {shards:>7} {cells_per_sec:>14.2} {accesses_per_sec:>18.0}");
            results.push(
                Json::obj()
                    .with("scheme", Json::Str(label.to_owned()))
                    .with("shards", Json::UInt(shards as u64))
                    .with("cells_per_sec", Json::Num((cells_per_sec * 100.0).round() / 100.0))
                    .with("accesses_per_sec", Json::Num(accesses_per_sec.round())),
            );
        }
    }

    // S-NUCA-1 cell (fig23/fig24 unit): 128 bank partitions per cell,
    // the densest shard decomposition in the workspace.
    for (label, kind) in [
        ("snuca_conventional_binary", SchemeKind::ConventionalBinary),
        ("snuca_zero_skip_desc", SchemeKind::ZeroSkippedDesc),
    ] {
        for shards in [1usize, 2, 4, 8] {
            let mut cfg = SimConfig::paper_multithreaded();
            cfg.shards = shards;
            let sim = SnucaSim::new(cfg, profile, scale.seed);
            black_box(sim.run(kind.build_paper_config(), ACCESSES).total_energy_j());
            let cells_per_sec = best_rate(3, REPS, || {
                black_box(sim.run(kind.build_paper_config(), ACCESSES).total_energy_j());
            });
            let accesses_per_sec = cells_per_sec * ACCESSES as f64;
            println!("{label:<24} {shards:>7} {cells_per_sec:>14.2} {accesses_per_sec:>18.0}");
            results.push(
                Json::obj()
                    .with("scheme", Json::Str(label.to_owned()))
                    .with("shards", Json::UInt(shards as u64))
                    .with("cells_per_sec", Json::Num((cells_per_sec * 100.0).round() / 100.0))
                    .with("accesses_per_sec", Json::Num(accesses_per_sec.round())),
            );
        }
    }

    let config = Json::obj()
        .with("accesses_per_cell", Json::UInt(ACCESSES as u64))
        .with("workload", Json::Str("ocean profile, seed 2013".to_owned()))
        .with("reps", Json::UInt(REPS as u64));
    match append_history(
        std::path::Path::new(&out_path),
        "experiment_pipeline",
        config,
        Json::Arr(results),
    ) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
