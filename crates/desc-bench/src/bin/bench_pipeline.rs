//! `bench_pipeline` — throughput harness for the full experiment
//! pipeline: trace generation → cache simulation → energy pricing →
//! processor roll-up.
//!
//! ```text
//! cargo run --release -p desc-bench --bin bench_pipeline \
//!     [-- OUTPUT.json] [--jobs N] [--shards A,B,C]
//! ```
//!
//! Times `run_app` (one complete simulate-and-price cell, exactly what
//! every figure sweep executes per cell) for conventional binary and
//! zero-skipped DESC across a sweep of intra-cell shard counts, plus
//! one S-NUCA-1 cell (`SnucaSim::run`, the fig23/fig24 unit) on the
//! same shard axis, and appends simulated-accesses-per-second to
//! `BENCH_pipeline.json` in the shared history format. Each entry
//! records its `jobs` and `shards` axes so the history distinguishes
//! serial from pooled throughput; results are bit-identical across
//! both axes, only wall-clock moves.
//!
//! A final `cached_sweep` pair times the same multi-app sweep through
//! the `desc-cache` cell store cold (fresh store, all misses) and warm
//! (populated store, all hits) on a new `cache` axis, with the
//! observed hit/miss counters recorded alongside the rates. A
//! `contended_sweep` pair on the `contention` axis then runs duplicate
//! concurrent demanders of one cold sweep with single-flight dedup on
//! (`single_flight`) and off (`duplicate`), recording the store/lead
//! counters that prove each cell was computed once vs once per
//! demander.
//!
//! `--jobs N` sizes the process-wide `desc_exec` pool (a pool never
//! shrinks, so sweeping jobs takes one process per value — see
//! `scripts/bench_scaling.sh`); `--shards A,B,C` selects the shard
//! counts to sweep (default `1,2,4,8`).
//!
//! `--trace PATH` additionally enables telemetry and writes a
//! Chrome/Perfetto execution timeline of the whole bench run (one lane
//! per pool thread; see `docs/TELEMETRY.md`) — useful for eyeballing
//! where partition tasks actually land as the shard cap sweeps.
//! Tracing changes wall-clock slightly, so rates from traced runs
//! should not be compared against untraced history entries.

use desc_bench::{best_rate, Harness};
use desc_cache::{CacheStats, CacheStore};
use desc_core::schemes::SchemeKind;
use desc_experiments::cache::CELL_SCHEMA_VERSION;
use desc_experiments::common::run_app;
use desc_experiments::Scale;
use desc_sim::{SimConfig, SnucaSim};
use desc_telemetry::Json;
use desc_workloads::BenchmarkId;
use std::hint::black_box;
use std::sync::Arc;

const ACCESSES: usize = 4_000;
const REPS: usize = 5;

struct Args {
    out_path: String,
    jobs: usize,
    shard_counts: Vec<usize>,
    trace_path: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut out_path = "BENCH_pipeline.json".to_owned();
    let mut jobs = 1usize;
    let mut shard_counts = vec![1, 2, 4, 8];
    let mut trace_path = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jobs" | "-j" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer argument");
                    std::process::exit(1);
                }
            },
            "--trace" => match iter.next() {
                Some(path) if !path.is_empty() => {
                    trace_path = Some(std::path::PathBuf::from(path));
                }
                _ => {
                    eprintln!("--trace needs an output path argument");
                    std::process::exit(1);
                }
            },
            "--shards" => {
                let parsed: Option<Vec<usize>> = iter
                    .next()
                    .map(|v| v.split(',').map(|s| s.trim().parse::<usize>().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(counts) if !counts.is_empty() && counts.iter().all(|&c| c > 0) => {
                        shard_counts = counts;
                    }
                    _ => {
                        eprintln!("--shards needs a comma-separated list of positive integers");
                        std::process::exit(1);
                    }
                }
            }
            other if !other.starts_with('-') => out_path = other.to_owned(),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(1);
            }
        }
    }
    Args { out_path, jobs, shard_counts, trace_path }
}

fn main() {
    let args = parse_args();
    if args.trace_path.is_some() {
        desc_telemetry::set_enabled(true);
    }
    // The pool is sized by --jobs alone; shard counts only cap how many
    // partition tasks run concurrently within it, so jobs=1 measures
    // pure decomposition overhead with zero extra threads.
    desc_exec::configure(args.jobs);
    let mut harness = Harness::new("experiment_pipeline", args.out_path.clone());
    let scale = Scale { accesses: ACCESSES, apps: 1, seed: 2013, jobs: args.jobs, shards: 1 };
    let profile = BenchmarkId::Ocean.profile();

    let jobs = args.jobs;
    println!(
        "{:<24} {:>5} {:>7} {:>14} {:>18}",
        "scheme", "jobs", "shards", "cells/sec", "accesses/sec"
    );
    let record = |harness: &mut Harness, label: &str, shards: usize, cells_per_sec: f64| {
        let accesses_per_sec = cells_per_sec * ACCESSES as f64;
        println!("{label:<24} {jobs:>5} {shards:>7} {cells_per_sec:>14.2} {accesses_per_sec:>18.0}");
        harness.push(
            Json::obj()
                .with("scheme", Json::Str(label.to_owned()))
                .with("jobs", Json::UInt(jobs as u64))
                .with("shards", Json::UInt(shards as u64))
                .with("cells_per_sec", Json::Num((cells_per_sec * 100.0).round() / 100.0))
                .with("accesses_per_sec", Json::Num(accesses_per_sec.round())),
        );
    };

    for (label, kind) in [
        ("conventional_binary", SchemeKind::ConventionalBinary),
        ("zero_skip_desc", SchemeKind::ZeroSkippedDesc),
    ] {
        for &shards in &args.shard_counts {
            let scale = scale.with_shards(shards);
            // Warmup one cell, then time whole cells.
            black_box(run_app(kind, &profile, &scale).l2_energy());
            let cells_per_sec = best_rate(3, REPS, || {
                black_box(run_app(kind, &profile, &scale).l2_energy());
            });
            record(&mut harness, label, shards, cells_per_sec);
        }
    }

    // S-NUCA-1 cell (fig23/fig24 unit): 128 bank partitions per cell,
    // the densest shard decomposition in the workspace.
    for (label, kind) in [
        ("snuca_conventional_binary", SchemeKind::ConventionalBinary),
        ("snuca_zero_skip_desc", SchemeKind::ZeroSkippedDesc),
    ] {
        for &shards in &args.shard_counts {
            let mut cfg = SimConfig::paper_multithreaded();
            cfg.shards = shards;
            let sim = SnucaSim::new(cfg, profile, scale.seed);
            black_box(sim.run(kind.build_paper_config(), ACCESSES).total_energy_j());
            let cells_per_sec = best_rate(3, REPS, || {
                black_box(sim.run(kind.build_paper_config(), ACCESSES).total_energy_j());
            });
            record(&mut harness, label, shards, cells_per_sec);
        }
    }

    // Cache axis: the same quick-scale sweep cold (fresh store per
    // timing, every cell computed and stored) vs warm (one populated
    // store, every cell a hit). Rows carry `cache: "cold"|"warm"` plus
    // the hit/miss counters observed during the timed reps, so the
    // history can assert the warm sweep really was served from cache.
    {
        let scale = Scale { accesses: ACCESSES, apps: 4, seed: 2013, jobs, shards: 1 };
        let suite = scale.suite();
        let kinds = [SchemeKind::ConventionalBinary, SchemeKind::ZeroSkippedDesc];
        let cells = (suite.len() * kinds.len()) as f64;
        let sweep = |scale: &Scale| {
            for kind in kinds {
                for p in &suite {
                    black_box(run_app(kind, p, scale).l2_energy());
                }
            }
        };
        let record_cached = |harness: &mut Harness, cache: &str, cells_per_sec: f64, stats: CacheStats| {
            let label = format!("cached_sweep[{cache}]");
            let accesses_per_sec = cells_per_sec * ACCESSES as f64;
            println!("{label:<24} {jobs:>5} {:>7} {cells_per_sec:>14.2} {accesses_per_sec:>18.0}", 1);
            harness.push(
                Json::obj()
                    .with("scheme", Json::Str("cached_sweep".to_owned()))
                    .with("cache", Json::Str(cache.to_owned()))
                    .with("jobs", Json::UInt(jobs as u64))
                    .with("shards", Json::UInt(1))
                    .with("cells_per_sec", Json::Num((cells_per_sec * 100.0).round() / 100.0))
                    .with("accesses_per_sec", Json::Num(accesses_per_sec.round()))
                    .with("cache_hits", Json::UInt(stats.hits()))
                    .with("cache_misses", Json::UInt(stats.misses)),
            );
        };
        // Cold: a fresh store every invocation, so each timed sweep
        // computes and stores all cells.
        let cold_store = std::cell::RefCell::new(Arc::new(CacheStore::in_memory(CELL_SCHEMA_VERSION)));
        let cold_rate = best_rate(1, 3, || {
            let store = Arc::new(CacheStore::in_memory(CELL_SCHEMA_VERSION));
            desc_experiments::cache::install(Some(Arc::clone(&store)));
            sweep(&scale);
            *cold_store.borrow_mut() = store;
        });
        record_cached(&mut harness, "cold", cold_rate * cells, cold_store.borrow().stats());
        // Warm: keep the last cold run's store; every cell hits.
        let store = cold_store.into_inner();
        desc_experiments::cache::install(Some(Arc::clone(&store)));
        let before = store.stats();
        let warm_rate = best_rate(3, REPS, || sweep(&scale));
        let after = store.stats();
        desc_experiments::cache::install(None);
        let delta = CacheStats {
            hits_memory: after.hits_memory - before.hits_memory,
            hits_disk: after.hits_disk - before.hits_disk,
            misses: after.misses - before.misses,
            stores: after.stores - before.stores,
            version_mismatches: after.version_mismatches - before.version_mismatches,
            errors: after.errors - before.errors,
            evictions: after.evictions - before.evictions,
            inflight_leads: after.inflight_leads - before.inflight_leads,
            inflight_waits: after.inflight_waits - before.inflight_waits,
            inflight_hits: after.inflight_hits - before.inflight_hits,
            inflight_handoffs: after.inflight_handoffs - before.inflight_handoffs,
        };
        record_cached(&mut harness, "warm", warm_rate * cells, delta);
    }

    // Contention axis: CLIENTS threads demand the *same* cold sweep
    // concurrently, with and without single-flight dedup. With it, one
    // demander leads each cell and the rest share the published entry
    // (stores == distinct cells); without, every demander computes
    // every cell (stores == distinct cells × CLIENTS). Rows record
    // demanded-cells-served per second plus the store/lead/share
    // counters so the history can verify the dedup actually happened.
    {
        const CLIENTS: usize = 4;
        let scale = Scale { accesses: ACCESSES, apps: 2, seed: 2013, jobs, shards: 1 };
        let suite = scale.suite();
        let kinds = [SchemeKind::ConventionalBinary, SchemeKind::ZeroSkippedDesc];
        let demanded = (suite.len() * kinds.len() * CLIENTS) as f64;
        let sweep = |scale: &Scale| {
            for kind in kinds {
                for p in &suite {
                    black_box(run_app(kind, p, scale).l2_energy());
                }
            }
        };
        for (mode, single_flight) in [("single_flight", true), ("duplicate", false)] {
            let store = Arc::new(CacheStore::in_memory(CELL_SCHEMA_VERSION));
            store.set_single_flight(single_flight);
            desc_experiments::cache::install(Some(Arc::clone(&store)));
            let started = std::time::Instant::now();
            std::thread::scope(|s| {
                for _ in 0..CLIENTS {
                    s.spawn(|| sweep(&scale));
                }
            });
            let secs = started.elapsed().as_secs_f64();
            desc_experiments::cache::install(None);
            let stats = store.stats();
            let cells_per_sec = demanded / secs;
            let accesses_per_sec = cells_per_sec * ACCESSES as f64;
            let label = format!("contended_sweep[{mode}]");
            println!(
                "{label:<24} {jobs:>5} {:>7} {cells_per_sec:>14.2} {accesses_per_sec:>18.0}",
                1
            );
            harness.push(
                Json::obj()
                    .with("scheme", Json::Str("contended_sweep".to_owned()))
                    .with("contention", Json::Str(mode.to_owned()))
                    .with("clients", Json::UInt(CLIENTS as u64))
                    .with("jobs", Json::UInt(jobs as u64))
                    .with("shards", Json::UInt(1))
                    .with("cells_per_sec", Json::Num((cells_per_sec * 100.0).round() / 100.0))
                    .with("accesses_per_sec", Json::Num(accesses_per_sec.round()))
                    .with("cache_stores", Json::UInt(stats.stores))
                    .with("inflight_leads", Json::UInt(stats.inflight_leads))
                    .with("inflight_hits", Json::UInt(stats.inflight_hits)),
            );
        }
    }

    if let Some(path) = &args.trace_path {
        let spans = desc_telemetry::drain_spans();
        match desc_telemetry::write_chrome_trace(path, "bench_pipeline", &spans) {
            Ok(()) => println!("wrote execution trace to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    let config = Json::obj()
        .with("accesses_per_cell", Json::UInt(ACCESSES as u64))
        .with("workload", Json::Str("ocean profile, seed 2013".to_owned()))
        .with("jobs", Json::UInt(jobs as u64))
        .with("reps", Json::UInt(REPS as u64));
    harness.finish(config);
}
