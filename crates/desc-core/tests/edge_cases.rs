//! Edge-case integration tests for the codecs: degenerate geometries,
//! extreme chunk sizes, and long-running wire-state consistency.

use desc_core::protocol::{Link, LinkConfig, TraceCapture};
use desc_core::schemes::{
    BinaryScheme, BusInvertScheme, DescScheme, DzcScheme, SchemeKind, SkipMode,
};
use desc_core::{Block, ChunkSize, TransferScheme};

#[test]
fn one_wire_desc_serializes_every_chunk() {
    // 128 chunks over a single wire: 128 rounds.
    let mut s = DescScheme::new(1, ChunkSize::PAPER_DEFAULT, SkipMode::Zero).without_sync_strobe();
    let block = Block::from_bytes(&[0xFF; 64]);
    let cost = s.transfer(&block);
    assert_eq!(cost.data_transitions, 128);
    assert_eq!(cost.cycles, 128 * 15); // every window runs to position 15
    assert_eq!(cost.control_transitions, 128); // one boundary per round
}

#[test]
fn one_wire_link_still_decodes() {
    let cfg = LinkConfig {
        wires: 1,
        chunk_size: ChunkSize::new(4).expect("valid"),
        mode: SkipMode::Zero,
        wire_delay: 1,
        trace: TraceCapture::Off,
    };
    let mut link = Link::new(cfg);
    let block = Block::from_bytes(&[0x5A, 0x00, 0xFF, 0x13]);
    assert_eq!(link.transfer(&block).decoded, block);
}

#[test]
fn more_wires_than_chunks_is_fine() {
    // 8 chunks on 128 wires: 120 wires stay idle.
    let mut s = DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero).without_sync_strobe();
    let block = Block::from_bytes(&[0x21, 0x43, 0x65, 0x87]);
    let cost = s.transfer(&block);
    assert_eq!(cost.data_transitions, 8);
    let cfg = LinkConfig {
        wires: 128,
        chunk_size: ChunkSize::new(4).expect("valid"),
        mode: SkipMode::Zero,
        wire_delay: 0,
        trace: TraceCapture::Off,
    };
    assert_eq!(Link::new(cfg).transfer(&block).decoded, block);
}

#[test]
fn single_byte_blocks_work_for_every_scheme() {
    let block = Block::from_bytes(&[0xA7]);
    for kind in SchemeKind::ALL {
        let mut s = kind.build_paper_config();
        let cost = s.transfer(&block);
        assert!(cost.cycles >= 1, "{kind}");
    }
}

#[test]
fn large_blocks_scale_linearly_for_basic_desc() {
    // A 4 KB "block" (e.g. a DMA burst) has exactly bits/4 strobes.
    let big = Block::from_bytes(&vec![0x3C; 4096]);
    let mut s = DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::None).without_sync_strobe();
    let cost = s.transfer(&big);
    assert_eq!(cost.data_transitions, 4096 * 2);
}

#[test]
fn wire_state_survives_ten_thousand_transfers() {
    // Accumulated wire state must never corrupt costs: the same block
    // sent an even number of times returns all wires to their start
    // level, so the pattern repeats exactly.
    let a = Block::from_bytes(&[0x0F; 64]);
    let b = Block::from_bytes(&[0xF0; 64]);
    let mut s = BinaryScheme::new(64);
    // The very first transfer starts from all-zero wires; steady state
    // begins with the second period.
    let _cold_start = (s.transfer(&a), s.transfer(&b));
    let steady = (s.transfer(&a), s.transfer(&b));
    for _ in 0..9_998 {
        let pair = (s.transfer(&a), s.transfer(&b));
        assert_eq!(pair, steady);
    }
}

#[test]
fn dzc_and_bic_agree_with_binary_when_they_choose_plain_mode() {
    // For a value whose Hamming distance is small and non-zero, both
    // DZC and BIC transmit plain binary: identical data flips.
    let mut bin = BinaryScheme::new(8);
    let mut dzc = DzcScheme::new(8, 8);
    let mut bic = BusInvertScheme::new(8, 8);
    let block = Block::from_bytes(&[0b0000_0011]); // 2 flips from zero
    assert_eq!(bin.transfer(&block).data_transitions, 2);
    assert_eq!(dzc.transfer(&block).data_transitions, 2);
    assert_eq!(bic.transfer(&block).data_transitions, 2);
}

#[test]
fn all_skip_modes_handle_alternating_extremes() {
    let ones = Block::from_bytes(&[0xFF; 64]);
    let zeros = Block::zeroed(64);
    for mode in [SkipMode::None, SkipMode::Zero, SkipMode::LastValue] {
        let mut s = DescScheme::new(128, ChunkSize::PAPER_DEFAULT, mode).without_sync_strobe();
        for i in 0..64 {
            let cost = s.transfer(if i % 2 == 0 { &ones } else { &zeros });
            assert!(cost.cycles >= 1, "{mode:?} iteration {i}");
            assert!(cost.data_transitions <= 128, "{mode:?} iteration {i}");
        }
    }
}

#[test]
fn eight_bit_chunks_roundtrip_through_the_protocol() {
    let cfg = LinkConfig {
        wires: 16,
        chunk_size: ChunkSize::new(8).expect("valid"),
        mode: SkipMode::Zero,
        wire_delay: 2,
        trace: TraceCapture::Off,
    };
    let mut link = Link::new(cfg);
    let block = Block::from_bytes(&(0..64).map(|i| (255 - i) as u8).collect::<Vec<_>>());
    let out = link.transfer(&block);
    assert_eq!(out.decoded, block);
    // 64 chunks over 16 wires → 4 rounds, windows up to 255 cycles.
    assert!(out.cost.cycles <= 4 * 255);
}

#[test]
fn three_bit_chunks_with_ragged_final_chunk() {
    // 512 bits / 3 = 170.67 → 171 chunks, the last padded; the padding
    // must round-trip as zero.
    let cfg = LinkConfig {
        wires: 19, // 171 = 9 × 19 exactly
        chunk_size: ChunkSize::new(3).expect("valid"),
        mode: SkipMode::LastValue,
        wire_delay: 1,
        trace: TraceCapture::Off,
    };
    let mut link = Link::new(cfg);
    let block = Block::from_bytes(&(0..64).map(|i| (i * 89 + 3) as u8).collect::<Vec<_>>());
    assert_eq!(link.transfer(&block).decoded, block);
}
