//! Property-based tests for the DESC codecs and baselines.
//!
//! These pin down the paper's *invariants* over randomized inputs:
//! the protocol round-trips for every block, basic DESC's transition
//! count is data-independent, the cycle-stepped protocol agrees with
//! the analytic cost model, and bus-invert respects its flip bound.

// Gated: compiled only with `--features proptest`, which requires
// network access to fetch the `proptest` crate (see Cargo.toml).
#![cfg(feature = "proptest")]

use desc_core::protocol::{Link, LinkConfig, TraceCapture};
use desc_core::schemes::{
    BinaryScheme, BusInvertScheme, DescScheme, DzcScheme, EncodedZeroSkipBusInvertScheme,
    SkipMode, ZeroSkipBusInvertScheme,
};
use desc_core::{Block, BlockSlab, ChunkSize, Chunks, TransferScheme};
use proptest::prelude::*;

/// Arbitrary blocks of 1–64 bytes with a bias toward zero bytes (the
/// workload statistic DESC exploits).
fn arb_block() -> impl Strategy<Value = Block> {
    prop::collection::vec(
        prop_oneof![3 => Just(0u8), 5 => any::<u8>()],
        1..=64,
    )
    .prop_map(|bytes| Block::from_bytes(&bytes))
}

/// Blocks of exactly 64 bytes (the paper's L2 block size).
fn arb_cache_block() -> impl Strategy<Value = Block> {
    prop::collection::vec(prop_oneof![3 => Just(0u8), 5 => any::<u8>()], 64)
        .prop_map(|bytes| Block::from_bytes(&bytes))
}

fn arb_mode() -> impl Strategy<Value = SkipMode> {
    prop_oneof![Just(SkipMode::None), Just(SkipMode::Zero), Just(SkipMode::LastValue)]
}

proptest! {
    /// decode(encode(x)) == x for every block, chunk size, wire count,
    /// skip mode and wire delay.
    #[test]
    fn protocol_roundtrips(
        block in arb_block(),
        chunk_bits in 1u8..=8,
        wires in 1usize..=32,
        mode in arb_mode(),
        delay in 0u64..8,
    ) {
        let cfg = LinkConfig {
            wires,
            chunk_size: ChunkSize::new(chunk_bits).expect("valid"),
            mode,
            wire_delay: delay,
            trace: TraceCapture::Off,
        };
        let mut link = Link::new(cfg);
        let out = link.transfer(&block);
        prop_assert_eq!(out.decoded, block);
    }

    /// Round-trip still holds over *sequences* of blocks (last-value
    /// skipping carries state across transfers).
    #[test]
    fn protocol_roundtrips_across_streams(
        blocks in prop::collection::vec(arb_cache_block(), 1..6),
        mode in arb_mode(),
    ) {
        let cfg = LinkConfig {
            wires: 16,
            chunk_size: ChunkSize::new(4).expect("valid"),
            mode,
            wire_delay: 2,
            trace: TraceCapture::Off,
        };
        let mut link = Link::new(cfg);
        for block in &blocks {
            let out = link.transfer(block);
            prop_assert_eq!(&out.decoded, block);
        }
    }

    /// The cycle-stepped protocol and the analytic scheme report
    /// identical transitions and cycles on identical block streams.
    #[test]
    fn protocol_matches_analytic_model(
        blocks in prop::collection::vec(arb_cache_block(), 1..5),
        mode in arb_mode(),
        wires in prop_oneof![Just(8usize), Just(16), Just(32), Just(64), Just(128)],
    ) {
        let chunk = ChunkSize::new(4).expect("valid");
        let mut link = Link::new(LinkConfig {
            wires,
            chunk_size: chunk,
            mode,
            wire_delay: 0,
            trace: TraceCapture::Off,
        });
        let mut analytic = DescScheme::new(wires, chunk, mode).without_sync_strobe();
        for block in &blocks {
            let proto = link.transfer(block).cost;
            let model = analytic.transfer(block);
            prop_assert_eq!(proto.data_transitions, model.data_transitions);
            prop_assert_eq!(proto.control_transitions, model.control_transitions);
            prop_assert_eq!(proto.cycles, model.cycles);
        }
    }

    /// Basic DESC: transitions are exactly `chunks + 1` regardless of
    /// block content — the paper's core claim.
    #[test]
    fn basic_desc_transitions_are_data_independent(block in arb_cache_block()) {
        let chunk = ChunkSize::new(4).expect("valid");
        let mut s = DescScheme::new(128, chunk, SkipMode::None).without_sync_strobe();
        let cost = s.transfer(&block);
        prop_assert_eq!(cost.data_transitions, 128);
        prop_assert_eq!(cost.control_transitions, 1);
    }

    /// Zero-skipped DESC data transitions equal the number of non-zero
    /// chunks exactly.
    #[test]
    fn zero_skip_strobes_equal_nonzero_chunks(block in arb_cache_block()) {
        let chunk = ChunkSize::new(4).expect("valid");
        let nonzero = Chunks::split(&block, chunk)
            .values()
            .iter()
            .filter(|&&v| v != 0)
            .count() as u64;
        let mut s = DescScheme::new(128, chunk, SkipMode::Zero).without_sync_strobe();
        prop_assert_eq!(s.transfer(&block).data_transitions, nonzero);
    }

    /// Chunk split/reassemble round-trips for every chunk size.
    #[test]
    fn chunks_roundtrip(block in arb_block(), chunk_bits in 1u8..=8) {
        let size = ChunkSize::new(chunk_bits).expect("valid");
        let chunks = Chunks::split(&block, size);
        prop_assert_eq!(chunks.reassemble(block.byte_len()), block);
    }

    /// Bus-invert coding never exceeds S/2 + 1 flips per segment per
    /// beat — the bound from Stan & Burleson.
    #[test]
    fn bus_invert_respects_flip_bound(blocks in prop::collection::vec(arb_cache_block(), 1..6)) {
        let mut s = BusInvertScheme::new(64, 32);
        for block in &blocks {
            let cost = s.transfer(block);
            let beats = 512 / 64;
            let segments = 64 / 32;
            let bound = (beats * segments * (32 / 2 + 1)) as u64;
            prop_assert!(cost.total_transitions() <= bound);
        }
    }

    /// Every scheme is deterministic: reset + replay gives identical
    /// costs.
    #[test]
    fn schemes_are_deterministic(blocks in prop::collection::vec(arb_cache_block(), 1..4)) {
        let mut schemes: Vec<Box<dyn TransferScheme>> = vec![
            Box::new(BinaryScheme::new(64)),
            Box::new(DzcScheme::new(64, 8)),
            Box::new(BusInvertScheme::new(64, 32)),
            Box::new(ZeroSkipBusInvertScheme::new(64, 32)),
            Box::new(EncodedZeroSkipBusInvertScheme::new(64, 16)),
            Box::new(DescScheme::new(128, ChunkSize::new(4).expect("valid"), SkipMode::Zero)),
            Box::new(DescScheme::new(128, ChunkSize::new(4).expect("valid"), SkipMode::LastValue)),
        ];
        for s in &mut schemes {
            let first: Vec<_> = blocks.iter().map(|b| s.transfer(b)).collect();
            s.reset();
            let second: Vec<_> = blocks.iter().map(|b| s.transfer(b)).collect();
            prop_assert_eq!(first, second);
        }
    }

    /// DESC latency is bounded by rounds × max window and is at least
    /// one cycle per round.
    #[test]
    fn desc_latency_bounds(block in arb_cache_block(), mode in arb_mode()) {
        let chunk = ChunkSize::new(4).expect("valid");
        for wires in [32usize, 64, 128] {
            let mut s = DescScheme::new(wires, chunk, mode).without_sync_strobe();
            let cost = s.transfer(&block);
            let rounds = 128usize.div_ceil(wires) as u64;
            let max_window = match mode {
                SkipMode::None => 16,
                _ => 15,
            };
            prop_assert!(cost.cycles >= rounds, "cycles {} < rounds {rounds}", cost.cycles);
            prop_assert!(
                cost.cycles <= rounds * max_window,
                "cycles {} > {rounds} × {max_window}", cost.cycles
            );
        }
    }

    /// Batched `transfer_many` is bit-identical to sequential scalar
    /// `transfer` calls for every scheme: same per-block costs, and the
    /// same persistent state (checked with a probe transfer afterwards).
    #[test]
    fn transfer_many_matches_sequential_transfers(
        blocks in prop::collection::vec(arb_cache_block(), 1..12),
        probe in arb_cache_block(),
    ) {
        let schemes: Vec<Box<dyn TransferScheme>> = vec![
            Box::new(BinaryScheme::new(64)),
            Box::new(DzcScheme::new(64, 8)),
            Box::new(BusInvertScheme::new(64, 32)),
            Box::new(ZeroSkipBusInvertScheme::new(64, 32)),
            Box::new(EncodedZeroSkipBusInvertScheme::new(64, 16)),
            Box::new(DescScheme::new(128, ChunkSize::new(4).expect("valid"), SkipMode::None)),
            Box::new(DescScheme::new(128, ChunkSize::new(4).expect("valid"), SkipMode::Zero)),
            Box::new(DescScheme::new(128, ChunkSize::new(4).expect("valid"), SkipMode::LastValue)),
        ];
        let mut slab = BlockSlab::with_capacity(64, blocks.len());
        for block in &blocks {
            slab.push(block);
        }
        for scalar in schemes {
            let mut scalar = scalar;
            let mut batched = scalar.clone_box();
            let expected: Vec<_> = blocks.iter().map(|b| scalar.transfer(b)).collect();
            let mut got = Vec::new();
            batched.transfer_many(&slab, &mut got);
            prop_assert_eq!(&expected, &got, "costs diverged for {}", scalar.name());
            prop_assert_eq!(
                scalar.transfer(&probe),
                batched.transfer(&probe),
                "state diverged for {}", scalar.name()
            );
        }
    }

    /// Last-value skipping dominates zero skipping in strobe count on
    /// streams of repeated blocks.
    #[test]
    fn last_value_skip_exploits_repeats(block in arb_cache_block(), repeats in 2usize..5) {
        let chunk = ChunkSize::new(4).expect("valid");
        let mut lv = DescScheme::new(128, chunk, SkipMode::LastValue).without_sync_strobe();
        let mut total_after_first = 0;
        for i in 0..repeats {
            let cost = lv.transfer(&block);
            if i > 0 {
                total_after_first += cost.data_transitions;
            }
        }
        prop_assert_eq!(total_after_first, 0);
    }
}
