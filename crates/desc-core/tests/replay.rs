//! Regression test for the SignalTrace replay hook: a captured packed
//! waveform, fed back through the toggle-detector circuit models, must
//! re-decode to exactly the chunks that were transferred.

use desc_core::protocol::{replay_trace, Link, LinkConfig, TraceCapture};
use desc_core::rng::Rng64;
use desc_core::schemes::SkipMode;
use desc_core::{Block, ChunkSize, Chunks};

fn random_block(rng: &mut Rng64, bytes: usize) -> Block {
    let mut data = vec![0u8; bytes];
    for b in &mut data {
        // Mix of zero and non-zero bytes so skip paths are exercised.
        *b = if rng.gen_bool(0.4) { 0 } else { (rng.next_u64() & 0xFF) as u8 };
    }
    Block::from_vec(data)
}

fn check_mode(mode: SkipMode, wires: usize, bits: u8, seed: u64) {
    let chunk_size = ChunkSize::new(bits).expect("valid chunk size");
    let config = LinkConfig {
        wires,
        chunk_size,
        mode,
        wire_delay: 2,
        trace: TraceCapture::Packed,
    };
    let mut link = Link::new(config);
    let mut rng = Rng64::seed_from_u64(seed);
    // Per-wire last-value state before each transfer (power-on: zeros);
    // both endpoints track this, so the replayer may assume it too.
    let mut last = vec![0u16; wires];
    for transfer in 0..8 {
        let block = random_block(&mut rng, 64);
        let expected = Chunks::split(&block, chunk_size);
        let out = link.transfer(&block);
        assert_eq!(out.decoded, block, "link decode failed (mode {mode:?})");
        let trace = out.trace.as_ref().expect("capture was requested");

        let replayed = replay_trace(trace, &config, expected.len(), &last);
        assert_eq!(
            replayed,
            expected.values(),
            "replayed chunks diverge (mode {mode:?}, transfer {transfer})"
        );
        let reassembled = Chunks::from_values(chunk_size, replayed).reassemble(block.byte_len());
        assert_eq!(reassembled, block, "replayed block diverges (mode {mode:?})");

        for (i, &v) in expected.values().iter().enumerate() {
            last[i % wires] = v;
        }
    }
}

#[test]
fn replay_matches_basic_desc() {
    check_mode(SkipMode::None, 16, 4, 0xDE5C_0001);
}

#[test]
fn replay_matches_zero_skip() {
    check_mode(SkipMode::Zero, 16, 4, 0xDE5C_0002);
}

#[test]
fn replay_matches_last_value_skip() {
    check_mode(SkipMode::LastValue, 16, 4, 0xDE5C_0003);
}

#[test]
fn replay_covers_ragged_and_narrow_links() {
    // Non-power-of-two wire counts and 2-bit chunks produce ragged
    // rounds; the paper's 128-wire interface is the wide extreme.
    check_mode(SkipMode::Zero, 7, 2, 0xDE5C_0004);
    check_mode(SkipMode::LastValue, 3, 8, 0xDE5C_0005);
    check_mode(SkipMode::None, 128, 4, 0xDE5C_0006);
}

#[test]
fn replay_power_on_accepts_empty_last() {
    let config = LinkConfig {
        wires: 8,
        chunk_size: ChunkSize::new(4).expect("valid chunk size"),
        mode: SkipMode::LastValue,
        wire_delay: 0,
        trace: TraceCapture::Packed,
    };
    let mut link = Link::new(config);
    let block = Block::from_bytes(&[0xA5; 64]);
    let out = link.transfer(&block);
    let trace = out.trace.expect("capture was requested");
    let expected = Chunks::split(&block, config.chunk_size);
    // An empty slice means "power-on state" (all zeros).
    let replayed = replay_trace(&trace, &config, expected.len(), &[]);
    assert_eq!(replayed, expected.values());
}
