//! Slab-equivalence suite: `TransferScheme::transfer_many` must be
//! bit-identical to N sequential `transfer` calls — same per-block
//! [`TransferCost`]s, same aggregate [`CostSummary`], and the same
//! final wire/counter state — for every scheme, across odd slab sizes
//! and both chunk geometries.
//!
//! Two instances of the same scheme are fed the same deterministic
//! zero-biased block stream, one scalar and one batched; afterwards a
//! probe block checks that the persistent state (wire levels,
//! last-value memories) also landed in the same place.

use desc_core::rng::Rng64;
use desc_core::schemes::{
    AdaptiveDescScheme, BinaryScheme, BusInvertScheme, DescScheme, DzcScheme,
    EncodedZeroSkipBusInvertScheme, SchemeKind, SerialScheme, SkipMode, ZeroSkipBusInvertScheme,
};
use desc_core::{transfer_each, Block, BlockSlab, ChunkSize, CostSummary, TransferScheme};

/// The slab sizes the suite sweeps (deliberately odd: 1 block, a
/// partial round, a power of two, and a four-digit batch).
const SLAB_SIZES: [usize; 4] = [1, 7, 64, 1000];

/// A deterministic zero-biased block (the workload statistic the
/// skipping schemes exploit — all-random bytes would leave the skip
/// paths untested).
fn random_block(rng: &mut Rng64, byte_len: usize) -> Block {
    Block::from_vec(
        (0..byte_len)
            .map(|_| if rng.gen::<u8>() < 96 { 0 } else { rng.gen::<u8>() })
            .collect(),
    )
}

/// Feeds `n` blocks through `scalar` one at a time and through
/// `batched` as one slab, then asserts cost-for-cost and
/// state-for-state equivalence.
fn assert_equivalent(
    label: &str,
    mut scalar: Box<dyn TransferScheme>,
    mut batched: Box<dyn TransferScheme>,
    byte_len: usize,
    n: usize,
    seed: u64,
) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut slab = BlockSlab::with_capacity(byte_len, n);
    let mut scalar_costs = Vec::with_capacity(n);
    for _ in 0..n {
        let block = random_block(&mut rng, byte_len);
        scalar_costs.push(scalar.transfer(&block));
        slab.push(&block);
    }
    let mut batched_costs = Vec::new();
    batched.transfer_many(&slab, &mut batched_costs);
    assert_eq!(batched_costs.len(), n, "{label}: one cost per block");
    for (i, (s, b)) in scalar_costs.iter().zip(&batched_costs).enumerate() {
        assert_eq!(s, b, "{label}: cost diverged at block {i} of {n}");
    }

    let mut scalar_summary = CostSummary::new();
    let mut batched_summary = CostSummary::new();
    for (s, b) in scalar_costs.iter().zip(&batched_costs) {
        scalar_summary.record(*s);
        batched_summary.record(*b);
    }
    assert_eq!(
        (scalar_summary.total(), scalar_summary.blocks(), scalar_summary.max_cycles()),
        (batched_summary.total(), batched_summary.blocks(), batched_summary.max_cycles()),
        "{label}: summary diverged"
    );

    // Probe: persistent state (wire levels, last-value memories) must
    // match, so one more identical block costs the same on both sides.
    let probe = random_block(&mut rng, byte_len);
    assert_eq!(
        scalar.transfer(&probe),
        batched.transfer(&probe),
        "{label}: post-batch state diverged"
    );
}

fn check_paper_config(kind: SchemeKind, n: usize, seed: u64) {
    assert_equivalent(
        kind.label(),
        kind.build_paper_config(),
        kind.build_paper_config(),
        64,
        n,
        seed,
    );
}

#[test]
fn all_eight_schemes_paper_configs() {
    for (k, kind) in SchemeKind::ALL.into_iter().enumerate() {
        for (s, n) in SLAB_SIZES.into_iter().enumerate() {
            // 1000-block slabs only on the smallest sweep position to
            // keep the suite fast; every scheme still sees it.
            check_paper_config(kind, n, (k * 10 + s) as u64);
        }
    }
}

/// Second chunk geometry: 64 wires × 8-bit chunks for DESC (the other
/// end of the paper's §5.6.2 sweep), mismatched widths for the
/// segmented baselines, and a bus width that is not a multiple of 64
/// for conventional binary (exercises the partial top lane).
#[test]
fn alternate_chunk_geometries() {
    let c8 = ChunkSize::new(8).unwrap();
    let c3 = ChunkSize::new(3).unwrap();
    for &n in &SLAB_SIZES {
        for mode in [SkipMode::None, SkipMode::Zero, SkipMode::LastValue] {
            assert_equivalent(
                "desc 64w/8b",
                Box::new(DescScheme::new(64, c8, mode)),
                Box::new(DescScheme::new(64, c8, mode)),
                64,
                n,
                n as u64 + 1,
            );
            // 3-bit chunks straddle word boundaries in the extractor.
            assert_equivalent(
                "desc 48w/3b",
                Box::new(DescScheme::new(48, c3, mode)),
                Box::new(DescScheme::new(48, c3, mode)),
                64,
                n,
                n as u64 + 2,
            );
        }
        assert_equivalent(
            "binary 48w",
            Box::new(BinaryScheme::new(48)),
            Box::new(BinaryScheme::new(48)),
            64,
            n,
            n as u64 + 3,
        );
        assert_equivalent(
            "binary 96w",
            Box::new(BinaryScheme::new(96)),
            Box::new(BinaryScheme::new(96)),
            64,
            n,
            n as u64 + 4,
        );
        assert_equivalent(
            "dzc 64w/4b",
            Box::new(DzcScheme::new(64, 4)),
            Box::new(DzcScheme::new(64, 4)),
            64,
            n,
            n as u64 + 5,
        );
        assert_equivalent(
            "bus-invert 64w/16b",
            Box::new(BusInvertScheme::new(64, 16)),
            Box::new(BusInvertScheme::new(64, 16)),
            64,
            n,
            n as u64 + 6,
        );
        assert_equivalent(
            "zs-bic 64w/16b",
            Box::new(ZeroSkipBusInvertScheme::new(64, 16)),
            Box::new(ZeroSkipBusInvertScheme::new(64, 16)),
            64,
            n,
            n as u64 + 7,
        );
        assert_equivalent(
            "encoded zs-bic 64w/16b",
            Box::new(EncodedZeroSkipBusInvertScheme::new(64, 16)),
            Box::new(EncodedZeroSkipBusInvertScheme::new(64, 16)),
            64,
            n,
            n as u64 + 8,
        );
        assert_equivalent(
            "serial",
            Box::new(SerialScheme::new()),
            Box::new(SerialScheme::new()),
            64,
            n,
            n as u64 + 9,
        );
        assert_equivalent(
            "adaptive desc",
            Box::new(AdaptiveDescScheme::new(128, ChunkSize::PAPER_DEFAULT)),
            Box::new(AdaptiveDescScheme::new(128, ChunkSize::PAPER_DEFAULT)),
            64,
            n,
            n as u64 + 10,
        );
    }
}

/// Block lengths that do not fill whole words (slab padding) must stay
/// equivalent too.
#[test]
fn ragged_block_lengths() {
    for byte_len in [1usize, 9, 23] {
        for &n in &[7usize, 64] {
            assert_equivalent(
                "binary ragged",
                Box::new(BinaryScheme::new(16)),
                Box::new(BinaryScheme::new(16)),
                byte_len,
                n,
                byte_len as u64,
            );
            assert_equivalent(
                "desc ragged",
                Box::new(DescScheme::new(8, ChunkSize::PAPER_DEFAULT, SkipMode::Zero)),
                Box::new(DescScheme::new(8, ChunkSize::PAPER_DEFAULT, SkipMode::Zero)),
                byte_len,
                n,
                byte_len as u64 + 100,
            );
        }
    }
}

/// `transfer_each` (the documented reference loop) must itself match
/// sequential scalar calls — it is the oracle the batched kernels are
/// held to, so it cannot drift either.
#[test]
fn transfer_each_is_the_scalar_loop() {
    let mut rng = Rng64::seed_from_u64(99);
    let mut slab = BlockSlab::new(64);
    let mut scalar = DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero);
    let mut reference = scalar.clone();
    let mut expected = Vec::new();
    for _ in 0..32 {
        let block = random_block(&mut rng, 64);
        expected.push(scalar.transfer(&block));
        slab.push(&block);
    }
    let mut got = Vec::new();
    transfer_each(&mut reference, &slab, &mut got);
    assert_eq!(expected, got);
}

/// DESC per-wire activity (the analysis-layer input) must also match
/// after a batched run, not just the aggregate costs.
#[test]
fn per_wire_transitions_match_after_batch() {
    let mut rng = Rng64::seed_from_u64(7);
    let mut slab = BlockSlab::new(64);
    let mut scalar = DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero);
    let mut batched = scalar.clone();
    for _ in 0..64 {
        let block = random_block(&mut rng, 64);
        scalar.transfer(&block);
        slab.push(&block);
    }
    let mut costs = Vec::new();
    batched.transfer_many(&slab, &mut costs);
    assert_eq!(scalar.wire_transitions(), batched.wire_transitions());
    assert_eq!(scalar.last_stats(), batched.last_stats());

    let mut bin_scalar = BinaryScheme::new(64);
    let mut bin_batched = bin_scalar.clone();
    for i in 0..slab.len() {
        bin_scalar.transfer(&slab.get_block(i));
    }
    costs.clear();
    bin_batched.transfer_many(&slab, &mut costs);
    assert_eq!(bin_scalar.wire_transitions(), bin_batched.wire_transitions());
}
