//! Adaptive frequent-value skipping — the extension the paper
//! *considered* in §3.3: "We also considered adaptive techniques for
//! detecting and encoding frequent non-zero chunks at runtime;
//! however, the attainable delay and energy improvements are not
//! appreciable" (because non-zero chunk values are near-uniform,
//! Fig. 12). This module implements the mechanism so that claim can be
//! reproduced as an ablation.
//!
//! Each wire keeps a small frequency table of recently transferred
//! chunk values; the skip value is the current per-wire mode (most
//! frequent value). Transmitter and receiver update identical tables
//! from the values exchanged, so no side channel is needed — exactly
//! like last-value skipping, but with a deeper history.

use crate::block::Block;
use crate::chunk::{ChunkSize, Chunks, WireAssignment};
use crate::cost::{TransferCost, WireBudget};
use crate::scheme::TransferScheme;
use crate::wire::Wire;

/// Per-wire value-frequency tracker with periodic decay, shared by
/// transmitter and receiver.
#[derive(Clone, Debug)]
struct FrequencyTable {
    counts: Vec<u32>,
    updates: u32,
    decay_every: u32,
}

impl FrequencyTable {
    fn new(values: usize, decay_every: u32) -> Self {
        Self { counts: vec![0; values], updates: 0, decay_every }
    }

    fn record(&mut self, value: u16) {
        self.counts[value as usize] += 1;
        self.updates += 1;
        if self.updates >= self.decay_every {
            // Halve everything so the table adapts to phase changes.
            for c in &mut self.counts {
                *c /= 2;
            }
            self.updates = 0;
        }
    }

    /// The current most frequent value (ties break toward zero, the
    /// statically best choice).
    fn mode(&self) -> u16 {
        let mut best = 0usize;
        for (v, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = v;
            }
        }
        best as u16
    }
}

/// DESC with per-wire adaptive skip values.
///
/// # Examples
///
/// ```
/// use desc_core::schemes::AdaptiveDescScheme;
/// use desc_core::{Block, ChunkSize, TransferScheme};
///
/// let mut s = AdaptiveDescScheme::new(128, ChunkSize::new(4).unwrap());
/// // After enough blocks whose chunks are all 0x7, the tables lock on
/// // and the strobes disappear.
/// let block = Block::from_bytes(&[0x77; 64]);
/// for _ in 0..4 { s.transfer(&block); }
/// assert_eq!(s.transfer(&block).data_transitions, 0);
/// ```
#[derive(Clone, Debug)]
pub struct AdaptiveDescScheme {
    chunk_size: ChunkSize,
    data: Vec<Wire>,
    reset_skip: Wire,
    sync: Wire,
    tables: Vec<FrequencyTable>,
    sync_enabled: bool,
}

impl AdaptiveDescScheme {
    /// Creates an adaptive interface over `wires` data wires with a
    /// 64-transfer decay period.
    ///
    /// # Panics
    ///
    /// Panics if `wires` is zero.
    #[must_use]
    pub fn new(wires: usize, chunk_size: ChunkSize) -> Self {
        assert!(wires > 0, "a DESC interface needs at least one data wire");
        Self {
            chunk_size,
            data: vec![Wire::new(); wires],
            reset_skip: Wire::new(),
            sync: Wire::new(),
            tables: (0..wires)
                .map(|_| FrequencyTable::new(chunk_size.value_count() as usize, 64))
                .collect(),
            sync_enabled: true,
        }
    }

    /// Disables the synchronization strobe.
    #[must_use]
    pub fn without_sync_strobe(mut self) -> Self {
        self.sync_enabled = false;
        self
    }

    /// Strobe position with `skip` excluded from the count list.
    fn position(v: u16, skip: u16) -> u64 {
        if v < skip {
            u64::from(v) + 1
        } else {
            u64::from(v)
        }
    }
}

impl TransferScheme for AdaptiveDescScheme {
    fn name(&self) -> &'static str {
        "Adaptive Skipped DESC"
    }

    fn wires(&self) -> WireBudget {
        WireBudget {
            data_wires: self.data.len(),
            control_wires: 1,
            sync_wires: usize::from(self.sync_enabled),
        }
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        let chunks = Chunks::split(block, self.chunk_size);
        let assignment = WireAssignment::new(chunks.len(), self.data.len());
        let mut cost = TransferCost::ZERO;
        let mut last_round_skipped = false;
        for r in 0..assignment.rounds() {
            self.reset_skip.toggle();
            cost.control_transitions += 1;
            let mut max_pos = 0u64;
            let mut pos_sum = 0u64;
            let mut strobed = 0u64;
            let mut any_skipped = false;
            for w in 0..self.data.len() {
                let Some(i) = assignment.chunk_at(w, r) else { continue };
                let v = chunks.values()[i];
                let skip = self.tables[w].mode();
                if v == skip {
                    any_skipped = true;
                } else {
                    self.data[w].toggle();
                    cost.data_transitions += 1;
                    strobed += 1;
                    let pos = Self::position(v, skip);
                    pos_sum += pos;
                    max_pos = max_pos.max(pos);
                }
                self.tables[w].record(v);
            }
            let window = max_pos.max(1);
            cost.cycles += window;
            // Same effective-window latency model as `DescScheme`
            // (midpoint of mean and max strobe position; see
            // `transfer_skipped` there for the rationale).
            cost.latency_cycles += if strobed == 0 {
                1
            } else {
                (pos_sum.div_ceil(strobed) + window).div_ceil(2)
            };
            last_round_skipped = any_skipped;
        }
        if last_round_skipped {
            self.reset_skip.toggle();
            cost.control_transitions += 1;
        }
        if self.sync_enabled {
            for _ in 0..cost.cycles {
                self.sync.toggle();
            }
            cost.sync_transitions = cost.cycles;
        }
        cost
    }

    fn reset(&mut self) {
        let wires = self.data.len();
        self.data = vec![Wire::new(); wires];
        self.reset_skip = Wire::new();
        self.sync = Wire::new();
        self.tables = (0..wires)
            .map(|_| FrequencyTable::new(self.chunk_size.value_count() as usize, 64))
            .collect();
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{DescScheme, SkipMode};

    fn c4() -> ChunkSize {
        ChunkSize::new(4).expect("valid")
    }

    #[test]
    fn cold_tables_behave_like_zero_skipping() {
        // Mode of an empty table is 0, so the first transfer matches
        // zero-skipped DESC exactly.
        let block = Block::from_bytes(&[0x3C; 64]);
        let mut adaptive = AdaptiveDescScheme::new(128, c4()).without_sync_strobe();
        let mut zero = DescScheme::new(128, c4(), SkipMode::Zero).without_sync_strobe();
        assert_eq!(adaptive.transfer(&block), zero.transfer(&block));
    }

    #[test]
    fn tables_lock_onto_a_hot_value() {
        let hot = Block::from_bytes(&[0xBB; 64]);
        let mut s = AdaptiveDescScheme::new(128, c4()).without_sync_strobe();
        let first = s.transfer(&hot);
        assert_eq!(first.data_transitions, 128);
        for _ in 0..3 {
            s.transfer(&hot);
        }
        assert_eq!(s.transfer(&hot).data_transitions, 0);
    }

    #[test]
    fn decay_lets_tables_adapt_to_phase_changes() {
        let phase_a = Block::from_bytes(&[0x11; 64]);
        let phase_b = Block::from_bytes(&[0x99; 64]);
        let mut s = AdaptiveDescScheme::new(128, c4()).without_sync_strobe();
        for _ in 0..80 {
            s.transfer(&phase_a);
        }
        // Switch phases: after enough transfers + decay, B dominates.
        let mut last = u64::MAX;
        for _ in 0..200 {
            last = s.transfer(&phase_b).data_transitions;
        }
        assert_eq!(last, 0, "tables failed to re-adapt");
    }

    /// The paper's §3.3 finding: on realistic near-uniform non-zero
    /// values, adaptive skipping is *not appreciably* better than
    /// plain zero skipping.
    #[test]
    fn adaptive_gains_are_marginal_on_uniform_values() {
        use crate::rng::Rng64;
        let mut rng = Rng64::seed_from_u64(3);
        let mut adaptive = AdaptiveDescScheme::new(128, c4()).without_sync_strobe();
        let mut zero = DescScheme::new(128, c4(), SkipMode::Zero).without_sync_strobe();
        let mut a_total = 0u64;
        let mut z_total = 0u64;
        for _ in 0..400 {
            // 30% zero chunks, uniform non-zero (Fig. 12's shape).
            let mut bytes = [0u8; 64];
            for nibble in 0..128 {
                let v: u8 =
                    if rng.gen::<f64>() < 0.3 { 0 } else { rng.gen_range(1u8..16) };
                bytes[nibble / 2] |= v << ((nibble % 2) * 4);
            }
            let block = Block::from_bytes(&bytes);
            a_total += adaptive.transfer(&block).total_transitions();
            z_total += zero.transfer(&block).total_transitions();
        }
        let ratio = a_total as f64 / z_total as f64;
        assert!(
            (0.93..=1.07).contains(&ratio),
            "adaptive/zero ratio {ratio:.3} — the paper expects ≈1"
        );
    }

    #[test]
    fn reset_clears_adaptation() {
        let hot = Block::from_bytes(&[0x44; 64]);
        let mut s = AdaptiveDescScheme::new(64, c4()).without_sync_strobe();
        let first = s.transfer(&hot);
        for _ in 0..5 {
            s.transfer(&hot);
        }
        s.reset();
        assert_eq!(s.transfer(&hot), first);
    }
}
