//! DESC — data exchange using synchronized counters (paper §3).
//!
//! A block is split into chunks (paper Fig. 4); each chunk travels on
//! its assigned data wire as a *single toggle* whose timing encodes the
//! value. Transfers proceed in `ceil(chunks / wires)` rounds; each round
//! is a time window opened by a toggle on the shared reset/skip wire.
//! With value skipping (§3.3) chunks equal to the skip value stay
//! silent and are filled in at the receiver when the window closes.
//!
//! ## Timing model (documented in DESIGN.md §5)
//!
//! * Without skipping, the counter enumerates `0..2^c`, so a chunk of
//!   value `v` takes `v + 1` cycles (Fig. 5: value 2 → 3 cycles) and
//!   chunks chain per wire without global windows.
//! * With skipping, the skip value is excluded from the count list
//!   (Fig. 10-b), so value `v` strobes at position `v + 1` when
//!   `v < skip` and at position `v` when `v > skip`; a round's window
//!   lasts `max(1, max strobe position)` cycles.
//! * The synchronization strobe toggles once per cycle while the
//!   transfer is active (§3.1: a half-frequency signal sampled on both
//!   edges); its transitions are charged to the scheme.

use crate::block::{Block, BlockSlab};
use crate::chunk::{chunk_values_into, ChunkSize, Chunks, WireAssignment};
use crate::cost::{TransferCost, WireBudget};
use crate::scheme::TransferScheme;
use crate::wire::Wire;

/// Value-skipping policy for a DESC interface (paper §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SkipMode {
    /// Basic DESC: every chunk toggles its wire.
    None,
    /// Zero skipping: chunks with value 0 stay silent (the paper's best
    /// variant, 1.81× L2 energy).
    #[default]
    Zero,
    /// Last-value skipping: a chunk stays silent when it equals the
    /// previous value transmitted on its wire.
    LastValue,
}

impl SkipMode {
    /// The paper's figure-legend name for the corresponding DESC
    /// variant.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SkipMode::None => "Basic DESC",
            SkipMode::Zero => "Zero Skipped DESC",
            SkipMode::LastValue => "Last Value Skipped DESC",
        }
    }
}

/// Detailed statistics for one DESC block transfer, beyond the plain
/// [`TransferCost`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DescTransferStats {
    /// Chunks whose strobe was elided by value skipping.
    pub skipped_chunks: usize,
    /// Chunks that toggled their wire.
    pub strobed_chunks: usize,
    /// Number of transfer rounds (time windows).
    pub rounds: usize,
}

/// A DESC transmitter/receiver interface over `wires` data wires.
///
/// # Examples
///
/// ```
/// use desc_core::{Block, ChunkSize, TransferScheme};
/// use desc_core::schemes::{DescScheme, SkipMode};
///
/// // Paper Fig. 3-c: one byte over two data wires, 4-bit chunks,
/// // basic DESC — three bit-flips (reset + one per chunk).
/// let mut s = DescScheme::new(2, ChunkSize::new(4).unwrap(), SkipMode::None);
/// let cost = s.transfer(&Block::from_bytes(&[0b0101_0011]));
/// assert_eq!(cost.data_transitions + cost.control_transitions, 3);
/// ```
#[derive(Clone, Debug)]
pub struct DescScheme {
    chunk_size: ChunkSize,
    mode: SkipMode,
    data: Vec<Wire>,
    reset_skip: Wire,
    sync: Wire,
    /// Last chunk value transmitted on each wire (for `LastValue`).
    last_values: Vec<u16>,
    sync_enabled: bool,
    last_stats: DescTransferStats,
}

impl DescScheme {
    /// Creates a DESC interface with `wires` data wires, `chunk_size`
    /// chunks and the given skip mode. The synchronization strobe is
    /// enabled (the paper's asynchronous-cache configuration).
    ///
    /// # Panics
    ///
    /// Panics if `wires` is zero.
    #[must_use]
    pub fn new(wires: usize, chunk_size: ChunkSize, mode: SkipMode) -> Self {
        assert!(wires > 0, "a DESC interface needs at least one data wire");
        Self {
            chunk_size,
            mode,
            data: vec![Wire::new(); wires],
            reset_skip: Wire::new(),
            sync: Wire::new(),
            last_values: vec![0; wires],
            sync_enabled: true,
            last_stats: DescTransferStats::default(),
        }
    }

    /// Disables the synchronization strobe (synchronous-cache
    /// configuration where the clock distribution network is shared).
    #[must_use]
    pub fn without_sync_strobe(mut self) -> Self {
        self.sync_enabled = false;
        self
    }

    /// The configured skip mode.
    #[must_use]
    pub fn skip_mode(&self) -> SkipMode {
        self.mode
    }

    /// The configured chunk size.
    #[must_use]
    pub fn chunk_size(&self) -> ChunkSize {
        self.chunk_size
    }

    /// Number of data wires.
    #[must_use]
    pub fn wire_count(&self) -> usize {
        self.data.len()
    }

    /// Cumulative transitions per data wire since construction or the
    /// last [`TransferScheme::reset`] — input for activity-balance
    /// analysis ([`crate::analysis`]).
    ///
    /// [`TransferScheme::reset`]: crate::TransferScheme::reset
    #[must_use]
    pub fn wire_transitions(&self) -> Vec<u64> {
        self.data.iter().map(crate::wire::Wire::transitions).collect()
    }

    /// Statistics for the most recent [`TransferScheme::transfer`] call.
    #[must_use]
    pub fn last_stats(&self) -> DescTransferStats {
        self.last_stats
    }

    /// Transfers a pre-chunked payload (used by the ECC experiments,
    /// where parity chunks extend the data chunks — paper §3.2.3).
    ///
    /// # Panics
    ///
    /// Panics if the chunk size differs from the scheme's.
    pub fn transfer_chunks(&mut self, chunks: &Chunks) -> TransferCost {
        assert_eq!(
            chunks.size(),
            self.chunk_size,
            "chunk size mismatch: payload {} vs scheme {}",
            chunks.size(),
            self.chunk_size
        );
        let assignment = WireAssignment::new(chunks.len(), self.data.len());
        let mut cost = match self.mode {
            SkipMode::None => self.transfer_basic(chunks, &assignment),
            SkipMode::Zero | SkipMode::LastValue => self.transfer_skipped(chunks, &assignment),
        };
        if self.sync_enabled {
            // One strobe edge per active cycle (§3.1).
            for _ in 0..cost.cycles {
                self.sync.toggle();
            }
            cost.sync_transitions = cost.cycles;
        }
        cost
    }

    /// Strobe position of value `v` within a window whose count list
    /// excludes `skip` (1-based; paper Fig. 10-b).
    fn position(v: u16, skip: Option<u16>) -> u64 {
        match skip {
            None => u64::from(v) + 1,
            Some(s) => {
                debug_assert_ne!(v, s, "skipped values have no strobe position");
                if v < s {
                    u64::from(v) + 1
                } else {
                    u64::from(v)
                }
            }
        }
    }

    /// Basic DESC: chunks chain per wire; no shared windows.
    fn transfer_basic(&mut self, chunks: &Chunks, assignment: &WireAssignment) -> TransferCost {
        let mut cycles = 0u64;
        for (w, wire) in self.data.iter_mut().enumerate() {
            let mut wire_time = 0u64;
            for r in 0..assignment.rounds() {
                if let Some(i) = assignment.chunk_at(w, r) {
                    let v = chunks.values()[i];
                    wire_time += Self::position(v, None);
                    wire.toggle();
                    self.last_values[w] = v;
                }
            }
            cycles = cycles.max(wire_time);
        }
        self.reset_skip.toggle();
        self.last_stats = DescTransferStats {
            skipped_chunks: 0,
            strobed_chunks: chunks.len(),
            rounds: assignment.rounds(),
        };
        TransferCost {
            data_transitions: chunks.len() as u64,
            control_transitions: 1,
            sync_transitions: 0, // filled by the caller
            // Basic DESC chains chunks per wire with no shared windows;
            // the block is complete at the slowest wire, so effective
            // latency equals occupancy (sentinel 0 = `cycles`).
            latency_cycles: 0,
            cycles: cycles.max(1),
        }
    }

    /// Skipped DESC: per-round windows delimited by the reset/skip wire.
    ///
    /// Each round boundary costs exactly one reset/skip toggle: a round
    /// that ends with unfilled chunks is closed by a *skip* toggle,
    /// which simultaneously serves as the next round's counter reset
    /// (the paper's receiver already dispatches on "incomplete chunks
    /// pending?" to tell skip from reset, §3.3); a round completed
    /// purely by strobes is followed by a fresh reset toggle. The final
    /// round pays a trailing skip toggle only if it skipped anything.
    fn transfer_skipped(&mut self, chunks: &Chunks, assignment: &WireAssignment) -> TransferCost {
        let mut cost = TransferCost::ZERO;
        let mut stats = DescTransferStats { rounds: assignment.rounds(), ..Default::default() };
        let mut last_round_skipped = false;
        for r in 0..assignment.rounds() {
            // One boundary toggle opens this round (either the previous
            // round's skip toggle, reused, or a fresh reset toggle).
            self.reset_skip.toggle();
            cost.control_transitions += 1;

            let mut max_pos = 0u64;
            let mut pos_sum = 0u64;
            let mut strobed = 0u64;
            let mut any_skipped = false;
            for w in 0..self.data.len() {
                let Some(i) = assignment.chunk_at(w, r) else { continue };
                let v = chunks.values()[i];
                let skip_value = match self.mode {
                    SkipMode::Zero => 0,
                    SkipMode::LastValue => self.last_values[w],
                    SkipMode::None => unreachable!("basic DESC uses transfer_basic"),
                };
                if v == skip_value {
                    any_skipped = true;
                    stats.skipped_chunks += 1;
                } else {
                    self.data[w].toggle();
                    cost.data_transitions += 1;
                    stats.strobed_chunks += 1;
                    strobed += 1;
                    let pos = Self::position(v, Some(skip_value));
                    pos_sum += pos;
                    max_pos = max_pos.max(pos);
                }
                self.last_values[w] = v;
            }
            let window = max_pos.max(1);
            cost.cycles += window;
            // Effective receiver latency (Fig. 21 residual): the formal
            // window closes at the worst strobe position, but the
            // receiver latches each chunk at its own strobe and can
            // forward the block once the late strobes land — on average
            // near the *mean* strobe position, not the max. We model
            // the effective window as the midpoint of mean and max
            // (skip-completed chunks resolve at the closing toggle, so
            // the latency never collapses to the mean alone). Occupancy,
            // queueing and energy still use the full `window`.
            cost.latency_cycles += if strobed == 0 {
                1
            } else {
                (pos_sum.div_ceil(strobed) + window).div_ceil(2)
            };
            last_round_skipped = any_skipped;
        }
        if last_round_skipped {
            // Trailing skip toggle fills the final round's pending
            // chunk receivers with the skip value.
            self.reset_skip.toggle();
            cost.control_transitions += 1;
        }
        self.last_stats = stats;
        cost
    }
}

impl TransferScheme for DescScheme {
    fn name(&self) -> &'static str {
        self.mode.label()
    }

    fn wires(&self) -> WireBudget {
        WireBudget {
            data_wires: self.data.len(),
            control_wires: 1, // shared reset/skip strobe
            sync_wires: usize::from(self.sync_enabled),
        }
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        let chunks = Chunks::split(block, self.chunk_size);
        self.transfer_chunks(&chunks)
    }

    /// Batched kernel for all three skip modes: chunk values are
    /// extracted straight from the slab's `u64` words into one reused
    /// scratch vector (no per-block `Chunks` allocation), per-wire
    /// strobe counts accumulate across the whole slab and are written
    /// back once, and the sync strobe advances with a single
    /// [`Wire::toggle_n`] instead of one call per active cycle — cost
    /// for cost and state for state identical to the scalar loop.
    fn transfer_many(&mut self, slab: &BlockSlab, costs: &mut Vec<TransferCost>) {
        if slab.is_empty() {
            return;
        }
        let wires = self.data.len();
        let width = self.chunk_size.bits() as usize;
        let n_chunks = self.chunk_size.chunks_for_bits(slab.bit_len());
        let rounds = n_chunks.div_ceil(wires);
        let mut values: Vec<u16> = Vec::with_capacity(n_chunks);
        // Per-wire strobe counts for the whole batch; levels are
        // reconciled at the end (a toggle count fixes both transitions
        // and parity).
        let mut toggles = vec![0u64; wires];
        let mut reset_toggles = 0u64;
        let mut sync_toggles = 0u64;
        // Basic DESC chains chunk durations per wire; scratch is
        // cleared per block.
        let mut wire_time = vec![0u64; wires];
        costs.reserve(slab.len());
        for b in 0..slab.len() {
            values.clear();
            chunk_values_into(slab.block_words(b).iter().copied(), n_chunks, width, &mut values);
            let mut cost = match self.mode {
                SkipMode::None => {
                    wire_time.iter_mut().for_each(|t| *t = 0);
                    for (i, &v) in values.iter().enumerate() {
                        let w = i % wires;
                        wire_time[w] += Self::position(v, None);
                        toggles[w] += 1;
                        self.last_values[w] = v;
                    }
                    reset_toggles += 1;
                    self.last_stats = DescTransferStats {
                        skipped_chunks: 0,
                        strobed_chunks: n_chunks,
                        rounds,
                    };
                    let cycles = wire_time.iter().copied().max().unwrap_or(0);
                    TransferCost {
                        data_transitions: n_chunks as u64,
                        control_transitions: 1,
                        sync_transitions: 0,
                        latency_cycles: 0,
                        cycles: cycles.max(1),
                    }
                }
                SkipMode::Zero | SkipMode::LastValue => {
                    let mut cost = TransferCost::ZERO;
                    let mut stats = DescTransferStats { rounds, ..Default::default() };
                    let mut last_round_skipped = false;
                    for r in 0..rounds {
                        reset_toggles += 1;
                        cost.control_transitions += 1;
                        let base = r * wires;
                        let end = (base + wires).min(n_chunks);
                        let mut max_pos = 0u64;
                        let mut pos_sum = 0u64;
                        let mut strobed = 0u64;
                        let mut any_skipped = false;
                        for (w, &v) in values[base..end].iter().enumerate() {
                            let skip_value = match self.mode {
                                SkipMode::Zero => 0,
                                SkipMode::LastValue => self.last_values[w],
                                SkipMode::None => unreachable!("handled above"),
                            };
                            if v == skip_value {
                                any_skipped = true;
                                stats.skipped_chunks += 1;
                            } else {
                                toggles[w] += 1;
                                cost.data_transitions += 1;
                                stats.strobed_chunks += 1;
                                strobed += 1;
                                let pos = Self::position(v, Some(skip_value));
                                pos_sum += pos;
                                max_pos = max_pos.max(pos);
                            }
                            self.last_values[w] = v;
                        }
                        let window = max_pos.max(1);
                        cost.cycles += window;
                        cost.latency_cycles += if strobed == 0 {
                            1
                        } else {
                            (pos_sum.div_ceil(strobed) + window).div_ceil(2)
                        };
                        last_round_skipped = any_skipped;
                    }
                    if last_round_skipped {
                        reset_toggles += 1;
                        cost.control_transitions += 1;
                    }
                    self.last_stats = stats;
                    cost
                }
            };
            if self.sync_enabled {
                sync_toggles += cost.cycles;
                cost.sync_transitions = cost.cycles;
            }
            costs.push(cost);
        }
        for (w, wire) in self.data.iter_mut().enumerate() {
            wire.apply_batch(wire.level() ^ (toggles[w] & 1 == 1), toggles[w]);
        }
        self.reset_skip
            .apply_batch(self.reset_skip.level() ^ (reset_toggles & 1 == 1), reset_toggles);
        self.sync.toggle_n(sync_toggles);
    }

    fn reset(&mut self) {
        let n = self.data.len();
        self.data = vec![Wire::new(); n];
        self.reset_skip = Wire::new();
        self.sync = Wire::new();
        self.last_values = vec![0; n];
        self.last_stats = DescTransferStats::default();
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c4() -> ChunkSize {
        ChunkSize::new(4).unwrap()
    }

    /// Paper Fig. 3-c: the byte 01010011 over two data wires with basic
    /// DESC costs three bit-flips across the reset and data wires.
    #[test]
    fn fig3c_example() {
        let mut s = DescScheme::new(2, c4(), SkipMode::None).without_sync_strobe();
        let cost = s.transfer(&Block::from_bytes(&[0b0101_0011]));
        assert_eq!(cost.data_transitions, 2);
        assert_eq!(cost.control_transitions, 1);
        assert_eq!(cost.sync_transitions, 0);
        // Chunks 0x3 and 0x5 in parallel: max(3+1, 5+1) = 6 cycles.
        assert_eq!(cost.cycles, 6);
    }

    /// Fig. 21 residual: effective latency sits at the midpoint of the
    /// mean and max strobe positions; occupancy stays at the max.
    #[test]
    fn effective_window_latency_sits_between_mean_and_max() {
        // One round of 4-bit chunks [0x1, 0xF] over two wires
        // (zero-skip): strobe positions 1 and 15 → window (occupancy)
        // 15, mean 8, effective latency ceil((8 + 15) / 2) = 12.
        let mut s = DescScheme::new(2, c4(), SkipMode::Zero).without_sync_strobe();
        let cost = s.transfer(&Block::from_bytes(&[0xF1]));
        assert_eq!(cost.cycles, 15);
        assert_eq!(cost.latency(), 12);

        // All strobes at the same position: latency equals occupancy.
        s.reset();
        let uniform = s.transfer(&Block::from_bytes(&[0xFF]));
        assert_eq!(uniform.cycles, 15);
        assert_eq!(uniform.latency(), 15);

        // All chunks skipped: the 1-cycle round is both window and
        // latency.
        s.reset();
        let skipped = s.transfer(&Block::from_bytes(&[0x00]));
        assert_eq!(skipped.cycles, 1);
        assert_eq!(skipped.latency(), 1);
    }

    /// Paper Fig. 5: two 3-bit chunks (2 then 1) on one wire take
    /// 3 + 2 = 5 cycles.
    #[test]
    fn fig5_example() {
        let mut s = DescScheme::new(1, ChunkSize::new(3).unwrap(), SkipMode::None)
            .without_sync_strobe();
        // Values 2 and 1 LSB-first: bits 010 100 → byte 0b00_001_010 = 0x0A.
        let block = Block::from_bytes(&[0b0000_1010]);
        let chunks = Chunks::split(&block, ChunkSize::new(3).unwrap());
        assert_eq!(&chunks.values()[..2], &[2, 1]);
        let cost = s.transfer(&block);
        // 3 chunks total in one byte (last padded 0, +1 cycle).
        assert_eq!(cost.cycles, 3 + 2 + 1);
        assert_eq!(cost.data_transitions, 3);
    }

    /// Paper Fig. 10: chunks (0, 0, 5, 0) on four wires; basic costs
    /// five bit-flips in a 6-cycle window, zero-skipped three bit-flips
    /// in a 5-cycle window.
    #[test]
    fn fig10_basic_vs_zero_skipped() {
        // Build a block holding nibbles 0,0,5,0.
        let mut block = Block::zeroed(2);
        block.set_bits(8, 4, 5);

        let mut basic = DescScheme::new(4, c4(), SkipMode::None).without_sync_strobe();
        let b = basic.transfer(&block);
        assert_eq!(b.total_transitions(), 5);
        assert_eq!(b.cycles, 6);

        let mut zs = DescScheme::new(4, c4(), SkipMode::Zero).without_sync_strobe();
        let z = zs.transfer(&block);
        assert_eq!(z.total_transitions(), 3);
        assert_eq!(z.cycles, 5);
        assert_eq!(zs.last_stats().skipped_chunks, 3);
    }

    #[test]
    fn basic_desc_transitions_independent_of_data() {
        // The headline property: any two blocks cost identical
        // transitions under basic DESC.
        let mut s = DescScheme::new(128, c4(), SkipMode::None);
        let a = s.transfer(&Block::from_bytes(&[0xFF; 64]));
        let b = s.transfer(&Block::from_bytes(&[0x00; 64]));
        let c = s.transfer(&Block::from_bytes(&[0x5A; 64]));
        assert_eq!(a.data_transitions, 128);
        assert_eq!(a.data_transitions, b.data_transitions);
        assert_eq!(b.data_transitions, c.data_transitions);
        assert_eq!(a.control_transitions, 1);
    }

    #[test]
    fn null_block_nearly_free_with_zero_skipping() {
        let mut s = DescScheme::new(128, c4(), SkipMode::Zero).without_sync_strobe();
        let cost = s.transfer(&Block::zeroed(64));
        assert_eq!(cost.data_transitions, 0);
        assert_eq!(cost.control_transitions, 2); // open + close
        assert_eq!(cost.cycles, 1);
    }

    #[test]
    fn last_value_skipping_makes_repeats_free() {
        let mut s = DescScheme::new(128, c4(), SkipMode::LastValue).without_sync_strobe();
        let block = Block::from_bytes(&[0xC3; 64]);
        let first = s.transfer(&block);
        assert!(first.data_transitions > 0);
        let second = s.transfer(&block);
        assert_eq!(second.data_transitions, 0);
        assert_eq!(s.last_stats().skipped_chunks, 128);
    }

    #[test]
    fn multi_round_transfer_uses_windows_per_round() {
        // 128 chunks over 64 wires → 2 rounds.
        let mut s = DescScheme::new(64, c4(), SkipMode::Zero).without_sync_strobe();
        let cost = s.transfer(&Block::from_bytes(&[0xFF; 64]));
        assert_eq!(s.last_stats().rounds, 2);
        // All chunks are 0xF: strobes at position 15 in both rounds.
        assert_eq!(cost.cycles, 30);
        assert_eq!(cost.data_transitions, 128);
        assert_eq!(cost.control_transitions, 2); // one open per round, no skips
    }

    #[test]
    fn skip_value_excluded_from_count_list() {
        // Last-value skip with last=7: value 3 strobes at 4, value 9 at 9.
        assert_eq!(DescScheme::position(3, Some(7)), 4);
        assert_eq!(DescScheme::position(9, Some(7)), 9);
        assert_eq!(DescScheme::position(15, Some(0)), 15);
        assert_eq!(DescScheme::position(15, None), 16);
    }

    #[test]
    fn sync_strobe_toggles_once_per_cycle() {
        let mut s = DescScheme::new(128, c4(), SkipMode::Zero);
        let cost = s.transfer(&Block::from_bytes(&[0x11; 64]));
        assert_eq!(cost.sync_transitions, cost.cycles);
    }

    #[test]
    fn zero_skipped_window_shrinks_versus_basic() {
        // Max chunk value 15 with zero skip strobes at 15 (not 16).
        let block = Block::from_bytes(&[0xFF; 64]);
        let mut zs = DescScheme::new(128, c4(), SkipMode::Zero).without_sync_strobe();
        let mut basic = DescScheme::new(128, c4(), SkipMode::None).without_sync_strobe();
        assert_eq!(zs.transfer(&block).cycles, 15);
        assert_eq!(basic.transfer(&block).cycles, 16);
    }

    #[test]
    fn paper_configuration_wire_budget() {
        let s = DescScheme::new(128, c4(), SkipMode::Zero);
        let w = s.wires();
        assert_eq!(w.data_wires, 128);
        assert_eq!(w.control_wires, 1);
        assert_eq!(w.sync_wires, 1);
        assert_eq!(w.total(), 130);
    }

    #[test]
    fn reset_clears_last_values_and_wires() {
        let mut s = DescScheme::new(8, c4(), SkipMode::LastValue).without_sync_strobe();
        let block = Block::from_bytes(&[0xAB, 0xCD, 0xEF, 0x12]);
        let first = s.transfer(&block);
        s.transfer(&block);
        s.reset();
        assert_eq!(s.transfer(&block), first);
    }

    #[test]
    fn one_bit_chunks_degenerate_correctly() {
        // 1-bit chunks with zero skipping: only set bits strobe, at
        // position 1; every round lasts exactly 1 cycle.
        let mut s = DescScheme::new(8, ChunkSize::new(1).unwrap(), SkipMode::Zero)
            .without_sync_strobe();
        let cost = s.transfer(&Block::from_bytes(&[0b0101_0011]));
        assert_eq!(cost.data_transitions, 4);
        assert_eq!(cost.cycles, 1);
    }

    #[test]
    fn eight_bit_chunks_have_long_windows() {
        let mut s = DescScheme::new(64, ChunkSize::new(8).unwrap(), SkipMode::Zero)
            .without_sync_strobe();
        let cost = s.transfer(&Block::from_bytes(&[0xFF; 64]));
        // 64 chunks of value 255 on 64 wires: one round, window 255.
        assert_eq!(cost.cycles, 255);
        assert_eq!(cost.data_transitions, 64);
    }
}
