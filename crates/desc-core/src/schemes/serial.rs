//! Bit-serial transfer (paper Fig. 3-b) — included for the illustrative
//! comparison, not as an evaluation baseline.

use crate::block::Block;
use crate::cost::{TransferCost, WireBudget};
use crate::scheme::TransferScheme;
use crate::wire::Wire;

/// Bit-serial transfer over a single data wire: one bit per cycle,
/// MSB-first (the order paper Fig. 3-b illustrates).
///
/// # Examples
///
/// ```
/// use desc_core::{Block, TransferScheme, schemes::SerialScheme};
///
/// // Paper Fig. 3-b: the byte 01010011 sent serially costs 5 bit-flips
/// // in 8 cycles (wire initially zero).
/// let mut s = SerialScheme::new();
/// let cost = s.transfer(&Block::from_bytes(&[0b0101_0011]));
/// assert_eq!(cost.data_transitions, 5);
/// assert_eq!(cost.cycles, 8);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SerialScheme {
    wire: Wire,
}

impl SerialScheme {
    /// Creates a serial scheme with the wire at logic zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl TransferScheme for SerialScheme {
    fn name(&self) -> &'static str {
        "Bit Serial"
    }

    fn wires(&self) -> WireBudget {
        WireBudget { data_wires: 1, control_wires: 0, sync_wires: 0 }
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        let mut flips = 0u64;
        for i in (0..block.bit_len()).rev() {
            if self.wire.drive(block.bit(i)) {
                flips += 1;
            }
        }
        TransferCost {
            data_transitions: flips,
            control_transitions: 0,
            sync_transitions: 0,
            latency_cycles: 0,
            cycles: block.bit_len() as u64,
        }
    }

    fn reset(&mut self) {
        self.wire = Wire::new();
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 3 byte, MSB-first (0,1,0,1,0,0,1,1): 5 level changes
    /// from an all-zero wire — the figure's count.
    #[test]
    fn fig3b_example() {
        let mut s = SerialScheme::new();
        let cost = s.transfer(&Block::from_bytes(&[0b0101_0011]));
        assert_eq!(cost.data_transitions, 5);
        assert_eq!(cost.cycles, 8);
    }

    #[test]
    fn alternating_bits_flip_every_cycle() {
        let mut s = SerialScheme::new();
        // 0b10101010 MSB-first = 1,0,1,0,1,0,1,0 → 8 transitions.
        let cost = s.transfer(&Block::from_bytes(&[0b1010_1010]));
        assert_eq!(cost.data_transitions, 8);
    }

    #[test]
    fn constant_bits_flip_at_most_once() {
        let mut s = SerialScheme::new();
        assert_eq!(s.transfer(&Block::from_bytes(&[0xFF])).data_transitions, 1);
        assert_eq!(s.transfer(&Block::from_bytes(&[0xFF])).data_transitions, 0);
    }

    #[test]
    fn wire_state_persists_between_blocks() {
        let mut s = SerialScheme::new();
        s.transfer(&Block::from_bytes(&[0x01])); // MSB-first: ends with wire = 1
        // Next block starts MSB-first with a leading 1: free.
        let cost = s.transfer(&Block::from_bytes(&[0x80]));
        assert_eq!(cost.data_transitions, 1); // only the 1→0 after the MSB
    }

    #[test]
    fn reset_clears_wire() {
        let mut s = SerialScheme::new();
        s.transfer(&Block::from_bytes(&[0xFF]));
        s.reset();
        assert_eq!(s.transfer(&Block::from_bytes(&[0xFF])).data_transitions, 1);
    }
}
