//! Conventional binary (parallel) transfer — the paper's baseline.

use crate::block::{Block, BlockSlab};
use crate::cost::{TransferCost, WireBudget};
use crate::scheme::TransferScheme;
use crate::wire::Wire;

/// Reads the 64 bits starting at bit `start` from a zero-padded
/// little-endian word slice.
#[inline]
fn bits64(words: &[u64], start: usize) -> u64 {
    let w = start / 64;
    let shift = start % 64;
    let lo = words.get(w).copied().unwrap_or(0) >> shift;
    if shift == 0 {
        lo
    } else {
        lo | (words.get(w + 1).copied().unwrap_or(0) << (64 - shift))
    }
}

/// Conventional binary encoding: the block is driven over `width` data
/// wires in `ceil(bits / width)` bus beats, one bit per wire per beat
/// (paper Fig. 3-a).
///
/// Transitions are counted against the *persistent* wire state, so
/// transferring two similar blocks back-to-back is cheaper than two
/// dissimilar ones — exactly the data-dependence DESC eliminates.
///
/// # Examples
///
/// ```
/// use desc_core::{Block, TransferScheme, schemes::BinaryScheme};
///
/// // Paper Fig. 3-a: one byte over 8 wires starting from all-zero
/// // wires costs 4 bit-flips in 1 cycle.
/// let mut s = BinaryScheme::new(8);
/// let cost = s.transfer(&Block::from_bytes(&[0b0101_0011]));
/// assert_eq!(cost.data_transitions, 4);
/// assert_eq!(cost.cycles, 1);
/// ```
#[derive(Clone, Debug)]
pub struct BinaryScheme {
    wires: Vec<Wire>,
}

impl BinaryScheme {
    /// Creates a binary scheme over `width` data wires.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "bus width must be positive");
        Self { wires: vec![Wire::new(); width] }
    }

    /// The bus width in wires.
    #[must_use]
    pub fn width(&self) -> usize {
        self.wires.len()
    }

    /// Cumulative transitions per data wire since construction or the
    /// last [`TransferScheme::reset`] — input for activity-balance
    /// analysis ([`crate::analysis`]).
    ///
    /// [`TransferScheme::reset`]: crate::TransferScheme::reset
    #[must_use]
    pub fn wire_transitions(&self) -> Vec<u64> {
        self.wires.iter().map(crate::wire::Wire::transitions).collect()
    }
}

impl TransferScheme for BinaryScheme {
    fn name(&self) -> &'static str {
        "Conventional Binary"
    }

    fn wires(&self) -> WireBudget {
        WireBudget { data_wires: self.wires.len(), control_wires: 0, sync_wires: 0 }
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        let width = self.wires.len();
        let beats = block.bit_len().div_ceil(width);
        let mut flips = 0u64;
        for beat in 0..beats {
            for (k, wire) in self.wires.iter_mut().enumerate() {
                let i = beat * width + k;
                // Bits past the block's end leave the wire unchanged
                // (the bus simply is not driven there).
                if i < block.bit_len() && wire.drive(block.bit(i)) {
                    flips += 1;
                }
            }
        }
        TransferCost {
            data_transitions: flips,
            control_transitions: 0,
            sync_transitions: 0,
            latency_cycles: 0,
            cycles: beats as u64,
        }
    }

    /// Batched kernel: wire levels live in packed `u64` lanes for the
    /// whole slab, so each bus beat is one `xor` + `count_ones` per
    /// lane instead of a per-bit `Wire::drive` loop. Per-wire counters
    /// are updated only for wires that actually flipped (iterating the
    /// set bits of the flip mask), and the `Wire` states are written
    /// back once at the end — bit-identical to the scalar loop.
    fn transfer_many(&mut self, slab: &BlockSlab, costs: &mut Vec<TransferCost>) {
        if slab.is_empty() {
            return;
        }
        let width = self.wires.len();
        let bit_len = slab.bit_len();
        let beats = bit_len.div_ceil(width);
        let lanes = width.div_ceil(64);
        let mut levels = vec![0u64; lanes];
        for (k, w) in self.wires.iter().enumerate() {
            if w.level() {
                levels[k / 64] |= 1 << (k % 64);
            }
        }
        let mut per_wire = vec![0u64; width];
        costs.reserve(slab.len());
        for i in 0..slab.len() {
            let words = slab.block_words(i);
            let mut flips_total = 0u64;
            for beat in 0..beats {
                let base = beat * width;
                // Bits past the block's end leave their wires unchanged
                // (the bus simply is not driven there), so the final
                // beat only drives the first `driven` wires.
                let driven = (bit_len - base).min(width);
                for (l, level) in levels.iter_mut().enumerate() {
                    let Some(lane_driven) = driven.checked_sub(l * 64).map(|d| d.min(64)) else {
                        break;
                    };
                    if lane_driven == 0 {
                        break;
                    }
                    let mask =
                        if lane_driven == 64 { u64::MAX } else { (1u64 << lane_driven) - 1 };
                    let value = bits64(words, base + l * 64) & mask;
                    let flips = (*level ^ value) & mask;
                    if flips != 0 {
                        flips_total += u64::from(flips.count_ones());
                        *level = (*level & !mask) | value;
                        let mut m = flips;
                        while m != 0 {
                            per_wire[l * 64 + m.trailing_zeros() as usize] += 1;
                            m &= m - 1;
                        }
                    }
                }
            }
            costs.push(TransferCost {
                data_transitions: flips_total,
                control_transitions: 0,
                sync_transitions: 0,
                latency_cycles: 0,
                cycles: beats as u64,
            });
        }
        for (k, w) in self.wires.iter_mut().enumerate() {
            w.apply_batch(levels[k / 64] >> (k % 64) & 1 == 1, per_wire[k]);
        }
    }

    fn reset(&mut self) {
        self.wires = vec![Wire::new(); self.wires.len()];
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_example() {
        let mut s = BinaryScheme::new(8);
        let cost = s.transfer(&Block::from_bytes(&[0b0101_0011]));
        assert_eq!(cost.data_transitions, 4);
        assert_eq!(cost.cycles, 1);
        assert_eq!(cost.control_transitions, 0);
        assert_eq!(cost.sync_transitions, 0);
    }

    #[test]
    fn beats_scale_with_width() {
        let block = Block::from_bytes(&[0xFF; 64]); // 512 bits
        assert_eq!(BinaryScheme::new(64).transfer(&block).cycles, 8);
        assert_eq!(BinaryScheme::new(128).transfer(&block).cycles, 4);
        assert_eq!(BinaryScheme::new(512).transfer(&block).cycles, 1);
    }

    #[test]
    fn identical_block_resend_costs_only_intra_block_activity() {
        // A block whose beats are all identical: resending flips nothing.
        let mut s = BinaryScheme::new(64);
        let block = Block::from_bytes(&[0xA5; 64]);
        let first = s.transfer(&block);
        assert!(first.data_transitions > 0);
        let second = s.transfer(&block);
        assert_eq!(second.data_transitions, 0);
    }

    #[test]
    fn all_ones_then_zero_block_flips_every_wire_twice() {
        let mut s = BinaryScheme::new(512);
        let ones = Block::from_bytes(&[0xFF; 64]);
        let zeros = Block::from_bytes(&[0x00; 64]);
        assert_eq!(s.transfer(&ones).data_transitions, 512);
        assert_eq!(s.transfer(&zeros).data_transitions, 512);
    }

    #[test]
    fn intra_block_transitions_counted_per_beat() {
        // 8-wire bus, two beats: 0xFF then 0x00 → 8 + 8 flips.
        let mut s = BinaryScheme::new(8);
        let block = Block::from_bytes(&[0xFF, 0x00]);
        let cost = s.transfer(&block);
        assert_eq!(cost.data_transitions, 16);
        assert_eq!(cost.cycles, 2);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut s = BinaryScheme::new(8);
        let block = Block::from_bytes(&[0xFF]);
        let first = s.transfer(&block);
        s.reset();
        assert_eq!(s.transfer(&block), first);
    }

    #[test]
    fn width_not_dividing_block_pads_final_beat() {
        // 24-bit block over 16 wires: 2 beats, final beat half-driven.
        let mut s = BinaryScheme::new(16);
        let block = Block::from_bytes(&[0xFF, 0xFF, 0xFF]);
        let cost = s.transfer(&block);
        assert_eq!(cost.cycles, 2);
        // Beat 0 flips 16 wires; beat 1 drives wires 0..8 (already 1) → 0 flips.
        assert_eq!(cost.data_transitions, 16);
    }
}
