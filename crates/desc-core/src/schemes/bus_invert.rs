//! Bus-invert coding (Stan & Burleson \[15\]) and the paper's two
//! zero-skipping extensions of it (§4.1).
//!
//! Classic bus-invert adds one *invert* wire per `segment_bits`-wide
//! bus segment; a segment is transmitted complemented whenever that
//! costs fewer flips, bounding flips at `S/2 + 1` per segment per beat.
//!
//! The paper strengthens this baseline in two ways before comparing
//! against DESC:
//!
//! * **Zero-skipped bus invert (sparse)** adds a second per-segment wire
//!   signalling "this segment is zero — ignore the data wires", saving
//!   all data flips for zero segments at the cost of extra wires.
//! * **Encoded zero-skipped bus invert (dense)** replaces the
//!   per-segment control wires by a single binary *mode word* encoding
//!   each segment's transfer mode (non-inverted / inverted / skipped),
//!   reducing wires but causing mode-word switching.

use crate::block::{Block, BlockSlab};
use crate::cost::{TransferCost, WireBudget};
use crate::scheme::TransferScheme;
use crate::wire::{Bus, Wire};

/// Shared segmented-bus plumbing for the bus-invert family.
#[derive(Clone, Debug)]
struct SegmentedBus {
    segments: Vec<Bus>,
    segment_bits: usize,
    width: usize,
}

impl SegmentedBus {
    fn new(width: usize, segment_bits: usize) -> Self {
        assert!(width > 0, "bus width must be positive");
        assert!(
            (1..=64).contains(&segment_bits),
            "segment size {segment_bits} out of range (1–64)"
        );
        assert!(
            width.is_multiple_of(segment_bits),
            "segment size {segment_bits} must divide bus width {width}"
        );
        Self {
            segments: vec![Bus::new(segment_bits); width / segment_bits],
            segment_bits,
            width,
        }
    }

    fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn beats(&self, block: &Block) -> usize {
        block.bit_len().div_ceil(self.width)
    }

    /// Extracts the raw value for segment `s` of beat `beat` as one
    /// word read (bits past the block's end read zero).
    fn value_at(&self, block: &Block, beat: usize, s: usize) -> u64 {
        block.word_bits(beat * self.width + s * self.segment_bits, self.segment_bits)
    }

    /// [`SegmentedBus::value_at`] reading straight from slab words.
    fn value_at_slab(&self, slab: &BlockSlab, b: usize, beat: usize, s: usize) -> u64 {
        slab.word_bits(b, beat * self.width + s * self.segment_bits, self.segment_bits)
    }

    fn mask(&self) -> u64 {
        if self.segment_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.segment_bits) - 1
        }
    }

    fn reset(&mut self) {
        let n = self.segments.len();
        self.segments = vec![Bus::new(self.segment_bits); n];
    }
}

/// Classic bus-invert coding with one invert wire per segment.
///
/// Per beat and segment the transmitter picks the polarity (plain or
/// complemented) that minimises total flips *including* the invert
/// wire — the stateful generalisation of the classic "invert when the
/// Hamming distance exceeds S/2" rule.
///
/// # Examples
///
/// ```
/// use desc_core::{Block, TransferScheme, schemes::BusInvertScheme};
///
/// let mut s = BusInvertScheme::new(8, 8);
/// // 0xFF from all-zero wires: plain costs 8 flips, inverted costs
/// // 0 data flips + 1 invert-wire flip.
/// let cost = s.transfer(&Block::from_bytes(&[0xFF]));
/// assert_eq!(cost.data_transitions, 0);
/// assert_eq!(cost.control_transitions, 1);
/// ```
#[derive(Clone, Debug)]
pub struct BusInvertScheme {
    bus: SegmentedBus,
    invert: Vec<Wire>,
}

impl BusInvertScheme {
    /// Creates bus-invert coding over a `width`-wire bus with
    /// `segment_bits`-wide independently-inverted segments.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `segment_bits` is invalid (see
    /// [`BusInvertScheme`] docs) or `segment_bits` does not divide
    /// `width`.
    #[must_use]
    pub fn new(width: usize, segment_bits: usize) -> Self {
        let bus = SegmentedBus::new(width, segment_bits);
        let n = bus.segment_count();
        Self { bus, invert: vec![Wire::new(); n] }
    }

    /// The segment size in bits.
    #[must_use]
    pub fn segment_bits(&self) -> usize {
        self.bus.segment_bits
    }

    /// Drives one segment for one beat with the cheaper polarity
    /// (counting the invert wire's own flip).
    fn drive_segment(
        seg: &mut Bus,
        inv: &mut Wire,
        value: u64,
        mask: u64,
        data: &mut u64,
        control: &mut u64,
    ) {
        let plain_cost = seg.flips_to(value) + u32::from(inv.level());
        let inverted_cost = seg.flips_to(!value & mask) + u32::from(!inv.level());
        if inverted_cost < plain_cost {
            *data += u64::from(seg.drive(!value & mask));
            if inv.drive(true) {
                *control += 1;
            }
        } else {
            *data += u64::from(seg.drive(value));
            if inv.drive(false) {
                *control += 1;
            }
        }
    }
}

impl TransferScheme for BusInvertScheme {
    fn name(&self) -> &'static str {
        "Bus Invert Coding"
    }

    fn wires(&self) -> WireBudget {
        WireBudget {
            data_wires: self.bus.width,
            control_wires: self.invert.len(),
            sync_wires: 0,
        }
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        let beats = self.bus.beats(block);
        let mask = self.bus.mask();
        let mut data = 0u64;
        let mut control = 0u64;
        for beat in 0..beats {
            for s in 0..self.bus.segment_count() {
                let value = self.bus.value_at(block, beat, s);
                Self::drive_segment(
                    &mut self.bus.segments[s],
                    &mut self.invert[s],
                    value,
                    mask,
                    &mut data,
                    &mut control,
                );
            }
        }
        TransferCost {
            data_transitions: data,
            control_transitions: control,
            sync_transitions: 0,
            latency_cycles: 0,
            cycles: beats as u64,
        }
    }

    /// Batched kernel: segment values come straight out of the slab's
    /// packed words; the polarity decision and word-packed bus drives
    /// are identical to the scalar path.
    fn transfer_many(&mut self, slab: &BlockSlab, costs: &mut Vec<TransferCost>) {
        let beats = slab.bit_len().div_ceil(self.bus.width);
        let mask = self.bus.mask();
        costs.reserve(slab.len());
        for b in 0..slab.len() {
            let mut data = 0u64;
            let mut control = 0u64;
            for beat in 0..beats {
                for s in 0..self.bus.segment_count() {
                    let value = self.bus.value_at_slab(slab, b, beat, s);
                    Self::drive_segment(
                        &mut self.bus.segments[s],
                        &mut self.invert[s],
                        value,
                        mask,
                        &mut data,
                        &mut control,
                    );
                }
            }
            costs.push(TransferCost {
                data_transitions: data,
                control_transitions: control,
                sync_transitions: 0,
                latency_cycles: 0,
                cycles: beats as u64,
            });
        }
    }

    fn reset(&mut self) {
        self.bus.reset();
        self.invert = vec![Wire::new(); self.invert.len()];
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        Box::new(self.clone())
    }
}

/// Bus-invert coding plus a per-segment zero-skip wire (the paper's
/// sparse variant, §4.1).
///
/// Each segment has three transfer modes: non-inverted, inverted, or
/// *skipped* (only legal when the value is zero: the skip wire is
/// asserted and the data wires are left holding their previous value).
/// The transmitter picks the cheapest legal mode per segment counting
/// all three wire groups — matching the paper, which "takes into
/// account the flips that would occur on the extra wires when deciding
/// the best encoding scheme for each segment".
#[derive(Clone, Debug)]
pub struct ZeroSkipBusInvertScheme {
    bus: SegmentedBus,
    invert: Vec<Wire>,
    skip: Vec<Wire>,
}

impl ZeroSkipBusInvertScheme {
    /// Creates the sparse zero-skipped bus-invert scheme.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BusInvertScheme::new`].
    #[must_use]
    pub fn new(width: usize, segment_bits: usize) -> Self {
        let bus = SegmentedBus::new(width, segment_bits);
        let n = bus.segment_count();
        Self { bus, invert: vec![Wire::new(); n], skip: vec![Wire::new(); n] }
    }

    /// The segment size in bits.
    #[must_use]
    pub fn segment_bits(&self) -> usize {
        self.bus.segment_bits
    }
}

impl TransferScheme for ZeroSkipBusInvertScheme {
    fn name(&self) -> &'static str {
        "Zero Skipped Bus Invert"
    }

    fn wires(&self) -> WireBudget {
        WireBudget {
            data_wires: self.bus.width,
            control_wires: self.invert.len() + self.skip.len(),
            sync_wires: 0,
        }
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        let beats = self.bus.beats(block);
        let mask = self.bus.mask();
        let mut data = 0u64;
        let mut control = 0u64;
        for beat in 0..beats {
            for s in 0..self.bus.segment_count() {
                let value = self.bus.value_at(block, beat, s);
                let seg = &mut self.bus.segments[s];
                let inv = &mut self.invert[s];
                let skip = &mut self.skip[s];

                // Cost of each legal mode, counting every wire group.
                let plain = seg.flips_to(value)
                    + u32::from(inv.level())
                    + u32::from(skip.level());
                let inverted = seg.flips_to(!value & mask)
                    + u32::from(!inv.level())
                    + u32::from(skip.level());
                let zero_skip = if value == 0 {
                    // Data and invert wires untouched; skip wire raised.
                    Some(u32::from(!skip.level()))
                } else {
                    None
                };

                let best_regular = plain.min(inverted);
                match zero_skip {
                    Some(z) if z < best_regular => {
                        if skip.drive(true) {
                            control += 1;
                        }
                    }
                    _ => {
                        if skip.drive(false) {
                            control += 1;
                        }
                        if inverted < plain {
                            data += u64::from(seg.drive(!value & mask));
                            if inv.drive(true) {
                                control += 1;
                            }
                        } else {
                            data += u64::from(seg.drive(value));
                            if inv.drive(false) {
                                control += 1;
                            }
                        }
                    }
                }
            }
        }
        TransferCost {
            data_transitions: data,
            control_transitions: control,
            sync_transitions: 0,
            latency_cycles: 0,
            cycles: beats as u64,
        }
    }

    fn reset(&mut self) {
        self.bus.reset();
        let n = self.invert.len();
        self.invert = vec![Wire::new(); n];
        self.skip = vec![Wire::new(); n];
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        Box::new(self.clone())
    }
}

/// Bus-invert + zero skipping with a dense encoded mode word (the
/// paper's "denser representation", §4.1).
///
/// Per beat, each segment's mode (0 = non-inverted, 1 = inverted,
/// 2 = skipped-zero) is chosen greedily to minimise data-wire flips;
/// the mode vector is then packed base-3 into a binary *mode word*
/// transmitted over `ceil(segments · log2 3)` shared control wires.
/// This saves wires relative to the sparse variant but the mode word
/// itself switches — the trade-off Fig. 15 explores.
#[derive(Clone, Debug)]
pub struct EncodedZeroSkipBusInvertScheme {
    bus: SegmentedBus,
    mode_bus: Bus,
}

/// Number of wires needed to carry a base-3 mode vector for `segments`
/// segments in binary.
fn mode_word_wires(segments: usize) -> usize {
    // ceil(segments * log2(3)); computed exactly via 3^segments.
    let mut combos = 1u128;
    for _ in 0..segments {
        combos = combos.saturating_mul(3);
    }
    (128 - (combos - 1).leading_zeros()) as usize
}

impl EncodedZeroSkipBusInvertScheme {
    /// Creates the dense encoded variant.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BusInvertScheme::new`], or
    /// if the mode word would not fit in 64 wires (more than 40
    /// segments).
    #[must_use]
    pub fn new(width: usize, segment_bits: usize) -> Self {
        let bus = SegmentedBus::new(width, segment_bits);
        let wires = mode_word_wires(bus.segment_count());
        assert!(wires <= 64, "mode word of {wires} wires exceeds the 64-wire encoder limit");
        Self { bus, mode_bus: Bus::new(wires) }
    }

    /// The segment size in bits.
    #[must_use]
    pub fn segment_bits(&self) -> usize {
        self.bus.segment_bits
    }
}

impl TransferScheme for EncodedZeroSkipBusInvertScheme {
    fn name(&self) -> &'static str {
        "Encoded Zero Skipped Bus Invert"
    }

    fn wires(&self) -> WireBudget {
        WireBudget {
            data_wires: self.bus.width,
            control_wires: self.mode_bus.width(),
            sync_wires: 0,
        }
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        let beats = self.bus.beats(block);
        let mask = self.bus.mask();
        let mut data = 0u64;
        let mut control = 0u64;
        for beat in 0..beats {
            let mut mode_word = 0u64;
            let mut radix = 1u64;
            for s in 0..self.bus.segment_count() {
                let value = self.bus.value_at(block, beat, s);
                let seg = &mut self.bus.segments[s];
                let mode;
                if value == 0 {
                    mode = 2; // skipped: data wires untouched
                } else if seg.flips_to(!value & mask) < seg.flips_to(value) {
                    mode = 1;
                    data += u64::from(seg.drive(!value & mask));
                } else {
                    mode = 0;
                    data += u64::from(seg.drive(value));
                }
                mode_word += mode * radix;
                radix *= 3;
            }
            control += u64::from(self.mode_bus.drive(mode_word));
        }
        TransferCost {
            data_transitions: data,
            control_transitions: control,
            sync_transitions: 0,
            latency_cycles: 0,
            cycles: beats as u64,
        }
    }

    fn reset(&mut self) {
        self.bus.reset();
        self.mode_bus = Bus::new(self.mode_bus.width());
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::BinaryScheme;

    fn flips_for(scheme: &mut dyn TransferScheme, blocks: &[Block]) -> u64 {
        blocks.iter().map(|b| scheme.transfer(b).total_transitions()).sum()
    }

    #[test]
    fn bic_bounds_flips_at_half_plus_one() {
        // Random-ish beats over one 8-bit segment: flips per beat must
        // never exceed S/2 + 1 = 5.
        let mut s = BusInvertScheme::new(8, 8);
        for byte in [0xFFu8, 0x00, 0xAA, 0x55, 0x0F, 0xF0, 0x3C, 0xC3] {
            let cost = s.transfer(&Block::from_bytes(&[byte]));
            assert!(
                cost.total_transitions() <= 5,
                "byte {byte:#x} cost {} > 5",
                cost.total_transitions()
            );
        }
    }

    #[test]
    fn bic_never_beats_binary_by_less_than_zero() {
        // On any block sequence BIC total flips <= binary total flips
        // + segments (the invert wires can cost at most their own
        // settle); with the greedy decision BIC <= binary always.
        let blocks: Vec<Block> = (0..16u8)
            .map(|i| Block::from_bytes(&[i.wrapping_mul(37); 64]))
            .collect();
        let bic = flips_for(&mut BusInvertScheme::new(64, 32), &blocks);
        let bin = flips_for(&mut BinaryScheme::new(64), &blocks);
        assert!(bic <= bin, "BIC {bic} > binary {bin}");
    }

    #[test]
    fn bic_inverts_dense_transitions() {
        let mut s = BusInvertScheme::new(8, 8);
        s.transfer(&Block::from_bytes(&[0x00]));
        // 0x00 → 0xFF: plain 8 flips, inverted 0 data + 1 invert.
        let cost = s.transfer(&Block::from_bytes(&[0xFF]));
        assert_eq!(cost.data_transitions, 0);
        assert_eq!(cost.control_transitions, 1);
    }

    #[test]
    fn zs_bic_skips_zero_segments() {
        let mut s = ZeroSkipBusInvertScheme::new(8, 8);
        s.transfer(&Block::from_bytes(&[0xFF])); // inverted: wires stay 0, inv=1
        // Zero byte: cheaper to raise skip (1 flip) than drive zeros.
        let cost = s.transfer(&Block::from_bytes(&[0x00]));
        assert!(cost.total_transitions() <= 1, "cost {cost}");
    }

    #[test]
    fn zs_bic_beats_plain_bic_on_zero_heavy_streams() {
        // Alternate a dense pattern with null blocks: plain BIC pays
        // the full swing both ways, ZS-BIC parks the data wires and
        // toggles only the skip wires.
        let pattern = Block::from_bytes(&[0xA5; 64]);
        let null = Block::zeroed(64);
        let mut stream = Vec::new();
        for _ in 0..8 {
            stream.push(pattern.clone());
            stream.push(null.clone());
        }
        let zs = flips_for(&mut ZeroSkipBusInvertScheme::new(64, 32), &stream);
        let bic = flips_for(&mut BusInvertScheme::new(64, 32), &stream);
        assert!(zs * 4 < bic, "ZS-BIC {zs} not ≪ BIC {bic}");
    }

    #[test]
    fn encoded_variant_uses_fewer_wires_than_sparse() {
        let sparse = ZeroSkipBusInvertScheme::new(64, 8);
        let dense = EncodedZeroSkipBusInvertScheme::new(64, 8);
        assert!(dense.wires().control_wires < sparse.wires().control_wires);
        // 8 segments → ceil(8·log2 3) = 13 mode wires.
        assert_eq!(dense.wires().control_wires, 13);
    }

    #[test]
    fn mode_word_wires_exact() {
        assert_eq!(mode_word_wires(1), 2); // 3 combos → 2 bits
        assert_eq!(mode_word_wires(2), 4); // 9 combos → 4 bits
        assert_eq!(mode_word_wires(4), 7); // 81 combos → 7 bits
        assert_eq!(mode_word_wires(8), 13); // 6561 → 13 bits
    }

    #[test]
    fn encoded_zero_block_costs_only_mode_switching() {
        let mut s = EncodedZeroSkipBusInvertScheme::new(64, 16);
        let c1 = s.transfer(&Block::zeroed(64));
        assert_eq!(c1.data_transitions, 0);
        // Second zero block: mode word unchanged → fully free.
        let c2 = s.transfer(&Block::zeroed(64));
        assert_eq!(c2.total_transitions(), 0);
    }

    #[test]
    fn all_variants_report_binary_beat_latency() {
        let block = Block::zeroed(64);
        assert_eq!(BusInvertScheme::new(64, 32).transfer(&block).cycles, 8);
        assert_eq!(ZeroSkipBusInvertScheme::new(64, 32).transfer(&block).cycles, 8);
        assert_eq!(EncodedZeroSkipBusInvertScheme::new(64, 16).transfer(&block).cycles, 8);
    }

    #[test]
    fn reset_restores_determinism() {
        let block = Block::from_bytes(&[0xE7; 64]);
        let mut s = ZeroSkipBusInvertScheme::new(64, 16);
        let first = s.transfer(&block);
        s.reset();
        assert_eq!(s.transfer(&block), first);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn segment_must_divide_width() {
        let _ = BusInvertScheme::new(64, 48);
    }
}
