//! Dynamic zero compression (Villa, Zhang & Asanović \[12\]) applied to
//! the cache data bus.
//!
//! Each `segment_bits`-wide slice of the bus gets one *zero-indicator*
//! wire. When a segment's value is zero the indicator is asserted and
//! the data wires are left undriven (they hold their previous level);
//! otherwise the indicator is deasserted and the value is driven in
//! plain binary. The paper sweeps the segment size from 4 to 64 bits
//! (Fig. 15) and uses the best configuration (8-bit) as a baseline.

use crate::block::{Block, BlockSlab};
use crate::cost::{TransferCost, WireBudget};
use crate::scheme::TransferScheme;
use crate::wire::{Bus, Wire};

/// Dynamic zero compression over a segmented bus.
///
/// # Examples
///
/// ```
/// use desc_core::{Block, TransferScheme, schemes::DzcScheme};
///
/// let mut s = DzcScheme::new(64, 8);
/// // An all-zero block costs only the indicator assertions.
/// let cost = s.transfer(&Block::zeroed(64));
/// assert_eq!(cost.data_transitions, 0);
/// assert_eq!(cost.control_transitions, 8); // 8 indicators rise once
/// ```
#[derive(Clone, Debug)]
pub struct DzcScheme {
    segments: Vec<Bus>,
    indicators: Vec<Wire>,
    segment_bits: usize,
    width: usize,
}

impl DzcScheme {
    /// Creates a DZC scheme over a `width`-wire bus with
    /// `segment_bits`-wide zero-detect segments.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `segment_bits` is zero, if `segment_bits`
    /// exceeds 64, or if `segment_bits` does not divide `width`.
    #[must_use]
    pub fn new(width: usize, segment_bits: usize) -> Self {
        assert!(width > 0, "bus width must be positive");
        assert!(
            (1..=64).contains(&segment_bits),
            "segment size {segment_bits} out of range (1–64)"
        );
        assert!(
            width.is_multiple_of(segment_bits),
            "segment size {segment_bits} must divide bus width {width}"
        );
        let n = width / segment_bits;
        Self {
            segments: vec![Bus::new(segment_bits); n],
            indicators: vec![Wire::new(); n],
            segment_bits,
            width,
        }
    }

    /// The data-bus width in wires.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The segment size in bits.
    #[must_use]
    pub fn segment_bits(&self) -> usize {
        self.segment_bits
    }

    /// Drives one segment for one beat: zero values assert the
    /// indicator and freeze the data wires; non-zero values deassert it
    /// and drive plain binary. Returns the data flips.
    fn drive_segment(seg: &mut Bus, ind: &mut Wire, value: u64, control: &mut u64) -> u32 {
        if value == 0 {
            if ind.drive(true) {
                *control += 1;
            }
            0
        } else {
            if ind.drive(false) {
                *control += 1;
            }
            seg.drive(value)
        }
    }
}

impl TransferScheme for DzcScheme {
    fn name(&self) -> &'static str {
        "Dynamic Zero Compression"
    }

    fn wires(&self) -> WireBudget {
        WireBudget {
            data_wires: self.width,
            control_wires: self.indicators.len(),
            sync_wires: 0,
        }
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        let beats = block.bit_len().div_ceil(self.width);
        let mut data = 0u64;
        let mut control = 0u64;
        for beat in 0..beats {
            for (s, (seg, ind)) in self.segments.iter_mut().zip(&mut self.indicators).enumerate() {
                let base = beat * self.width + s * self.segment_bits;
                // Whole-segment extraction (bits past the block's end
                // read zero, exactly like the undriven bus).
                let value = block.word_bits(base, self.segment_bits);
                data += u64::from(Self::drive_segment(seg, ind, value, &mut control));
            }
        }
        TransferCost {
            data_transitions: data,
            control_transitions: control,
            sync_transitions: 0,
            latency_cycles: 0,
            cycles: beats as u64,
        }
    }

    /// Batched kernel: segment values come straight out of the slab's
    /// packed words, skipping the per-block scratch copy of the
    /// default loop. Wire state updates are already O(1) per segment
    /// (word-packed [`Bus`]), so they run in place.
    fn transfer_many(&mut self, slab: &BlockSlab, costs: &mut Vec<TransferCost>) {
        let beats = slab.bit_len().div_ceil(self.width);
        costs.reserve(slab.len());
        for b in 0..slab.len() {
            let mut data = 0u64;
            let mut control = 0u64;
            for beat in 0..beats {
                for (s, (seg, ind)) in
                    self.segments.iter_mut().zip(&mut self.indicators).enumerate()
                {
                    let base = beat * self.width + s * self.segment_bits;
                    let value = slab.word_bits(b, base, self.segment_bits);
                    data += u64::from(Self::drive_segment(seg, ind, value, &mut control));
                }
            }
            costs.push(TransferCost {
                data_transitions: data,
                control_transitions: control,
                sync_transitions: 0,
                latency_cycles: 0,
                cycles: beats as u64,
            });
        }
    }

    fn reset(&mut self) {
        let n = self.segments.len();
        self.segments = vec![Bus::new(self.segment_bits); n];
        self.indicators = vec![Wire::new(); n];
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_blocks_cost_only_indicators() {
        let mut s = DzcScheme::new(64, 8);
        let first = s.transfer(&Block::zeroed(64));
        assert_eq!(first.data_transitions, 0);
        assert_eq!(first.control_transitions, 8);
        // Indicators stay asserted: a second zero block is free.
        let second = s.transfer(&Block::zeroed(64));
        assert_eq!(second.total_transitions(), 0);
    }

    #[test]
    fn nonzero_segments_pay_binary_cost_plus_indicator() {
        let mut s = DzcScheme::new(8, 8);
        let cost = s.transfer(&Block::from_bytes(&[0b0101_0011]));
        // 4 data flips (as binary), indicator stays deasserted (no flip).
        assert_eq!(cost.data_transitions, 4);
        assert_eq!(cost.control_transitions, 0);
    }

    #[test]
    fn zero_segment_freezes_data_wires() {
        let mut s = DzcScheme::new(8, 8);
        s.transfer(&Block::from_bytes(&[0xFF]));
        // Zero byte: data wires keep holding 0xFF, only indicator flips.
        let cost = s.transfer(&Block::from_bytes(&[0x00]));
        assert_eq!(cost.data_transitions, 0);
        assert_eq!(cost.control_transitions, 1);
        // Returning to 0xFF costs nothing on data (wires never moved)
        // but the indicator falls.
        let back = s.transfer(&Block::from_bytes(&[0xFF]));
        assert_eq!(back.data_transitions, 0);
        assert_eq!(back.control_transitions, 1);
    }

    #[test]
    fn sparse_block_is_much_cheaper_than_binary() {
        use crate::schemes::BinaryScheme;
        let mut bytes = [0u8; 64];
        bytes[7] = 0xAB;
        let block = Block::from_bytes(&bytes);
        // Alternate with a dense block to create binary switching.
        let dense = Block::from_bytes(&[0xFF; 64]);

        let mut dzc = DzcScheme::new(64, 8);
        let mut bin = BinaryScheme::new(64);
        let mut dzc_total = 0;
        let mut bin_total = 0;
        for _ in 0..4 {
            dzc_total += dzc.transfer(&block).total_transitions();
            dzc_total += dzc.transfer(&dense).total_transitions();
            bin_total += bin.transfer(&block).total_transitions();
            bin_total += bin.transfer(&dense).total_transitions();
        }
        assert!(dzc_total < bin_total, "DZC {dzc_total} !< binary {bin_total}");
    }

    #[test]
    fn cycles_match_binary_beats() {
        let mut s = DzcScheme::new(64, 8);
        assert_eq!(s.transfer(&Block::zeroed(64)).cycles, 8);
    }

    #[test]
    fn paper_segment_sweep_configs_construct() {
        for seg in [4, 8, 16, 32, 64] {
            let s = DzcScheme::new(64, seg);
            assert_eq!(s.wires().control_wires, 64 / seg);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn segment_must_divide_width() {
        let _ = DzcScheme::new(64, 24);
    }
}
