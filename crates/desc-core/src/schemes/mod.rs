//! The eight data-transfer schemes evaluated in the paper's Fig. 16,
//! plus bit-serial transfer from the illustrative Fig. 3.
//!
//! | Scheme | Paper section | Type |
//! |---|---|---|
//! | Conventional binary | §4.1 | [`BinaryScheme`] |
//! | Bit-serial | Fig. 3-b | [`SerialScheme`] |
//! | Dynamic zero compression | Villa et al. \[12\] | [`DzcScheme`] |
//! | Bus-invert coding | Stan & Burleson \[15\] | [`BusInvertScheme`] |
//! | Zero-skipped bus-invert (sparse) | §4.1 | [`ZeroSkipBusInvertScheme`] |
//! | Encoded zero-skipped bus-invert (dense) | §4.1 | [`EncodedZeroSkipBusInvertScheme`] |
//! | Basic DESC | §3.1 | [`DescScheme`] with [`SkipMode::None`] |
//! | Zero-skipped DESC | §3.3 | [`DescScheme`] with [`SkipMode::Zero`] |
//! | Last-value-skipped DESC | §3.3 | [`DescScheme`] with [`SkipMode::LastValue`] |

mod adaptive;
mod binary;
mod bus_invert;
mod desc;
mod dzc;
mod serial;

pub use adaptive::AdaptiveDescScheme;
pub use binary::BinaryScheme;
pub use bus_invert::{BusInvertScheme, EncodedZeroSkipBusInvertScheme, ZeroSkipBusInvertScheme};
pub use desc::{DescScheme, SkipMode};
pub use dzc::DzcScheme;
pub use serial::SerialScheme;

use crate::chunk::ChunkSize;
use crate::scheme::TransferScheme;

/// Identifies one of the schemes compared in the paper's evaluation, in
/// the order of Fig. 16's legend.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SchemeKind {
    /// Conventional binary encoding over the data bus.
    ConventionalBinary,
    /// Dynamic zero compression with per-segment zero-indicator wires.
    DynamicZeroCompression,
    /// Classic bus-invert coding with per-segment invert wires.
    BusInvertCoding,
    /// Bus-invert extended with a per-segment zero-skip wire (sparse).
    ZeroSkippedBusInvert,
    /// Bus-invert + zero skipping with a dense encoded mode word.
    EncodedZeroSkippedBusInvert,
    /// DESC without value skipping.
    BasicDesc,
    /// DESC with the skip value fixed at zero.
    ZeroSkippedDesc,
    /// DESC with the skip value tracking the last value per wire.
    LastValueSkippedDesc,
}

impl SchemeKind {
    /// All schemes, in Fig. 16 legend order.
    pub const ALL: [SchemeKind; 8] = [
        SchemeKind::ConventionalBinary,
        SchemeKind::DynamicZeroCompression,
        SchemeKind::BusInvertCoding,
        SchemeKind::ZeroSkippedBusInvert,
        SchemeKind::EncodedZeroSkippedBusInvert,
        SchemeKind::BasicDesc,
        SchemeKind::ZeroSkippedDesc,
        SchemeKind::LastValueSkippedDesc,
    ];

    /// The figure-legend name of the scheme.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::ConventionalBinary => "Conventional Binary",
            SchemeKind::DynamicZeroCompression => "Dynamic Zero Compression",
            SchemeKind::BusInvertCoding => "Bus Invert Coding",
            SchemeKind::ZeroSkippedBusInvert => "Zero Skipped Bus Invert",
            SchemeKind::EncodedZeroSkippedBusInvert => "Encoded Zero Skipped Bus Invert",
            SchemeKind::BasicDesc => "Basic DESC",
            SchemeKind::ZeroSkippedDesc => "Zero Skipped DESC",
            SchemeKind::LastValueSkippedDesc => "Last Value Skipped DESC",
        }
    }

    /// True for the three DESC variants.
    #[must_use]
    pub fn is_desc(self) -> bool {
        matches!(
            self,
            SchemeKind::BasicDesc | SchemeKind::ZeroSkippedDesc | SchemeKind::LastValueSkippedDesc
        )
    }

    /// Instantiates the scheme with the paper's evaluation configuration
    /// (§4.1): a 64-bit data bus for the binary-family baselines with
    /// each baseline's best segment size from Fig. 15, and a 128-wire
    /// 4-bit-chunk interface for the DESC variants.
    #[must_use]
    pub fn build_paper_config(self) -> Box<dyn TransferScheme> {
        // Best Fig. 15 segment sizes (marked with stars in the paper):
        // DZC 8-bit, BIC 32-bit, BIC+ZS 32-bit, BIC+encoded-ZS 16-bit.
        match self {
            SchemeKind::ConventionalBinary => Box::new(BinaryScheme::new(64)),
            SchemeKind::DynamicZeroCompression => Box::new(DzcScheme::new(64, 8)),
            SchemeKind::BusInvertCoding => Box::new(BusInvertScheme::new(64, 32)),
            SchemeKind::ZeroSkippedBusInvert => Box::new(ZeroSkipBusInvertScheme::new(64, 32)),
            SchemeKind::EncodedZeroSkippedBusInvert => {
                Box::new(EncodedZeroSkipBusInvertScheme::new(64, 16))
            }
            SchemeKind::BasicDesc => {
                Box::new(DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::None))
            }
            SchemeKind::ZeroSkippedDesc => {
                Box::new(DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero))
            }
            SchemeKind::LastValueSkippedDesc => {
                Box::new(DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::LastValue))
            }
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    #[test]
    fn all_schemes_instantiate_and_transfer() {
        let block = Block::from_bytes(&[0x5A; 64]);
        for kind in SchemeKind::ALL {
            let mut s = kind.build_paper_config();
            let cost = s.transfer(&block);
            assert!(cost.cycles > 0, "{kind} reported zero cycles");
            assert!(cost.total_transitions() > 0, "{kind} reported zero transitions");
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = SchemeKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), SchemeKind::ALL.len());
    }

    #[test]
    fn is_desc_classification() {
        assert!(SchemeKind::BasicDesc.is_desc());
        assert!(SchemeKind::ZeroSkippedDesc.is_desc());
        assert!(SchemeKind::LastValueSkippedDesc.is_desc());
        assert!(!SchemeKind::ConventionalBinary.is_desc());
        assert!(!SchemeKind::BusInvertCoding.is_desc());
    }
}
