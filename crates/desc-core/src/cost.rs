//! Transfer cost accounting — the common currency of all schemes.
//!
//! A [`TransferCost`] reports, for one cache-block transfer, the exact
//! number of wire transitions broken down by wire class, the transfer
//! latency in bus clock cycles, and the wire counts the scheme occupies.
//! Energy models downstream (the `desc-cacti` crate) convert transitions
//! into joules; performance models convert cycles into hit latency.

use crate::wire::WireClass;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Exact cost of transferring one block over the interconnect.
///
/// # Examples
///
/// ```
/// use desc_core::TransferCost;
///
/// let a = TransferCost { data_transitions: 4, cycles: 1, ..TransferCost::ZERO };
/// let b = TransferCost { data_transitions: 2, control_transitions: 1, cycles: 3, ..TransferCost::ZERO };
/// let sum = a + b;
/// assert_eq!(sum.total_transitions(), 7);
/// assert_eq!(sum.cycles, 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TransferCost {
    /// Transitions on the data wires of the bus.
    pub data_transitions: u64,
    /// Transitions on shared strobe wires (DESC reset/skip) and
    /// per-segment control wires (invert / zero-indicator / mode wires).
    pub control_transitions: u64,
    /// Transitions on the synchronization strobe (DESC only).
    pub sync_transitions: u64,
    /// Bus clock cycles the transfer occupies the link.
    pub cycles: u64,
    /// Effective latency in bus clock cycles before the receiver can
    /// use the block — the critical-path delay, which for DESC sits at
    /// the *effective* window position rather than the worst strobe
    /// (Fig. 21's window interpretation). `0` is a sentinel meaning
    /// "same as `cycles`"; read through [`TransferCost::latency`]. Only
    /// latency accounting uses this — occupancy, queueing and energy
    /// keep using `cycles`.
    pub latency_cycles: u64,
}

impl TransferCost {
    /// The zero cost (no transfer).
    pub const ZERO: TransferCost = TransferCost {
        data_transitions: 0,
        control_transitions: 0,
        sync_transitions: 0,
        cycles: 0,
        latency_cycles: 0,
    };

    /// Effective receiver latency in cycles.
    ///
    /// Falls back to `cycles` (full link occupancy) for schemes that do
    /// not distinguish the two — all fixed-cycle baselines.
    ///
    /// # Examples
    ///
    /// ```
    /// use desc_core::TransferCost;
    ///
    /// let fixed = TransferCost { cycles: 4, ..TransferCost::ZERO };
    /// assert_eq!(fixed.latency(), 4);
    /// let desc = TransferCost { cycles: 14, latency_cycles: 9, ..TransferCost::ZERO };
    /// assert_eq!(desc.latency(), 9);
    /// ```
    #[must_use]
    pub fn latency(&self) -> u64 {
        if self.latency_cycles == 0 { self.cycles } else { self.latency_cycles }
    }

    /// Transitions summed over every wire class.
    #[must_use]
    pub fn total_transitions(&self) -> u64 {
        self.data_transitions + self.control_transitions + self.sync_transitions
    }

    /// Adds `n` transitions attributed to `class`.
    pub fn add_transitions(&mut self, class: WireClass, n: u64) {
        match class {
            WireClass::Data => self.data_transitions += n,
            WireClass::ResetSkip | WireClass::Control => self.control_transitions += n,
            WireClass::Sync => self.sync_transitions += n,
        }
    }
}

impl Add for TransferCost {
    type Output = TransferCost;

    fn add(mut self, rhs: TransferCost) -> TransferCost {
        self += rhs;
        self
    }
}

impl AddAssign for TransferCost {
    fn add_assign(&mut self, rhs: TransferCost) {
        // Resolve latencies before mutating `cycles` so the sentinel
        // ("0 means same as cycles") is read against the pre-add state.
        // The sum stays in sentinel form when both operands are — this
        // keeps `c + ZERO == c` exact for plain costs.
        let latency_sum = if self.latency_cycles == 0 && rhs.latency_cycles == 0 {
            0
        } else {
            self.latency() + rhs.latency()
        };
        self.data_transitions += rhs.data_transitions;
        self.control_transitions += rhs.control_transitions;
        self.sync_transitions += rhs.sync_transitions;
        self.cycles += rhs.cycles;
        self.latency_cycles = latency_sum;
    }
}

impl Sum for TransferCost {
    fn sum<I: Iterator<Item = TransferCost>>(iter: I) -> TransferCost {
        iter.fold(TransferCost::ZERO, Add::add)
    }
}

impl fmt::Display for TransferCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} data + {} ctrl + {} sync transitions in {} cycles",
            self.data_transitions, self.control_transitions, self.sync_transitions, self.cycles
        )
    }
}

/// Wire resources a scheme occupies, used for area accounting and for
/// normalising energy across schemes with different wire counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireBudget {
    /// Data wires in the bus.
    pub data_wires: usize,
    /// Shared strobes plus per-segment control wires.
    pub control_wires: usize,
    /// Synchronization strobe wires (0 or 1).
    pub sync_wires: usize,
}

impl WireBudget {
    /// Total physical wires.
    #[must_use]
    pub fn total(&self) -> usize {
        self.data_wires + self.control_wires + self.sync_wires
    }
}

impl fmt::Display for WireBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} data + {} ctrl + {} sync wires",
            self.data_wires, self.control_wires, self.sync_wires
        )
    }
}

/// Running aggregate over many block transfers, with convenience
/// statistics used throughout the evaluation.
///
/// # Examples
///
/// ```
/// use desc_core::{CostSummary, TransferCost};
///
/// let mut s = CostSummary::new();
/// s.record(TransferCost { data_transitions: 4, cycles: 2, ..TransferCost::ZERO });
/// s.record(TransferCost { data_transitions: 2, cycles: 4, ..TransferCost::ZERO });
/// assert_eq!(s.blocks(), 2);
/// assert_eq!(s.mean_cycles(), 3.0);
/// assert_eq!(s.total().data_transitions, 6);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CostSummary {
    total: TransferCost,
    blocks: u64,
    max_cycles: u64,
}

impl CostSummary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a summary from its serialized parts (the cache
    /// codec round-trips `total()`/`blocks()`/`max_cycles()` through
    /// this). Does not touch telemetry — replaying cached metrics is
    /// the caller's job.
    #[must_use]
    pub fn from_parts(total: TransferCost, blocks: u64, max_cycles: u64) -> Self {
        Self { total, blocks, max_cycles }
    }

    /// Records the cost of one block transfer.
    ///
    /// When telemetry is enabled the transfer is also mirrored into
    /// the global registry (`core.cost.*`) — this is the one point
    /// every scheme's every block passes through. All updates are
    /// order-independent, so totals are identical for any sweep
    /// worker count.
    pub fn record(&mut self, cost: TransferCost) {
        self.total += cost;
        self.blocks += 1;
        self.max_cycles = self.max_cycles.max(cost.cycles);
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("core.cost.blocks").incr();
            desc_telemetry::counter!("core.cost.data_transitions").add(cost.data_transitions);
            desc_telemetry::counter!("core.cost.control_transitions")
                .add(cost.control_transitions);
            desc_telemetry::counter!("core.cost.sync_transitions").add(cost.sync_transitions);
            desc_telemetry::counter!("core.cost.cycles").add(cost.cycles);
            desc_telemetry::gauge!("core.cost.max_cycles").record_max(cost.cycles);
        }
    }

    /// Number of blocks recorded.
    #[must_use]
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Summed cost over all recorded blocks.
    #[must_use]
    pub fn total(&self) -> TransferCost {
        self.total
    }

    /// Mean transitions per block (all wire classes).
    #[must_use]
    pub fn mean_transitions(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.total.total_transitions() as f64 / self.blocks as f64
        }
    }

    /// Mean transfer latency per block in cycles.
    #[must_use]
    pub fn mean_cycles(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.total.cycles as f64 / self.blocks as f64
        }
    }

    /// Mean *effective* receiver latency per block in cycles (see
    /// [`TransferCost::latency`]); equals [`CostSummary::mean_cycles`]
    /// for schemes without a distinct effective window.
    #[must_use]
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.total.latency() as f64 / self.blocks as f64
        }
    }

    /// Worst-case transfer latency observed.
    #[must_use]
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &CostSummary) {
        self.total += other.total;
        self.blocks += other.blocks;
        self.max_cycles = self.max_cycles.max(other.max_cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_is_identity() {
        let c = TransferCost {
            data_transitions: 3,
            control_transitions: 2,
            sync_transitions: 1,
            cycles: 7,
            latency_cycles: 0,
        };
        assert_eq!(c + TransferCost::ZERO, c);
        assert_eq!(c.total_transitions(), 6);
    }

    #[test]
    fn add_transitions_routes_by_class() {
        let mut c = TransferCost::ZERO;
        c.add_transitions(WireClass::Data, 5);
        c.add_transitions(WireClass::ResetSkip, 2);
        c.add_transitions(WireClass::Control, 1);
        c.add_transitions(WireClass::Sync, 4);
        assert_eq!(c.data_transitions, 5);
        assert_eq!(c.control_transitions, 3);
        assert_eq!(c.sync_transitions, 4);
    }

    #[test]
    fn sum_over_iterator() {
        let costs = vec![
            TransferCost { data_transitions: 1, cycles: 1, ..TransferCost::ZERO },
            TransferCost { data_transitions: 2, cycles: 2, ..TransferCost::ZERO },
        ];
        let s: TransferCost = costs.into_iter().sum();
        assert_eq!(s.data_transitions, 3);
        assert_eq!(s.cycles, 3);
    }

    #[test]
    fn summary_statistics() {
        let mut s = CostSummary::new();
        assert_eq!(s.mean_transitions(), 0.0);
        s.record(TransferCost { data_transitions: 10, cycles: 5, ..TransferCost::ZERO });
        s.record(TransferCost { data_transitions: 20, sync_transitions: 2, cycles: 15, ..TransferCost::ZERO });
        assert_eq!(s.mean_transitions(), 16.0);
        assert_eq!(s.mean_cycles(), 10.0);
        assert_eq!(s.max_cycles(), 15);
    }

    #[test]
    fn summary_merge_combines() {
        let mut a = CostSummary::new();
        a.record(TransferCost { cycles: 3, ..TransferCost::ZERO });
        let mut b = CostSummary::new();
        b.record(TransferCost { cycles: 9, ..TransferCost::ZERO });
        a.merge(&b);
        assert_eq!(a.blocks(), 2);
        assert_eq!(a.max_cycles(), 9);
    }

    #[test]
    fn latency_sentinel_resolves_and_sums() {
        // Sentinel: 0 reads as `cycles`.
        let plain = TransferCost { cycles: 7, ..TransferCost::ZERO };
        assert_eq!(plain.latency(), 7);

        // Adding two sentinel costs stays in sentinel form (ZERO identity).
        let sum = plain + TransferCost { cycles: 3, ..TransferCost::ZERO };
        assert_eq!(sum.latency_cycles, 0);
        assert_eq!(sum.latency(), 10);

        // Mixing sentinel and explicit latencies resolves both sides.
        let desc = TransferCost { cycles: 14, latency_cycles: 9, ..TransferCost::ZERO };
        let mixed = plain + desc;
        assert_eq!(mixed.cycles, 21);
        assert_eq!(mixed.latency(), 7 + 9);
        let mixed_rev = desc + plain;
        assert_eq!(mixed_rev.latency(), 9 + 7);

        let mut s = CostSummary::new();
        s.record(plain);
        s.record(desc);
        assert_eq!(s.mean_cycles(), 10.5);
        assert_eq!(s.mean_latency_cycles(), 8.0);
    }

    #[test]
    fn wire_budget_total() {
        let w = WireBudget { data_wires: 128, control_wires: 1, sync_wires: 1 };
        assert_eq!(w.total(), 130);
        assert!(format!("{w}").contains("128 data"));
    }
}
