//! Synthesis-style area / power / delay estimates for the DESC
//! transmitter and receiver (paper §4.3, Fig. 17, Table 3).
//!
//! The paper implements DESC in Verilog and synthesizes it with Cadence
//! RTL Compiler on FreePDK45, scaling the results to 22 nm. Neither
//! tool exists here, so this module substitutes a transparent
//! gate-count estimator: each building block (chunk registers,
//! comparators, counters, toggle generators/detectors) is expressed in
//! NAND2-equivalent gates, and technology constants convert gate counts
//! into area, peak power, and critical-path delay. The constants are
//! calibrated so the paper's 128-chunk interface lands on its published
//! figures (≈2120 µm², 46 mW peak, 625 ps added round-trip delay); the
//! *model* then extrapolates to other chunk counts and chunk sizes for
//! the sensitivity studies.

use crate::chunk::ChunkSize;
use std::fmt;

/// Technology parameters from the paper's Table 3.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TechNode {
    /// Feature size in nanometres.
    pub feature_nm: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Fanout-of-4 inverter delay in picoseconds.
    pub fo4_ps: f64,
}

impl TechNode {
    /// 45 nm (FreePDK45): 1.1 V, FO4 = 20.25 ps.
    pub const NM45: TechNode = TechNode { feature_nm: 45.0, vdd: 1.1, fo4_ps: 20.25 };

    /// 22 nm (ITRS): 0.83 V, FO4 = 11.75 ps.
    pub const NM22: TechNode = TechNode { feature_nm: 22.0, vdd: 0.83, fo4_ps: 11.75 };

    /// NAND2-equivalent layout area at this node in µm².
    ///
    /// Calibrated so a 45 nm NAND2 is ≈1.0 µm² (typical of FreePDK45
    /// standard cells) and scales with the square of feature size.
    #[must_use]
    pub fn gate_area_um2(&self) -> f64 {
        1.0 * (self.feature_nm / 45.0).powi(2)
    }

    /// Switching energy per NAND2-equivalent toggle in femtojoules,
    /// including local wiring load. Scales as C·V² with C ∝ feature
    /// size; ≈8 fJ at 45 nm / 1.1 V (standard cell plus routed load).
    #[must_use]
    pub fn gate_energy_fj(&self) -> f64 {
        8.0 * (self.feature_nm / 45.0) * (self.vdd / 1.1).powi(2)
    }
}

/// A synthesized-block estimate.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SynthesisEstimate {
    /// Layout area in µm².
    pub area_um2: f64,
    /// Peak dynamic power in milliwatts (all gates switching at the
    /// design activity factor at the target clock).
    pub peak_power_mw: f64,
    /// Critical-path (logic) delay in nanoseconds.
    pub delay_ns: f64,
}

impl SynthesisEstimate {
    fn add(self, other: SynthesisEstimate) -> SynthesisEstimate {
        SynthesisEstimate {
            area_um2: self.area_um2 + other.area_um2,
            peak_power_mw: self.peak_power_mw + other.peak_power_mw,
            delay_ns: self.delay_ns + other.delay_ns,
        }
    }
}

impl fmt::Display for SynthesisEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} µm², {:.1} mW peak, {:.3} ns",
            self.area_um2, self.peak_power_mw, self.delay_ns
        )
    }
}

/// Gate-count model of a DESC interface (paper Fig. 6: chunk
/// transmitters with comparators and FIFO registers, a shared counter,
/// toggle generators; chunk receivers with registers, a counter and
/// toggle detectors).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DescInterfaceModel {
    /// Number of chunks handled per block (paper: 128).
    pub chunks: usize,
    /// Chunk width (paper: 4 bits).
    pub chunk_size: ChunkSize,
    /// Target technology.
    pub node: TechNode,
    /// Clock frequency in GHz for peak-power accounting (paper: 3.2).
    pub clock_ghz: f64,
}

/// NAND2-equivalent gate counts for standard blocks.
const GATES_PER_FF: f64 = 6.0;
const GATES_PER_COMPARATOR_BIT: f64 = 2.5;
const GATES_PER_COUNTER_BIT: f64 = 3.0;
const GATES_PER_TOGGLE_GEN: f64 = 8.0;
const GATES_PER_TOGGLE_DET: f64 = 4.0;
/// Shared control (FSM, ready/skip logic) per interface side.
const CONTROL_GATES: f64 = 200.0;
/// Fraction of gates switching simultaneously at peak (worst case: all
/// comparators firing and every register loading in the same cycle).
const PEAK_ACTIVITY: f64 = 0.7;
/// Critical-path depth in FO4 per interface side (counter increment →
/// comparator → toggle generator, plus register setup).
const PATH_DEPTH_FO4: f64 = 26.0;

impl DescInterfaceModel {
    /// The paper's synthesized configuration: 128 chunks × 4 bits at
    /// 22 nm (scaled from 45 nm), 3.2 GHz clock.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            chunks: 128,
            chunk_size: ChunkSize::PAPER_DEFAULT,
            node: TechNode::NM22,
            clock_ghz: 3.2,
        }
    }

    fn estimate_from_gates(&self, gates: f64) -> SynthesisEstimate {
        let area_um2 = gates * self.node.gate_area_um2();
        let peak_power_mw = gates
            * PEAK_ACTIVITY
            * self.node.gate_energy_fj()
            * self.clock_ghz
            * 1e-3; // fJ × GHz = µW; ×1e-3 → mW
        let delay_ns = PATH_DEPTH_FO4 * self.node.fo4_ps * 1e-3;
        SynthesisEstimate { area_um2, peak_power_mw, delay_ns }
    }

    /// Transmitter gate count: per-chunk value registers and
    /// comparators, one toggle generator per data wire plus the
    /// reset/skip and sync generators, a chunk-size counter, and
    /// control.
    #[must_use]
    pub fn transmitter_gates(&self) -> f64 {
        let bits = self.chunks as f64 * f64::from(self.chunk_size.bits());
        let registers = bits * GATES_PER_FF;
        let comparators = bits * GATES_PER_COMPARATOR_BIT;
        let counter = f64::from(self.chunk_size.bits()) * GATES_PER_COUNTER_BIT;
        let toggles = (self.chunks as f64 + 2.0) * GATES_PER_TOGGLE_GEN;
        registers + comparators + counter + toggles + CONTROL_GATES
    }

    /// Receiver gate count: per-chunk capture registers, one toggle
    /// detector per wire, a counter, and control.
    #[must_use]
    pub fn receiver_gates(&self) -> f64 {
        let bits = self.chunks as f64 * f64::from(self.chunk_size.bits());
        let registers = bits * GATES_PER_FF;
        let counter = f64::from(self.chunk_size.bits()) * GATES_PER_COUNTER_BIT;
        let detectors = (self.chunks as f64 + 2.0) * GATES_PER_TOGGLE_DET;
        registers + counter + detectors + CONTROL_GATES
    }

    /// Synthesis estimate for the transmitter.
    #[must_use]
    pub fn transmitter(&self) -> SynthesisEstimate {
        self.estimate_from_gates(self.transmitter_gates())
    }

    /// Synthesis estimate for the receiver.
    #[must_use]
    pub fn receiver(&self) -> SynthesisEstimate {
        self.estimate_from_gates(self.receiver_gates())
    }

    /// Combined transmitter + receiver estimate (the "DESC interface"
    /// of Fig. 17; delays add because the paper reports the added
    /// round-trip latency of the pair).
    #[must_use]
    pub fn interface(&self) -> SynthesisEstimate {
        self.transmitter().add(self.receiver())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: f64, target: f64, tolerance: f64) -> bool {
        (actual - target).abs() <= target * tolerance
    }

    /// Paper §5.1: the synthesized interface occupies ≈2120 µm², peaks
    /// at ≈46 mW, and adds ≈625 ps of logic delay.
    #[test]
    fn paper_figures_reproduced_within_tolerance() {
        let m = DescInterfaceModel::paper_default();
        let i = m.interface();
        assert!(within(i.area_um2, 2120.0, 0.25), "area {:.0} µm² vs 2120", i.area_um2);
        assert!(within(i.peak_power_mw, 46.0, 0.25), "power {:.1} mW vs 46", i.peak_power_mw);
        assert!(within(i.delay_ns, 0.625, 0.25), "delay {:.3} ns vs 0.625", i.delay_ns);
    }

    #[test]
    fn transmitter_larger_than_receiver() {
        // Fig. 17: the transmitter dominates (comparators + generators).
        let m = DescInterfaceModel::paper_default();
        assert!(m.transmitter().area_um2 > m.receiver().area_um2);
        assert!(m.transmitter().peak_power_mw > m.receiver().peak_power_mw);
    }

    #[test]
    fn area_scales_with_chunk_count() {
        let small = DescInterfaceModel { chunks: 16, ..DescInterfaceModel::paper_default() };
        let large = DescInterfaceModel::paper_default();
        let ratio = large.interface().area_um2 / small.interface().area_um2;
        assert!(ratio > 5.0 && ratio < 8.5, "unexpected scaling ratio {ratio:.2}");
    }

    #[test]
    fn node_scaling_shrinks_area_and_power() {
        let nm22 = DescInterfaceModel::paper_default();
        let nm45 = DescInterfaceModel { node: TechNode::NM45, ..nm22 };
        assert!(nm45.interface().area_um2 > 3.0 * nm22.interface().area_um2);
        assert!(nm45.interface().peak_power_mw > nm22.interface().peak_power_mw);
        assert!(nm45.interface().delay_ns > nm22.interface().delay_ns);
    }

    #[test]
    fn display_formats_all_fields() {
        let s = DescInterfaceModel::paper_default().interface();
        let text = format!("{s}");
        assert!(text.contains("µm²") && text.contains("mW") && text.contains("ns"));
    }
}
