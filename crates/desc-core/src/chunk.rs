//! Block ⇄ chunk partitioning and chunk-to-wire assignment (paper §3.1,
//! Fig. 4).
//!
//! DESC partitions a cache block into fixed-size contiguous chunks; each
//! chunk is assigned to a specific data wire. When there are more chunks
//! than wires, wire `w` carries chunks `w, w + W, w + 2·W, …` (Fig. 4-b
//! shows wire 1 carrying chunks 1 and 65 for 128 chunks on 64 wires), so
//! the block is moved in `ceil(chunks / wires)` successive *rounds*.

use crate::block::Block;
use std::fmt;

/// A validated chunk width in bits (1–8, paper §5.6.2 sweeps 1–8).
///
/// # Examples
///
/// ```
/// use desc_core::ChunkSize;
///
/// let c = ChunkSize::new(4).unwrap();
/// assert_eq!(c.bits(), 4);
/// assert_eq!(c.value_count(), 16);
/// assert!(ChunkSize::new(0).is_none());
/// assert!(ChunkSize::new(9).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChunkSize(u8);

impl ChunkSize {
    /// The paper's default chunk size (4 bits — best energy-delay
    /// product, §5.6.2).
    pub const PAPER_DEFAULT: ChunkSize = ChunkSize(4);

    /// Creates a chunk size, returning `None` unless `1 <= bits <= 8`.
    #[must_use]
    pub fn new(bits: u8) -> Option<Self> {
        (1..=8).contains(&bits).then_some(Self(bits))
    }

    /// Width in bits.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Number of distinct values a chunk can hold (`2^bits`).
    #[must_use]
    pub fn value_count(self) -> u16 {
        1 << self.0
    }

    /// Largest value a chunk can hold.
    #[must_use]
    pub fn max_value(self) -> u16 {
        self.value_count() - 1
    }

    /// Number of chunks needed to carry `bit_len` bits (final chunk
    /// zero-padded when the width does not divide evenly).
    #[must_use]
    pub fn chunks_for_bits(self, bit_len: usize) -> usize {
        bit_len.div_ceil(self.0 as usize)
    }
}

impl Default for ChunkSize {
    fn default() -> Self {
        Self::PAPER_DEFAULT
    }
}

impl fmt::Display for ChunkSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

/// A block partitioned into chunk values.
///
/// # Examples
///
/// ```
/// use desc_core::{Block, ChunkSize, Chunks};
///
/// let block = Block::from_bytes(&[0x53, 0x00]);
/// let chunks = Chunks::split(&block, ChunkSize::new(4).unwrap());
/// assert_eq!(chunks.values(), &[0x3, 0x5, 0x0, 0x0]);
/// assert_eq!(chunks.reassemble(2).as_bytes(), &[0x53, 0x00]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chunks {
    size: ChunkSize,
    values: Vec<u16>,
}

/// Appends the first `n_chunks` `width`-bit chunk values of a
/// little-endian word stream to `out`, LSB-first — the u64-lane chunk
/// extractor shared by [`Chunks::split`], the protocol layer, and the
/// batched scheme kernels. Bits past the end of the stream read as
/// zero, matching [`Block::bits`].
pub(crate) fn chunk_values_into(
    mut words: impl Iterator<Item = u64>,
    n_chunks: usize,
    width: usize,
    out: &mut Vec<u16>,
) {
    debug_assert!(width > 0 && width <= 8);
    out.reserve(n_chunks);
    if 64 % width == 0 {
        // Chunk boundaries never straddle a word: peel whole words and
        // shift chunks out 64/width at a time.
        let per_word = 64 / width;
        let mask = (1u64 << width) - 1;
        let mut remaining = n_chunks;
        while remaining > 0 {
            let mut x = words.next().unwrap_or(0);
            for _ in 0..per_word.min(remaining) {
                out.push((x & mask) as u16);
                x >>= width;
            }
            remaining = remaining.saturating_sub(per_word);
        }
    } else {
        // Widths 3/5/6/7: stream through a wide accumulator so chunks
        // spanning a word boundary see both halves.
        let mask = u128::from((1u16 << width) - 1);
        let mut acc: u128 = 0;
        let mut avail = 0usize;
        for _ in 0..n_chunks {
            if avail < width {
                acc |= u128::from(words.next().unwrap_or(0)) << avail;
                avail += 64;
            }
            out.push((acc & mask) as u16);
            acc >>= width;
            avail -= width;
        }
    }
}

impl Chunks {
    /// Partitions `block` into contiguous chunks of `size` bits,
    /// LSB-first (chunk 0 holds block bits `0..size`), extracting
    /// whole 64-bit words at a time.
    #[must_use]
    pub fn split(block: &Block, size: ChunkSize) -> Self {
        let n = size.chunks_for_bits(block.bit_len());
        let width = size.bits() as usize;
        let mut values = Vec::new();
        chunk_values_into((0..block.word_len()).map(|i| block.word(i)), n, width, &mut values);
        Self { size, values }
    }

    /// Builds chunks directly from values (used by tests and the
    /// protocol layer).
    ///
    /// # Panics
    ///
    /// Panics if any value exceeds the chunk's maximum value.
    #[must_use]
    pub fn from_values(size: ChunkSize, values: Vec<u16>) -> Self {
        for &v in &values {
            assert!(v <= size.max_value(), "chunk value {v} exceeds {size} maximum");
        }
        Self { size, values }
    }

    /// The chunk size.
    #[must_use]
    pub fn size(&self) -> ChunkSize {
        self.size
    }

    /// The chunk values in block order.
    #[must_use]
    pub fn values(&self) -> &[u16] {
        &self.values
    }

    /// Number of chunks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no chunks (cannot happen for chunks produced by
    /// [`Chunks::split`], since blocks are non-empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reassembles the original block of `byte_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the chunks cannot cover `byte_len` bytes.
    #[must_use]
    pub fn reassemble(&self, byte_len: usize) -> Block {
        let width = self.size.bits() as usize;
        assert!(
            self.values.len() * width >= byte_len * 8,
            "{} chunks of {} cannot fill {} bytes",
            self.values.len(),
            self.size,
            byte_len
        );
        let mut block = Block::zeroed(byte_len);
        for (i, &v) in self.values.iter().enumerate() {
            block.set_bits(i * width, width, v);
        }
        block
    }

    /// Fraction of chunks whose value is zero (the statistic behind the
    /// paper's Fig. 12: ~31% across the evaluated applications).
    #[must_use]
    pub fn zero_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let zeros = self.values.iter().filter(|&&v| v == 0).count();
        zeros as f64 / self.values.len() as f64
    }
}

/// Assignment of chunks to data wires (paper Fig. 4).
///
/// Wire `w` carries chunks `w, w + wires, w + 2·wires, …`; round `r`
/// consists of chunks `r·wires .. (r+1)·wires` (chunk index order), so
/// chunk `i` travels on wire `i % wires` during round `i / wires`.
///
/// # Examples
///
/// ```
/// use desc_core::WireAssignment;
///
/// // 128 chunks over 64 wires → 2 rounds; wire 0 carries chunks 0 and 64.
/// let a = WireAssignment::new(128, 64);
/// assert_eq!(a.rounds(), 2);
/// assert_eq!(a.wire_of(64), 0);
/// assert_eq!(a.round_of(64), 1);
/// assert_eq!(a.chunks_on_wire(1), vec![1, 65]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WireAssignment {
    chunks: usize,
    wires: usize,
}

impl WireAssignment {
    /// Creates an assignment of `chunks` chunks onto `wires` data wires.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(chunks: usize, wires: usize) -> Self {
        assert!(chunks > 0, "at least one chunk is required");
        assert!(wires > 0, "at least one wire is required");
        Self { chunks, wires }
    }

    /// Total number of chunks.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks
    }

    /// Number of data wires.
    #[must_use]
    pub fn wire_count(&self) -> usize {
        self.wires
    }

    /// Number of transfer rounds (`ceil(chunks / wires)`).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.chunks.div_ceil(self.wires)
    }

    /// The wire that carries chunk `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn wire_of(&self, i: usize) -> usize {
        assert!(i < self.chunks, "chunk index {i} out of range");
        i % self.wires
    }

    /// The round during which chunk `i` is transferred.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn round_of(&self, i: usize) -> usize {
        assert!(i < self.chunks, "chunk index {i} out of range");
        i / self.wires
    }

    /// The chunk carried by `wire` during `round`, if any (the final
    /// round may leave high-numbered wires idle).
    #[must_use]
    pub fn chunk_at(&self, wire: usize, round: usize) -> Option<usize> {
        if wire >= self.wires || round >= self.rounds() {
            return None;
        }
        let i = round * self.wires + wire;
        (i < self.chunks).then_some(i)
    }

    /// All chunk indices carried by `wire`, in transmission order.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is out of range.
    #[must_use]
    pub fn chunks_on_wire(&self, wire: usize) -> Vec<usize> {
        assert!(wire < self.wires, "wire index {wire} out of range");
        (0..self.rounds()).filter_map(|r| self.chunk_at(wire, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_bounds() {
        assert!(ChunkSize::new(1).is_some());
        assert!(ChunkSize::new(8).is_some());
        assert!(ChunkSize::new(0).is_none());
        assert!(ChunkSize::new(9).is_none());
        assert_eq!(ChunkSize::default(), ChunkSize::PAPER_DEFAULT);
    }

    #[test]
    fn paper_configuration_yields_128_chunks() {
        // 512-bit block, 4-bit chunks → 128 chunks (paper §3.2.1).
        let c = ChunkSize::PAPER_DEFAULT;
        assert_eq!(c.chunks_for_bits(512), 128);
    }

    #[test]
    fn split_matches_manual_nibbles() {
        let block = Block::from_bytes(&[0xAB, 0xCD]);
        let chunks = Chunks::split(&block, ChunkSize::new(4).unwrap());
        assert_eq!(chunks.values(), &[0xB, 0xA, 0xD, 0xC]);
    }

    #[test]
    fn split_one_bit_chunks_are_bits() {
        let block = Block::from_bytes(&[0b0000_0101]);
        let chunks = Chunks::split(&block, ChunkSize::new(1).unwrap());
        assert_eq!(chunks.values(), &[1, 0, 1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn split_reassemble_roundtrip_odd_width() {
        // 3-bit chunks over 16 bits: 6 chunks, last one padded.
        let block = Block::from_bytes(&[0x12, 0x34]);
        let chunks = Chunks::split(&block, ChunkSize::new(3).unwrap());
        assert_eq!(chunks.len(), 6);
        assert_eq!(chunks.reassemble(2), block);
    }

    #[test]
    fn split_matches_bitwise_extraction_all_widths() {
        // An odd byte length exercises both the whole-word fast path
        // and the word-straddling accumulator path, including the
        // zero-padded final chunk.
        let bytes: Vec<u8> = (0..23u8).map(|i| i.wrapping_mul(89).wrapping_add(17)).collect();
        let block = Block::from_bytes(&bytes);
        for bits in 1..=8u8 {
            let size = ChunkSize::new(bits).unwrap();
            let width = bits as usize;
            let expected: Vec<u16> = (0..size.chunks_for_bits(block.bit_len()))
                .map(|i| block.bits(i * width, width))
                .collect();
            assert_eq!(Chunks::split(&block, size).values(), &expected[..], "width {width}");
        }
    }

    #[test]
    fn zero_fraction_counts_zero_chunks() {
        let c = Chunks::from_values(ChunkSize::new(4).unwrap(), vec![0, 0, 5, 0]);
        assert!((c.zero_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn from_values_validates_range() {
        let _ = Chunks::from_values(ChunkSize::new(4).unwrap(), vec![16]);
    }

    #[test]
    fn wire_assignment_equal_counts_single_round() {
        let a = WireAssignment::new(128, 128);
        assert_eq!(a.rounds(), 1);
        assert_eq!(a.wire_of(127), 127);
        assert_eq!(a.chunks_on_wire(0), vec![0]);
    }

    #[test]
    fn wire_assignment_matches_fig4b() {
        // Fig. 4-b (1-indexed in the paper): wire 1 ← chunks 1 and 65,
        // wire 64 ← chunks 64 and 128; 0-indexed here.
        let a = WireAssignment::new(128, 64);
        assert_eq!(a.chunks_on_wire(0), vec![0, 64]);
        assert_eq!(a.chunks_on_wire(63), vec![63, 127]);
        assert_eq!(a.round_of(65), 1);
        assert_eq!(a.wire_of(65), 1);
    }

    #[test]
    fn ragged_final_round_leaves_wires_idle() {
        let a = WireAssignment::new(10, 4);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.chunk_at(1, 2), Some(9));
        assert_eq!(a.chunk_at(2, 2), None);
        assert_eq!(a.chunks_on_wire(3), vec![3, 7]);
    }

    #[test]
    fn chunk_at_out_of_range_is_none() {
        let a = WireAssignment::new(8, 4);
        assert_eq!(a.chunk_at(4, 0), None);
        assert_eq!(a.chunk_at(0, 2), None);
    }
}
