//! Behavioural models of the DESC support circuits (paper Fig. 8).
//!
//! * [`ToggleGenerator`] turns an enable pulse into a level toggle on
//!   its output wire (a T-flip-flop driven by the transfer clock).
//! * [`ToggleDetector`] recovers a one-cycle pulse from a level toggle
//!   (an XOR of the input with a delayed copy of itself).
//! * [`ToggleRegenerator`] forwards toggles from one of two H-tree
//!   branches upstream, remembering the previous state of each segment
//!   so shared vertical-tree wires stay consistent (paper §3.2).
//!
//! These are cycle-granularity models: one call to `step` is one clock
//! cycle.

/// T-flip-flop toggle generator: the output level flips in every cycle
/// where `enable` is asserted (paper Fig. 8-a).
///
/// # Examples
///
/// ```
/// use desc_core::circuits::ToggleGenerator;
///
/// let mut tg = ToggleGenerator::new();
/// assert_eq!(tg.step(true), true);   // 0 → 1
/// assert_eq!(tg.step(false), true);  // held
/// assert_eq!(tg.step(true), false);  // 1 → 0
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ToggleGenerator {
    level: bool,
}

impl ToggleGenerator {
    /// A generator with its output at logic zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances one cycle; toggles the output when `enable` is set.
    /// Returns the new output level.
    pub fn step(&mut self, enable: bool) -> bool {
        if enable {
            self.level = !self.level;
        }
        self.level
    }

    /// Current output level.
    #[must_use]
    pub fn level(&self) -> bool {
        self.level
    }
}

/// Toggle detector: produces a one-cycle pulse whenever its input
/// changes level (paper Fig. 8-b — XOR with a delayed copy).
///
/// # Examples
///
/// ```
/// use desc_core::circuits::ToggleDetector;
///
/// let mut td = ToggleDetector::new();
/// assert!(!td.step(false));
/// assert!(td.step(true));   // edge detected
/// assert!(!td.step(true));  // level held: no pulse
/// assert!(td.step(false));  // falling edge also detected
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ToggleDetector {
    previous: bool,
}

impl ToggleDetector {
    /// A detector whose delayed input starts at logic zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances one cycle with the observed `input` level; returns
    /// `true` exactly when the level changed since the previous cycle.
    pub fn step(&mut self, input: bool) -> bool {
        let pulse = input != self.previous;
        self.previous = input;
        pulse
    }
}

/// Toggle regenerator for shared H-tree segments (paper Fig. 8-c).
///
/// Two downstream branches (only one active per access, selected by the
/// address bits) merge onto one upstream wire. The regenerator latches
/// the selected branch's level and re-drives the upstream wire so that
/// upstream toggles mirror the active branch's toggles even though the
/// *other* branch may hold a different level.
///
/// # Examples
///
/// ```
/// use desc_core::circuits::ToggleRegenerator;
///
/// let mut tr = ToggleRegenerator::new();
/// // Branch 0 toggles high while selected: upstream follows.
/// assert!(tr.step(true, false, 0));
/// // Switching the select to branch 1 (still low) must not toggle
/// // upstream: the regenerator re-drives from its latched state.
/// assert!(!tr.upstream_toggled(false, 1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ToggleRegenerator {
    upstream: bool,
    /// Last observed level per branch.
    branch_levels: [bool; 2],
}

impl ToggleRegenerator {
    /// A regenerator with all wires at logic zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances one cycle observing both branch levels and the branch
    /// `select`; the upstream wire toggles whenever the *selected*
    /// branch toggled. Returns the upstream level.
    ///
    /// # Panics
    ///
    /// Panics if `select` is not 0 or 1.
    pub fn step(&mut self, branch0: bool, branch1: bool, select: usize) -> bool {
        assert!(select < 2, "branch select {select} out of range");
        let levels = [branch0, branch1];
        let toggled = levels[select] != self.branch_levels[select];
        self.branch_levels = levels;
        if toggled {
            self.upstream = !self.upstream;
        }
        self.upstream
    }

    /// Like [`ToggleRegenerator::step`] for a single observed branch
    /// level, returning whether the upstream wire toggled this cycle.
    pub fn upstream_toggled(&mut self, level: bool, select: usize) -> bool {
        assert!(select < 2, "branch select {select} out of range");
        let toggled = level != self.branch_levels[select];
        self.branch_levels[select] = level;
        if toggled {
            self.upstream = !self.upstream;
        }
        toggled
    }

    /// Current upstream level.
    #[must_use]
    pub fn upstream(&self) -> bool {
        self.upstream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_toggles_only_when_enabled() {
        let mut tg = ToggleGenerator::new();
        let outputs: Vec<bool> =
            [true, true, false, true].iter().map(|&e| tg.step(e)).collect();
        assert_eq!(outputs, vec![true, false, false, true]);
    }

    #[test]
    fn generator_detector_roundtrip() {
        // A pulse train through generator + detector reproduces itself
        // one cycle later — the paper's synchronization-strobe path.
        let mut tg = ToggleGenerator::new();
        let mut td = ToggleDetector::new();
        let pulses = [true, false, true, true, false, false, true, false];
        let mut recovered = Vec::new();
        for &p in &pulses {
            let level = tg.step(p);
            recovered.push(td.step(level));
        }
        assert_eq!(recovered.as_slice(), pulses.as_slice());
    }

    #[test]
    fn detector_sees_both_edges() {
        // Half-frequency strobe: level toggles every cycle → pulse
        // every cycle (both rising and falling edges trigger, §3.1).
        let mut td = ToggleDetector::new();
        let mut level = false;
        let mut pulses = 0;
        for _ in 0..10 {
            level = !level;
            if td.step(level) {
                pulses += 1;
            }
        }
        assert_eq!(pulses, 10);
    }

    #[test]
    fn regenerator_forwards_selected_branch_only() {
        let mut tr = ToggleRegenerator::new();
        // Branch 1 toggles while branch 0 selected: upstream must hold.
        tr.step(false, true, 0);
        assert!(!tr.upstream());
        // Branch 0 toggles while selected: upstream follows.
        tr.step(true, true, 0);
        assert!(tr.upstream());
    }

    #[test]
    fn regenerator_branch_switch_does_not_glitch() {
        let mut tr = ToggleRegenerator::new();
        // Drive branch 0 high (selected), then switch select to branch
        // 1 whose level is still low — no upstream toggle on the
        // switch itself.
        assert!(tr.upstream_toggled(true, 0));
        assert!(!tr.upstream_toggled(false, 1));
        assert!(tr.upstream());
        // Now branch 1 toggles: upstream toggles again.
        assert!(tr.upstream_toggled(true, 1));
        assert!(!tr.upstream());
    }

    #[test]
    fn regenerator_counts_match_toggles() {
        // N toggles on the active branch produce exactly N upstream
        // toggles regardless of the idle branch's activity.
        let mut tr = ToggleRegenerator::new();
        let mut level = false;
        let mut upstream_toggles = 0;
        for i in 0..17 {
            level = !level;
            // Idle branch flaps too, but is never selected.
            if tr.upstream_toggled(level, 0) {
                upstream_toggles += 1;
            }
            let _ = i;
        }
        assert_eq!(upstream_toggles, 17);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn regenerator_rejects_bad_select() {
        let mut tr = ToggleRegenerator::new();
        tr.step(false, false, 2);
    }
}
