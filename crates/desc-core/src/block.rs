//! Cache-block containers.
//!
//! A [`Block`] is the unit of data every [`TransferScheme`] moves across
//! the interconnect: a fixed-width bit string, 512 bits (64 bytes) for
//! the paper's L2 configuration, but any byte length is supported so the
//! chunk-size and bus-width sweeps (paper Figs. 22 and 26) can reuse the
//! same machinery.
//!
//! [`TransferScheme`]: crate::scheme::TransferScheme

use std::fmt;

/// The paper's cache-block size in bytes (Table 1: 64 B blocks).
pub const PAPER_BLOCK_BYTES: usize = 64;

/// A fixed-width bit string transferred over the cache interconnect.
///
/// Bits are numbered LSB-first within each byte: bit `i` of the block is
/// bit `i % 8` of byte `i / 8`. The ordering only has to be applied
/// consistently by encoders and decoders; all schemes in this crate use
/// this one.
///
/// # Examples
///
/// ```
/// use desc_core::Block;
///
/// let block = Block::from_bytes(&[0b0101_0011, 0xFF]);
/// assert_eq!(block.bit(0), true);   // LSB of byte 0
/// assert_eq!(block.bit(2), false);
/// assert_eq!(block.bit_len(), 16);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Block {
    bytes: Vec<u8>,
}

impl Block {
    /// Creates an all-zero block of `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        assert!(len > 0, "a block must contain at least one byte");
        Self { bytes: vec![0; len] }
    }

    /// Creates a block by copying `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(!bytes.is_empty(), "a block must contain at least one byte");
        Self { bytes: bytes.to_vec() }
    }

    /// Creates a block that takes ownership of `bytes` (no copy).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty.
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        assert!(!bytes.is_empty(), "a block must contain at least one byte");
        Self { bytes }
    }

    /// Creates a block from little-endian `u64` words (convenient for
    /// synthetic workload generators).
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    #[must_use]
    pub fn from_words(words: &[u64]) -> Self {
        assert!(!words.is_empty(), "a block must contain at least one word");
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Self { bytes }
    }

    /// The block contents as bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The block contents as mutable bytes, for callers that refill a
    /// block in place (e.g. a value stream reusing one scratch block
    /// instead of allocating per draw).
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Length in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Length in bits.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Returns bit `i` (LSB-first within each byte).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bit_len()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.bit_len(), "bit index {i} out of range");
        (self.bytes[i / 8] >> (i % 8)) & 1 == 1
    }

    /// Sets bit `i` (LSB-first within each byte).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bit_len()`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.bit_len(), "bit index {i} out of range");
        let mask = 1u8 << (i % 8);
        if value {
            self.bytes[i / 8] |= mask;
        } else {
            self.bytes[i / 8] &= !mask;
        }
    }

    /// Extracts `width` bits starting at bit `start` as a little-endian
    /// integer. Bits past the end of the block read as zero, which gives
    /// chunk sizes that do not divide the block width a well-defined
    /// zero-padded final chunk.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 16.
    #[must_use]
    pub fn bits(&self, start: usize, width: usize) -> u16 {
        assert!(width > 0 && width <= 16, "bit field width {width} out of range");
        // A ≤16-bit field at any bit offset spans at most three bytes
        // (7 + 16 = 23 bits); gather them and shift once.
        let first = start / 8;
        let shift = start % 8;
        let mut acc = 0u32;
        if let Some(tail) = self.bytes.get(first..) {
            for (k, &b) in tail.iter().take(3).enumerate() {
                acc |= u32::from(b) << (8 * k);
            }
        }
        let mask = if width == 16 { 0xFFFF } else { (1u32 << width) - 1 };
        ((acc >> shift) & mask) as u16
    }

    /// Writes `width` bits of `value` starting at bit `start`; bits past
    /// the end of the block are ignored (the mirror of [`Block::bits`]).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 16.
    pub fn set_bits(&mut self, start: usize, width: usize, value: u16) {
        assert!(width > 0 && width <= 16, "bit field width {width} out of range");
        let mask = if width == 16 { 0xFFFF } else { (1u32 << width) - 1 };
        let first = start / 8;
        let shift = start % 8;
        let field_mask = mask << shift;
        let field = (u32::from(value) & mask) << shift;
        for k in 0..3 {
            if let Some(b) = self.bytes.get_mut(first + k) {
                let bm = (field_mask >> (8 * k)) as u8;
                *b = (*b & !bm) | (field >> (8 * k)) as u8;
            }
        }
    }

    /// True if every bit of the block is zero (a *null block*; the paper
    /// notes DESC "has mechanisms that exploit null and redundant
    /// blocks").
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }

    /// Number of bit positions at which `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if the blocks have different lengths.
    #[must_use]
    pub fn hamming_distance(&self, other: &Block) -> u32 {
        assert_eq!(
            self.byte_len(),
            other.byte_len(),
            "hamming distance requires equal-length blocks"
        );
        self.bytes
            .iter()
            .zip(&other.bytes)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({} B:", self.bytes.len())?;
        for b in self.bytes.iter().take(8) {
            write!(f, " {b:02x}")?;
        }
        if self.bytes.len() > 8 {
            write!(f, " …")?;
        }
        write!(f, ")")
    }
}

impl Default for Block {
    /// An all-zero 64-byte block (the paper's block size).
    fn default() -> Self {
        Self::zeroed(PAPER_BLOCK_BYTES)
    }
}

impl From<&[u8]> for Block {
    fn from(bytes: &[u8]) -> Self {
        Self::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_block_is_null() {
        let b = Block::zeroed(64);
        assert!(b.is_null());
        assert_eq!(b.bit_len(), 512);
    }

    #[test]
    fn default_block_matches_paper_size() {
        assert_eq!(Block::default().byte_len(), PAPER_BLOCK_BYTES);
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut b = Block::zeroed(2);
        b.set_bit(3, true);
        b.set_bit(11, true);
        assert!(b.bit(3));
        assert!(b.bit(11));
        assert!(!b.bit(4));
        b.set_bit(3, false);
        assert!(!b.bit(3));
        assert_eq!(b.as_bytes(), &[0b0000_0000, 0b0000_1000]);
    }

    #[test]
    fn bits_reads_lsb_first() {
        let b = Block::from_bytes(&[0b0101_0011]);
        assert_eq!(b.bits(0, 4), 0b0011);
        assert_eq!(b.bits(4, 4), 0b0101);
        assert_eq!(b.bits(0, 8), 0b0101_0011);
    }

    #[test]
    fn bits_past_end_read_zero() {
        let b = Block::from_bytes(&[0xFF]);
        assert_eq!(b.bits(6, 4), 0b0011); // two real bits + two padded zeros
    }

    #[test]
    fn set_bits_roundtrip() {
        let mut b = Block::zeroed(2);
        b.set_bits(5, 7, 0b101_1010);
        assert_eq!(b.bits(5, 7), 0b101_1010);
    }

    #[test]
    fn as_bytes_mut_refills_in_place() {
        let mut b = Block::zeroed(2);
        b.as_bytes_mut().copy_from_slice(&[0xAB, 0xCD]);
        assert_eq!(b.as_bytes(), &[0xAB, 0xCD]);
    }

    #[test]
    fn from_words_little_endian() {
        let b = Block::from_words(&[0x0102_0304_0506_0708]);
        assert_eq!(b.as_bytes()[0], 0x08);
        assert_eq!(b.as_bytes()[7], 0x01);
    }

    #[test]
    fn hamming_distance_counts_differing_bits() {
        let a = Block::from_bytes(&[0b1111_0000, 0x00]);
        let b = Block::from_bytes(&[0b0000_0000, 0x01]);
        assert_eq!(a.hamming_distance(&b), 5);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn hamming_distance_rejects_mismatched_lengths() {
        let a = Block::zeroed(8);
        let b = Block::zeroed(16);
        let _ = a.hamming_distance(&b);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn empty_block_rejected() {
        let _ = Block::from_bytes(&[]);
    }

    #[test]
    fn debug_is_nonempty_and_truncated() {
        let b = Block::zeroed(64);
        let s = format!("{b:?}");
        assert!(s.contains("64 B"));
        assert!(s.contains('…'));
    }
}
