//! Cache-block containers.
//!
//! A [`Block`] is the unit of data every [`TransferScheme`] moves across
//! the interconnect: a fixed-width bit string, 512 bits (64 bytes) for
//! the paper's L2 configuration, but any byte length is supported so the
//! chunk-size and bus-width sweeps (paper Figs. 22 and 26) can reuse the
//! same machinery.
//!
//! [`TransferScheme`]: crate::scheme::TransferScheme

use std::fmt;

/// The paper's cache-block size in bytes (Table 1: 64 B blocks).
pub const PAPER_BLOCK_BYTES: usize = 64;

/// A fixed-width bit string transferred over the cache interconnect.
///
/// Bits are numbered LSB-first within each byte: bit `i` of the block is
/// bit `i % 8` of byte `i / 8`. The ordering only has to be applied
/// consistently by encoders and decoders; all schemes in this crate use
/// this one.
///
/// # Examples
///
/// ```
/// use desc_core::Block;
///
/// let block = Block::from_bytes(&[0b0101_0011, 0xFF]);
/// assert_eq!(block.bit(0), true);   // LSB of byte 0
/// assert_eq!(block.bit(2), false);
/// assert_eq!(block.bit_len(), 16);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Block {
    bytes: Vec<u8>,
}

impl Block {
    /// Creates an all-zero block of `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        assert!(len > 0, "a block must contain at least one byte");
        Self { bytes: vec![0; len] }
    }

    /// Creates a block by copying `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(!bytes.is_empty(), "a block must contain at least one byte");
        Self { bytes: bytes.to_vec() }
    }

    /// Creates a block that takes ownership of `bytes` (no copy).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty.
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        assert!(!bytes.is_empty(), "a block must contain at least one byte");
        Self { bytes }
    }

    /// Creates a block from little-endian `u64` words (convenient for
    /// synthetic workload generators).
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    #[must_use]
    pub fn from_words(words: &[u64]) -> Self {
        assert!(!words.is_empty(), "a block must contain at least one word");
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Self { bytes }
    }

    /// The block contents as bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The block contents as mutable bytes, for callers that refill a
    /// block in place (e.g. a value stream reusing one scratch block
    /// instead of allocating per draw).
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Length in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Length in bits.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Returns bit `i` (LSB-first within each byte).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bit_len()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.bit_len(), "bit index {i} out of range");
        (self.bytes[i / 8] >> (i % 8)) & 1 == 1
    }

    /// Sets bit `i` (LSB-first within each byte).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bit_len()`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.bit_len(), "bit index {i} out of range");
        let mask = 1u8 << (i % 8);
        if value {
            self.bytes[i / 8] |= mask;
        } else {
            self.bytes[i / 8] &= !mask;
        }
    }

    /// Extracts `width` bits starting at bit `start` as a little-endian
    /// integer. Bits past the end of the block read as zero, which gives
    /// chunk sizes that do not divide the block width a well-defined
    /// zero-padded final chunk.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 16.
    #[must_use]
    pub fn bits(&self, start: usize, width: usize) -> u16 {
        assert!(width > 0 && width <= 16, "bit field width {width} out of range");
        // A ≤16-bit field at any bit offset spans at most three bytes
        // (7 + 16 = 23 bits); gather them and shift once.
        let first = start / 8;
        let shift = start % 8;
        let mut acc = 0u32;
        if let Some(tail) = self.bytes.get(first..) {
            for (k, &b) in tail.iter().take(3).enumerate() {
                acc |= u32::from(b) << (8 * k);
            }
        }
        let mask = if width == 16 { 0xFFFF } else { (1u32 << width) - 1 };
        ((acc >> shift) & mask) as u16
    }

    /// Writes `width` bits of `value` starting at bit `start`; bits past
    /// the end of the block are ignored (the mirror of [`Block::bits`]).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 16.
    pub fn set_bits(&mut self, start: usize, width: usize, value: u16) {
        assert!(width > 0 && width <= 16, "bit field width {width} out of range");
        let mask = if width == 16 { 0xFFFF } else { (1u32 << width) - 1 };
        let first = start / 8;
        let shift = start % 8;
        let field_mask = mask << shift;
        let field = (u32::from(value) & mask) << shift;
        for k in 0..3 {
            if let Some(b) = self.bytes.get_mut(first + k) {
                let bm = (field_mask >> (8 * k)) as u8;
                *b = (*b & !bm) | (field >> (8 * k)) as u8;
            }
        }
    }

    /// True if every bit of the block is zero (a *null block*; the paper
    /// notes DESC "has mechanisms that exploit null and redundant
    /// blocks").
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }

    /// The number of 64-bit words needed to hold this block
    /// (`byte_len` rounded up to a multiple of 8).
    #[must_use]
    pub fn word_len(&self) -> usize {
        self.bytes.len().div_ceil(8)
    }

    /// Returns 64-bit word `i` of the block, read little-endian; bytes
    /// past the end of the block read as zero (the word-level twin of
    /// [`Block::bits`]' zero padding).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.word_len()`.
    #[must_use]
    pub fn word(&self, i: usize) -> u64 {
        assert!(i < self.word_len(), "word index {i} out of range");
        let start = i * 8;
        let mut raw = [0u8; 8];
        let tail = &self.bytes[start..self.bytes.len().min(start + 8)];
        raw[..tail.len()].copy_from_slice(tail);
        u64::from_le_bytes(raw)
    }

    /// Extracts `width` bits starting at bit `start` as a little-endian
    /// integer — the wide cousin of [`Block::bits`] for whole-segment
    /// extraction (a 64-wire beat in one call instead of 64 `bit`
    /// calls). Bits past the end of the block read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    #[must_use]
    pub fn word_bits(&self, start: usize, width: usize) -> u64 {
        assert!(width > 0 && width <= 64, "bit field width {width} out of range");
        // A ≤64-bit field at any bit offset spans at most nine bytes.
        let first = start / 8;
        let shift = start % 8;
        let mut acc = 0u128;
        if let Some(tail) = self.bytes.get(first..) {
            for (k, &b) in tail.iter().take(9).enumerate() {
                acc |= u128::from(b) << (8 * k);
            }
        }
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        ((acc >> shift) as u64) & mask
    }

    /// Number of bit positions at which `self` and `other` differ.
    ///
    /// Folds eight bytes at a time (`xor` + `count_ones` over `u64`
    /// lanes) with a byte-wise tail for lengths that are not a multiple
    /// of eight.
    ///
    /// # Panics
    ///
    /// Panics if the blocks have different lengths.
    #[must_use]
    pub fn hamming_distance(&self, other: &Block) -> u32 {
        assert_eq!(
            self.byte_len(),
            other.byte_len(),
            "hamming distance requires equal-length blocks"
        );
        let mut a = self.bytes.chunks_exact(8);
        let mut b = other.bytes.chunks_exact(8);
        let mut total = 0u32;
        for (wa, wb) in (&mut a).zip(&mut b) {
            let x = u64::from_le_bytes(wa.try_into().expect("8-byte chunk"))
                ^ u64::from_le_bytes(wb.try_into().expect("8-byte chunk"));
            total += x.count_ones();
        }
        total
            + a.remainder()
                .iter()
                .zip(b.remainder())
                .map(|(x, y)| (x ^ y).count_ones())
                .sum::<u32>()
    }
}

/// Extracts `width ≤ 16` bits starting at `start` from a zero-padded
/// little-endian word slice — the slab-side twin of [`Block::bits`]:
/// bits past the end of the slice read as zero.
#[must_use]
fn bits_of_words(words: &[u64], start: usize, width: usize) -> u16 {
    debug_assert!(width > 0 && width <= 16);
    let w = start / 64;
    let shift = start % 64;
    let lo = words.get(w).copied().unwrap_or(0) >> shift;
    let acc = if shift + width > 64 {
        lo | (words.get(w + 1).copied().unwrap_or(0) << (64 - shift))
    } else {
        lo
    };
    let mask = if width == 16 { 0xFFFF } else { (1u64 << width) - 1 };
    (acc & mask) as u16
}

/// A packed batch of equal-length blocks in 8-byte-aligned storage.
///
/// The slab is the unit the batched transfer path moves: blocks are
/// stored back to back as little-endian `u64` words (each block padded
/// to a whole number of words, padding bits zero), so batched encoders
/// can run `xor`/`count_ones` lane math directly on `[u64]` slices
/// without touching byte-granular accessors.
///
/// # Examples
///
/// ```
/// use desc_core::{Block, BlockSlab};
///
/// let mut slab = BlockSlab::new(64);
/// slab.push(&Block::default());
/// assert_eq!(slab.len(), 1);
/// assert_eq!(slab.block_words(0).len(), 8);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BlockSlab {
    byte_len: usize,
    words_per_block: usize,
    words: Vec<u64>,
}

impl BlockSlab {
    /// Creates an empty slab for blocks of `byte_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `byte_len` is zero.
    #[must_use]
    pub fn new(byte_len: usize) -> Self {
        assert!(byte_len > 0, "a block must contain at least one byte");
        Self { byte_len, words_per_block: byte_len.div_ceil(8), words: Vec::new() }
    }

    /// Creates an empty slab with room for `blocks` blocks of
    /// `byte_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `byte_len` is zero.
    #[must_use]
    pub fn with_capacity(byte_len: usize, blocks: usize) -> Self {
        let mut slab = Self::new(byte_len);
        slab.words.reserve(blocks * slab.words_per_block);
        slab
    }

    /// Byte length of every block in the slab.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.byte_len
    }

    /// Bit length of every block in the slab.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.byte_len * 8
    }

    /// Words of storage per block (`byte_len` rounded up to whole
    /// 8-byte words).
    #[must_use]
    pub fn words_per_block(&self) -> usize {
        self.words_per_block
    }

    /// Number of blocks currently in the slab.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len() / self.words_per_block
    }

    /// True when the slab holds no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Removes all blocks, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Appends a copy of `block` to the slab.
    ///
    /// # Panics
    ///
    /// Panics if the block's byte length differs from the slab's.
    pub fn push(&mut self, block: &Block) {
        assert_eq!(
            block.byte_len(),
            self.byte_len,
            "slab holds {}-byte blocks",
            self.byte_len
        );
        let bytes = block.as_bytes();
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            self.words.push(u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut raw = [0u8; 8];
            raw[..rem.len()].copy_from_slice(rem);
            self.words.push(u64::from_le_bytes(raw));
        }
    }

    /// The packed little-endian words of block `i` (padding bits, if
    /// any, are zero).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn block_words(&self, i: usize) -> &[u64] {
        assert!(i < self.len(), "block index {i} out of range");
        &self.words[i * self.words_per_block..(i + 1) * self.words_per_block]
    }

    /// Extracts `width ≤ 16` bits of block `i` starting at bit `start`
    /// — bit-identical to [`Block::bits`] on the corresponding block,
    /// including zero reads past the end.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` or `width` is zero or greater
    /// than 16.
    #[must_use]
    pub fn bits(&self, i: usize, start: usize, width: usize) -> u16 {
        assert!(width > 0 && width <= 16, "bit field width {width} out of range");
        bits_of_words(self.block_words(i), start, width)
    }

    /// Extracts `width ≤ 64` bits of block `i` starting at bit `start`
    /// — bit-identical to [`Block::word_bits`] on the corresponding
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` or `width` is zero or greater
    /// than 64.
    #[must_use]
    pub fn word_bits(&self, i: usize, start: usize, width: usize) -> u64 {
        assert!(width > 0 && width <= 64, "bit field width {width} out of range");
        let words = self.block_words(i);
        let w = start / 64;
        let shift = start % 64;
        let lo = words.get(w).copied().unwrap_or(0) >> shift;
        let acc = if shift > 0 && shift + width > 64 {
            lo | (words.get(w + 1).copied().unwrap_or(0) << (64 - shift))
        } else {
            lo
        };
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        acc & mask
    }

    /// Copies block `i` into `out` (which must have the slab's byte
    /// length) — the scalar-fallback bridge from slab storage back to
    /// a [`Block`] without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` or `out` has a different length.
    pub fn copy_block_into(&self, i: usize, out: &mut Block) {
        assert_eq!(
            out.byte_len(),
            self.byte_len,
            "slab holds {}-byte blocks",
            self.byte_len
        );
        let words = self.block_words(i);
        let bytes = out.as_bytes_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        let mut w = 0usize;
        for dst in &mut chunks {
            dst.copy_from_slice(&words[w].to_le_bytes());
            w += 1;
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let raw = words[w].to_le_bytes();
            rem.copy_from_slice(&raw[..rem.len()]);
        }
    }

    /// Block `i` as an owned [`Block`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get_block(&self, i: usize) -> Block {
        let mut out = Block::zeroed(self.byte_len);
        self.copy_block_into(i, &mut out);
        out
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({} B:", self.bytes.len())?;
        for b in self.bytes.iter().take(8) {
            write!(f, " {b:02x}")?;
        }
        if self.bytes.len() > 8 {
            write!(f, " …")?;
        }
        write!(f, ")")
    }
}

impl Default for Block {
    /// An all-zero 64-byte block (the paper's block size).
    fn default() -> Self {
        Self::zeroed(PAPER_BLOCK_BYTES)
    }
}

impl From<&[u8]> for Block {
    fn from(bytes: &[u8]) -> Self {
        Self::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_block_is_null() {
        let b = Block::zeroed(64);
        assert!(b.is_null());
        assert_eq!(b.bit_len(), 512);
    }

    #[test]
    fn default_block_matches_paper_size() {
        assert_eq!(Block::default().byte_len(), PAPER_BLOCK_BYTES);
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut b = Block::zeroed(2);
        b.set_bit(3, true);
        b.set_bit(11, true);
        assert!(b.bit(3));
        assert!(b.bit(11));
        assert!(!b.bit(4));
        b.set_bit(3, false);
        assert!(!b.bit(3));
        assert_eq!(b.as_bytes(), &[0b0000_0000, 0b0000_1000]);
    }

    #[test]
    fn bits_reads_lsb_first() {
        let b = Block::from_bytes(&[0b0101_0011]);
        assert_eq!(b.bits(0, 4), 0b0011);
        assert_eq!(b.bits(4, 4), 0b0101);
        assert_eq!(b.bits(0, 8), 0b0101_0011);
    }

    #[test]
    fn bits_past_end_read_zero() {
        let b = Block::from_bytes(&[0xFF]);
        assert_eq!(b.bits(6, 4), 0b0011); // two real bits + two padded zeros
    }

    #[test]
    fn set_bits_roundtrip() {
        let mut b = Block::zeroed(2);
        b.set_bits(5, 7, 0b101_1010);
        assert_eq!(b.bits(5, 7), 0b101_1010);
    }

    #[test]
    fn as_bytes_mut_refills_in_place() {
        let mut b = Block::zeroed(2);
        b.as_bytes_mut().copy_from_slice(&[0xAB, 0xCD]);
        assert_eq!(b.as_bytes(), &[0xAB, 0xCD]);
    }

    #[test]
    fn from_words_little_endian() {
        let b = Block::from_words(&[0x0102_0304_0506_0708]);
        assert_eq!(b.as_bytes()[0], 0x08);
        assert_eq!(b.as_bytes()[7], 0x01);
    }

    #[test]
    fn hamming_distance_counts_differing_bits() {
        let a = Block::from_bytes(&[0b1111_0000, 0x00]);
        let b = Block::from_bytes(&[0b0000_0000, 0x01]);
        assert_eq!(a.hamming_distance(&b), 5);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn hamming_distance_rejects_mismatched_lengths() {
        let a = Block::zeroed(8);
        let b = Block::zeroed(16);
        let _ = a.hamming_distance(&b);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn empty_block_rejected() {
        let _ = Block::from_bytes(&[]);
    }

    #[test]
    fn debug_is_nonempty_and_truncated() {
        let b = Block::zeroed(64);
        let s = format!("{b:?}");
        assert!(s.contains("64 B"));
        assert!(s.contains('…'));
    }

    #[test]
    fn word_reads_little_endian_with_zero_padding() {
        let b = Block::from_bytes(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, 0xAA]);
        assert_eq!(b.word_len(), 2);
        assert_eq!(b.word(0), 0x0102_0304_0506_0708);
        assert_eq!(b.word(1), 0xAA); // seven padded zero bytes
    }

    #[test]
    fn word_bits_matches_bits_on_all_offsets() {
        let b = Block::from_bytes(&[0x31, 0x41, 0x59, 0x26, 0x53, 0x58, 0x97, 0x93, 0x23]);
        for start in 0..b.bit_len() {
            for width in 1..=16 {
                assert_eq!(
                    b.word_bits(start, width),
                    u64::from(b.bits(start, width)),
                    "start {start} width {width}"
                );
            }
        }
        // Wide fields spanning a word boundary.
        assert_eq!(b.word_bits(0, 64), b.word(0));
        assert_eq!(b.word_bits(4, 64), (b.word(0) >> 4) | (b.word(1) << 60));
    }

    #[test]
    fn hamming_distance_word_fold_matches_bytewise() {
        // Lengths that exercise the u64 lanes and the byte tail.
        for len in [1usize, 7, 8, 9, 15, 16, 63, 64] {
            let a_bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let b_bytes: Vec<u8> = (0..len).map(|i| (i * 91 + 3) as u8).collect();
            let a = Block::from_bytes(&a_bytes);
            let b = Block::from_bytes(&b_bytes);
            let expected: u32 =
                a_bytes.iter().zip(&b_bytes).map(|(x, y)| (x ^ y).count_ones()).sum();
            assert_eq!(a.hamming_distance(&b), expected, "len {len}");
        }
    }

    #[test]
    fn slab_roundtrips_blocks() {
        for len in [1usize, 7, 8, 9, 64] {
            let mut slab = BlockSlab::with_capacity(len, 3);
            let blocks: Vec<Block> = (0..3u8)
                .map(|k| {
                    Block::from_vec((0..len).map(|i| (i as u8).wrapping_mul(k + 1)).collect())
                })
                .collect();
            for b in &blocks {
                slab.push(b);
            }
            assert_eq!(slab.len(), 3);
            assert_eq!(slab.byte_len(), len);
            for (i, b) in blocks.iter().enumerate() {
                assert_eq!(&slab.get_block(i), b, "len {len} block {i}");
                for w in 0..b.word_len() {
                    assert_eq!(slab.block_words(i)[w], b.word(w));
                }
            }
            slab.clear();
            assert!(slab.is_empty());
        }
    }

    #[test]
    fn slab_bits_match_block_bits() {
        let bytes: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(73).wrapping_add(5)).collect();
        let block = Block::from_bytes(&bytes);
        let mut slab = BlockSlab::new(64);
        slab.push(&block);
        for width in [1usize, 3, 4, 7, 8, 13, 16] {
            for start in (0..block.bit_len()).step_by(width) {
                assert_eq!(
                    slab.bits(0, start, width),
                    block.bits(start, width),
                    "start {start} width {width}"
                );
            }
        }
        for width in [17usize, 32, 48, 64] {
            for start in (0..block.bit_len()).step_by(31) {
                assert_eq!(
                    slab.word_bits(0, start, width),
                    block.word_bits(start, width),
                    "start {start} width {width}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "slab holds 8-byte blocks")]
    fn slab_rejects_mismatched_block_length() {
        let mut slab = BlockSlab::new(8);
        slab.push(&Block::zeroed(16));
    }
}
