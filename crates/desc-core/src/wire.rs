//! Per-wire toggle state and exact transition accounting.
//!
//! All of the paper's energy results are functions of the number of
//! state transitions on each class of interconnect wire, so this module
//! is deliberately boring and exact: a [`Wire`] remembers its logic
//! level and counts every flip; a [`Bus`] is an ordered set of wires
//! driven with multi-bit values.

/// The role a wire plays, used to attribute transitions to the right
/// hardware when costing a transfer (paper Figs. 3, 6, 10).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WireClass {
    /// A data wire of the bus (chunk strobes in DESC, data bits in
    /// binary encoding).
    Data,
    /// The shared reset / skip strobe wire (DESC).
    ResetSkip,
    /// The synchronization strobe carrying clock information (DESC on
    /// asynchronous caches, §3.1 "Synchronization").
    Sync,
    /// Per-segment control wires of the baseline schemes (bus-invert
    /// polarity wires, zero-indicator wires, encoded mode wires).
    Control,
}

/// A single wire with persistent logic state and a transition counter.
///
/// # Examples
///
/// ```
/// use desc_core::wire::Wire;
///
/// let mut w = Wire::new();
/// w.drive(true);
/// w.drive(true);  // no transition: level unchanged
/// w.toggle();
/// assert_eq!(w.transitions(), 2);
/// assert_eq!(w.level(), false);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Wire {
    level: bool,
    transitions: u64,
}

impl Wire {
    /// A new wire holding logic zero (the paper's examples assume all
    /// wires hold zeroes before the first transmission).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current logic level.
    #[must_use]
    pub fn level(&self) -> bool {
        self.level
    }

    /// Total transitions since construction (or the last
    /// [`Wire::clear_transitions`]).
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Drives the wire to `level`, counting a transition if it changes.
    /// Returns `true` if a transition occurred.
    pub fn drive(&mut self, level: bool) -> bool {
        if self.level != level {
            self.level = level;
            self.transitions += 1;
            true
        } else {
            false
        }
    }

    /// Inverts the wire level (always one transition).
    pub fn toggle(&mut self) {
        self.level = !self.level;
        self.transitions += 1;
    }

    /// Toggles the wire `n` times in one step — state-identical to `n`
    /// [`Wire::toggle`] calls, but O(1). The batched DESC path uses
    /// this for the sync strobe, which toggles once per cycle.
    pub fn toggle_n(&mut self, n: u64) {
        self.level ^= n & 1 == 1;
        self.transitions += n;
    }

    /// Writes back the result of a batch kernel that tracked this
    /// wire's activity externally: sets the level and adds `n` recorded
    /// transitions — state-identical to replaying them one at a time.
    pub(crate) fn apply_batch(&mut self, level: bool, n: u64) {
        self.level = level;
        self.transitions += n;
    }

    /// Resets the transition counter without touching the level, so
    /// per-block costs can be read from long-lived wire state.
    pub fn clear_transitions(&mut self) {
        self.transitions = 0;
    }
}

/// An ordered group of wires driven with multi-bit values.
///
/// Bit `k` of a driven value goes to wire `k`.
///
/// # Examples
///
/// ```
/// use desc_core::wire::Bus;
///
/// let mut bus = Bus::new(8);
/// let flips = bus.drive(0b0101_0011);
/// assert_eq!(flips, 4); // paper Fig. 3-a: 4 bit-flips from all-zero
/// assert_eq!(bus.drive(0b0101_0011), 0);
/// assert_eq!(bus.transitions(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bus {
    width: usize,
    /// Current logic levels, wire `k` → bit `k` — one word instead of a
    /// `Vec<Wire>`, so a drive is an `xor` + `count_ones` over the whole
    /// bus rather than a per-wire loop.
    levels: u64,
    transitions: u64,
}

impl Bus {
    /// Creates a bus of `width` wires, all at logic zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0 && width <= 64, "bus width {width} out of range (1–64)");
        Self { width, levels: 0, transitions: 0 }
    }

    /// Bus width in wires.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Current value on the bus (wire `k` → bit `k`).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.levels
    }

    /// Drives all wires with `value`, returning the number of wires that
    /// flipped. Bits of `value` above the bus width must be zero.
    ///
    /// # Panics
    ///
    /// Panics if `value` has bits set beyond the bus width.
    pub fn drive(&mut self, value: u64) -> u32 {
        if self.width < 64 {
            assert!(
                value >> self.width == 0,
                "value {value:#x} exceeds {}-wire bus",
                self.width
            );
        }
        let flips = (self.levels ^ value).count_ones();
        self.levels = value;
        self.transitions += u64::from(flips);
        flips
    }

    /// Drives the bus with the bitwise complement of `value` within the
    /// bus width (used by bus-invert coding). Returns flips.
    pub fn drive_inverted(&mut self, value: u64) -> u32 {
        let mask = if self.width == 64 { u64::MAX } else { (1u64 << self.width) - 1 };
        self.drive(!value & mask)
    }

    /// Flips that driving `value` *would* cost, without driving.
    #[must_use]
    pub fn flips_to(&self, value: u64) -> u32 {
        (self.levels ^ value).count_ones()
    }

    /// Total transitions across all wires.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Clears the transition counter without touching the levels.
    pub fn clear_transitions(&mut self) {
        self.transitions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_counts_only_real_transitions() {
        let mut w = Wire::new();
        assert!(!w.level());
        assert!(w.drive(true));
        assert!(!w.drive(true));
        assert!(w.drive(false));
        assert_eq!(w.transitions(), 2);
        w.clear_transitions();
        assert_eq!(w.transitions(), 0);
        assert!(!w.level());
    }

    #[test]
    fn toggle_always_transitions() {
        let mut w = Wire::new();
        w.toggle();
        w.toggle();
        w.toggle();
        assert_eq!(w.transitions(), 3);
        assert!(w.level());
    }

    #[test]
    fn toggle_n_matches_repeated_toggles() {
        for n in [0u64, 1, 2, 7, 100] {
            let mut a = Wire::new();
            a.drive(true);
            let mut b = a;
            a.toggle_n(n);
            for _ in 0..n {
                b.toggle();
            }
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn bus_drive_counts_hamming_flips() {
        let mut bus = Bus::new(8);
        assert_eq!(bus.drive(0xFF), 8);
        assert_eq!(bus.drive(0x0F), 4);
        assert_eq!(bus.transitions(), 12);
    }

    #[test]
    fn bus_value_reflects_levels() {
        let mut bus = Bus::new(4);
        bus.drive(0b1010);
        assert_eq!(bus.value(), 0b1010);
    }

    #[test]
    fn flips_to_predicts_drive() {
        let mut bus = Bus::new(16);
        bus.drive(0xABCD);
        let predicted = bus.flips_to(0x1234);
        assert_eq!(bus.drive(0x1234), predicted);
    }

    #[test]
    fn drive_inverted_complements_within_width() {
        let mut bus = Bus::new(4);
        bus.drive_inverted(0b0011);
        assert_eq!(bus.value(), 0b1100);
    }

    #[test]
    fn full_width_bus_accepts_any_value() {
        let mut bus = Bus::new(64);
        assert_eq!(bus.drive(u64::MAX), 64);
        assert_eq!(bus.value(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn bus_rejects_oversized_values() {
        let mut bus = Bus::new(4);
        bus.drive(0x10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bus_rejects_zero_width() {
        let _ = Bus::new(0);
    }
}
