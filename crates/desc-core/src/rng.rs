//! Small, dependency-free deterministic PRNG for workload synthesis,
//! fault injection, and randomized tests.
//!
//! The repository builds hermetically offline, so instead of the
//! `rand` crate every consumer uses [`Rng64`]: a xoshiro256** core
//! seeded through SplitMix64 (the seeding procedure recommended by the
//! xoshiro authors). The API mirrors the tiny slice of `rand` this
//! workspace uses — `seed_from_u64`, `gen`, `gen_range`, `gen_bool` —
//! so the streams are deterministic per seed and stable across
//! platforms and releases of this repository.
//!
//! These generators are for *simulation reproducibility*, not
//! cryptography.
//!
//! # Examples
//!
//! ```
//! use desc_core::rng::Rng64;
//!
//! let mut a = Rng64::seed_from_u64(2013);
//! let mut b = Rng64::seed_from_u64(2013);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let d: f64 = a.gen();
//! assert!((0.0..1.0).contains(&d));
//! let v = a.gen_range(10u32..20);
//! assert!((10..20).contains(&v));
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and available directly for cheap stateless
/// hashing of seeds into independent stream identifiers.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed with a stream identifier into an independent
/// derived seed.
///
/// Used wherever one logical seed must fan out into several
/// statistically independent streams — e.g. bank-sharded simulation
/// derives each bank's value-stream seed from `(scale.seed, bank_id)`.
/// Two SplitMix64 steps decorrelate even adjacent `(seed, stream)`
/// pairs; the result is stable across platforms and releases.
///
/// # Examples
///
/// ```
/// use desc_core::rng::mix_seed;
///
/// assert_eq!(mix_seed(2013, 3), mix_seed(2013, 3));
/// assert_ne!(mix_seed(2013, 3), mix_seed(2013, 4));
/// assert_ne!(mix_seed(2013, 3), mix_seed(2014, 3));
/// ```
#[must_use]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut state = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let first = splitmix64(&mut state);
    first ^ splitmix64(&mut state)
}

/// A deterministic xoshiro256** generator.
///
/// Same seed → same stream, on every platform, forever. See the module
/// docs for the API contract.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The next 64 uniformly distributed bits (xoshiro256**).
    #[allow(clippy::should_implement_trait)] // no Iterator: infinite, primitive
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draws a uniform value of type `T` (see [`SampleValue`] for the
    /// supported types and their distributions).
    pub fn gen<T: SampleValue>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Draws a uniform value from a half-open (`a..b`) or inclusive
    /// (`a..=b`) integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` below `bound` via the widening-multiply method.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((u128::from(self.next_u64())) * u128::from(bound)) >> 64) as u64
    }
}

/// Types [`Rng64::gen`] can produce.
pub trait SampleValue {
    /// Draws one value from `rng`.
    fn sample(rng: &mut Rng64) -> Self;
}

impl SampleValue for u64 {
    fn sample(rng: &mut Rng64) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample(rng: &mut Rng64) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for u16 {
    fn sample(rng: &mut Rng64) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl SampleValue for u8 {
    fn sample(rng: &mut Rng64) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleValue for bool {
    fn sample(rng: &mut Rng64) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
impl SampleValue for f64 {
    fn sample(rng: &mut Rng64) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng64::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from `rng` uniformly over the range.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = u64::from(self.end - self.start);
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = u64::from(hi - lo);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64);

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(rng.bounded(u64::from(span)) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(rng.bounded(u64::from(span) + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + rng.bounded(span) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.bounded((hi - lo) as u64 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_splitmix64() {
        // First outputs for seed 0, from the reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        let mut c = Rng64::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let a = rng.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0usize..1);
            assert_eq!(b, 0);
            let c = rng.gen_range(1i32..=2);
            assert!((1..=2).contains(&c));
            let d = rng.gen_range(0x20u8..0x7F);
            assert!((0x20..0x7F).contains(&d));
        }
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = Rng64::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean:.4}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.3).abs() < 0.01, "fraction {f:.4}");
    }

    #[test]
    fn bounded_covers_full_range() {
        let mut rng = Rng64::seed_from_u64(17);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Rng64::seed_from_u64(1).gen_range(5u32..5);
    }
}
