//! # desc-core
//!
//! Bit-exact implementation of **DESC** — *energy-efficient Data Exchange
//! using Synchronized Counters* (Bojnordi & Ipek, MICRO 2013) — together
//! with every baseline data-transfer scheme the paper evaluates.
//!
//! DESC represents information by the *delay in clock cycles* between two
//! consecutive pulses on a set of wires: one pulse on a shared reset wire
//! opens a transfer window, and a single toggle on a data wire at cycle
//! `v` communicates the chunk value `v`. Each chunk therefore costs
//! exactly one wire transition regardless of the data pattern, which
//! decouples interconnect activity from data content.
//!
//! ## What lives here
//!
//! * [`analysis`] — per-wire activity-balance statistics.
//! * [`block`] — cache-block containers ([`Block`]).
//! * [`chunk`] — block ⇄ chunk partitioning and wire assignment
//!   (paper Fig. 4).
//! * [`wire`] — per-wire toggle state and exact transition tallies.
//! * [`cost`] — [`TransferCost`], the common currency all schemes report.
//! * [`scheme`] — the [`TransferScheme`] trait.
//! * [`schemes`] — the eight transfer schemes of the paper's Fig. 16:
//!   conventional binary, serial, dynamic zero compression, bus-invert
//!   coding, zero-skipped bus-invert (sparse and encoded variants), and
//!   DESC (basic, zero-skipped, last-value-skipped).
//! * [`protocol`] — a cycle-stepped transmitter/receiver pair that
//!   produces real signal traces (paper Fig. 5) and is used to
//!   cross-check the analytic cost model.
//! * [`rng`] — the in-tree deterministic PRNG every crate in the
//!   workspace uses (the build is hermetic: no external dependencies).
//! * [`circuits`] — toggle generator / detector / regenerator behavioural
//!   models (paper Fig. 8).
//! * [`synthesis`] — area / peak-power / delay estimates for a DESC
//!   transmitter+receiver pair (paper Fig. 17, Table 3).
//!
//! ## Quick example
//!
//! ```
//! use desc_core::{Block, ChunkSize, schemes::{DescScheme, SkipMode}, TransferScheme};
//!
//! // A 64-byte cache block, mostly zero (common in last-level caches).
//! let mut bytes = [0u8; 64];
//! bytes[0] = 0x53;
//! let block = Block::from_bytes(&bytes);
//!
//! // Zero-skipped DESC over 128 data wires with 4-bit chunks.
//! let mut desc = DescScheme::new(128, ChunkSize::new(4).unwrap(), SkipMode::Zero);
//! let cost = desc.transfer(&block);
//!
//! // Only the two non-zero chunks toggle; everything else is skipped.
//! assert_eq!(cost.data_transitions, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod block;
pub mod chunk;
pub mod circuits;
pub mod cost;
pub mod protocol;
pub mod rng;
pub mod scheme;
pub mod schemes;
pub mod synthesis;
pub mod wire;

pub use block::{Block, BlockSlab};
pub use chunk::{ChunkSize, Chunks, WireAssignment};
pub use cost::{CostSummary, TransferCost};
pub use scheme::{transfer_each, TransferScheme};
