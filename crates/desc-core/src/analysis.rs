//! Activity-factor analytics over per-wire transition counts.
//!
//! The paper's premise is that conventional binary encoding makes
//! interconnect activity *data-dependent*: some wires flip constantly
//! (low-order bits of changing values) while others barely move
//! (shared pointer prefixes, zero columns). DESC makes activity both
//! lower and *uniform* — each wire toggles once per unskipped chunk.
//! This module quantifies that with summary statistics over the
//! per-wire counters exposed by
//! [`BinaryScheme::wire_transitions`][crate::schemes::BinaryScheme::wire_transitions]
//! and
//! [`DescScheme::wire_transitions`][crate::schemes::DescScheme::wire_transitions].

/// Summary statistics of per-wire switching activity.
///
/// # Examples
///
/// ```
/// use desc_core::analysis::ActivitySummary;
///
/// let s = ActivitySummary::from_counts(&[10, 10, 10, 30]);
/// assert_eq!(s.total(), 60);
/// assert_eq!(s.max(), 30);
/// assert!(s.imbalance() > 1.9); // max is ~2x the mean
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ActivitySummary {
    total: u64,
    max: u64,
    min: u64,
    wires: usize,
    sum_sq: f64,
}

impl ActivitySummary {
    /// Summarises a slice of per-wire transition counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    #[must_use]
    pub fn from_counts(counts: &[u64]) -> Self {
        assert!(!counts.is_empty(), "need at least one wire");
        Self {
            total: counts.iter().sum(),
            max: counts.iter().copied().max().unwrap_or(0),
            min: counts.iter().copied().min().unwrap_or(0),
            wires: counts.len(),
            sum_sq: counts.iter().map(|&c| (c as f64) * (c as f64)).sum(),
        }
    }

    /// Total transitions across wires.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Busiest wire's transitions.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Quietest wire's transitions.
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Mean transitions per wire.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.total as f64 / self.wires as f64
    }

    /// Ratio of the busiest wire to the mean (1.0 = perfectly
    /// balanced). Peak activity bounds electromigration and IR-drop
    /// design margins, so lower is better.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.max as f64 / self.mean()
        }
    }

    /// Coefficient of variation of per-wire activity (0 = uniform).
    #[must_use]
    pub fn variation(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 0.0;
        }
        let var = (self.sum_sq / self.wires as f64) - mean * mean;
        var.max(0.0).sqrt() / mean
    }

    /// Mean activity factor per wire per cycle, given the cycles the
    /// link was active.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    #[must_use]
    pub fn activity_factor(&self, cycles: u64) -> f64 {
        assert!(cycles > 0, "activity factor needs a non-zero interval");
        self.mean() / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{BinaryScheme, DescScheme, SkipMode};
    use crate::{Block, ChunkSize, TransferScheme};

    #[test]
    fn uniform_counts_have_no_variation() {
        let s = ActivitySummary::from_counts(&[7; 64]);
        assert_eq!(s.imbalance(), 1.0);
        assert!(s.variation() < 1e-12);
        assert_eq!(s.min(), 7);
    }

    #[test]
    fn skewed_counts_show_imbalance() {
        let mut counts = vec![1u64; 63];
        counts.push(100);
        let s = ActivitySummary::from_counts(&counts);
        assert!(s.imbalance() > 30.0);
        assert!(s.variation() > 3.0);
    }

    #[test]
    fn zero_activity_is_balanced_by_convention() {
        let s = ActivitySummary::from_counts(&[0, 0, 0]);
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.variation(), 0.0);
    }

    /// The motivating property: on pointer-like data (shared high
    /// bits), binary activity is skewed across wires while basic DESC
    /// is perfectly uniform.
    #[test]
    fn desc_equalizes_wire_activity() {
        let mut binary = BinaryScheme::new(64);
        let mut desc = DescScheme::new(128, ChunkSize::new(4).expect("valid"), SkipMode::None)
            .without_sync_strobe();
        // Pointer-ish blocks: low 16 bits vary, the rest are fixed.
        for i in 0..64u64 {
            let words: Vec<u64> = (0..8).map(|k| 0x7F30_0000_0000 | ((i * 8 + k) * 64)).collect();
            let block = Block::from_words(&words);
            binary.transfer(&block);
            desc.transfer(&block);
        }
        let b = ActivitySummary::from_counts(&binary.wire_transitions());
        let d = ActivitySummary::from_counts(&desc.wire_transitions());
        assert!(b.variation() > 0.5, "binary variation {:.2}", b.variation());
        assert!(d.variation() < 1e-12, "basic DESC must be uniform");
        assert_eq!(d.imbalance(), 1.0);
    }

    #[test]
    fn activity_factor_is_per_cycle() {
        let s = ActivitySummary::from_counts(&[50, 50]);
        assert!((s.activity_factor(100) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one wire")]
    fn empty_counts_rejected() {
        let _ = ActivitySummary::from_counts(&[]);
    }
}
