//! Cycle-stepped DESC transmitter / receiver pair (paper §3.1–3.2).
//!
//! Unlike the analytic cost model in [`crate::schemes::DescScheme`],
//! this module *runs the protocol*: the transmitter side of a [`Link`]
//! toggles wires cycle by cycle, the wires delay the signal by a
//! configurable number of cycles, and the receiver side reconstructs
//! the chunk values purely from the toggles it observes and its own
//! synchronized counter. It
//! exists to (a) prove the encoding round-trips, (b) cross-check the
//! analytic transition/latency model, and (c) print Fig.-5-style signal
//! traces.
//!
//! Because the cache H-tree has equalized transmission delay (paper
//! §3.2.2), a constant wire latency shifts transmit and receive
//! timestamps equally and cancels out of every delay difference — the
//! receiver recovers the same values for any latency, which the tests
//! verify.

use crate::block::Block;
use crate::chunk::{ChunkSize, Chunks, WireAssignment};
use crate::cost::TransferCost;
use crate::schemes::SkipMode;
use std::collections::VecDeque;
use std::fmt;

/// Signal levels on the DESC link during one block transfer, one entry
/// per cycle — directly printable as a Fig.-5-style waveform.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SignalTrace {
    /// Level of the shared reset/skip strobe per cycle.
    pub reset_skip: Vec<bool>,
    /// Level of each data wire per cycle (`data[wire][cycle]`).
    pub data: Vec<Vec<bool>>,
}

impl SignalTrace {
    /// Number of traced cycles.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.reset_skip.len()
    }

    /// Counts level changes across all traced wires (including each
    /// wire's initial transition from its pre-trace level, which the
    /// caller supplies via `initial`).
    #[must_use]
    pub fn transitions(&self, initial_reset: bool, initial_data: &[bool]) -> u64 {
        fn edges(initial: bool, levels: &[bool]) -> u64 {
            let mut prev = initial;
            let mut n = 0;
            for &l in levels {
                if l != prev {
                    n += 1;
                }
                prev = l;
            }
            n
        }
        let mut n = edges(initial_reset, &self.reset_skip);
        for (w, lane) in self.data.iter().enumerate() {
            n += edges(initial_data.get(w).copied().unwrap_or(false), lane);
        }
        n
    }
}

impl fmt::Display for SignalTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lane = |name: &str, levels: &[bool], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "{name:>12} ")?;
            for &l in levels {
                write!(f, "{}", if l { '▔' } else { '▁' })?;
            }
            writeln!(f)
        };
        lane("reset/skip", &self.reset_skip, f)?;
        for (w, levels) in self.data.iter().enumerate() {
            lane(&format!("data[{w}]"), levels, f)?;
        }
        Ok(())
    }
}

/// Configuration shared by a transmitter/receiver pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkConfig {
    /// Number of data wires.
    pub wires: usize,
    /// Chunk width.
    pub chunk_size: ChunkSize,
    /// Value-skipping policy.
    pub mode: SkipMode,
    /// Wire propagation latency in cycles (equalized across the
    /// H-tree; must be the same for every wire).
    pub wire_delay: u64,
}

impl LinkConfig {
    /// The paper's L2 interface: 128 wires, 4-bit chunks, zero
    /// skipping, and a representative 2-cycle H-tree latency.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            wires: 128,
            chunk_size: ChunkSize::PAPER_DEFAULT,
            mode: SkipMode::Zero,
            wire_delay: 2,
        }
    }
}

/// One toggle event in flight on a wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Strobe {
    ResetSkip,
    Data(usize),
}

/// A DESC link: transmitter, delayed wires, and receiver, stepped one
/// cycle at a time.
///
/// # Examples
///
/// ```
/// use desc_core::protocol::{Link, LinkConfig};
/// use desc_core::{Block, ChunkSize, schemes::SkipMode};
///
/// let cfg = LinkConfig {
///     wires: 16,
///     chunk_size: ChunkSize::new(4).unwrap(),
///     mode: SkipMode::Zero,
///     wire_delay: 3,
/// };
/// let mut link = Link::new(cfg);
/// let block = Block::from_bytes(&[0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0]);
/// let out = link.transfer(&block);
/// assert_eq!(out.decoded, block);
/// ```
#[derive(Clone, Debug)]
pub struct Link {
    config: LinkConfig,
    /// Last values per wire, for `SkipMode::LastValue` (shared
    /// knowledge: both endpoints track it from the values exchanged).
    last_values: Vec<u16>,
}

/// Result of transferring one block across a [`Link`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinkTransfer {
    /// The block the receiver reconstructed.
    pub decoded: Block,
    /// Waveform as seen at the transmitter side.
    pub trace: SignalTrace,
    /// Exact cost measured from the emitted toggles.
    pub cost: TransferCost,
}

impl Link {
    /// Creates a link in the power-on state.
    ///
    /// # Panics
    ///
    /// Panics if `config.wires` is zero.
    #[must_use]
    pub fn new(config: LinkConfig) -> Self {
        assert!(config.wires > 0, "a link needs at least one data wire");
        Self { config, last_values: vec![0; config.wires] }
    }

    /// The link configuration.
    #[must_use]
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Strobe position of `v` within a window (1-based), with the skip
    /// value excluded from the count list.
    fn position(v: u16, skip: Option<u16>) -> u64 {
        match skip {
            None => u64::from(v) + 1,
            Some(s) if v < s => u64::from(v) + 1,
            Some(_) => u64::from(v),
        }
    }

    /// Inverse of [`Link::position`]: the value encoded by a strobe at
    /// window position `p`.
    fn value_at(p: u64, skip: Option<u16>) -> u16 {
        match skip {
            None => (p - 1) as u16,
            Some(s) if p <= u64::from(s) => (p - 1) as u16,
            Some(_) => p as u16,
        }
    }

    /// Transfers `block`, running transmitter and receiver cycle by
    /// cycle, and checks nothing but wire toggles crosses the link.
    ///
    /// # Panics
    ///
    /// Panics if the protocol deadlocks (internal bug — bounded by a
    /// watchdog) .
    #[allow(clippy::needless_range_loop)] // wire indices are semantic
    pub fn transfer(&mut self, block: &Block) -> LinkTransfer {
        let chunks = Chunks::split(block, self.config.chunk_size);
        let assignment = WireAssignment::new(chunks.len(), self.config.wires);

        // ---- Transmitter: schedule toggles per the protocol. --------
        // Events are (cycle, strobe). Cycle numbering starts at 0 for
        // the first reset toggle.
        let mut events: Vec<(u64, Strobe)> = Vec::new();
        let mut tx_last = self.last_values.clone();
        let mut now = 0u64;
        match self.config.mode {
            SkipMode::None => {
                events.push((now, Strobe::ResetSkip));
                // Per-wire chained chunks; each wire advances on its
                // own schedule starting the cycle after reset.
                for w in 0..self.config.wires {
                    let mut t = now;
                    for r in 0..assignment.rounds() {
                        if let Some(i) = assignment.chunk_at(w, r) {
                            let v = chunks.values()[i];
                            t += Self::position(v, None);
                            events.push((t, Strobe::Data(w)));
                            tx_last[w] = v;
                        }
                    }
                }
            }
            SkipMode::Zero | SkipMode::LastValue => {
                // The first round opens with a reset toggle; every later
                // round is opened by the single boundary toggle that
                // ended the previous round (a skip toggle doubles as the
                // next round's counter reset — see DESIGN.md §5).
                events.push((now, Strobe::ResetSkip));
                for r in 0..assignment.rounds() {
                    let mut max_pos = 0u64;
                    let mut any_skipped = false;
                    for w in 0..self.config.wires {
                        let Some(i) = assignment.chunk_at(w, r) else { continue };
                        let v = chunks.values()[i];
                        let skip = match self.config.mode {
                            SkipMode::Zero => 0,
                            SkipMode::LastValue => tx_last[w],
                            SkipMode::None => unreachable!(),
                        };
                        if v == skip {
                            any_skipped = true;
                        } else {
                            let p = Self::position(v, Some(skip));
                            events.push((now + p, Strobe::Data(w)));
                            max_pos = max_pos.max(p);
                        }
                        tx_last[w] = v;
                    }
                    let window = max_pos.max(1);
                    now += window;
                    // Boundary toggle: needed after every non-final
                    // round, and after the final round only to fill
                    // skipped chunks.
                    if r + 1 < assignment.rounds() || any_skipped {
                        events.push((now, Strobe::ResetSkip));
                    }
                }
            }
        }
        events.sort_by_key(|&(t, _)| t);

        // ---- Wires: apply the equalized propagation delay. ----------
        let delayed: VecDeque<(u64, Strobe)> = events
            .iter()
            .map(|&(t, s)| (t + self.config.wire_delay, s))
            .collect();

        // ---- Receiver: reconstruct values from observed toggles. ----
        let mut received: Vec<Option<u16>> = vec![None; chunks.len()];
        let mut rx_last = self.last_values.clone();
        let mut round = 0usize;
        let mut window_start: Option<u64> = None;
        let pending_in_round = |received: &[Option<u16>], round: usize| -> bool {
            (0..self.config.wires).any(|w| {
                assignment.chunk_at(w, round).is_some_and(|i| received[i].is_none())
            })
        };
        for &(t, strobe) in &delayed {
            match strobe {
                Strobe::ResetSkip => {
                    if window_start.is_some() && pending_in_round(&received, round) {
                        // Skip command: fill every pending chunk of the
                        // current round with its skip value.
                        for w in 0..self.config.wires {
                            if let Some(i) = assignment.chunk_at(w, round) {
                                if received[i].is_none() {
                                    let skip = match self.config.mode {
                                        SkipMode::Zero => 0,
                                        SkipMode::LastValue => rx_last[w],
                                        SkipMode::None => unreachable!(
                                            "basic DESC never sends a skip command"
                                        ),
                                    };
                                    received[i] = Some(skip);
                                    rx_last[w] = skip;
                                }
                            }
                        }
                        round += 1;
                    }
                    // Every reset/skip toggle also resets the counter,
                    // opening the next window (dual-purpose toggle).
                    window_start = Some(t);
                }
                Strobe::Data(w) => match self.config.mode {
                    SkipMode::None => {
                        // Chained decoding: value = delay since the
                        // previous toggle on this wire (or reset) − 1.
                        let r = (0..assignment.rounds())
                            .find(|&r| {
                                assignment.chunk_at(w, r).is_some_and(|i| received[i].is_none())
                            })
                            .expect("data strobe with no pending chunk");
                        let i = assignment.chunk_at(w, r).expect("checked above");
                        let prev_end: u64 = (0..r)
                            .map(|rr| {
                                let ii = assignment.chunk_at(w, rr).expect("earlier round");
                                u64::from(received[ii].expect("decoded in order")) + 1
                            })
                            .sum();
                        let start = window_start.expect("reset precedes data") + prev_end;
                        received[i] = Some(Self::value_at(t - start, None));
                        rx_last[w] = received[i].expect("just set");
                    }
                    SkipMode::Zero | SkipMode::LastValue => {
                        let i = assignment
                            .chunk_at(w, round)
                            .expect("data strobe outside any round");
                        assert!(received[i].is_none(), "duplicate strobe on wire {w}");
                        let skip = match self.config.mode {
                            SkipMode::Zero => 0,
                            SkipMode::LastValue => rx_last[w],
                            SkipMode::None => unreachable!(),
                        };
                        let p = t - window_start.expect("reset precedes data");
                        received[i] = Some(Self::value_at(p, Some(skip)));
                        rx_last[w] = received[i].expect("just set");
                        if !pending_in_round(&received, round) {
                            // Round completed purely by strobes.
                            round += 1;
                            window_start = None;
                        }
                    }
                },
            }
        }
        // Fill any chunks still pending: for skipped modes a trailing
        // skip toggle was emitted above, so everything must be decoded.
        let values: Vec<u16> = received
            .iter()
            .map(|v| v.expect("protocol left a chunk undecoded"))
            .collect();
        let decoded = Chunks::from_values(self.config.chunk_size, values).reassemble(block.byte_len());

        // ---- Trace + cost from the emitted events. -------------------
        let total_cycles = events.last().map_or(1, |&(t, _)| t + 1);
        let mut trace = SignalTrace {
            reset_skip: vec![false; total_cycles as usize],
            data: vec![vec![false; total_cycles as usize]; self.config.wires.min(16)],
        };
        let mut reset_level = false;
        let mut data_level = vec![false; self.config.wires];
        let mut idx = 0;
        for cycle in 0..total_cycles {
            while idx < events.len() && events[idx].0 == cycle {
                match events[idx].1 {
                    Strobe::ResetSkip => reset_level = !reset_level,
                    Strobe::Data(w) => data_level[w] = !data_level[w],
                }
                idx += 1;
            }
            trace.reset_skip[cycle as usize] = reset_level;
            for (w, lane) in trace.data.iter_mut().enumerate() {
                lane[cycle as usize] = data_level[w];
            }
        }

        let data_transitions =
            events.iter().filter(|(_, s)| matches!(s, Strobe::Data(_))).count() as u64;
        let control_transitions =
            events.iter().filter(|(_, s)| matches!(s, Strobe::ResetSkip)).count() as u64;
        // Transfer latency: accumulated window lengths for skipped
        // modes, or the time of the last strobe for basic chaining
        // (events are in transmitter time, so no delay correction).
        let cycles = match self.config.mode {
            SkipMode::None => events.last().map_or(1, |&(t, _)| t).max(1),
            SkipMode::Zero | SkipMode::LastValue => now.max(1),
        };
        let cost = TransferCost {
            data_transitions,
            control_transitions,
            sync_transitions: 0,
            cycles,
        };

        self.last_values = tx_last;
        LinkTransfer { decoded, trace, cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(wires: usize, bits: u8, mode: SkipMode, delay: u64) -> LinkConfig {
        LinkConfig {
            wires,
            chunk_size: ChunkSize::new(bits).expect("valid chunk size"),
            mode,
            wire_delay: delay,
        }
    }

    #[test]
    fn roundtrip_basic_single_wire_fig5() {
        let mut link = Link::new(cfg(1, 3, SkipMode::None, 0));
        let block = Block::from_bytes(&[0b0000_1010]); // chunks 2, 1, 0
        let out = link.transfer(&block);
        assert_eq!(out.decoded, block);
        assert_eq!(out.cost.data_transitions, 3);
        assert_eq!(out.cost.control_transitions, 1);
    }

    #[test]
    fn roundtrip_zero_skip_sparse_block() {
        let mut link = Link::new(cfg(16, 4, SkipMode::Zero, 2));
        let mut bytes = [0u8; 8];
        bytes[3] = 0x70;
        let block = Block::from_bytes(&bytes);
        let out = link.transfer(&block);
        assert_eq!(out.decoded, block);
        // 1 strobe + open + close.
        assert_eq!(out.cost.total_transitions(), 3);
    }

    #[test]
    fn roundtrip_last_value_repeat_blocks() {
        let mut link = Link::new(cfg(8, 4, SkipMode::LastValue, 1));
        let block = Block::from_bytes(&[0x12, 0x34, 0x56, 0x78]);
        let first = link.transfer(&block);
        assert_eq!(first.decoded, block);
        let second = link.transfer(&block);
        assert_eq!(second.decoded, block);
        assert_eq!(second.cost.data_transitions, 0, "repeat should be fully skipped");
    }

    #[test]
    fn wire_delay_cancels_out() {
        // Equalized H-tree delay (paper §3.2.2): decoding is invariant.
        let block = Block::from_bytes(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x00, 0xFF, 0x80]);
        for delay in [0, 1, 5, 19] {
            let mut link = Link::new(cfg(16, 4, SkipMode::Zero, delay));
            assert_eq!(link.transfer(&block).decoded, block, "delay {delay}");
        }
    }

    #[test]
    fn multi_round_roundtrip() {
        // 64 chunks over 16 wires → 4 rounds.
        let mut link = Link::new(cfg(16, 4, SkipMode::Zero, 0));
        let bytes: Vec<u8> = (0..32).map(|i| (i * 41) as u8).collect();
        let block = Block::from_bytes(&bytes);
        let out = link.transfer(&block);
        assert_eq!(out.decoded, block);
    }

    #[test]
    fn matches_analytic_cost_model() {
        use crate::scheme::TransferScheme;
        use crate::schemes::DescScheme;
        for mode in [SkipMode::None, SkipMode::Zero, SkipMode::LastValue] {
            let mut link = Link::new(cfg(16, 4, mode, 0));
            let mut analytic =
                DescScheme::new(16, ChunkSize::new(4).unwrap(), mode).without_sync_strobe();
            let blocks = [
                Block::from_bytes(&[0xA5; 16]),
                Block::zeroed(16),
                Block::from_bytes(&[0x0F, 0, 0, 0x33, 0, 0xF0, 0, 7, 0, 0, 1, 2, 3, 4, 5, 6]),
            ];
            for block in &blocks {
                let proto = link.transfer(block);
                let cost = analytic.transfer(block);
                assert_eq!(
                    proto.cost.data_transitions, cost.data_transitions,
                    "{mode:?} data transitions diverge"
                );
                assert_eq!(
                    proto.cost.control_transitions, cost.control_transitions,
                    "{mode:?} control transitions diverge"
                );
                assert_eq!(proto.cost.cycles, cost.cycles, "{mode:?} cycles diverge");
            }
        }
    }

    #[test]
    fn trace_renders_waveform() {
        let mut link = Link::new(cfg(2, 4, SkipMode::Zero, 0));
        let out = link.transfer(&Block::from_bytes(&[0x53]));
        let rendered = format!("{}", out.trace);
        assert!(rendered.contains("reset/skip"));
        assert!(rendered.contains("data[0]"));
        assert!(rendered.contains('▔'));
    }

    #[test]
    fn trace_transitions_match_cost() {
        let mut link = Link::new(cfg(4, 4, SkipMode::Zero, 0));
        let out = link.transfer(&Block::from_bytes(&[0x53, 0xA0]));
        let counted = out.trace.transitions(false, &[false; 4]);
        assert_eq!(counted, out.cost.total_transitions());
    }
}
