//! Cycle-stepped DESC transmitter / receiver pair (paper §3.1–3.2).
//!
//! Unlike the analytic cost model in [`crate::schemes::DescScheme`],
//! this module *runs the protocol*: the transmitter side of a [`Link`]
//! toggles wires cycle by cycle, the wires delay the signal by a
//! configurable number of cycles, and the receiver side reconstructs
//! the chunk values purely from the toggles it observes and its own
//! synchronized counter. It
//! exists to (a) prove the encoding round-trips, (b) cross-check the
//! analytic transition/latency model, and (c) print Fig.-5-style signal
//! traces.
//!
//! Because the cache H-tree has equalized transmission delay (paper
//! §3.2.2), a constant wire latency shifts transmit and receive
//! timestamps equally and cancels out of every delay difference — the
//! receiver recovers the same values for any latency, which the tests
//! verify.
//!
//! ## Hot-path design
//!
//! `Link::transfer` is the innermost loop of every throughput
//! measurement, so it is built to do no heap allocation in steady
//! state beyond the decoded [`Block`] it returns:
//!
//! * Waveform capture is **opt-in** via [`TraceCapture`] on
//!   [`LinkConfig`]. With [`TraceCapture::Off`] (the default) no trace
//!   is materialised at all; costs and decoding are unaffected.
//! * When capture is on, [`SignalTrace`] packs each lane into `u64`
//!   words (one bit per cycle) instead of one `bool` per cycle, and
//!   captures **every** data lane.
//! * Event, decode, and last-value buffers live on the [`Link`] and
//!   are reused across transfers.
//! * Chained basic-DESC decoding keeps a per-wire running prefix, so
//!   decoding a block is O(chunks) rather than O(rounds²) per wire.

use crate::block::{Block, BlockSlab};
use crate::chunk::{chunk_values_into, ChunkSize, WireAssignment};
use crate::cost::TransferCost;
use crate::schemes::SkipMode;
use std::fmt;

/// Whether a [`Link`] records per-cycle waveforms during transfers.
///
/// Figures that only need transition/cycle counts (which is all of
/// them except the Fig.-5-style waveform plots) should leave this
/// `Off` and pay zero trace cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceCapture {
    /// No waveform is recorded; [`LinkTransfer::trace`] is `None`.
    #[default]
    Off,
    /// Record every lane, bit-packed into `u64` words per cycle.
    Packed,
}

/// Signal levels on the DESC link during one block transfer —
/// directly printable as a Fig.-5-style waveform.
///
/// Levels are stored bit-packed: one `u64` word holds 64 cycles of one
/// lane. All `config.wires` data lanes are captured (earlier versions
/// silently truncated capture to the first 16 lanes).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SignalTrace {
    cycles: usize,
    data_lanes: usize,
    words_per_lane: usize,
    /// Lane-major bitmaps; lane 0 is the reset/skip strobe, lane
    /// `w + 1` is data wire `w`. Bit `c % 64` of word `c / 64` is the
    /// level at cycle `c`.
    bits: Vec<u64>,
}

impl SignalTrace {
    /// An all-low trace of `cycles` cycles over `data_lanes` data
    /// wires (plus the reset/skip lane).
    fn empty(data_lanes: usize, cycles: usize) -> Self {
        let words_per_lane = cycles.div_ceil(64).max(1);
        Self {
            cycles,
            data_lanes,
            words_per_lane,
            bits: vec![0; (data_lanes + 1) * words_per_lane],
        }
    }

    /// Drives one lane high for cycles `start..end`.
    fn set_high(&mut self, lane: usize, start: u64, end: u64) {
        let base = lane * self.words_per_lane;
        let (mut c, end) = (start as usize, (end as usize).min(self.cycles));
        while c < end {
            let word = c / 64;
            let lo = c % 64;
            let hi = 64.min(lo + (end - c));
            let mask = if hi - lo == 64 { u64::MAX } else { ((1u64 << (hi - lo)) - 1) << lo };
            self.bits[base + word] |= mask;
            c += hi - lo;
        }
    }

    /// Number of traced cycles.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Number of captured data lanes (always the link's full wire
    /// count).
    #[must_use]
    pub fn data_lanes(&self) -> usize {
        self.data_lanes
    }

    /// Level of the reset/skip strobe at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is out of range.
    #[must_use]
    pub fn reset_skip_level(&self, cycle: usize) -> bool {
        self.level(0, cycle)
    }

    /// Level of data wire `wire` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `wire` or `cycle` is out of range.
    #[must_use]
    pub fn data_level(&self, wire: usize, cycle: usize) -> bool {
        assert!(wire < self.data_lanes, "data lane {wire} out of range");
        self.level(wire + 1, cycle)
    }

    fn level(&self, lane: usize, cycle: usize) -> bool {
        assert!(cycle < self.cycles, "cycle {cycle} out of range");
        let word = self.bits[lane * self.words_per_lane + cycle / 64];
        (word >> (cycle % 64)) & 1 == 1
    }

    /// Counts level changes across all traced wires (including each
    /// wire's initial transition from its pre-trace level, which the
    /// caller supplies via `initial`).
    #[must_use]
    pub fn transitions(&self, initial_reset: bool, initial_data: &[bool]) -> u64 {
        let mut n = self.lane_edges(0, initial_reset);
        for w in 0..self.data_lanes {
            n += self.lane_edges(w + 1, initial_data.get(w).copied().unwrap_or(false));
        }
        n
    }

    /// Word-at-a-time edge count for one lane: an edge at cycle `c` is
    /// `level[c] != level[c - 1]`, with `level[-1] = initial`.
    fn lane_edges(&self, lane: usize, initial: bool) -> u64 {
        let base = lane * self.words_per_lane;
        let mut carry = u64::from(initial);
        let mut remaining = self.cycles;
        let mut n = 0u64;
        for &word in &self.bits[base..base + self.words_per_lane] {
            if remaining == 0 {
                break;
            }
            let valid = remaining.min(64);
            let mask = if valid == 64 { u64::MAX } else { (1u64 << valid) - 1 };
            let prev = (word << 1) | carry;
            n += u64::from(((word ^ prev) & mask).count_ones());
            carry = word >> 63;
            remaining -= valid;
        }
        n
    }
}

impl fmt::Display for SignalTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lane = |name: &str, l: usize, f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "{name:>12} ")?;
            for c in 0..self.cycles {
                write!(f, "{}", if self.level(l, c) { '▔' } else { '▁' })?;
            }
            writeln!(f)
        };
        lane("reset/skip", 0, f)?;
        for w in 0..self.data_lanes {
            lane(&format!("data[{w}]"), w + 1, f)?;
        }
        Ok(())
    }
}

/// Configuration shared by a transmitter/receiver pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkConfig {
    /// Number of data wires.
    pub wires: usize,
    /// Chunk width.
    pub chunk_size: ChunkSize,
    /// Value-skipping policy.
    pub mode: SkipMode,
    /// Wire propagation latency in cycles (equalized across the
    /// H-tree; must be the same for every wire).
    pub wire_delay: u64,
    /// Whether transfers record a waveform (default: off — the hot
    /// path pays nothing for tracing).
    pub trace: TraceCapture,
}

impl LinkConfig {
    /// The paper's L2 interface: 128 wires, 4-bit chunks, zero
    /// skipping, a representative 2-cycle H-tree latency, and no
    /// waveform capture.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            wires: 128,
            chunk_size: ChunkSize::PAPER_DEFAULT,
            mode: SkipMode::Zero,
            wire_delay: 2,
            trace: TraceCapture::Off,
        }
    }
}

/// One toggle event in flight on a wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Strobe {
    ResetSkip,
    Data(usize),
}

/// A DESC link: transmitter, delayed wires, and receiver, stepped one
/// cycle at a time.
///
/// # Examples
///
/// ```
/// use desc_core::protocol::{Link, LinkConfig, TraceCapture};
/// use desc_core::{Block, ChunkSize, schemes::SkipMode};
///
/// let cfg = LinkConfig {
///     wires: 16,
///     chunk_size: ChunkSize::new(4).unwrap(),
///     mode: SkipMode::Zero,
///     wire_delay: 3,
///     trace: TraceCapture::Off,
/// };
/// let mut link = Link::new(cfg);
/// let block = Block::from_bytes(&[0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0]);
/// let out = link.transfer(&block);
/// assert_eq!(out.decoded, block);
/// assert!(out.trace.is_none()); // capture is off
/// ```
#[derive(Clone, Debug)]
pub struct Link {
    config: LinkConfig,
    /// Transmitter-side last values per wire, for
    /// `SkipMode::LastValue` (shared knowledge: both endpoints track
    /// it from the values exchanged).
    tx_last: Vec<u16>,
    /// Receiver-side last values. Identical to `tx_last` between
    /// transfers; kept separately so a transfer needs no clones.
    rx_last: Vec<u16>,
    // ---- Reusable scratch, so steady-state transfers do not
    // allocate. ----
    /// Chunk values of the block currently being transferred.
    chunk_values: Vec<u16>,
    /// Scheduled toggle events `(cycle, strobe)` in transmitter time.
    events: Vec<(u64, Strobe)>,
    /// Per-chunk decoded values.
    received: Vec<Option<u16>>,
    /// `SkipMode::None` decoding: accumulated `value + 1` prefix per
    /// wire.
    wire_prefix: Vec<u64>,
    /// `SkipMode::None` decoding: chunks already decoded per wire.
    wire_round: Vec<u32>,
}

/// Result of transferring one block across a [`Link`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinkTransfer {
    /// The block the receiver reconstructed.
    pub decoded: Block,
    /// Waveform as seen at the transmitter side; `None` unless the
    /// link was configured with [`TraceCapture::Packed`].
    pub trace: Option<SignalTrace>,
    /// Exact cost measured from the emitted toggles.
    pub cost: TransferCost,
}

impl Link {
    /// Creates a link in the power-on state.
    ///
    /// # Panics
    ///
    /// Panics if `config.wires` is zero.
    #[must_use]
    pub fn new(config: LinkConfig) -> Self {
        assert!(config.wires > 0, "a link needs at least one data wire");
        Self {
            config,
            tx_last: vec![0; config.wires],
            rx_last: vec![0; config.wires],
            chunk_values: Vec::new(),
            events: Vec::new(),
            received: Vec::new(),
            wire_prefix: vec![0; config.wires],
            wire_round: vec![0; config.wires],
        }
    }

    /// The link configuration.
    #[must_use]
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Strobe position of `v` within a window (1-based), with the skip
    /// value excluded from the count list.
    fn position(v: u16, skip: Option<u16>) -> u64 {
        match skip {
            None => u64::from(v) + 1,
            Some(s) if v < s => u64::from(v) + 1,
            Some(_) => u64::from(v),
        }
    }

    /// Inverse of [`Link::position`]: the value encoded by a strobe at
    /// window position `p`.
    fn value_at(p: u64, skip: Option<u16>) -> u16 {
        match skip {
            None => (p - 1) as u16,
            Some(s) if p <= u64::from(s) => (p - 1) as u16,
            Some(_) => p as u16,
        }
    }

    /// Transfers `block`, running transmitter and receiver cycle by
    /// cycle, and checks nothing but wire toggles crosses the link.
    ///
    /// # Panics
    ///
    /// Panics if the protocol deadlocks (internal bug — bounded by a
    /// watchdog) .
    #[allow(clippy::needless_range_loop)] // wire indices are semantic
    pub fn transfer(&mut self, block: &Block) -> LinkTransfer {
        let width = self.config.chunk_size.bits() as usize;
        let n_chunks = self.config.chunk_size.chunks_for_bits(block.bit_len());
        let wires = self.config.wires;
        // Split into chunks in one streaming pass over the bytes,
        // reusing the scratch buffer (moved out locally to keep the
        // borrow checker happy while `self.events` is pushed to below).
        let mut chunk_values = std::mem::take(&mut self.chunk_values);
        chunk_values.clear();
        chunk_values.reserve(n_chunks);
        {
            let mask = (1u32 << width) - 1;
            let mut acc = 0u32;
            let mut acc_bits = 0usize;
            for &b in block.as_bytes() {
                acc |= u32::from(b) << acc_bits;
                acc_bits += 8;
                while acc_bits >= width {
                    chunk_values.push((acc & mask) as u16);
                    acc >>= width;
                    acc_bits -= width;
                }
            }
            if acc_bits > 0 {
                // Ragged final chunk, zero-padded.
                chunk_values.push((acc & mask) as u16);
            }
            debug_assert_eq!(chunk_values.len(), n_chunks);
        }
        let assignment = WireAssignment::new(n_chunks, wires);
        let rounds = assignment.rounds();

        // ---- Transmitter: schedule toggles per the protocol. --------
        // Events are (cycle, strobe). Cycle numbering starts at 0 for
        // the first reset toggle.
        self.events.clear();
        let mut now = 0u64;
        let mut max_t = 0u64;
        let mut data_transitions = 0u64;
        let mut control_transitions = 0u64;
        match self.config.mode {
            SkipMode::None => {
                self.events.push((now, Strobe::ResetSkip));
                control_transitions += 1;
                // Per-wire chained chunks; each wire advances on its
                // own schedule starting the cycle after reset.
                for w in 0..wires {
                    let mut t = now;
                    let mut i = w;
                    while i < n_chunks {
                        let v = chunk_values[i];
                        t += Self::position(v, None);
                        self.events.push((t, Strobe::Data(w)));
                        data_transitions += 1;
                        self.tx_last[w] = v;
                        i += wires;
                    }
                    max_t = max_t.max(t);
                }
            }
            SkipMode::Zero | SkipMode::LastValue => {
                // The first round opens with a reset toggle; every later
                // round is opened by the single boundary toggle that
                // ended the previous round (a skip toggle doubles as the
                // next round's counter reset — see DESIGN.md §5).
                self.events.push((now, Strobe::ResetSkip));
                control_transitions += 1;
                let last_value_mode = self.config.mode == SkipMode::LastValue;
                for r in 0..rounds {
                    let base = r * wires;
                    let end = (base + wires).min(n_chunks);
                    let mut max_pos = 0u64;
                    let mut any_skipped = false;
                    for i in base..end {
                        let w = i - base;
                        let v = chunk_values[i];
                        let skip = if last_value_mode { self.tx_last[w] } else { 0 };
                        if v == skip {
                            any_skipped = true;
                        } else {
                            let p = Self::position(v, Some(skip));
                            self.events.push((now + p, Strobe::Data(w)));
                            data_transitions += 1;
                            max_pos = max_pos.max(p);
                        }
                        self.tx_last[w] = v;
                    }
                    let window = max_pos.max(1);
                    now += window;
                    // Boundary toggle: needed after every non-final
                    // round, and after the final round only to fill
                    // skipped chunks.
                    if r + 1 < rounds || any_skipped {
                        self.events.push((now, Strobe::ResetSkip));
                        control_transitions += 1;
                    }
                }
                max_t = self.events.last().map_or(0, |&(t, _)| t).max(now);
            }
        }
        // The receiver consumes events in emission order, which is
        // equivalent to time order for this protocol: per lane the
        // toggle times are strictly increasing, rounds are emitted in
        // order, and each round's data strobes precede the boundary
        // toggle that closes it (a data strobe may share its cycle with
        // that boundary toggle — emission order keeps it first, which
        // is the order the receiver's counter logic requires). No sort
        // is needed; the reference decoder in the tests, which *does*
        // sort by time, pins this equivalence down.

        // ---- Receiver: reconstruct values from observed toggles. ----
        // The equalized wire delay shifts every timestamp by the same
        // constant, which cancels out of all delay differences; the
        // receiver therefore decodes in transmitter time directly.
        self.received.clear();
        self.received.resize(n_chunks, None);
        let chunks_in_round =
            |r: usize| -> usize { if r >= rounds { 0 } else { (n_chunks - r * wires).min(wires) } };
        match self.config.mode {
            SkipMode::None => {
                // Chained decoding: value = delay since the previous
                // toggle on this wire (or reset) − 1. A per-wire
                // running prefix of decoded `value + 1` spans makes
                // each strobe O(1).
                self.wire_prefix.fill(0);
                self.wire_round.fill(0);
                let mut window_start: Option<u64> = None;
                for &(t, strobe) in &self.events {
                    match strobe {
                        Strobe::ResetSkip => window_start = Some(t),
                        Strobe::Data(w) => {
                            let i = self.wire_round[w] as usize * wires + w;
                            assert!(i < n_chunks, "data strobe with no pending chunk");
                            let start =
                                window_start.expect("reset precedes data") + self.wire_prefix[w];
                            let v = Self::value_at(t - start, None);
                            self.received[i] = Some(v);
                            self.rx_last[w] = v;
                            self.wire_prefix[w] += u64::from(v) + 1;
                            self.wire_round[w] += 1;
                        }
                    }
                }
            }
            SkipMode::Zero | SkipMode::LastValue => {
                let mut round = 0usize;
                let mut pending = chunks_in_round(0);
                let mut window_start: Option<u64> = None;
                for &(t, strobe) in &self.events {
                    match strobe {
                        Strobe::ResetSkip => {
                            if window_start.is_some() && pending > 0 {
                                // Skip command: fill every pending chunk
                                // of the current round with its skip
                                // value.
                                let base = round * wires;
                                let end = (base + wires).min(n_chunks);
                                for i in base..end {
                                    if self.received[i].is_none() {
                                        let w = i - base;
                                        let skip = match self.config.mode {
                                            SkipMode::Zero => 0,
                                            SkipMode::LastValue => self.rx_last[w],
                                            SkipMode::None => unreachable!(
                                                "basic DESC never sends a skip command"
                                            ),
                                        };
                                        self.received[i] = Some(skip);
                                        self.rx_last[w] = skip;
                                    }
                                }
                                round += 1;
                                pending = chunks_in_round(round);
                            }
                            // Every reset/skip toggle also resets the
                            // counter, opening the next window
                            // (dual-purpose toggle).
                            window_start = Some(t);
                        }
                        Strobe::Data(w) => {
                            let i = round * wires + w;
                            assert!(i < n_chunks, "data strobe outside any round");
                            assert!(self.received[i].is_none(), "duplicate strobe on wire {w}");
                            let skip = match self.config.mode {
                                SkipMode::Zero => 0,
                                SkipMode::LastValue => self.rx_last[w],
                                SkipMode::None => unreachable!(),
                            };
                            let p = t - window_start.expect("reset precedes data");
                            let v = Self::value_at(p, Some(skip));
                            self.received[i] = Some(v);
                            self.rx_last[w] = v;
                            pending -= 1;
                            if pending == 0 {
                                // Round completed purely by strobes.
                                round += 1;
                                pending = chunks_in_round(round);
                                window_start = None;
                            }
                        }
                    }
                }
            }
        }
        // Reassemble directly from the decoded chunk values in one
        // streaming pass (for skipped modes a trailing skip toggle was
        // emitted above, so everything must be decoded).
        let byte_len = block.byte_len();
        let mut decoded_bytes = Vec::with_capacity(byte_len + 2);
        let mut acc = 0u32;
        let mut acc_bits = 0usize;
        for v in &self.received {
            let v = v.expect("protocol left a chunk undecoded");
            debug_assert!(v <= self.config.chunk_size.max_value());
            acc |= u32::from(v) << acc_bits;
            acc_bits += width;
            while acc_bits >= 8 {
                decoded_bytes.push(acc as u8);
                acc >>= 8;
                acc_bits -= 8;
            }
        }
        if acc_bits > 0 {
            decoded_bytes.push(acc as u8);
        }
        // Ragged chunk widths can spill a padding byte past the block.
        decoded_bytes.truncate(byte_len);
        debug_assert_eq!(decoded_bytes.len(), byte_len);
        let decoded = Block::from_vec(decoded_bytes);

        // ---- Cost + optional trace (counted during emission). -------
        // Transfer latency: accumulated window lengths for skipped
        // modes, or the time of the last strobe for basic chaining
        // (events are in transmitter time, so no delay correction).
        let cycles = match self.config.mode {
            SkipMode::None => max_t.max(1),
            SkipMode::Zero | SkipMode::LastValue => now.max(1),
        };
        let cost = TransferCost {
            data_transitions,
            control_transitions,
            sync_transitions: 0,
            latency_cycles: 0,
            cycles,
        };

        let trace = match self.config.trace {
            TraceCapture::Off => None,
            TraceCapture::Packed => Some(self.capture_trace(max_t + 1)),
        };

        // Telemetry: one relaxed load when off; all updates are
        // order-independent adds, so totals are identical for any
        // worker count.
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("core.link.transfers").incr();
            desc_telemetry::counter!("core.link.data_transitions").add(data_transitions);
            desc_telemetry::counter!("core.link.control_transitions").add(control_transitions);
            desc_telemetry::counter!("core.link.cycles").add(cycles);
            desc_telemetry::counter!("core.link.rounds").add(rounds as u64);
            desc_telemetry::counter!("core.link.chunks").add(n_chunks as u64);
            match self.config.mode {
                SkipMode::None => {
                    desc_telemetry::counter!("core.link.mode.none.transfers").incr();
                }
                SkipMode::Zero => {
                    desc_telemetry::counter!("core.link.mode.zero.transfers").incr();
                    desc_telemetry::counter!("core.link.skipped_chunks")
                        .add(n_chunks as u64 - data_transitions);
                }
                SkipMode::LastValue => {
                    desc_telemetry::counter!("core.link.mode.last_value.transfers").incr();
                    desc_telemetry::counter!("core.link.skipped_chunks")
                        .add(n_chunks as u64 - data_transitions);
                }
            }
        }

        self.chunk_values = chunk_values;
        LinkTransfer { decoded, trace, cost }
    }

    /// Transfers every block in `slab`, appending one cost per block to
    /// `costs` — bit-identical to `slab.len()` sequential
    /// [`Link::transfer`] calls, including the link's persistent
    /// last-value state afterwards.
    ///
    /// With [`TraceCapture::Off`] (the hot-path configuration) this
    /// skips the event list and the receiver entirely: chunk values are
    /// extracted word-at-a-time from the slab and the cost falls out of
    /// the same window arithmetic the transmitter uses, with telemetry
    /// accumulated across the batch and flushed once. With
    /// [`TraceCapture::Packed`] each block runs the full cycle-stepped
    /// protocol (waveforms are per-block artifacts; batching only
    /// amortizes the dispatch), and the decoded output is discarded —
    /// use [`Link::transfer`] when the decode or trace is needed.
    pub fn transfer_many(&mut self, slab: &BlockSlab, costs: &mut Vec<TransferCost>) {
        if slab.is_empty() {
            return;
        }
        if self.config.trace == TraceCapture::Packed {
            let mut scratch = Block::zeroed(slab.byte_len());
            costs.reserve(slab.len());
            for b in 0..slab.len() {
                slab.copy_block_into(b, &mut scratch);
                costs.push(self.transfer(&scratch).cost);
            }
            return;
        }

        let width = self.config.chunk_size.bits() as usize;
        let n_chunks = self.config.chunk_size.chunks_for_bits(slab.bit_len());
        let wires = self.config.wires;
        let rounds = n_chunks.div_ceil(wires);
        let last_value_mode = self.config.mode == SkipMode::LastValue;
        let mut chunk_values = std::mem::take(&mut self.chunk_values);
        // Batch-wide telemetry accumulators, flushed once below.
        let mut batch_data = 0u64;
        let mut batch_control = 0u64;
        let mut batch_cycles = 0u64;
        costs.reserve(slab.len());
        for b in 0..slab.len() {
            chunk_values.clear();
            chunk_values_into(
                slab.block_words(b).iter().copied(),
                n_chunks,
                width,
                &mut chunk_values,
            );
            let mut data_transitions = 0u64;
            let mut control_transitions = 1u64; // opening reset toggle
            let cycles = match self.config.mode {
                SkipMode::None => {
                    // Per-wire chained chunks: the transfer ends when
                    // the slowest wire's accumulated positions run out.
                    // `wire_prefix` doubles as the per-wire clock (the
                    // decoder that normally owns it is not running).
                    self.wire_prefix.fill(0);
                    for (i, &v) in chunk_values.iter().enumerate() {
                        let w = i % wires;
                        self.wire_prefix[w] += Self::position(v, None);
                        self.tx_last[w] = v;
                        self.rx_last[w] = v;
                    }
                    data_transitions = n_chunks as u64;
                    self.wire_prefix.iter().copied().max().unwrap_or(0).max(1)
                }
                SkipMode::Zero | SkipMode::LastValue => {
                    let mut now = 0u64;
                    for r in 0..rounds {
                        let base = r * wires;
                        let end = (base + wires).min(n_chunks);
                        let mut max_pos = 0u64;
                        let mut any_skipped = false;
                        for (w, &v) in chunk_values[base..end].iter().enumerate() {
                            let skip = if last_value_mode { self.tx_last[w] } else { 0 };
                            if v == skip {
                                any_skipped = true;
                            } else {
                                data_transitions += 1;
                                max_pos = max_pos.max(Self::position(v, Some(skip)));
                            }
                            self.tx_last[w] = v;
                            self.rx_last[w] = v;
                        }
                        now += max_pos.max(1);
                        if r + 1 < rounds || any_skipped {
                            control_transitions += 1;
                        }
                    }
                    now.max(1)
                }
            };
            batch_data += data_transitions;
            batch_control += control_transitions;
            batch_cycles += cycles;
            costs.push(TransferCost {
                data_transitions,
                control_transitions,
                sync_transitions: 0,
                latency_cycles: 0,
                cycles,
            });
        }
        self.chunk_values = chunk_values;

        if desc_telemetry::enabled() {
            let n = slab.len() as u64;
            desc_telemetry::counter!("core.link.transfers").add(n);
            desc_telemetry::counter!("core.link.data_transitions").add(batch_data);
            desc_telemetry::counter!("core.link.control_transitions").add(batch_control);
            desc_telemetry::counter!("core.link.cycles").add(batch_cycles);
            desc_telemetry::counter!("core.link.rounds").add(rounds as u64 * n);
            desc_telemetry::counter!("core.link.chunks").add(n_chunks as u64 * n);
            match self.config.mode {
                SkipMode::None => {
                    desc_telemetry::counter!("core.link.mode.none.transfers").add(n);
                }
                SkipMode::Zero => {
                    desc_telemetry::counter!("core.link.mode.zero.transfers").add(n);
                    desc_telemetry::counter!("core.link.skipped_chunks")
                        .add(n_chunks as u64 * n - batch_data);
                }
                SkipMode::LastValue => {
                    desc_telemetry::counter!("core.link.mode.last_value.transfers").add(n);
                    desc_telemetry::counter!("core.link.skipped_chunks")
                        .add(n_chunks as u64 * n - batch_data);
                }
            }
        }
    }

    /// Builds the packed waveform from the (sorted) event list: each
    /// lane is high between its odd- and even-numbered toggles.
    fn capture_trace(&self, total_cycles: u64) -> SignalTrace {
        let mut trace = SignalTrace::empty(self.config.wires, total_cycles as usize);
        let lanes = self.config.wires + 1;
        let mut last_toggle = vec![0u64; lanes];
        let mut level = vec![false; lanes];
        for &(t, s) in &self.events {
            let lane = match s {
                Strobe::ResetSkip => 0,
                Strobe::Data(w) => w + 1,
            };
            if level[lane] {
                trace.set_high(lane, last_toggle[lane], t);
            }
            level[lane] = !level[lane];
            last_toggle[lane] = t;
        }
        for (lane, &high) in level.iter().enumerate() {
            if high {
                trace.set_high(lane, last_toggle[lane], total_cycles);
            }
        }
        trace
    }
}

/// Replays a captured packed waveform through the
/// [`crate::circuits::ToggleDetector`] behavioural model and re-decodes
/// the chunk stream, closing the capture loop: the trace alone (plus
/// the link configuration and each wire's pre-transfer last value,
/// which both endpoints track) carries the full transfer.
///
/// `initial_last` is the per-wire last-value state *before* the traced
/// transfer (all zeros for a fresh link; only consulted in
/// [`SkipMode::LastValue`]). Pass an empty slice for a power-on link.
///
/// # Panics
///
/// Panics if the trace's lane count disagrees with `config.wires`, if
/// `initial_last` is neither empty nor `config.wires` long, or if the
/// waveform is not a well-formed transfer of `n_chunks` chunks.
#[must_use]
pub fn replay_trace(
    trace: &SignalTrace,
    config: &LinkConfig,
    n_chunks: usize,
    initial_last: &[u16],
) -> Vec<u16> {
    use crate::circuits::ToggleDetector;
    let wires = config.wires;
    assert_eq!(trace.data_lanes(), wires, "trace lane count disagrees with config.wires");
    assert!(
        initial_last.is_empty() || initial_last.len() == wires,
        "initial_last must be empty or one entry per wire"
    );
    let mut last: Vec<u16> =
        if initial_last.is_empty() { vec![0; wires] } else { initial_last.to_vec() };

    // ---- Edge recovery: one toggle detector per lane, stepped cycle
    // by cycle over the captured levels (paper Fig. 8-b). Within a
    // cycle, data pulses come before a reset/skip pulse: a data strobe
    // may share its cycle with the boundary toggle that closes its
    // round and must be decoded under the window that toggle closes —
    // the same ordering `Link::transfer` emits.
    let mut reset_detector = ToggleDetector::new();
    let mut data_detectors = vec![ToggleDetector::new(); wires];
    let mut events: Vec<(u64, Strobe)> = Vec::new();
    for c in 0..trace.cycles() {
        for (w, detector) in data_detectors.iter_mut().enumerate() {
            if detector.step(trace.data_level(w, c)) {
                events.push((c as u64, Strobe::Data(w)));
            }
        }
        if reset_detector.step(trace.reset_skip_level(c)) {
            events.push((c as u64, Strobe::ResetSkip));
        }
    }

    // ---- Decode: the same window logic as the receiver half of
    // `Link::transfer`, driven by the recovered pulses.
    let mut received: Vec<Option<u16>> = vec![None; n_chunks];
    match config.mode {
        SkipMode::None => {
            let mut wire_prefix = vec![0u64; wires];
            let mut wire_round = vec![0usize; wires];
            let mut window_start: Option<u64> = None;
            for &(t, strobe) in &events {
                match strobe {
                    Strobe::ResetSkip => window_start = Some(t),
                    Strobe::Data(w) => {
                        let i = wire_round[w] * wires + w;
                        assert!(i < n_chunks, "replayed strobe with no pending chunk");
                        let start =
                            window_start.expect("reset precedes data") + wire_prefix[w];
                        let v = Link::value_at(t - start, None);
                        received[i] = Some(v);
                        wire_prefix[w] += u64::from(v) + 1;
                        wire_round[w] += 1;
                    }
                }
            }
        }
        SkipMode::Zero | SkipMode::LastValue => {
            let rounds = n_chunks.div_ceil(wires);
            let chunks_in_round = |r: usize| -> usize {
                if r >= rounds {
                    0
                } else {
                    (n_chunks - r * wires).min(wires)
                }
            };
            let mut round = 0usize;
            let mut pending = chunks_in_round(0);
            let mut window_start: Option<u64> = None;
            for &(t, strobe) in &events {
                match strobe {
                    Strobe::ResetSkip => {
                        if window_start.is_some() && pending > 0 {
                            let base = round * wires;
                            let end = (base + wires).min(n_chunks);
                            for (w, slot) in received[base..end].iter_mut().enumerate() {
                                if slot.is_none() {
                                    let skip = match config.mode {
                                        SkipMode::Zero => 0,
                                        SkipMode::LastValue => last[w],
                                        SkipMode::None => unreachable!(),
                                    };
                                    *slot = Some(skip);
                                    last[w] = skip;
                                }
                            }
                            round += 1;
                            pending = chunks_in_round(round);
                        }
                        window_start = Some(t);
                    }
                    Strobe::Data(w) => {
                        let i = round * wires + w;
                        assert!(i < n_chunks, "replayed strobe outside any round");
                        assert!(received[i].is_none(), "duplicate replayed strobe on wire {w}");
                        let skip = match config.mode {
                            SkipMode::Zero => 0,
                            SkipMode::LastValue => last[w],
                            SkipMode::None => unreachable!(),
                        };
                        let p = t - window_start.expect("reset precedes data");
                        let v = Link::value_at(p, Some(skip));
                        received[i] = Some(v);
                        last[w] = v;
                        pending -= 1;
                        if pending == 0 {
                            round += 1;
                            pending = chunks_in_round(round);
                            window_start = None;
                        }
                    }
                }
            }
        }
    }
    received
        .into_iter()
        .map(|v| v.expect("replay left a chunk undecoded"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn cfg(wires: usize, bits: u8, mode: SkipMode, delay: u64) -> LinkConfig {
        LinkConfig {
            wires,
            chunk_size: ChunkSize::new(bits).expect("valid chunk size"),
            mode,
            wire_delay: delay,
            trace: TraceCapture::Packed,
        }
    }

    /// The pre-optimisation decoder, kept verbatim as an oracle: it
    /// re-derives each chained chunk's window start by summing every
    /// previously decoded chunk on the wire (O(rounds²) per wire) and
    /// allocates fresh buffers per transfer.
    mod reference {
        use super::*;
        use crate::chunk::Chunks;

        pub struct ReferenceLink {
            config: LinkConfig,
            last_values: Vec<u16>,
        }

        impl ReferenceLink {
            pub fn new(config: LinkConfig) -> Self {
                Self { config, last_values: vec![0; config.wires] }
            }

            // Kept structurally identical to the pre-optimisation
            // decoder on purpose; indexed loops mirror that code.
            #[allow(clippy::needless_range_loop)]
            pub fn transfer(&mut self, block: &Block) -> (Block, TransferCost) {
                let chunks = Chunks::split(block, self.config.chunk_size);
                let assignment = WireAssignment::new(chunks.len(), self.config.wires);
                let mut events: Vec<(u64, Strobe)> = Vec::new();
                let mut tx_last = self.last_values.clone();
                let mut now = 0u64;
                match self.config.mode {
                    SkipMode::None => {
                        events.push((now, Strobe::ResetSkip));
                        for w in 0..self.config.wires {
                            let mut t = now;
                            for r in 0..assignment.rounds() {
                                if let Some(i) = assignment.chunk_at(w, r) {
                                    let v = chunks.values()[i];
                                    t += Link::position(v, None);
                                    events.push((t, Strobe::Data(w)));
                                    tx_last[w] = v;
                                }
                            }
                        }
                    }
                    SkipMode::Zero | SkipMode::LastValue => {
                        events.push((now, Strobe::ResetSkip));
                        for r in 0..assignment.rounds() {
                            let mut max_pos = 0u64;
                            let mut any_skipped = false;
                            for w in 0..self.config.wires {
                                let Some(i) = assignment.chunk_at(w, r) else { continue };
                                let v = chunks.values()[i];
                                let skip = match self.config.mode {
                                    SkipMode::Zero => 0,
                                    SkipMode::LastValue => tx_last[w],
                                    SkipMode::None => unreachable!(),
                                };
                                if v == skip {
                                    any_skipped = true;
                                } else {
                                    let p = Link::position(v, Some(skip));
                                    events.push((now + p, Strobe::Data(w)));
                                    max_pos = max_pos.max(p);
                                }
                                tx_last[w] = v;
                            }
                            let window = max_pos.max(1);
                            now += window;
                            if r + 1 < assignment.rounds() || any_skipped {
                                events.push((now, Strobe::ResetSkip));
                            }
                        }
                    }
                }
                events.sort_by_key(|&(t, _)| t);

                let mut received: Vec<Option<u16>> = vec![None; chunks.len()];
                let mut rx_last = self.last_values.clone();
                let mut round = 0usize;
                let mut window_start: Option<u64> = None;
                let pending_in_round = |received: &[Option<u16>], round: usize| -> bool {
                    (0..self.config.wires).any(|w| {
                        assignment.chunk_at(w, round).is_some_and(|i| received[i].is_none())
                    })
                };
                for &(t, strobe) in &events {
                    match strobe {
                        Strobe::ResetSkip => {
                            if window_start.is_some() && pending_in_round(&received, round) {
                                for w in 0..self.config.wires {
                                    if let Some(i) = assignment.chunk_at(w, round) {
                                        if received[i].is_none() {
                                            let skip = match self.config.mode {
                                                SkipMode::Zero => 0,
                                                SkipMode::LastValue => rx_last[w],
                                                SkipMode::None => unreachable!(),
                                            };
                                            received[i] = Some(skip);
                                            rx_last[w] = skip;
                                        }
                                    }
                                }
                                round += 1;
                            }
                            window_start = Some(t);
                        }
                        Strobe::Data(w) => match self.config.mode {
                            SkipMode::None => {
                                let r = (0..assignment.rounds())
                                    .find(|&r| {
                                        assignment
                                            .chunk_at(w, r)
                                            .is_some_and(|i| received[i].is_none())
                                    })
                                    .expect("data strobe with no pending chunk");
                                let i = assignment.chunk_at(w, r).expect("checked above");
                                let prev_end: u64 = (0..r)
                                    .map(|rr| {
                                        let ii =
                                            assignment.chunk_at(w, rr).expect("earlier round");
                                        u64::from(received[ii].expect("decoded in order")) + 1
                                    })
                                    .sum();
                                let start =
                                    window_start.expect("reset precedes data") + prev_end;
                                received[i] = Some(Link::value_at(t - start, None));
                                rx_last[w] = received[i].expect("just set");
                            }
                            SkipMode::Zero | SkipMode::LastValue => {
                                let i = assignment
                                    .chunk_at(w, round)
                                    .expect("data strobe outside any round");
                                let skip = match self.config.mode {
                                    SkipMode::Zero => 0,
                                    SkipMode::LastValue => rx_last[w],
                                    SkipMode::None => unreachable!(),
                                };
                                let p = t - window_start.expect("reset precedes data");
                                received[i] = Some(Link::value_at(p, Some(skip)));
                                rx_last[w] = received[i].expect("just set");
                                if !pending_in_round(&received, round) {
                                    round += 1;
                                    window_start = None;
                                }
                            }
                        },
                    }
                }
                let values: Vec<u16> = received
                    .iter()
                    .map(|v| v.expect("protocol left a chunk undecoded"))
                    .collect();
                let decoded = Chunks::from_values(self.config.chunk_size, values)
                    .reassemble(block.byte_len());
                let data_transitions =
                    events.iter().filter(|(_, s)| matches!(s, Strobe::Data(_))).count() as u64;
                let control_transitions =
                    events.iter().filter(|(_, s)| matches!(s, Strobe::ResetSkip)).count() as u64;
                let cycles = match self.config.mode {
                    SkipMode::None => events.last().map_or(1, |&(t, _)| t).max(1),
                    SkipMode::Zero | SkipMode::LastValue => now.max(1),
                };
                self.last_values = tx_last;
                (
                    decoded,
                    TransferCost {
                        data_transitions,
                        control_transitions,
                        sync_transitions: 0,
                        latency_cycles: 0,
                        cycles,
                    },
                )
            }
        }
    }

    #[test]
    fn roundtrip_basic_single_wire_fig5() {
        let mut link = Link::new(cfg(1, 3, SkipMode::None, 0));
        let block = Block::from_bytes(&[0b0000_1010]); // chunks 2, 1, 0
        let out = link.transfer(&block);
        assert_eq!(out.decoded, block);
        assert_eq!(out.cost.data_transitions, 3);
        assert_eq!(out.cost.control_transitions, 1);
    }

    #[test]
    fn roundtrip_zero_skip_sparse_block() {
        let mut link = Link::new(cfg(16, 4, SkipMode::Zero, 2));
        let mut bytes = [0u8; 8];
        bytes[3] = 0x70;
        let block = Block::from_bytes(&bytes);
        let out = link.transfer(&block);
        assert_eq!(out.decoded, block);
        // 1 strobe + open + close.
        assert_eq!(out.cost.total_transitions(), 3);
    }

    #[test]
    fn roundtrip_last_value_repeat_blocks() {
        let mut link = Link::new(cfg(8, 4, SkipMode::LastValue, 1));
        let block = Block::from_bytes(&[0x12, 0x34, 0x56, 0x78]);
        let first = link.transfer(&block);
        assert_eq!(first.decoded, block);
        let second = link.transfer(&block);
        assert_eq!(second.decoded, block);
        assert_eq!(second.cost.data_transitions, 0, "repeat should be fully skipped");
    }

    #[test]
    fn wire_delay_cancels_out() {
        // Equalized H-tree delay (paper §3.2.2): decoding is invariant.
        let block = Block::from_bytes(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x00, 0xFF, 0x80]);
        for delay in [0, 1, 5, 19] {
            let mut link = Link::new(cfg(16, 4, SkipMode::Zero, delay));
            assert_eq!(link.transfer(&block).decoded, block, "delay {delay}");
        }
    }

    #[test]
    fn multi_round_roundtrip() {
        // 64 chunks over 16 wires → 4 rounds.
        let mut link = Link::new(cfg(16, 4, SkipMode::Zero, 0));
        let bytes: Vec<u8> = (0..32).map(|i| (i * 41) as u8).collect();
        let block = Block::from_bytes(&bytes);
        let out = link.transfer(&block);
        assert_eq!(out.decoded, block);
    }

    #[test]
    fn matches_analytic_cost_model() {
        use crate::scheme::TransferScheme;
        use crate::schemes::DescScheme;
        for mode in [SkipMode::None, SkipMode::Zero, SkipMode::LastValue] {
            let mut link = Link::new(cfg(16, 4, mode, 0));
            let mut analytic =
                DescScheme::new(16, ChunkSize::new(4).unwrap(), mode).without_sync_strobe();
            let blocks = [
                Block::from_bytes(&[0xA5; 16]),
                Block::zeroed(16),
                Block::from_bytes(&[0x0F, 0, 0, 0x33, 0, 0xF0, 0, 7, 0, 0, 1, 2, 3, 4, 5, 6]),
            ];
            for block in &blocks {
                let proto = link.transfer(block);
                let cost = analytic.transfer(block);
                assert_eq!(
                    proto.cost.data_transitions, cost.data_transitions,
                    "{mode:?} data transitions diverge"
                );
                assert_eq!(
                    proto.cost.control_transitions, cost.control_transitions,
                    "{mode:?} control transitions diverge"
                );
                assert_eq!(proto.cost.cycles, cost.cycles, "{mode:?} cycles diverge");
            }
        }
    }

    #[test]
    fn trace_renders_waveform() {
        let mut link = Link::new(cfg(2, 4, SkipMode::Zero, 0));
        let out = link.transfer(&Block::from_bytes(&[0x53]));
        let rendered = format!("{}", out.trace.expect("capture on"));
        assert!(rendered.contains("reset/skip"));
        assert!(rendered.contains("data[0]"));
        assert!(rendered.contains('▔'));
    }

    #[test]
    fn trace_transitions_match_cost() {
        let mut link = Link::new(cfg(4, 4, SkipMode::Zero, 0));
        let out = link.transfer(&Block::from_bytes(&[0x53, 0xA0]));
        let counted = out.trace.expect("capture on").transitions(false, &[false; 4]);
        assert_eq!(counted, out.cost.total_transitions());
    }

    #[test]
    fn trace_captures_every_lane() {
        // Earlier versions silently capped the trace at 16 data lanes
        // while toggling all of them; all lanes must be captured now.
        let mut link = Link::new(cfg(128, 4, SkipMode::None, 0));
        let block = Block::from_bytes(&[0xFF; 64]);
        let out = link.transfer(&block);
        let trace = out.trace.expect("capture on");
        assert_eq!(trace.data_lanes(), 128);
        // Basic DESC toggles every wire once per carried chunk: every
        // lane must show at least one high cycle.
        for w in 0..128 {
            let high = (0..trace.cycles()).any(|c| trace.data_level(w, c));
            assert!(high, "lane {w} was not captured");
        }
        // And the packed count agrees with the measured cost.
        assert_eq!(
            trace.transitions(false, &[false; 128]),
            out.cost.total_transitions()
        );
    }

    #[test]
    fn capture_off_is_cost_identical_across_modes() {
        // Regression: the trace knob must not affect decoding or cost.
        let mut rng = Rng64::seed_from_u64(0xDE5C);
        for mode in [SkipMode::None, SkipMode::Zero, SkipMode::LastValue] {
            let mut with = Link::new(cfg(16, 4, mode, 2));
            let mut without = Link::new(LinkConfig { trace: TraceCapture::Off, ..cfg(16, 4, mode, 2) });
            for _ in 0..32 {
                let bytes: Vec<u8> = (0..64)
                    .map(|_| if rng.gen_bool(0.4) { 0 } else { rng.gen::<u8>() })
                    .collect();
                let block = Block::from_bytes(&bytes);
                let a = with.transfer(&block);
                let b = without.transfer(&block);
                assert!(a.trace.is_some() && b.trace.is_none());
                assert_eq!(a.decoded, b.decoded, "{mode:?}");
                assert_eq!(a.cost, b.cost, "{mode:?}");
                assert_eq!(a.decoded, block, "{mode:?}");
            }
        }
    }

    #[test]
    fn equivalent_to_reference_decoder_on_random_streams() {
        // The O(chunks) running-prefix decoder must match the old
        // O(rounds²) reference on randomized block streams, for every
        // mode, including ragged wire counts.
        let mut rng = Rng64::seed_from_u64(2013);
        for mode in [SkipMode::None, SkipMode::Zero, SkipMode::LastValue] {
            for wires in [1usize, 3, 16, 19, 128] {
                let c = cfg(wires, 4, mode, 1);
                let mut link = Link::new(c);
                let mut oracle = reference::ReferenceLink::new(c);
                for _ in 0..24 {
                    let bytes: Vec<u8> = (0..64)
                        .map(|_| if rng.gen_bool(0.35) { 0 } else { rng.gen::<u8>() })
                        .collect();
                    let block = Block::from_bytes(&bytes);
                    let ours = link.transfer(&block);
                    let (ref_decoded, ref_cost) = oracle.transfer(&block);
                    assert_eq!(ours.decoded, ref_decoded, "{mode:?} {wires} wires");
                    assert_eq!(ours.cost, ref_cost, "{mode:?} {wires} wires");
                }
            }
        }
    }

    #[test]
    fn transfer_many_matches_sequential_transfers() {
        // The batched fast path (no event list, no receiver) must cost
        // exactly what the cycle-stepped protocol costs, block for
        // block, and leave the same last-value state behind.
        let mut rng = Rng64::seed_from_u64(0xBA7C);
        for mode in [SkipMode::None, SkipMode::Zero, SkipMode::LastValue] {
            for wires in [1usize, 3, 16, 128] {
                let c = LinkConfig { trace: TraceCapture::Off, ..cfg(wires, 4, mode, 2) };
                let mut scalar = Link::new(c);
                let mut batched = Link::new(c);
                let mut slab = BlockSlab::new(64);
                let mut expected = Vec::new();
                for _ in 0..24 {
                    let bytes: Vec<u8> = (0..64)
                        .map(|_| if rng.gen_bool(0.35) { 0 } else { rng.gen::<u8>() })
                        .collect();
                    let block = Block::from_bytes(&bytes);
                    expected.push(scalar.transfer(&block).cost);
                    slab.push(&block);
                }
                let mut got = Vec::new();
                batched.transfer_many(&slab, &mut got);
                assert_eq!(expected, got, "{mode:?} {wires} wires");
                // Last-value state must have carried identically: a
                // probe transfer costs the same on both links.
                let probe = Block::from_bytes(&[0x5A; 64]);
                assert_eq!(
                    scalar.transfer(&probe).cost,
                    batched.transfer(&probe).cost,
                    "{mode:?} {wires} wires post-batch state"
                );
            }
        }
    }

    #[test]
    fn transfer_many_with_capture_matches_too() {
        // Packed capture falls back to the cycle-stepped path per
        // block; costs must still be identical to sequential calls.
        let mut rng = Rng64::seed_from_u64(77);
        let c = cfg(16, 4, SkipMode::LastValue, 0); // Packed capture
        let mut scalar = Link::new(c);
        let mut batched = Link::new(c);
        let mut slab = BlockSlab::new(32);
        let mut expected = Vec::new();
        for _ in 0..8 {
            let bytes: Vec<u8> = (0..32).map(|_| rng.gen::<u8>()).collect();
            let block = Block::from_bytes(&bytes);
            expected.push(scalar.transfer(&block).cost);
            slab.push(&block);
        }
        let mut got = Vec::new();
        batched.transfer_many(&slab, &mut got);
        assert_eq!(expected, got);
    }

    #[test]
    fn steady_state_reuses_scratch_capacity() {
        // After the first transfer the scratch buffers are warm; later
        // transfers of same-shaped blocks must not need to regrow them.
        let mut link = Link::new(cfg(16, 4, SkipMode::Zero, 0));
        let block = Block::from_bytes(&(0..64).map(|i| i as u8).collect::<Vec<_>>());
        let _ = link.transfer(&block);
        let events_cap = link.events.capacity();
        let received_cap = link.received.capacity();
        for _ in 0..100 {
            let _ = link.transfer(&block);
        }
        assert_eq!(link.events.capacity(), events_cap);
        assert_eq!(link.received.capacity(), received_cap);
    }
}
