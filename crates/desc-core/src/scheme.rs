//! The [`TransferScheme`] abstraction shared by DESC and all baselines.

use crate::block::{Block, BlockSlab};
use crate::cost::{TransferCost, WireBudget};

/// A data-transfer scheme for moving cache blocks across an
/// interconnect.
///
/// Implementations are *stateful*: physical wires retain their logic
/// level between blocks (transition counts depend on it), and
/// last-value-skipped DESC additionally remembers the previous chunk
/// values per wire. Feed a scheme the same block stream a real cache
/// would see and it reports exact per-block costs.
///
/// # Examples
///
/// ```
/// use desc_core::{Block, TransferScheme, schemes::BinaryScheme};
///
/// let mut scheme = BinaryScheme::new(64);
/// let block = Block::from_bytes(&[0xFF; 64]);
/// let first = scheme.transfer(&block);
/// let again = scheme.transfer(&block);
/// // Re-sending an identical block flips far fewer wires.
/// assert!(again.data_transitions < first.data_transitions);
/// ```
/// Schemes are `Send` so drivers can replicate one per L2 bank (via
/// [`TransferScheme::clone_box`]) and simulate the banks on worker
/// threads; every implementation is plain owned data.
pub trait TransferScheme: Send {
    /// Human-readable scheme name, matching the paper's figure legends
    /// (e.g. `"Zero Skipped DESC"`).
    fn name(&self) -> &'static str;

    /// The wire resources this scheme occupies.
    fn wires(&self) -> WireBudget;

    /// Transfers one block, mutating wire state, and returns its exact
    /// cost.
    ///
    /// # Panics
    ///
    /// Implementations panic if `block` is incompatible with the
    /// scheme's configuration (e.g. fewer bits than one bus beat).
    fn transfer(&mut self, block: &Block) -> TransferCost;

    /// Transfers every block of `slab` in order, appending one cost per
    /// block to `costs` — the batched entry point the simulators feed.
    ///
    /// The contract is *bit-identical equivalence*: the appended costs
    /// and the final wire/counter state must match what `slab.len()`
    /// sequential [`TransferScheme::transfer`] calls would produce. The
    /// default implementation is exactly that loop (through a scratch
    /// block, so it allocates once per call, not per block); schemes
    /// with word-level kernels override it to amortize per-block
    /// dispatch and run `u64`-lane toggle math (see
    /// [`transfer_each`] for the reference loop).
    ///
    /// # Panics
    ///
    /// Implementations panic if the slab's blocks are incompatible with
    /// the scheme's configuration.
    fn transfer_many(&mut self, slab: &BlockSlab, costs: &mut Vec<TransferCost>) {
        transfer_each(self, slab, costs);
    }

    /// Returns all wires and remembered values to the power-on state
    /// (all zeroes), as at the start of a simulation.
    fn reset(&mut self);

    /// Clones this scheme into a fresh boxed trait object.
    ///
    /// Bank-sharded simulation gives every L2 bank its own channel (and
    /// therefore its own wire state); drivers that accept a
    /// `Box<dyn TransferScheme>` use this to replicate the configured
    /// scheme once per bank. Replicas carry the source's configuration
    /// *and* current wire state — call [`TransferScheme::reset`] on the
    /// clone for a power-on copy.
    fn clone_box(&self) -> Box<dyn TransferScheme>;
}

/// The scalar reference loop: transfers every block of `slab` through
/// [`TransferScheme::transfer`] one at a time via a single scratch
/// block. This is the default [`TransferScheme::transfer_many`] body
/// and the oracle the slab-equivalence suite compares batched kernels
/// against.
pub fn transfer_each<S: TransferScheme + ?Sized>(
    scheme: &mut S,
    slab: &BlockSlab,
    costs: &mut Vec<TransferCost>,
) {
    if slab.is_empty() {
        return;
    }
    let mut scratch = Block::zeroed(slab.byte_len());
    costs.reserve(slab.len());
    for i in 0..slab.len() {
        slab.copy_block_into(i, &mut scratch);
        costs.push(scheme.transfer(&scratch));
    }
}

/// Blanket impl so `Box<dyn TransferScheme>` and `&mut S` both work in
/// generic drivers. `transfer_many` is forwarded explicitly — the
/// default loop here would hide the inner scheme's batched kernel.
impl<S: TransferScheme + ?Sized> TransferScheme for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn wires(&self) -> WireBudget {
        (**self).wires()
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        (**self).transfer(block)
    }

    fn transfer_many(&mut self, slab: &BlockSlab, costs: &mut Vec<TransferCost>) {
        (**self).transfer_many(slab, costs)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        (**self).clone_box()
    }
}

impl<S: TransferScheme + ?Sized> TransferScheme for &mut S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn wires(&self) -> WireBudget {
        (**self).wires()
    }

    fn transfer(&mut self, block: &Block) -> TransferCost {
        (**self).transfer(block)
    }

    fn transfer_many(&mut self, slab: &BlockSlab, costs: &mut Vec<TransferCost>) {
        (**self).transfer_many(slab, costs)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn clone_box(&self) -> Box<dyn TransferScheme> {
        (**self).clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::BinaryScheme;

    #[test]
    fn trait_objects_and_references_delegate() {
        let mut boxed: Box<dyn TransferScheme> = Box::new(BinaryScheme::new(8));
        assert_eq!(boxed.name(), "Conventional Binary");
        let block = Block::from_bytes(&[0xAA; 8]);
        let c = boxed.transfer(&block);
        assert!(c.data_transitions > 0);
        boxed.reset();
        // After reset the same block costs the same again.
        assert_eq!(boxed.transfer(&block), c);

        let mut concrete = BinaryScheme::new(8);
        let via_ref: &mut dyn TransferScheme = &mut concrete;
        assert_eq!(via_ref.wires().data_wires, 8);
    }

    #[test]
    fn clone_box_replicates_configuration_and_state() {
        let mut original: Box<dyn TransferScheme> = Box::new(BinaryScheme::new(8));
        let block = Block::from_bytes(&[0x5A; 8]);
        let first = original.transfer(&block);

        // A clone carries the mutated wire state: re-sending the same
        // block is cheap on both.
        let mut copy = original.clone_box();
        assert_eq!(copy.name(), original.name());
        assert_eq!(copy.wires(), original.wires());
        assert_eq!(copy.transfer(&block), original.transfer(&block));

        // After reset the clone behaves like a power-on instance.
        copy.reset();
        assert_eq!(copy.transfer(&block), first);
    }
}
