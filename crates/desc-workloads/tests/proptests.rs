//! Property-based tests for the workload generators.

// Gated: compiled only with `--features proptest`, which requires
// network access to fetch the `proptest` crate (see Cargo.toml).
#![cfg(feature = "proptest")]

use desc_workloads::values::{Archetype, ValueModel};
use desc_workloads::{parallel_suite, spec_suite, BenchmarkId, ChunkStats};
use proptest::prelude::*;

fn arb_benchmark() -> impl Strategy<Value = BenchmarkId> {
    prop::sample::select(
        BenchmarkId::PARALLEL.iter().chain(BenchmarkId::SPEC.iter()).copied().collect::<Vec<_>>(),
    )
}

proptest! {
    /// Every benchmark's value stream is deterministic in the seed and
    /// produces 64-byte blocks.
    #[test]
    fn value_streams_are_deterministic(bench in arb_benchmark(), seed in 0u64..1000) {
        let p = bench.profile();
        let mut a = p.value_stream(seed);
        let mut b = p.value_stream(seed);
        for _ in 0..8 {
            let block = a.next_block();
            prop_assert_eq!(block.byte_len(), 64);
            prop_assert_eq!(block, b.next_block());
        }
    }

    /// Traces are block-aligned, in-range, and deterministic.
    #[test]
    fn traces_are_well_formed(bench in arb_benchmark(), seed in 0u64..1000) {
        let p = bench.profile();
        let mut gen = p.trace(seed);
        for _ in 0..256 {
            let a = gen.next_access();
            prop_assert_eq!(a.addr % 64, 0);
            prop_assert!(a.addr < p.working_set_bytes as u64);
            prop_assert!((a.core as usize) < p.cores);
        }
    }

    /// Chunk statistics are proper distributions for every app.
    #[test]
    fn chunk_stats_are_distributions(bench in arb_benchmark()) {
        let p = bench.profile();
        let stats = ChunkStats::measure_stream(&mut p.value_stream(5), 150);
        let sum: f64 = stats.frequencies().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&stats.zero_fraction()));
        prop_assert!((0.0..=1.0).contains(&stats.repeat_fraction()));
        prop_assert_eq!(stats.total_chunks(), 150 * 128);
    }

    /// A single-archetype model produces blocks of that archetype's
    /// character: null blocks are null, text is printable.
    #[test]
    fn pure_archetypes_behave(seed in 0u64..500) {
        let null_only = ValueModel {
            null: 1.0, sparse_int: 0.0, small_int: 0.0, dense_fp: 0.0,
            text: 0.0, pointer: 0.0, near_repeat: 0.0,
        };
        prop_assert!(null_only.stream(seed).next_block().is_null());
        let text_only = ValueModel {
            null: 0.0, sparse_int: 0.0, small_int: 0.0, dense_fp: 0.0,
            text: 1.0, pointer: 0.0, near_repeat: 0.0,
        };
        let block = text_only.stream(seed).next_block();
        prop_assert!(block.as_bytes().iter().all(|b| (0x20..0x7F).contains(b)));
        let _ = Archetype::Null; // the enum is part of the public API
    }
}

#[test]
fn every_profile_is_reachable_and_distinct() {
    let all: Vec<_> = parallel_suite().into_iter().chain(spec_suite()).collect();
    assert_eq!(all.len(), 24);
    for (i, a) in all.iter().enumerate() {
        for b in &all[i + 1..] {
            assert_ne!(a.name, b.name);
        }
    }
}
