//! Calibration check: per-benchmark zero-chunk and last-value-repeat
//! fractions against the paper's Fig. 12 (~0.31) and Fig. 13 (~0.39)
//! targets.
//!
//! ```text
//! cargo run --release -p desc-workloads --example calibration
//! ```

use desc_workloads::{parallel_suite, ChunkStats};
fn main() {
    let mut zs = vec![]; let mut rs = vec![];
    for p in parallel_suite() {
        let s = ChunkStats::measure_stream(&mut p.value_stream(33), 800);
        println!("{:16} zero={:.3} repeat={:.3}", p.name, s.zero_fraction(), s.repeat_fraction());
        zs.push(s.zero_fraction()); rs.push(s.repeat_fraction());
    }
    let g = |v: &Vec<f64>| (v.iter().map(|x: &f64| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!("GEOMEAN zero={:.3} repeat={:.3}  (paper: 0.31, 0.39)", g(&zs), g(&rs));
}
