//! Calibration check: mean H-tree transitions per transferred block for
//! every transfer scheme over the full parallel suite — the raw
//! activity numbers behind the paper's Fig. 16.
//!
//! ```text
//! cargo run --release -p desc-workloads --example activity
//! ```

use desc_core::schemes::SchemeKind;
use desc_core::TransferScheme;
use desc_workloads::parallel_suite;

fn main() {
    let blocks = 2000;
    for kind in SchemeKind::ALL {
        let mut total = 0u64;
        let mut n = 0u64;
        for p in parallel_suite() {
            let mut scheme = kind.build_paper_config();
            let mut stream = p.value_stream(7);
            for _ in 0..blocks {
                total += scheme.transfer(&stream.next_block()).total_transitions();
                n += 1;
            }
        }
        println!("{:32} {:.1} transitions/block", kind.label(), total as f64 / n as f64);
    }
}
