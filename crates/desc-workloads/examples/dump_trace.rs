//! Dump a benchmark's L2 access trace (and optionally block contents)
//! as CSV for use with external tools or other simulators.
//!
//! ```text
//! cargo run --release -p desc-workloads --example dump_trace -- Radix 1000
//! cargo run --release -p desc-workloads --example dump_trace -- FFT 100 --blocks
//! ```

use desc_workloads::{parallel_suite, spec_suite, BenchmarkId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map_or("Radix", String::as_str);
    let count: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let with_blocks = args.iter().any(|a| a == "--blocks");

    let profile = parallel_suite()
        .into_iter()
        .chain(spec_suite())
        .find(|p| p.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| BenchmarkId::Radix.profile());

    let mut trace = profile.trace(2013);
    let mut values = profile.value_stream(2013);
    if with_blocks {
        println!("addr,write,core,block_hex");
        for _ in 0..count {
            let a = trace.next_access();
            let block = values.next_block();
            let hex: String = block.as_bytes().iter().map(|b| format!("{b:02x}")).collect();
            println!("{:#x},{},{},{hex}", a.addr, u8::from(a.write), a.core);
        }
    } else {
        println!("addr,write,core");
        for _ in 0..count {
            let a = trace.next_access();
            println!("{:#x},{},{}", a.addr, u8::from(a.write), a.core);
        }
    }
}
