//! L2 access-trace generation.
//!
//! Each benchmark produces a deterministic stream of post-L1 cache
//! accesses: a mix of revisits to a *hot set* (which an 8 MB L2
//! retains) and strided streaming over the full working set (which
//! misses once the footprint exceeds the cache). Sequential runs model
//! spatial locality; per-core address-space interleaving models the
//! Niagara-like machine's eight cores sharing the L2.

use crate::profile::BenchmarkProfile;
use desc_core::rng::Rng64;

/// One L2 access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Block-aligned physical address.
    pub addr: u64,
    /// Write (store / writeback) vs read.
    pub write: bool,
    /// Issuing core (0 for single-threaded workloads).
    pub core: u8,
}

/// Deterministic generator of [`Access`] streams for a benchmark.
///
/// # Examples
///
/// ```
/// use desc_workloads::BenchmarkId;
///
/// let profile = BenchmarkId::Radix.profile();
/// let mut gen = profile.trace(1);
/// let a = gen.next_access();
/// assert_eq!(a.addr % 64, 0, "accesses are block aligned");
/// assert!((a.core as usize) < profile.cores);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    rng: Rng64,
    cores: usize,
    hot_blocks: u64,
    total_blocks: u64,
    hot_fraction: f64,
    write_fraction: f64,
    /// Per-core streaming cursor (sequential-run position).
    cursors: Vec<u64>,
    /// Remaining length of the current sequential run per core.
    run_left: Vec<u32>,
    /// Accesses drawn since creation; flushed to the
    /// `workloads.accesses_generated` counter once, on drop, instead of
    /// taking an atomic add per access.
    pending_accesses: u64,
}

const BLOCK: u64 = 64;

impl TraceGenerator {
    /// Creates a generator for `profile` with a deterministic `seed`.
    #[must_use]
    pub fn new(profile: &BenchmarkProfile, seed: u64) -> Self {
        let rng = Rng64::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
        let total_blocks = (profile.working_set_bytes as u64 / BLOCK).max(1);
        let hot_blocks = (profile.hot_set_bytes as u64 / BLOCK).clamp(1, total_blocks);
        Self {
            rng,
            cores: profile.cores,
            hot_blocks,
            total_blocks,
            hot_fraction: profile.hot_fraction,
            write_fraction: profile.write_fraction,
            cursors: vec![0; profile.cores],
            run_left: vec![0; profile.cores],
            pending_accesses: 0,
        }
    }

    /// Draws the next access.
    pub fn next_access(&mut self) -> Access {
        let core = self.rng.gen_range(0..self.cores);
        let write = self.rng.gen::<f64>() < self.write_fraction;
        let addr = if self.rng.gen::<f64>() < self.hot_fraction {
            // Hot-set revisit: uniform over the resident subset, offset
            // per core so cores share some blocks but not all.
            let b = self.rng.gen_range(0..self.hot_blocks);
            let core_shift = (core as u64) * (self.hot_blocks / (2 * self.cores as u64 + 1));
            ((b + core_shift) % self.total_blocks) * BLOCK
        } else {
            // Streaming: sequential runs over the full working set.
            if self.run_left[core] == 0 {
                self.run_left[core] = self.rng.gen_range(4u32..32);
                self.cursors[core] = self.rng.gen_range(0..self.total_blocks);
            }
            self.run_left[core] -= 1;
            let b = self.cursors[core];
            self.cursors[core] = (self.cursors[core] + 1) % self.total_blocks;
            b * BLOCK
        };
        self.pending_accesses += 1;
        Access { addr, write, core: core as u8 }
    }

    /// Convenience: materialise `n` accesses.
    pub fn take(&mut self, n: usize) -> Vec<Access> {
        (0..n).map(|_| self.next_access()).collect()
    }
}

impl Clone for TraceGenerator {
    /// Clones the generator state; the clone starts its own telemetry
    /// tally so drawn accesses are never double-counted.
    fn clone(&self) -> Self {
        Self {
            rng: self.rng.clone(),
            cores: self.cores,
            hot_blocks: self.hot_blocks,
            total_blocks: self.total_blocks,
            hot_fraction: self.hot_fraction,
            write_fraction: self.write_fraction,
            cursors: self.cursors.clone(),
            run_left: self.run_left.clone(),
            pending_accesses: 0,
        }
    }
}

impl Drop for TraceGenerator {
    fn drop(&mut self) {
        if self.pending_accesses > 0 && desc_telemetry::enabled() {
            desc_telemetry::counter!("workloads.accesses_generated").add(self.pending_accesses);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::profile::BenchmarkId;
    use std::collections::HashSet;

    #[test]
    fn deterministic_given_seed() {
        let p = BenchmarkId::Ocean.profile();
        let a: Vec<_> = p.trace(9).take(256);
        let b: Vec<_> = p.trace(9).take(256);
        assert_eq!(a, b);
    }

    #[test]
    fn addresses_stay_within_working_set() {
        let p = BenchmarkId::Lu.profile();
        let mut gen = p.trace(1);
        for _ in 0..10_000 {
            let a = gen.next_access();
            assert!(a.addr < p.working_set_bytes as u64);
            assert_eq!(a.addr % 64, 0);
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let p = BenchmarkId::Radix.profile(); // write_fraction 0.5
        let mut gen = p.trace(3);
        let writes = (0..20_000).filter(|_| gen.next_access().write).count();
        let f = writes as f64 / 20_000.0;
        assert!((f - p.write_fraction).abs() < 0.03, "write fraction {f:.3}");
    }

    #[test]
    fn all_cores_issue_accesses() {
        let p = BenchmarkId::Fft.profile();
        let mut gen = p.trace(5);
        let cores: HashSet<u8> = (0..4000).map(|_| gen.next_access().core).collect();
        assert_eq!(cores.len(), 8);
    }

    #[test]
    fn hot_set_dominates_for_cache_resident_apps() {
        // LU's hot fraction is 0.92: most accesses revisit a 2 MB set.
        let p = BenchmarkId::Lu.profile();
        let mut gen = p.trace(7);
        let unique: HashSet<u64> = (0..50_000).map(|_| gen.next_access().addr).collect();
        // Footprint touched is far below the full working set would
        // imply for uniform traffic.
        assert!(unique.len() < 40_000, "unique blocks {}", unique.len());
    }

    #[test]
    fn streaming_apps_touch_wide_footprints() {
        let p = BenchmarkId::Mcf.profile(); // hot fraction 0.40
        let mut gen = p.trace(7);
        let unique: HashSet<u64> = (0..50_000).map(|_| gen.next_access().addr).collect();
        assert!(unique.len() > 10_000, "unique blocks {}", unique.len());
    }

    #[test]
    fn sequential_runs_exist() {
        let p = BenchmarkId::Swim.profile();
        let mut gen = p.trace(11);
        let accesses = gen.take(5_000);
        let sequential = accesses
            .windows(2)
            .filter(|w| w[1].addr == w[0].addr + 64)
            .count();
        assert!(sequential > 50, "sequential pairs {sequential}");
    }
}
