//! The paper's application suite (Table 2) as statistical benchmark
//! profiles.

use crate::trace::TraceGenerator;
use crate::values::{ValueModel, ValueStream};
use std::fmt;

/// Benchmark suites of Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// Phoenix MapReduce workloads.
    Phoenix,
    /// NAS OpenMP parallel benchmarks.
    NasOpenMp,
    /// SPEC OpenMP (MinneSpec-Large inputs).
    SpecOpenMp,
    /// SPLASH-2 shared-memory benchmarks.
    Splash2,
    /// SPEC CPU2006 integer.
    SpecInt2006,
    /// SPEC CPU2006 floating point.
    SpecFp2006,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Phoenix => "Phoenix",
            Suite::NasOpenMp => "NAS OpenMP",
            Suite::SpecOpenMp => "SPEC OpenMP",
            Suite::Splash2 => "SPLASH-2",
            Suite::SpecInt2006 => "SPECint 2006",
            Suite::SpecFp2006 => "SPECfp 2006",
        };
        f.write_str(s)
    }
}

/// The 24 applications evaluated by the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // variant names are the benchmark names
pub enum BenchmarkId {
    Art,
    Barnes,
    Cg,
    Cholesky,
    Equake,
    Fft,
    Ft,
    Linear,
    Lu,
    Mg,
    Ocean,
    Radix,
    RayTrace,
    Swim,
    WaterNSquared,
    WaterSpatial,
    Bzip2,
    Mcf,
    Omnetpp,
    Sjeng,
    Lbm,
    Milc,
    Namd,
    Soplex,
}

/// Statistical model of one application.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BenchmarkProfile {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// Display name matching the paper's figures.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Input set (Table 2).
    pub input: &'static str,
    /// Simulated cores issuing the workload (8 for parallel apps on
    /// the Niagara-like machine, 1 for SPEC 2006).
    pub cores: usize,
    /// L2 accesses per kilo-instruction (memory intensity).
    pub l2_apki: f64,
    /// Total working-set footprint in bytes — determines how much of
    /// the trace misses in an 8 MB L2.
    pub working_set_bytes: usize,
    /// Bytes of the hot subset that fits in the L2 and is revisited.
    pub hot_set_bytes: usize,
    /// Probability that an access targets the hot subset.
    pub hot_fraction: f64,
    /// Fraction of L2 accesses that are writes.
    pub write_fraction: f64,
    /// Baseline per-core IPC when the L2 is ideal.
    pub base_ipc: f64,
    /// Content model for transferred blocks.
    pub values: ValueModel,
}

impl BenchmarkProfile {
    /// A deterministic stream of block contents for this benchmark.
    #[must_use]
    pub fn value_stream(&self, seed: u64) -> ValueStream {
        // Mix the benchmark identity into the seed so different apps
        // with the same seed do not produce identical streams.
        self.values.stream(seed ^ (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A deterministic stream of block contents for one L2 bank of
    /// this benchmark.
    ///
    /// Bank-sharded simulation gives every bank its own value stream so
    /// banks can be simulated independently; the per-bank seed is
    /// derived from `(seed, bank)` via [`desc_core::rng::mix_seed`], so
    /// the streams are independent of each other and of how many worker
    /// threads simulate them.
    #[must_use]
    pub fn value_stream_for_bank(&self, seed: u64, bank: usize) -> ValueStream {
        self.value_stream(desc_core::rng::mix_seed(seed, bank as u64))
    }

    /// A deterministic access-trace generator for this benchmark.
    #[must_use]
    pub fn trace(&self, seed: u64) -> TraceGenerator {
        TraceGenerator::new(self, seed)
    }
}

impl BenchmarkId {
    /// The sixteen parallel applications, in the paper's figure order.
    pub const PARALLEL: [BenchmarkId; 16] = [
        BenchmarkId::Art,
        BenchmarkId::Barnes,
        BenchmarkId::Cg,
        BenchmarkId::Cholesky,
        BenchmarkId::Equake,
        BenchmarkId::Fft,
        BenchmarkId::Ft,
        BenchmarkId::Linear,
        BenchmarkId::Lu,
        BenchmarkId::Mg,
        BenchmarkId::Ocean,
        BenchmarkId::Radix,
        BenchmarkId::RayTrace,
        BenchmarkId::Swim,
        BenchmarkId::WaterNSquared,
        BenchmarkId::WaterSpatial,
    ];

    /// The eight SPEC CPU2006 applications (§5.8).
    pub const SPEC: [BenchmarkId; 8] = [
        BenchmarkId::Bzip2,
        BenchmarkId::Lbm,
        BenchmarkId::Mcf,
        BenchmarkId::Milc,
        BenchmarkId::Namd,
        BenchmarkId::Omnetpp,
        BenchmarkId::Sjeng,
        BenchmarkId::Soplex,
    ];

    /// The profile for this benchmark.
    #[must_use]
    pub fn profile(self) -> BenchmarkProfile {
        use BenchmarkId as B;
        use Suite as S;
        let vm = |null, sparse_int, small_int, dense_fp, text, pointer, near_repeat| ValueModel {
            null,
            sparse_int,
            small_int,
            dense_fp,
            text,
            pointer,
            near_repeat,
        };
        let mb = |x: usize| x << 20;
        let p = |id,
                 name,
                 suite,
                 input,
                 l2_apki,
                 ws,
                 hot,
                 hot_fraction,
                 write_fraction,
                 values| BenchmarkProfile {
            id,
            name,
            suite,
            input,
            cores: 8,
            l2_apki,
            working_set_bytes: ws,
            hot_set_bytes: hot,
            hot_fraction,
            write_fraction,
            base_ipc: 0.9,
            values,
        };
        match self {
            B::Art => p(
                self, "Art", S::SpecOpenMp, "MinneSpec-Large",
                7.3, mb(16), mb(3), 0.62, 0.30,
                vm(0.05, 0.05, 0.10, 0.45, 0.0, 0.05, 0.30),
            ),
            B::Barnes => p(
                self, "Barnes", S::Splash2, "16K Particles",
                4.0, mb(8), mb(4), 0.75, 0.30,
                vm(0.05, 0.05, 0.05, 0.45, 0.0, 0.15, 0.25),
            ),
            B::Cg => p(
                self, "CG", S::NasOpenMp, "Class A",
                7.3, mb(24), mb(4), 0.58, 0.20,
                vm(0.10, 0.17, 0.08, 0.40, 0.0, 0.0, 0.22),
            ),
            B::Cholesky => p(
                self, "Cholesky", S::Splash2, "tk 15.0",
                5.3, mb(8), mb(4), 0.70, 0.35,
                vm(0.10, 0.14, 0.05, 0.44, 0.0, 0.05, 0.20),
            ),
            B::Equake => p(
                self, "Equake", S::SpecOpenMp, "MinneSpec-Large",
                6.0, mb(16), mb(4), 0.60, 0.30,
                vm(0.05, 0.05, 0.05, 0.55, 0.0, 0.05, 0.25),
            ),
            B::Fft => p(
                self, "FFT", S::Splash2, "1M points",
                6.7, mb(48), mb(5), 0.60, 0.45,
                vm(0.02, 0.03, 0.05, 0.70, 0.0, 0.0, 0.20),
            ),
            B::Ft => p(
                self, "FT", S::NasOpenMp, "Class A",
                6.7, mb(40), mb(5), 0.60, 0.45,
                vm(0.02, 0.03, 0.05, 0.65, 0.0, 0.0, 0.25),
            ),
            B::Linear => p(
                self, "Linear", S::Phoenix, "50MB key file",
                7.3, mb(50), mb(3), 0.60, 0.15,
                vm(0.08, 0.07, 0.20, 0.10, 0.16, 0.0, 0.37),
            ),
            B::Lu => p(
                self, "LU", S::Splash2, "512×512 matrix, 16×16 blocks",
                4.7, mb(2), mb(2), 0.92, 0.40,
                vm(0.08, 0.08, 0.06, 0.48, 0.0, 0.0, 0.30),
            ),
            B::Mg => p(
                self, "MG", S::NasOpenMp, "Class A",
                6.7, mb(32), mb(5), 0.62, 0.35,
                vm(0.10, 0.11, 0.08, 0.45, 0.0, 0.0, 0.25),
            ),
            B::Ocean => p(
                self, "Ocean", S::Splash2, "514×514 ocean",
                6.7, mb(30), mb(5), 0.58, 0.40,
                vm(0.08, 0.07, 0.05, 0.50, 0.0, 0.0, 0.30),
            ),
            B::Radix => p(
                self, "Radix", S::Splash2, "2M integers",
                8.7, mb(16), mb(3), 0.50, 0.50,
                vm(0.08, 0.08, 0.30, 0.14, 0.0, 0.06, 0.32),
            ),
            B::RayTrace => p(
                self, "RayTrace", S::Splash2, "car",
                5.0, mb(16), mb(5), 0.68, 0.15,
                vm(0.04, 0.06, 0.08, 0.26, 0.0, 0.30, 0.25),
            ),
            B::Swim => p(
                self, "Swim", S::SpecOpenMp, "MinneSpec-Large",
                6.7, mb(32), mb(5), 0.62, 0.40,
                vm(0.05, 0.05, 0.05, 0.55, 0.0, 0.0, 0.30),
            ),
            B::WaterNSquared => p(
                self, "Water-NSquared", S::Splash2, "512 molecules",
                3.3, mb(4), mb(3), 0.88, 0.30,
                vm(0.05, 0.05, 0.08, 0.50, 0.0, 0.07, 0.25),
            ),
            B::WaterSpatial => p(
                self, "Water-Spatial", S::Splash2, "512 molecules",
                3.3, mb(4), mb(3), 0.88, 0.30,
                vm(0.05, 0.05, 0.08, 0.48, 0.0, 0.09, 0.25),
            ),
            // ---- single-threaded SPEC CPU2006 (§5.8) ----------------
            B::Bzip2 => BenchmarkProfile {
                id: self, name: "BZIP2", suite: S::SpecInt2006, input: "reference",
                cores: 1, l2_apki: 8.0,
                working_set_bytes: mb(16), hot_set_bytes: mb(4), hot_fraction: 0.72,
                write_fraction: 0.35, base_ipc: 1.6,
                values: vm(0.05, 0.05, 0.35, 0.0, 0.20, 0.05, 0.30),
            },
            B::Mcf => BenchmarkProfile {
                id: self, name: "MCF", suite: S::SpecInt2006, input: "reference",
                cores: 1, l2_apki: 40.0,
                working_set_bytes: mb(64), hot_set_bytes: mb(5), hot_fraction: 0.40,
                write_fraction: 0.25, base_ipc: 0.8,
                values: vm(0.10, 0.15, 0.15, 0.0, 0.0, 0.30, 0.30),
            },
            B::Omnetpp => BenchmarkProfile {
                id: self, name: "OMNETPP", suite: S::SpecInt2006, input: "reference",
                cores: 1, l2_apki: 22.0,
                working_set_bytes: mb(40), hot_set_bytes: mb(5), hot_fraction: 0.55,
                write_fraction: 0.30, base_ipc: 1.0,
                values: vm(0.08, 0.10, 0.12, 0.05, 0.05, 0.30, 0.30),
            },
            B::Sjeng => BenchmarkProfile {
                id: self, name: "SJENG", suite: S::SpecInt2006, input: "reference",
                cores: 1, l2_apki: 5.0,
                working_set_bytes: mb(4), hot_set_bytes: mb(3), hot_fraction: 0.90,
                write_fraction: 0.30, base_ipc: 1.8,
                values: vm(0.05, 0.10, 0.40, 0.0, 0.0, 0.15, 0.30),
            },
            B::Lbm => BenchmarkProfile {
                id: self, name: "LBM", suite: S::SpecFp2006, input: "reference",
                cores: 1, l2_apki: 30.0,
                working_set_bytes: mb(64), hot_set_bytes: mb(4), hot_fraction: 0.35,
                write_fraction: 0.50, base_ipc: 1.2,
                values: vm(0.03, 0.02, 0.05, 0.60, 0.0, 0.0, 0.30),
            },
            B::Milc => BenchmarkProfile {
                id: self, name: "MILC", suite: S::SpecFp2006, input: "reference",
                cores: 1, l2_apki: 26.0,
                working_set_bytes: mb(48), hot_set_bytes: mb(4), hot_fraction: 0.40,
                write_fraction: 0.40, base_ipc: 1.1,
                values: vm(0.03, 0.05, 0.07, 0.55, 0.0, 0.0, 0.30),
            },
            B::Namd => BenchmarkProfile {
                id: self, name: "NAMD", suite: S::SpecFp2006, input: "reference",
                cores: 1, l2_apki: 6.0,
                working_set_bytes: mb(8), hot_set_bytes: mb(5), hot_fraction: 0.85,
                write_fraction: 0.30, base_ipc: 1.8,
                values: vm(0.05, 0.05, 0.05, 0.55, 0.0, 0.05, 0.25),
            },
            B::Soplex => BenchmarkProfile {
                id: self, name: "SOPLEX", suite: S::SpecFp2006, input: "reference",
                cores: 1, l2_apki: 24.0,
                working_set_bytes: mb(32), hot_set_bytes: mb(5), hot_fraction: 0.50,
                write_fraction: 0.25, base_ipc: 1.0,
                values: vm(0.12, 0.18, 0.10, 0.35, 0.0, 0.0, 0.25),
            },
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.profile().name)
    }
}

/// The sixteen parallel benchmark profiles, in figure order.
#[must_use]
pub fn parallel_suite() -> Vec<BenchmarkProfile> {
    BenchmarkId::PARALLEL.iter().map(|b| b.profile()).collect()
}

/// The eight SPEC CPU2006 profiles, in Fig. 30 order.
#[must_use]
pub fn spec_suite() -> Vec<BenchmarkProfile> {
    BenchmarkId::SPEC.iter().map(|b| b.profile()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_sizes() {
        assert_eq!(parallel_suite().len(), 16);
        assert_eq!(spec_suite().len(), 8);
    }

    #[test]
    fn parallel_apps_run_on_eight_cores_spec_on_one() {
        assert!(parallel_suite().iter().all(|p| p.cores == 8));
        assert!(spec_suite().iter().all(|p| p.cores == 1));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = parallel_suite()
            .iter()
            .chain(spec_suite().iter())
            .map(|p| p.name)
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn profiles_are_physically_sensible() {
        for p in parallel_suite().into_iter().chain(spec_suite()) {
            assert!(p.l2_apki > 0.0 && p.l2_apki < 100.0, "{}", p.name);
            assert!(p.hot_set_bytes <= p.working_set_bytes, "{}", p.name);
            assert!((0.0..=1.0).contains(&p.hot_fraction), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.write_fraction), "{}", p.name);
            assert!(p.base_ipc > 0.0 && p.base_ipc <= 4.0, "{}", p.name);
        }
    }

    #[test]
    fn value_streams_differ_across_benchmarks() {
        let mut fft = BenchmarkId::Fft.profile().value_stream(1);
        let mut radix = BenchmarkId::Radix.profile().value_stream(1);
        let same = (0..16).filter(|_| fft.next_block() == radix.next_block()).count();
        assert!(same < 8);
    }

    #[test]
    fn table2_inputs_match_paper() {
        assert_eq!(BenchmarkId::Linear.profile().input, "50MB key file");
        assert_eq!(BenchmarkId::Barnes.profile().input, "16K Particles");
        assert_eq!(BenchmarkId::Radix.profile().input, "2M integers");
        assert_eq!(BenchmarkId::Mcf.profile().input, "reference");
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(format!("{}", BenchmarkId::WaterNSquared), "Water-NSquared");
        assert_eq!(format!("{}", BenchmarkId::Cg), "CG");
    }
}
