//! Chunk-statistics measurement (paper Figs. 12 and 13).
//!
//! Given a stream of transferred blocks, measure the distribution of
//! 4-bit chunk values and the fraction of chunks that repeat the
//! previous value on their wire (under the paper's 128-wire, one
//! chunk-per-wire assignment).

use crate::values::ValueStream;
use desc_core::{Block, ChunkSize, Chunks};

/// Aggregated chunk statistics over a block stream.
///
/// # Examples
///
/// ```
/// use desc_workloads::{BenchmarkId, ChunkStats};
///
/// let p = BenchmarkId::Cg.profile();
/// let stats = ChunkStats::measure_stream(&mut p.value_stream(1), 500);
/// assert!(stats.zero_fraction() > 0.1);
/// assert!(stats.histogram().iter().sum::<u64>() > 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChunkStats {
    histogram: [u64; 16],
    repeats: u64,
    total: u64,
    previous: Option<Vec<u16>>,
}

impl ChunkStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transferred block (4-bit chunks, chunk `i` on wire
    /// `i` as in the paper's 128-wire interface).
    pub fn record(&mut self, block: &Block) {
        let chunks = Chunks::split(block, ChunkSize::PAPER_DEFAULT);
        let values = chunks.values();
        if let Some(prev) = &self.previous {
            self.repeats += values
                .iter()
                .zip(prev)
                .filter(|(now, before)| now == before)
                .count() as u64;
        } else {
            // The first block compares against all-zero wires.
            self.repeats += values.iter().filter(|&&v| v == 0).count() as u64;
        }
        for &v in values {
            self.histogram[v as usize] += 1;
            self.total += 1;
        }
        self.previous = Some(values.to_vec());
    }

    /// Measures `blocks` consecutive blocks from a value stream.
    #[must_use]
    pub fn measure_stream(stream: &mut ValueStream, blocks: usize) -> Self {
        let mut stats = Self::new();
        for _ in 0..blocks {
            stats.record(&stream.next_block());
        }
        stats
    }

    /// Chunk-value histogram (index = 4-bit value), as in Fig. 12.
    #[must_use]
    pub fn histogram(&self) -> &[u64; 16] {
        &self.histogram
    }

    /// Normalised frequency of each chunk value.
    #[must_use]
    pub fn frequencies(&self) -> [f64; 16] {
        let mut f = [0.0; 16];
        if self.total > 0 {
            for (i, &n) in self.histogram.iter().enumerate() {
                f[i] = n as f64 / self.total as f64;
            }
        }
        f
    }

    /// Fraction of zero chunks (Fig. 12 reports ≈31% on average).
    #[must_use]
    pub fn zero_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.histogram[0] as f64 / self.total as f64
        }
    }

    /// Fraction of chunks equal to the previous chunk on their wire
    /// (Fig. 13 reports ≈39% on average).
    #[must_use]
    pub fn repeat_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.repeats as f64 / self.total as f64
        }
    }

    /// Total chunks recorded.
    #[must_use]
    pub fn total_chunks(&self) -> u64 {
        self.total
    }
}

/// Geometric mean of a slice of positive numbers.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of an empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "geomean requires positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{parallel_suite, BenchmarkId};

    #[test]
    fn histogram_sums_to_total() {
        let p = BenchmarkId::Art.profile();
        let stats = ChunkStats::measure_stream(&mut p.value_stream(2), 200);
        assert_eq!(stats.histogram().iter().sum::<u64>(), stats.total_chunks());
        assert_eq!(stats.total_chunks(), 200 * 128);
        let freq_sum: f64 = stats.frequencies().iter().sum();
        assert!((freq_sum - 1.0).abs() < 1e-9);
    }

    /// The calibration target behind paper Fig. 12: across the 16
    /// parallel apps, ~31% of transferred chunks are zero.
    #[test]
    fn suite_zero_fraction_matches_fig12() {
        let fractions: Vec<f64> = parallel_suite()
            .iter()
            .map(|p| {
                ChunkStats::measure_stream(&mut p.value_stream(33), 600).zero_fraction().max(1e-6)
            })
            .collect();
        let g = geomean(&fractions);
        assert!((0.22..=0.40).contains(&g), "suite zero-chunk geomean {g:.3}, paper ≈0.31");
    }

    /// The calibration target behind paper Fig. 13: ~39% of chunks
    /// repeat the previous value on their wire.
    #[test]
    fn suite_repeat_fraction_matches_fig13() {
        let fractions: Vec<f64> = parallel_suite()
            .iter()
            .map(|p| {
                ChunkStats::measure_stream(&mut p.value_stream(34), 600)
                    .repeat_fraction()
                    .max(1e-6)
            })
            .collect();
        let g = geomean(&fractions);
        assert!((0.30..=0.52).contains(&g), "suite repeat geomean {g:.3}, paper ≈0.39");
    }

    #[test]
    fn zero_heavy_apps_exceed_fp_apps() {
        let cg = ChunkStats::measure_stream(&mut BenchmarkId::Cg.profile().value_stream(8), 400);
        let fft = ChunkStats::measure_stream(&mut BenchmarkId::Fft.profile().value_stream(8), 400);
        assert!(cg.zero_fraction() > fft.zero_fraction());
    }

    #[test]
    fn first_block_counts_zero_wires_as_repeats() {
        let mut stats = ChunkStats::new();
        stats.record(&desc_core::Block::zeroed(64));
        assert_eq!(stats.repeat_fraction(), 1.0);
    }

    #[test]
    fn geomean_of_constants_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }
}
