//! Cache-block content generators.
//!
//! A [`ValueModel`] is a mixture over block *archetypes*; a
//! [`ValueStream`] samples blocks from it with cross-block memory so
//! that last-value correlation (paper Fig. 13) is reproduced.

use desc_core::rng::Rng64;
use desc_core::Block;

/// Block archetypes observed in last-level-cache traffic.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Archetype {
    /// All-zero block (freshly-allocated or cleared data).
    Null,
    /// Sparse integers: most 64-bit words zero, a few small values.
    SparseInt,
    /// Dense small integers: every 32-bit word holds a value ≪ 2³²,
    /// so high-order nibbles are zero.
    SmallInt,
    /// Dense double-precision floats with shared exponent range and
    /// random mantissas.
    DenseFp,
    /// ASCII text bytes.
    Text,
    /// Pointer-like 64-bit words sharing a heap base address.
    Pointer,
    /// A re-write of the previous block with a few words mutated —
    /// the source of last-value chunk repeats.
    NearRepeat,
}

/// Mixture weights over archetypes, per benchmark.
///
/// Weights need not sum to one; they are normalised at sampling time.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ValueModel {
    /// Weight of [`Archetype::Null`].
    pub null: f64,
    /// Weight of [`Archetype::SparseInt`].
    pub sparse_int: f64,
    /// Weight of [`Archetype::SmallInt`].
    pub small_int: f64,
    /// Weight of [`Archetype::DenseFp`].
    pub dense_fp: f64,
    /// Weight of [`Archetype::Text`].
    pub text: f64,
    /// Weight of [`Archetype::Pointer`].
    pub pointer: f64,
    /// Weight of [`Archetype::NearRepeat`].
    pub near_repeat: f64,
}

impl ValueModel {
    /// A generic mixed workload roughly matching the paper's average
    /// statistics (≈31% zero chunks, ≈39% last-value repeats).
    #[must_use]
    pub fn mixed() -> Self {
        Self {
            null: 0.06,
            sparse_int: 0.08,
            small_int: 0.08,
            dense_fp: 0.42,
            text: 0.03,
            pointer: 0.09,
            near_repeat: 0.24,
        }
    }

    fn weights(&self) -> [(Archetype, f64); 7] {
        [
            (Archetype::Null, self.null),
            (Archetype::SparseInt, self.sparse_int),
            (Archetype::SmallInt, self.small_int),
            (Archetype::DenseFp, self.dense_fp),
            (Archetype::Text, self.text),
            (Archetype::Pointer, self.pointer),
            (Archetype::NearRepeat, self.near_repeat),
        ]
    }

    /// Creates a deterministic stream of 64-byte blocks from this
    /// model.
    #[must_use]
    pub fn stream(&self, seed: u64) -> ValueStream {
        ValueStream::new(*self, seed)
    }
}

impl Default for ValueModel {
    fn default() -> Self {
        Self::mixed()
    }
}

/// A deterministic generator of cache blocks with cross-block value
/// correlation.
///
/// # Examples
///
/// ```
/// use desc_workloads::values::ValueModel;
///
/// let mut a = ValueModel::mixed().stream(7);
/// let mut b = ValueModel::mixed().stream(7);
/// assert_eq!(a.next_block(), b.next_block()); // same seed, same stream
/// ```
#[derive(Debug)]
pub struct ValueStream {
    model: ValueModel,
    rng: Rng64,
    previous: Block,
    /// Scratch block filled by generation and then swapped with
    /// `previous` — the stream owns exactly two blocks for its whole
    /// life, so the per-draw hot path allocates nothing.
    scratch: Block,
    heap_base: u64,
    /// Blocks drawn since creation; flushed to the
    /// `workloads.blocks_generated` counter once, on drop, instead of
    /// taking an atomic add per block.
    pending_blocks: u64,
}

/// Blocks are the paper's 64-byte L2 blocks.
const BLOCK_BYTES: usize = 64;
const WORDS: usize = BLOCK_BYTES / 8;

/// Fills `bytes` from little-endian `u64` words — the in-place twin of
/// [`Block::from_words`].
fn write_words(bytes: &mut [u8], words: &[u64; WORDS]) {
    for (chunk, w) in bytes.chunks_exact_mut(8).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
}

impl ValueStream {
    /// Creates a stream with the given mixture and seed.
    #[must_use]
    pub fn new(model: ValueModel, seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        let heap_base = rng.gen_range(0x1000_0000u64..0x7f00_0000_0000) & !0xFFFF;
        Self {
            model,
            rng,
            previous: Block::zeroed(BLOCK_BYTES),
            scratch: Block::zeroed(BLOCK_BYTES),
            heap_base,
            pending_blocks: 0,
        }
    }

    /// Draws the next 64-byte block as an owned value.
    pub fn next_block(&mut self) -> Block {
        self.next_block_ref().clone()
    }

    /// Draws the next 64-byte block and returns a borrow of it — the
    /// allocation-free hot path. The bytes and the random sequence are
    /// identical to [`ValueStream::next_block`]; the returned block
    /// doubles as the stream's last-value memory, so it stays valid
    /// until the next draw.
    pub fn next_block_ref(&mut self) -> &Block {
        let archetype = self.pick_archetype();
        self.generate_into_scratch(archetype);
        std::mem::swap(&mut self.scratch, &mut self.previous);
        self.pending_blocks += 1;
        &self.previous
    }

    fn pick_archetype(&mut self) -> Archetype {
        let weights = self.model.weights();
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "value model has no positive weights");
        let mut x = self.rng.gen::<f64>() * total;
        for (a, w) in weights {
            if x < w {
                return a;
            }
            x -= w;
        }
        Archetype::DenseFp
    }

    /// Fills `self.scratch` for the archetype, drawing exactly the same
    /// random values (in the same order) as every prior release did for
    /// the archetype, so streams stay bit-for-bit reproducible.
    fn generate_into_scratch(&mut self, archetype: Archetype) {
        let Self { rng, previous, scratch, heap_base, .. } = self;
        let bytes = scratch.as_bytes_mut();
        match archetype {
            Archetype::Null => bytes.fill(0),
            Archetype::SparseInt => {
                let mut words = [0u64; WORDS];
                let hot = rng.gen_range(1..=2);
                for _ in 0..hot {
                    let i = rng.gen_range(0..WORDS);
                    words[i] = u64::from(rng.gen_range(1u32..4096));
                }
                write_words(bytes, &words);
            }
            Archetype::SmallInt => {
                let mut words = [0u64; WORDS];
                for w in &mut words {
                    // Two 32-bit lanes of small magnitudes per word.
                    let lo = u64::from(rng.gen_range(0u32..65_536));
                    let hi = u64::from(rng.gen_range(0u32..256));
                    *w = lo | (hi << 32);
                }
                write_words(bytes, &words);
            }
            Archetype::DenseFp => {
                let mut words = [0u64; WORDS];
                // Doubles of similar but not identical magnitude:
                // exponents drawn per word from a narrow range, random
                // mantissas — so adjacent words differ in mantissa and
                // low exponent bits, as in real FP arrays.
                for w in &mut words {
                    let exponent = rng.gen_range(1000u64..1040) << 52;
                    let mantissa = rng.gen::<u64>() & ((1 << 52) - 1);
                    *w = exponent | mantissa;
                }
                write_words(bytes, &words);
            }
            Archetype::Text => {
                for b in bytes.iter_mut() {
                    *b = rng.gen_range(0x20u8..0x7F);
                }
            }
            Archetype::Pointer => {
                let mut words = [0u64; WORDS];
                for w in &mut words {
                    *w = *heap_base + u64::from(rng.gen_range(0u32..1 << 20)) * 8;
                }
                write_words(bytes, &words);
            }
            Archetype::NearRepeat => {
                bytes.copy_from_slice(previous.as_bytes());
                // Mutate one or two words; everything else repeats.
                let mutations = rng.gen_range(1..=2);
                for _ in 0..mutations {
                    let i = rng.gen_range(0..WORDS);
                    let value = u64::from(rng.gen::<u32>());
                    bytes[i * 8..i * 8 + 8].copy_from_slice(&value.to_le_bytes());
                }
            }
        }
    }
}

impl Clone for ValueStream {
    /// Clones the generator state; the clone starts its own telemetry
    /// tally so drawn blocks are never double-counted.
    fn clone(&self) -> Self {
        Self {
            model: self.model,
            rng: self.rng.clone(),
            previous: self.previous.clone(),
            scratch: self.scratch.clone(),
            heap_base: self.heap_base,
            pending_blocks: 0,
        }
    }
}

impl Drop for ValueStream {
    fn drop(&mut self) {
        if self.pending_blocks > 0 && desc_telemetry::enabled() {
            desc_telemetry::counter!("workloads.blocks_generated").add(self.pending_blocks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_core::{ChunkSize, Chunks};

    fn zero_fraction(model: ValueModel, blocks: usize) -> f64 {
        let mut stream = model.stream(11);
        let mut zeros = 0usize;
        let mut total = 0usize;
        for _ in 0..blocks {
            let chunks = Chunks::split(&stream.next_block(), ChunkSize::PAPER_DEFAULT);
            zeros += chunks.values().iter().filter(|&&v| v == 0).count();
            total += chunks.len();
        }
        zeros as f64 / total as f64
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = ValueModel::mixed().stream(3);
        let mut b = ValueModel::mixed().stream(3);
        for _ in 0..32 {
            assert_eq!(a.next_block(), b.next_block());
        }
    }

    #[test]
    fn borrowed_and_owned_draws_match() {
        let mut a = ValueModel::mixed().stream(21);
        let mut b = ValueModel::mixed().stream(21);
        for _ in 0..64 {
            let owned = a.next_block();
            assert_eq!(&owned, b.next_block_ref());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ValueModel::mixed().stream(3);
        let mut b = ValueModel::mixed().stream(4);
        let same = (0..16).filter(|_| a.next_block() == b.next_block()).count();
        assert!(same < 8, "independent seeds produced mostly identical blocks");
    }

    #[test]
    fn mixed_model_lands_near_paper_zero_fraction() {
        // Paper Fig. 12: ~31% zero chunks on average.
        let z = zero_fraction(ValueModel::mixed(), 2000);
        assert!((0.22..=0.42).contains(&z), "zero fraction {z:.3}");
    }

    #[test]
    fn null_only_model_is_all_zero() {
        let model = ValueModel {
            null: 1.0,
            sparse_int: 0.0,
            small_int: 0.0,
            dense_fp: 0.0,
            text: 0.0,
            pointer: 0.0,
            near_repeat: 0.0,
        };
        let mut s = model.stream(1);
        for _ in 0..8 {
            assert!(s.next_block().is_null());
        }
    }

    #[test]
    fn fp_only_model_has_few_zero_chunks() {
        let model = ValueModel {
            null: 0.0,
            sparse_int: 0.0,
            small_int: 0.0,
            dense_fp: 1.0,
            text: 0.0,
            pointer: 0.0,
            near_repeat: 0.0,
        };
        let z = zero_fraction(model, 500);
        assert!(z < 0.12, "dense FP zero fraction {z:.3}");
    }

    #[test]
    fn near_repeat_blocks_mostly_match_previous() {
        let model = ValueModel {
            null: 0.0,
            sparse_int: 0.0,
            small_int: 0.0,
            dense_fp: 0.5,
            text: 0.0,
            pointer: 0.0,
            near_repeat: 0.5,
        };
        let mut s = model.stream(9);
        let mut prev = s.next_block();
        let mut repeats = 0usize;
        let mut total = 0usize;
        for _ in 0..1000 {
            let b = s.next_block();
            let pc = Chunks::split(&prev, ChunkSize::PAPER_DEFAULT);
            let cc = Chunks::split(&b, ChunkSize::PAPER_DEFAULT);
            repeats += pc.values().iter().zip(cc.values()).filter(|(a, b)| a == b).count();
            total += cc.len();
            prev = b;
        }
        let m = repeats as f64 / total as f64;
        assert!(m > 0.40, "repeat fraction {m:.3} too low for a 50% near-repeat mixture");
    }

    #[test]
    fn pointer_blocks_share_high_bits() {
        let model = ValueModel {
            null: 0.0,
            sparse_int: 0.0,
            small_int: 0.0,
            dense_fp: 0.0,
            text: 0.0,
            pointer: 1.0,
            near_repeat: 0.0,
        };
        let mut s = model.stream(2);
        let block = s.next_block();
        let bytes = block.as_bytes();
        // All eight words share their top three bytes (20-bit offsets).
        let tops: Vec<&[u8]> = bytes.chunks(8).map(|w| &w[5..8]).collect();
        assert!(tops.windows(2).all(|p| p[0] == p[1]));
    }

    #[test]
    fn text_blocks_are_printable_ascii() {
        let model = ValueModel {
            null: 0.0,
            sparse_int: 0.0,
            small_int: 0.0,
            dense_fp: 0.0,
            text: 1.0,
            pointer: 0.0,
            near_repeat: 0.0,
        };
        let mut s = model.stream(5);
        assert!(s.next_block().as_bytes().iter().all(|b| (0x20..0x7F).contains(b)));
    }

    #[test]
    #[should_panic(expected = "no positive weights")]
    fn degenerate_model_rejected_at_sampling() {
        let model = ValueModel {
            null: 0.0,
            sparse_int: 0.0,
            small_int: 0.0,
            dense_fp: 0.0,
            text: 0.0,
            pointer: 0.0,
            near_repeat: 0.0,
        };
        let _ = model.stream(0).next_block();
    }
}
