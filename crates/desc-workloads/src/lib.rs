//! # desc-workloads
//!
//! Synthetic models of the paper's 24 applications (Table 2): sixteen
//! memory-intensive parallel programs from Phoenix, SPLASH-2, SPEC
//! OpenMP and NAS, and eight single-threaded SPEC CPU2006 programs.
//!
//! The real benchmark binaries and inputs are unavailable here, so each
//! application is modelled by a [`BenchmarkProfile`]: its L2 access
//! intensity, miss behaviour, sharing, and — most importantly for DESC
//! — a [`ValueModel`] describing the *content* of the cache blocks it
//! moves. The value models are mixtures of block archetypes (null
//! blocks, sparse integers, dense floating point, text, pointers,
//! block re-writes) whose weights are chosen per benchmark so the
//! aggregate chunk statistics reproduce the paper's measurements:
//! ≈31% of transferred 4-bit chunks are zero (Fig. 12) and ≈39% repeat
//! the previous chunk on their wire (Fig. 13). The generators are
//! deterministic given a seed.
//!
//! ```
//! use desc_workloads::{parallel_suite, BenchmarkId};
//!
//! let suite = parallel_suite();
//! assert_eq!(suite.len(), 16);
//! let radix = BenchmarkId::Radix.profile();
//! let mut values = radix.value_stream(42);
//! let block = values.next_block();
//! assert_eq!(block.byte_len(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod stats;
pub mod trace;
pub mod values;

pub use profile::{parallel_suite, spec_suite, BenchmarkId, BenchmarkProfile, Suite};
pub use stats::ChunkStats;
pub use trace::{Access, TraceGenerator};
pub use values::{ValueModel, ValueStream};
