//! Shared experiment plumbing: run scales, scheme wire budgets, and
//! the simulation → energy → processor pipeline.

use desc_cacti::cache::CacheModel;
use desc_cacti::EnergyBreakdown;
use desc_core::schemes::SchemeKind;
use desc_core::TransferScheme;
use desc_mcpat::{ProcessorConfig, ProcessorEnergy};
use desc_sim::{CoreModel, SimConfig, SimResult, SystemSim};
use desc_workloads::{parallel_suite, BenchmarkProfile};

/// How much simulation an experiment runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scale {
    /// L2 accesses simulated per (app, configuration) pair.
    pub accesses: usize,
    /// How many of the 16 parallel apps to use (figure rows shrink
    /// accordingly; geomeans stay geomeans).
    pub apps: usize,
    /// Master seed for all deterministic generators.
    pub seed: u64,
}

impl Scale {
    /// Full reproduction scale (all apps, 20 000 accesses each).
    #[must_use]
    pub fn full() -> Self {
        Self { accesses: 20_000, apps: 16, seed: 2013 }
    }

    /// Reduced scale for interactive runs and benches.
    #[must_use]
    pub fn quick() -> Self {
        Self { accesses: 4_000, apps: 4, seed: 2013 }
    }

    /// Minimal scale for unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        Self { accesses: 800, apps: 2, seed: 2013 }
    }

    /// The parallel-suite subset selected by this scale.
    #[must_use]
    pub fn suite(&self) -> Vec<BenchmarkProfile> {
        parallel_suite().into_iter().take(self.apps.max(1)).collect()
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::full()
    }
}

/// Total physical wires a scheme occupies in its paper configuration
/// (data + control + sync), used to size the H-tree for leakage and
/// area accounting.
#[must_use]
pub fn scheme_total_wires(kind: SchemeKind) -> usize {
    kind.build_paper_config().wires().total()
}

/// Multiplier on L2 leakage power from a scheme's extra circuitry:
/// the synthesized DESC interfaces add ≈3% static energy (paper
/// Fig. 18 discussion); the extra-wire baselines add a token 0.5%.
#[must_use]
pub fn scheme_static_overhead(kind: SchemeKind) -> f64 {
    if kind.is_desc() {
        1.03
    } else if kind == SchemeKind::ConventionalBinary {
        1.0
    } else {
        1.005
    }
}

/// Outcome of simulating one app under one scheme: raw sim result, the
/// priced L2 energy, and the processor roll-up.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Simulation measurements.
    pub result: SimResult,
    /// L2 energy breakdown over the simulated window.
    pub l2: EnergyBreakdown,
    /// Processor-level roll-up.
    pub processor: ProcessorEnergy,
}

impl AppRun {
    /// Total L2 energy in joules.
    #[must_use]
    pub fn l2_energy(&self) -> f64 {
        self.l2.total()
    }
}

/// Simulates `profile` under `scheme` on `config`, prices the
/// activity, and rolls up processor energy. `static_overhead`
/// multiplies L2 leakage (see [`scheme_static_overhead`]).
#[must_use]
pub fn run_custom(
    scheme: Box<dyn TransferScheme>,
    mut config: SimConfig,
    profile: &BenchmarkProfile,
    scale: &Scale,
    static_overhead: f64,
) -> AppRun {
    config.l2.bus_width_bits = scheme.wires().total();
    let sim = SystemSim::new(config, *profile, scale.seed);
    let result = sim.run(scheme, scale.accesses);
    let model = CacheModel::new(config.l2);
    let mut l2 = model.energy_for(&result.activity);
    l2.static_j *= static_overhead;
    let proc_cfg = match config.core {
        CoreModel::Throughput { .. } => ProcessorConfig::niagara_like(),
        CoreModel::OutOfOrder { .. } => ProcessorConfig::out_of_order(),
    };
    let processor = proc_cfg.roll_up(
        result.instructions,
        result.exec_time_s,
        l2,
        result.misses + result.writebacks,
    );
    AppRun { result, l2, processor }
}

/// Simulates `profile` under a paper-configured scheme on the paper's
/// multithreaded machine.
#[must_use]
pub fn run_app(kind: SchemeKind, profile: &BenchmarkProfile, scale: &Scale) -> AppRun {
    run_custom(
        kind.build_paper_config(),
        SimConfig::paper_multithreaded(),
        profile,
        scale,
        scheme_static_overhead(kind),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_workloads::BenchmarkId;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::tiny().accesses < Scale::quick().accesses);
        assert!(Scale::quick().accesses < Scale::full().accesses);
        assert_eq!(Scale::full().suite().len(), 16);
        assert_eq!(Scale::quick().suite().len(), 4);
    }

    #[test]
    fn wire_budgets_match_paper_configs() {
        assert_eq!(scheme_total_wires(SchemeKind::ConventionalBinary), 64);
        assert_eq!(scheme_total_wires(SchemeKind::DynamicZeroCompression), 72);
        assert_eq!(scheme_total_wires(SchemeKind::BusInvertCoding), 66);
        assert_eq!(scheme_total_wires(SchemeKind::ZeroSkippedBusInvert), 68);
        assert_eq!(scheme_total_wires(SchemeKind::ZeroSkippedDesc), 130);
    }

    #[test]
    fn desc_pays_static_overhead() {
        assert!(scheme_static_overhead(SchemeKind::ZeroSkippedDesc) > 1.02);
        assert_eq!(scheme_static_overhead(SchemeKind::ConventionalBinary), 1.0);
    }

    #[test]
    fn run_app_produces_consistent_energy() {
        let scale = Scale::tiny();
        let run = run_app(
            SchemeKind::ZeroSkippedDesc,
            &BenchmarkId::Radix.profile(),
            &scale,
        );
        assert!(run.l2_energy() > 0.0);
        assert!(run.processor.l2_fraction() > 0.0 && run.processor.l2_fraction() < 1.0);
        assert_eq!(run.result.accesses, scale.accesses as u64);
    }
}
