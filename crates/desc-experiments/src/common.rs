//! Shared experiment plumbing: run scales, scheme wire budgets, and
//! the simulation → energy → processor pipeline.

use desc_cacti::cache::CacheModel;
use desc_cacti::EnergyBreakdown;
use desc_core::schemes::SchemeKind;
use desc_core::TransferScheme;
use desc_mcpat::{ProcessorConfig, ProcessorEnergy};
use desc_sim::{CoreModel, SimConfig, SimResult, SystemSim};
use desc_workloads::{parallel_suite, BenchmarkProfile};

/// How much simulation an experiment runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scale {
    /// L2 accesses simulated per (app, configuration) pair.
    pub accesses: usize,
    /// How many of the 16 parallel apps to use (figure rows shrink
    /// accordingly; geomeans stay geomeans).
    pub apps: usize,
    /// Master seed for all deterministic generators.
    pub seed: u64,
    /// Concurrency cap for (app × configuration) sweep cells on the
    /// process-wide [`desc_exec`] pool. Every cell is seeded
    /// independently from `seed`, so results are bit-identical for any
    /// job count; `1` runs cells inline. `0` is treated as `1`.
    pub jobs: usize,
    /// Concurrency cap for bank partitions *inside* each simulation
    /// cell (see [`desc_sim::SimConfig::shards`]). The decomposition
    /// unit is the L2 bank, fixed by the machine config, so results are
    /// bit-identical for any shard count; `0`/`1` run each cell
    /// serially. `jobs` and `shards` are both caps on the same
    /// fixed-size pool — they bound concurrency but never multiply
    /// thread counts.
    pub shards: usize,
}

impl Scale {
    /// Full reproduction scale (all apps, 20 000 accesses each).
    #[must_use]
    pub fn full() -> Self {
        Self { accesses: 20_000, apps: 16, seed: 2013, jobs: 1, shards: 1 }
    }

    /// Reduced scale for interactive runs and benches.
    #[must_use]
    pub fn quick() -> Self {
        Self { accesses: 4_000, apps: 4, seed: 2013, jobs: 1, shards: 1 }
    }

    /// Minimal scale for unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        Self { accesses: 800, apps: 2, seed: 2013, jobs: 1, shards: 1 }
    }

    /// Returns this scale with `jobs` worker threads for sweeps.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Returns this scale with `shards` intra-cell worker threads.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The parallel-suite subset selected by this scale.
    #[must_use]
    pub fn suite(&self) -> Vec<BenchmarkProfile> {
        parallel_suite().into_iter().take(self.apps.max(1)).collect()
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::full()
    }
}

/// Total physical wires a scheme occupies in its paper configuration
/// (data + control + sync), used to size the H-tree for leakage and
/// area accounting.
#[must_use]
pub fn scheme_total_wires(kind: SchemeKind) -> usize {
    kind.build_paper_config().wires().total()
}

/// Multiplier on L2 leakage power from a scheme's extra circuitry:
/// the synthesized DESC interfaces add ≈3% static energy (paper
/// Fig. 18 discussion); the extra-wire baselines add a token 0.5%.
#[must_use]
pub fn scheme_static_overhead(kind: SchemeKind) -> f64 {
    if kind.is_desc() {
        1.03
    } else if kind == SchemeKind::ConventionalBinary {
        1.0
    } else {
        1.005
    }
}

/// Outcome of simulating one app under one scheme: raw sim result, the
/// priced L2 energy, and the processor roll-up.
#[derive(Clone, Debug)]
pub struct AppRun {
    /// Simulation measurements.
    pub result: SimResult,
    /// L2 energy breakdown over the simulated window.
    pub l2: EnergyBreakdown,
    /// Processor-level roll-up.
    pub processor: ProcessorEnergy,
}

impl AppRun {
    /// Total L2 energy in joules.
    #[must_use]
    pub fn l2_energy(&self) -> f64 {
        self.l2.total()
    }
}

/// Simulates `profile` under `scheme` on `config`, prices the
/// activity, and rolls up processor energy. `static_overhead`
/// multiplies L2 leakage (see [`scheme_static_overhead`]).
#[must_use]
pub fn run_custom(
    scheme: Box<dyn TransferScheme>,
    mut config: SimConfig,
    profile: &BenchmarkProfile,
    scale: &Scale,
    static_overhead: f64,
) -> AppRun {
    config.l2.bus_width_bits = scheme.wires().total();
    config.shards = scale.shards.max(1);
    let sim = SystemSim::new(config, *profile, scale.seed);
    let result = sim.run(scheme, scale.accesses);
    let model = CacheModel::new(config.l2);
    let mut l2 = model.energy_for(&result.activity);
    l2.static_j *= static_overhead;
    let proc_cfg = match config.core {
        CoreModel::Throughput { .. } => ProcessorConfig::niagara_like(),
        CoreModel::OutOfOrder { .. } => ProcessorConfig::out_of_order(),
    };
    let processor = proc_cfg.roll_up(
        result.instructions,
        result.exec_time_s,
        l2,
        result.misses + result.writebacks,
    );
    AppRun { result, l2, processor }
}

/// [`run_custom`] behind the cell cache: when `repro --cache-dir`
/// installed a [`desc_cache::CacheStore`] (see [`crate::cache`]), the
/// cell's content address is looked up first and a hit skips the
/// simulation entirely. `scheme_id` must spell out the scheme's
/// constructor arguments (wires, chunk size, skip mode, ablations) —
/// everything [`TransferScheme::name`] does not expose.
///
/// Warm hits are bitwise-faithful: payload floats round-trip as exact
/// bit patterns, and when telemetry is enabled the cell's captured
/// metric delta is replayed into the global registry, so a warm run's
/// figure CSVs *and* report metrics match a cold run byte for byte.
/// A telemetry-enabled run treats delta-less entries (stored by dark
/// runs) as misses and overwrites them with delta-bearing ones.
#[must_use]
pub fn run_custom_keyed(
    scheme_id: &str,
    scheme: Box<dyn TransferScheme>,
    config: SimConfig,
    profile: &BenchmarkProfile,
    scale: &Scale,
    static_overhead: f64,
) -> AppRun {
    let Some(store) = crate::cache::active() else {
        return run_custom(scheme, config, profile, scale, static_overhead);
    };
    let key = crate::cache::app_key(
        scheme_id,
        scheme.as_ref(),
        &config,
        profile,
        scale,
        static_overhead,
    );
    cached_cell(
        &store,
        &key,
        crate::cache::decode_app_run,
        crate::cache::encode_app_run,
        move || run_custom(scheme, config, profile, scale, static_overhead),
    )
}

/// The single-flight cached-cell driver shared by
/// [`run_custom_keyed`] and [`run_snuca`].
///
/// [`CacheStore::begin_flight`](desc_cache::CacheStore::begin_flight)
/// resolves the cell into a store hit, a result shared from another
/// caller's in-flight compute, or leadership; leading computes under a
/// per-cell [`desc_telemetry::CaptureSink`] and publishes result +
/// delta in one step, so concurrent demanders of the same cold cell
/// compute it exactly once and all observe the identical entry.
///
/// While waiting on another caller's flight, this thread polls
/// [`desc_exec::check_cancelled`] — a cancelled request abandons its
/// wait promptly (the poll unwinds) without disturbing the leader.
/// Conversely a *leading* cell that unwinds (panic or cancellation
/// inside the compute) drops its lease unpublished, which hands
/// leadership to a waiting follower rather than wedging the key.
///
/// The sink installed *around* the cell, if any (e.g. a `desc-serve`
/// request sink), still sees exactly the cell's metric delta: the
/// per-cell capture replaces it for the cell's duration (innermost
/// wins) and `replay` only touches the global registry, so the delta
/// is absorbed into the outer sink explicitly on every path — warm
/// hit, shared flight, and cold compute alike. Shared-flight results
/// additionally bump the sink's `dedup_cells` op counter, the
/// operational side-channel `desc-serve` reports per request.
fn cached_cell<T>(
    store: &desc_cache::CacheStore,
    key: &desc_cache::CellKey,
    decode: impl Fn(&[u8]) -> Result<T, desc_cache::CodecError>,
    encode: impl Fn(&T) -> Vec<u8>,
    compute: impl FnOnce() -> T,
) -> T {
    use desc_cache::FlightOutcome;
    let want_delta = desc_telemetry::enabled();
    let outer = desc_telemetry::capture_sink();
    let mut compute = Some(compute);
    let mut corrupt_retried = false;
    loop {
        let outcome = store.begin_flight(key, want_delta, &mut || desc_exec::check_cancelled());
        let (entry, shared) = match outcome {
            FlightOutcome::Ready(entry) => (entry, false),
            FlightOutcome::Shared(entry) => (entry, true),
            FlightOutcome::Lead(lease) => {
                let compute = compute.take().expect("a cell computes at most once");
                let (value, delta) = compute_traced(want_delta, outer.as_deref(), compute);
                lease.publish(encode(&value), delta);
                return value;
            }
        };
        match decode(&entry.payload) {
            Ok(value) => {
                if want_delta {
                    if let Some(delta) = &entry.delta {
                        desc_telemetry::replay(delta);
                        if let Some(outer) = &outer {
                            outer.absorb(delta);
                        }
                    }
                }
                if shared {
                    if let Some(outer) = &outer {
                        outer.incr_op("dedup_cells");
                    }
                }
                return value;
            }
            // Undecodable payload (codec drift without a version
            // bump): count it and evict it everywhere — hot tier and
            // disk object — so the next iteration misses and leads a
            // recompute whose store overwrites the entry.
            Err(_) => {
                store.note_corrupt(key);
                if corrupt_retried {
                    // The store served an undecodable entry *again*
                    // after eviction (e.g. the object file could not
                    // be deleted, or another process keeps rewriting
                    // it): stop cycling through lookup and recompute
                    // directly, overwriting the entry. Bounds the
                    // loop on any store behavior.
                    let compute = compute.take().expect("a cell computes at most once");
                    let (value, delta) = compute_traced(want_delta, outer.as_deref(), compute);
                    store.store(key, encode(&value), delta);
                    return value;
                }
                corrupt_retried = true;
            }
        }
    }
}

/// Runs one cell compute under a fresh per-cell [`CaptureSink`] (when
/// `want_delta`), returning the value plus the captured metric delta,
/// with the delta absorbed into `outer` — the sink installed around
/// the cell, e.g. a `desc-serve` request sink — on the way out.
///
/// [`CaptureSink`]: desc_telemetry::CaptureSink
fn compute_traced<T>(
    want_delta: bool,
    outer: Option<&desc_telemetry::CaptureSink>,
    compute: impl FnOnce() -> T,
) -> (T, Option<desc_telemetry::Snapshot>) {
    let (value, delta) = if want_delta {
        let sink = desc_telemetry::CaptureSink::new();
        let value = desc_telemetry::with_capture(&sink, compute);
        (value, Some(sink.snapshot()))
    } else {
        (compute(), None)
    };
    if let (Some(outer), Some(delta)) = (outer, delta.as_ref()) {
        outer.absorb(delta);
    }
    (value, delta)
}

/// Simulates `profile` under a paper-configured scheme on the paper's
/// multithreaded machine. Cached per cell when a store is installed
/// (see [`run_custom_keyed`]).
#[must_use]
pub fn run_app(kind: SchemeKind, profile: &BenchmarkProfile, scale: &Scale) -> AppRun {
    run_custom_keyed(
        &format!("paper:{kind:?}"),
        kind.build_paper_config(),
        SimConfig::paper_multithreaded(),
        profile,
        scale,
        scheme_static_overhead(kind),
    )
}

/// One S-NUCA-1 run behind the cell cache: constructs the
/// [`desc_sim::SnucaSim`] per call so fig. 23 and fig. 24 — which run
/// the same `(scheme, app)` cells — share cache entries. Same
/// contract as [`run_custom_keyed`].
#[must_use]
pub fn run_snuca(
    scheme_id: &str,
    scheme: Box<dyn TransferScheme>,
    config: SimConfig,
    profile: &BenchmarkProfile,
    scale: &Scale,
) -> desc_sim::snuca::SnucaResult {
    let compute = |scheme: Box<dyn TransferScheme>| {
        let sim = desc_sim::SnucaSim::new(config, *profile, scale.seed);
        sim.run(scheme, scale.accesses)
    };
    let Some(store) = crate::cache::active() else {
        return compute(scheme);
    };
    let key = crate::cache::snuca_key(
        scheme_id,
        scheme.as_ref(),
        &config,
        profile,
        scale.seed,
        scale.accesses,
    );
    cached_cell(
        &store,
        &key,
        crate::cache::decode_snuca,
        crate::cache::encode_snuca,
        move || compute(scheme),
    )
}

/// Runs every cell of a (row × configuration) sweep on the
/// process-wide [`desc_exec`] pool, with at most `scale.jobs` cells in
/// flight at once.
///
/// Both axes are generic: `rows` is usually the benchmark suite but
/// can be any per-row parameter (device classes, sweep points), and
/// each cell may return any `Send` result (an [`AppRun`], an energy
/// scalar, a tuple of measurements).
///
/// `cell(config, row)` must derive everything from its arguments and
/// `scale.seed` (as [`run_app`]/[`run_custom`] do — each cell
/// constructs its own independently seeded simulation), so the result
/// is **bit-identical to the serial loop for any job count**: the pool
/// schedule only decides *which* thread computes a cell, never its
/// value, and each cell writes its own result slot. Cells may submit
/// nested partition regions (`SimConfig::shards > 1`) onto the same
/// pool without deadlock — blocked submitters help execute. Results
/// are indexed `[row][config]`.
///
/// When telemetry is enabled each cell records a `"cell"` span
/// (label `c<config>.r<row>`), so `repro --report` shows per-cell
/// wall-clock for any job count; when disabled no label is even
/// formatted. Figures whose axes have natural names (scheme × app)
/// should use [`run_matrix_labeled`] so the timeline reads
/// `zs-desc/ocean` instead of `c4.r0`.
#[must_use]
pub fn run_matrix<C, P, R, F>(configs: &[C], rows: &[P], scale: &Scale, cell: F) -> Vec<Vec<R>>
where
    C: Sync,
    P: Sync,
    R: Send,
    F: Fn(&C, &P) -> R + Sync,
{
    run_matrix_labeled(configs, rows, scale, |c, p| format!("c{c}.r{p}"), cell)
}

/// [`run_matrix`] with caller-chosen cell span labels:
/// `label(config_index, row_index)` names each cell on the execution
/// timeline. The label closure runs only when telemetry is enabled —
/// dark runs never format a string.
///
/// Every sweep executes as a `"cells"` region on the shared pool
/// (queue-wait/run-time distributions per cell under that label in
/// `desc_exec::utilization`) and feeds the [`crate::progress`]
/// counters that drive `repro`'s live status line.
#[must_use]
pub fn run_matrix_labeled<C, P, R, F, L>(
    configs: &[C],
    rows: &[P],
    scale: &Scale,
    label: L,
    cell: F,
) -> Vec<Vec<R>>
where
    C: Sync,
    P: Sync,
    R: Send,
    F: Fn(&C, &P) -> R + Sync,
    L: Fn(usize, usize) -> String + Sync,
{
    let n_cells = rows.len() * configs.len();
    crate::progress::cells_planned(n_cells as u64);
    let cells = desc_exec::run_labeled("cells", n_cells, scale.jobs.max(1), |i| {
        let (p, c) = (i / configs.len(), i % configs.len());
        let _span = desc_telemetry::enabled().then(|| desc_telemetry::span("cell", label(c, p)));
        let out = cell(&configs[c], &rows[p]);
        crate::progress::cell_done();
        out
    });
    let mut out = Vec::with_capacity(rows.len());
    let mut it = cells.into_iter();
    for _ in 0..rows.len() {
        out.push(it.by_ref().take(configs.len()).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_workloads::BenchmarkId;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::tiny().accesses < Scale::quick().accesses);
        assert!(Scale::quick().accesses < Scale::full().accesses);
        assert_eq!(Scale::full().suite().len(), 16);
        assert_eq!(Scale::quick().suite().len(), 4);
    }

    #[test]
    fn wire_budgets_match_paper_configs() {
        assert_eq!(scheme_total_wires(SchemeKind::ConventionalBinary), 64);
        assert_eq!(scheme_total_wires(SchemeKind::DynamicZeroCompression), 72);
        assert_eq!(scheme_total_wires(SchemeKind::BusInvertCoding), 66);
        assert_eq!(scheme_total_wires(SchemeKind::ZeroSkippedBusInvert), 68);
        assert_eq!(scheme_total_wires(SchemeKind::ZeroSkippedDesc), 130);
    }

    #[test]
    fn desc_pays_static_overhead() {
        assert!(scheme_static_overhead(SchemeKind::ZeroSkippedDesc) > 1.02);
        assert_eq!(scheme_static_overhead(SchemeKind::ConventionalBinary), 1.0);
    }

    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte() {
        // The acceptance bar for the threaded sweep: any job count
        // renders the exact same figure text as the serial loop. The
        // list samples every run_matrix shape: AppRun cells (fig16),
        // generic config axes (fig14, fig22), scalar cells (fig13),
        // S-NUCA rows (fig24), ECC (fig28), and ablations.
        let serial = Scale::tiny();
        let parallel = Scale::tiny().with_jobs(4);
        for name in ["fig13", "fig14", "fig16", "fig22", "fig24", "fig28", "abl-adaptive"] {
            let a = crate::run_experiment(name, &serial).render();
            let b = crate::run_experiment(name, &parallel).render();
            assert_eq!(a, b, "{name} diverged under --jobs 4");
        }
    }

    #[test]
    fn run_matrix_handles_more_jobs_than_cells() {
        let scale = Scale::tiny().with_jobs(64);
        let suite = scale.suite();
        let kinds = [SchemeKind::ConventionalBinary];
        let m = run_matrix(&kinds, &suite[..1], &scale, |&k, p| run_app(k, p, &scale));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].len(), 1);
        assert!(m[0][0].l2_energy() > 0.0);
    }

    #[test]
    fn run_app_produces_consistent_energy() {
        let scale = Scale::tiny();
        let run = run_app(
            SchemeKind::ZeroSkippedDesc,
            &BenchmarkId::Radix.profile(),
            &scale,
        );
        assert!(run.l2_energy() > 0.0);
        assert!(run.processor.l2_fraction() > 0.0 && run.processor.l2_fraction() < 1.0);
        assert_eq!(run.result.accesses, scale.accesses as u64);
    }
}
