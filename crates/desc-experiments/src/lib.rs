//! # desc-experiments
//!
//! The reproduction harness: one runner per table and figure of the
//! paper's evaluation (§5). Each runner returns a [`Table`] whose rows
//! mirror the corresponding figure's bars or series, normalised the
//! same way the paper normalises them. The `repro` binary prints any
//! or all of them:
//!
//! ```text
//! repro fig16           # L2 energy, all eight schemes, per app
//! repro --quick all     # every experiment at reduced scale
//! ```
//!
//! Paper-vs-measured numbers for every experiment are recorded in the
//! repository's `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod common;
pub mod figures;
pub mod progress;
pub mod table;

pub use common::{AppRun, Scale};
pub use table::Table;

/// Every experiment the harness can regenerate, in paper order.
#[must_use]
pub fn experiment_names() -> Vec<&'static str> {
    vec![
        "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig5", "fig12", "fig13", "fig14",
        "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
        "fig25", "fig26", "fig27", "fig28", "fig29", "fig30", "abl-sync",
        "abl-adaptive", "abl-count-list", "abl-low-swing",
    ]
}

/// Runs one experiment by name.
///
/// # Panics
///
/// Panics if `name` is not one of [`experiment_names`].
#[must_use]
pub fn run_experiment(name: &str, scale: &Scale) -> Table {
    match name {
        "table1" => figures::tables::table1(),
        "table2" => figures::tables::table2(),
        "table3" => figures::tables::table3(),
        "fig1" => figures::fig01::run(scale),
        "fig2" => figures::fig02::run(scale),
        "fig3" => figures::fig03::run(),
        "fig5" => figures::fig05::run(),
        "fig12" => figures::fig12::run(scale),
        "fig13" => figures::fig13::run(scale),
        "fig14" => figures::fig14::run(scale),
        "fig15" => figures::fig15::run(scale),
        "fig16" => figures::fig16::run(scale),
        "fig17" => figures::fig17::run(),
        "fig18" => figures::fig18::run(scale),
        "fig19" => figures::fig19::run(scale),
        "fig20" => figures::fig20::run(scale),
        "fig21" => figures::fig21::run(scale),
        "fig22" => figures::fig22::run(scale),
        "fig23" => figures::fig23::run(scale),
        "fig24" => figures::fig24::run(scale),
        "fig25" => figures::fig25::run(scale),
        "fig26" => figures::fig26::run(scale),
        "fig27" => figures::fig27::run(scale),
        "fig28" => figures::fig28::run(scale),
        "fig29" => figures::fig29::run(scale),
        "fig30" => figures::fig30::run(scale),
        "abl-sync" => figures::ablations::abl_sync(scale),
        "abl-adaptive" => figures::ablations::abl_adaptive(scale),
        "abl-count-list" => figures::ablations::abl_chunk_order(scale),
        "abl-low-swing" => figures::ablations::abl_wires(scale),
        other => panic!("unknown experiment {other:?}; see experiment_names()"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs_at_tiny_scale() {
        let scale = Scale::tiny();
        for name in experiment_names() {
            let table = run_experiment(name, &scale);
            assert!(!table.render().is_empty(), "{name} rendered nothing");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let _ = run_experiment("fig99", &Scale::tiny());
    }
}
