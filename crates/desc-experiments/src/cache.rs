//! Cell-level memoization: content addresses for sweep cells, the
//! compact binary cell-result codecs, and the process-wide store
//! handle installed by `repro --cache-dir`.
//!
//! A *cell* is one `(scheme, machine config, app profile, seed,
//! accesses)` simulation — the unit [`crate::common::run_matrix`]
//! schedules. Its content address ([`app_key`] / [`snuca_key`]) hashes
//! every input that can change the result and **nothing that cannot**:
//! `Scale::jobs` and `SimConfig::shards` are concurrency caps with a
//! bit-identical-results contract, so they are excluded (shards is
//! zeroed in the fingerprinted config copy) and a cell computed under
//! `--jobs 8 --shards 4` serves a later `--jobs 1` run.
//!
//! Scheme constructors take parameters (`wires`,
//! [`ChunkSize`](desc_core::ChunkSize),
//! [`SkipMode`](desc_core::schemes::SkipMode), sync-strobe ablation)
//! that `TransferScheme::name` does not expose, so every keyed call
//! site supplies a `scheme_id` string spelling out the constructor
//! arguments; the key also folds in `name()` and the wire budget as a
//! cross-check.
//!
//! Payloads are encoded with the fixed-field-order codecs below
//! ([`encode_app_run`] / [`encode_snuca`]); floats travel as exact bit
//! patterns, so a warm hit is bitwise identical to the cold compute.
//! Any change to a result struct or to key derivation must bump
//! [`CELL_SCHEMA_VERSION`] — old entries then read as version
//! mismatches and recompute, never as wrong figures.

use crate::common::{AppRun, Scale};
use desc_cache::{CacheStore, CellKey, CodecError, Decoder, Encoder, KeyHasher};
use desc_cacti::cache::CacheActivity;
use desc_cacti::EnergyBreakdown;
use desc_core::{CostSummary, TransferCost, TransferScheme};
use desc_mcpat::ProcessorEnergy;
use desc_sim::snuca::SnucaResult;
use desc_sim::{SimConfig, SimResult};
use desc_workloads::BenchmarkProfile;
use std::sync::{Arc, Mutex};

/// Version of the cell payload schema (codec field order **and** key
/// derivation). Bump on any change to either; stale entries are then
/// counted as `version_mismatches` and recomputed.
pub const CELL_SCHEMA_VERSION: u32 = 1;

static STORE: Mutex<Option<Arc<CacheStore>>> = Mutex::new(None);

/// Installs (or with `None`, removes) the process-wide cell store that
/// [`crate::common::run_custom_keyed`] consults. `repro` installs one
/// when `--cache-dir` is given without `--no-cache`.
pub fn install(store: Option<Arc<CacheStore>>) {
    *STORE.lock().expect("cache store handle poisoned") = store;
}

/// The installed store, if any.
#[must_use]
pub fn active() -> Option<Arc<CacheStore>> {
    STORE.lock().expect("cache store handle poisoned").clone()
}

/// Hashes the parts of a cell spec shared by both simulators: the
/// scheme identity and the normalised machine config. `shards` is
/// zeroed (concurrency cap, not an input) and `bus_width_bits` is set
/// to the scheme's wire budget exactly as the run paths do, so the
/// fingerprint matches the config the simulation actually sees.
fn write_common(
    h: &mut KeyHasher,
    scheme_id: &str,
    scheme: &dyn TransferScheme,
    config: &SimConfig,
    profile: &BenchmarkProfile,
    seed: u64,
    accesses: usize,
) {
    h.write_u32(CELL_SCHEMA_VERSION);
    h.write_str(scheme_id);
    h.write_str(scheme.name());
    h.write_u64(scheme.wires().total() as u64);
    let mut cfg = *config;
    cfg.shards = 0;
    cfg.l2.bus_width_bits = scheme.wires().total();
    h.write_str(&format!("{cfg:?}"));
    h.write_str(&format!("{profile:?}"));
    h.write_u64(seed);
    h.write_u64(accesses as u64);
}

/// Content address of one UCA app cell (the
/// [`crate::common::run_custom`] pipeline).
#[must_use]
pub fn app_key(
    scheme_id: &str,
    scheme: &dyn TransferScheme,
    config: &SimConfig,
    profile: &BenchmarkProfile,
    scale: &Scale,
    static_overhead: f64,
) -> CellKey {
    let mut h = KeyHasher::new("app");
    write_common(&mut h, scheme_id, scheme, config, profile, scale.seed, scale.accesses);
    h.write_f64_bits(static_overhead);
    h.finish()
}

/// Content address of one S-NUCA-1 cell (one
/// [`desc_sim::SnucaSim::run`] call), shared by fig. 23 and fig. 24.
#[must_use]
pub fn snuca_key(
    scheme_id: &str,
    scheme: &dyn TransferScheme,
    config: &SimConfig,
    profile: &BenchmarkProfile,
    seed: u64,
    accesses: usize,
) -> CellKey {
    let mut h = KeyHasher::new("snuca");
    write_common(&mut h, scheme_id, scheme, config, profile, seed, accesses);
    h.finish()
}

fn put_transfer(e: &mut Encoder, t: &CostSummary) {
    let total = t.total();
    e.put_u64(total.data_transitions);
    e.put_u64(total.control_transitions);
    e.put_u64(total.sync_transitions);
    e.put_u64(total.cycles);
    e.put_u64(total.latency_cycles);
    e.put_u64(t.blocks());
    e.put_u64(t.max_cycles());
}

fn get_transfer(d: &mut Decoder) -> Result<CostSummary, CodecError> {
    let total = TransferCost {
        data_transitions: d.u64()?,
        control_transitions: d.u64()?,
        sync_transitions: d.u64()?,
        cycles: d.u64()?,
        latency_cycles: d.u64()?,
    };
    let blocks = d.u64()?;
    let max_cycles = d.u64()?;
    Ok(CostSummary::from_parts(total, blocks, max_cycles))
}

fn put_energy(e: &mut Encoder, b: &EnergyBreakdown) {
    e.put_f64(b.static_j);
    e.put_f64(b.array_dynamic_j);
    e.put_f64(b.htree_dynamic_j);
}

fn get_energy(d: &mut Decoder) -> Result<EnergyBreakdown, CodecError> {
    Ok(EnergyBreakdown {
        static_j: d.f64()?,
        array_dynamic_j: d.f64()?,
        htree_dynamic_j: d.f64()?,
    })
}

/// Serializes an [`AppRun`] into the cell payload format (fixed field
/// order, floats as exact bit patterns).
#[must_use]
pub fn encode_app_run(run: &AppRun) -> Vec<u8> {
    let mut e = Encoder::new();
    let r = &run.result;
    e.put_u64(r.accesses);
    e.put_u64(r.hits);
    e.put_u64(r.misses);
    e.put_u64(r.writebacks);
    e.put_u64(r.invalidations);
    e.put_f64(r.avg_hit_latency_cycles);
    e.put_f64(r.avg_access_latency_cycles);
    e.put_u64(r.exec_cycles);
    e.put_f64(r.exec_time_s);
    e.put_u64(r.instructions);
    e.put_u64(r.activity.htree_transitions);
    e.put_u64(r.activity.array_reads);
    e.put_u64(r.activity.array_writes);
    e.put_u64(r.activity.tag_lookups);
    e.put_f64(r.activity.elapsed_s);
    put_transfer(&mut e, &r.transfer);
    put_energy(&mut e, &run.l2);
    e.put_f64(run.processor.core_j);
    e.put_f64(run.processor.l1_j);
    put_energy(&mut e, &run.processor.l2);
    e.put_f64(run.processor.dram_j);
    e.into_bytes()
}

/// Inverse of [`encode_app_run`].
///
/// # Errors
///
/// Fails on truncated or trailing bytes — the store layer then counts
/// the entry corrupt and the cell recomputes.
pub fn decode_app_run(bytes: &[u8]) -> Result<AppRun, CodecError> {
    let mut d = Decoder::new(bytes);
    let result = SimResult {
        accesses: d.u64()?,
        hits: d.u64()?,
        misses: d.u64()?,
        writebacks: d.u64()?,
        invalidations: d.u64()?,
        avg_hit_latency_cycles: d.f64()?,
        avg_access_latency_cycles: d.f64()?,
        exec_cycles: d.u64()?,
        exec_time_s: d.f64()?,
        instructions: d.u64()?,
        activity: CacheActivity {
            htree_transitions: d.u64()?,
            array_reads: d.u64()?,
            array_writes: d.u64()?,
            tag_lookups: d.u64()?,
            elapsed_s: d.f64()?,
        },
        transfer: get_transfer(&mut d)?,
    };
    let l2 = get_energy(&mut d)?;
    let processor = ProcessorEnergy {
        core_j: d.f64()?,
        l1_j: d.f64()?,
        l2: get_energy(&mut d)?,
        dram_j: d.f64()?,
    };
    d.finish()?;
    Ok(AppRun { result, l2, processor })
}

/// Serializes a [`SnucaResult`] into the cell payload format.
#[must_use]
pub fn encode_snuca(r: &SnucaResult) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(r.accesses);
    e.put_u64(r.misses);
    e.put_u64(r.exec_cycles);
    e.put_f64(r.exec_time_s);
    e.put_f64(r.wire_energy_j);
    e.put_f64(r.array_energy_j);
    e.put_f64(r.static_energy_j);
    e.put_f64(r.avg_hit_latency_cycles);
    e.into_bytes()
}

/// Inverse of [`encode_snuca`].
///
/// # Errors
///
/// Fails on truncated or trailing bytes.
pub fn decode_snuca(bytes: &[u8]) -> Result<SnucaResult, CodecError> {
    let mut d = Decoder::new(bytes);
    let r = SnucaResult {
        accesses: d.u64()?,
        misses: d.u64()?,
        exec_cycles: d.u64()?,
        exec_time_s: d.f64()?,
        wire_energy_j: d.f64()?,
        array_energy_j: d.f64()?,
        static_energy_j: d.f64()?,
        avg_hit_latency_cycles: d.f64()?,
    };
    d.finish()?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{run_app, scheme_static_overhead};
    use desc_core::schemes::SchemeKind;
    use desc_workloads::BenchmarkId;

    fn sample_run() -> AppRun {
        run_app(
            SchemeKind::ZeroSkippedDesc,
            &BenchmarkId::Radix.profile(),
            &Scale::tiny(),
        )
    }

    fn assert_bitwise_equal(a: &AppRun, b: &AppRun) {
        // Float fields must round-trip *bitwise*, not just approximately.
        assert_eq!(encode_app_run(a), encode_app_run(b));
    }

    #[test]
    fn app_run_round_trips_bitwise() {
        let run = sample_run();
        let bytes = encode_app_run(&run);
        let back = decode_app_run(&bytes).expect("decode");
        assert_bitwise_equal(&run, &back);
        assert_eq!(run.result.accesses, back.result.accesses);
        assert_eq!(run.result.transfer.blocks(), back.result.transfer.blocks());
        assert_eq!(
            run.result.transfer.total(),
            back.result.transfer.total(),
        );
        assert_eq!(run.l2, back.l2);
        assert_eq!(run.processor, back.processor);
    }

    #[test]
    fn app_run_decode_rejects_truncation_and_trailing_bytes() {
        let bytes = encode_app_run(&sample_run());
        assert!(decode_app_run(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(decode_app_run(&longer).is_err());
    }

    #[test]
    fn snuca_round_trips_bitwise() {
        let r = SnucaResult {
            accesses: 11,
            misses: 3,
            exec_cycles: 1234,
            exec_time_s: 0.125,
            wire_energy_j: 1.0e-9,
            array_energy_j: 2.5e-9,
            static_energy_j: 0.1 + 0.2, // deliberately non-representable
            avg_hit_latency_cycles: 17.75,
        };
        let back = decode_snuca(&encode_snuca(&r)).expect("decode");
        assert_eq!(encode_snuca(&r), encode_snuca(&back));
        assert_eq!(r.static_energy_j.to_bits(), back.static_energy_j.to_bits());
    }

    #[test]
    fn keys_ignore_concurrency_but_see_every_input() {
        let kind = SchemeKind::ZeroSkippedDesc;
        let scheme = kind.build_paper_config();
        let cfg = SimConfig::paper_multithreaded();
        let profile = BenchmarkId::Radix.profile();
        let overhead = scheme_static_overhead(kind);
        let base = Scale::tiny();
        let key = |scale: &Scale, id: &str, ov: f64| {
            app_key(id, scheme.as_ref(), &cfg, &profile, scale, ov)
        };
        let k = key(&base, "paper:ZeroSkippedDesc", overhead);
        // jobs/shards are concurrency caps, not inputs.
        assert_eq!(k, key(&base.with_jobs(8).with_shards(4), "paper:ZeroSkippedDesc", overhead));
        // Every real input changes the key.
        let mut reseeded = base;
        reseeded.seed = 999;
        assert_ne!(k, key(&reseeded, "paper:ZeroSkippedDesc", overhead));
        let mut rescaled = base;
        rescaled.accesses += 1;
        assert_ne!(k, key(&rescaled, "paper:ZeroSkippedDesc", overhead));
        assert_ne!(k, key(&base, "paper:ZeroSkippedDesc:variant", overhead));
        assert_ne!(k, key(&base, "paper:ZeroSkippedDesc", 1.0));
        let mut other_cfg = cfg;
        other_cfg.l2.banks *= 2;
        assert_ne!(
            k,
            app_key("paper:ZeroSkippedDesc", scheme.as_ref(), &other_cfg, &profile, &base, overhead)
        );
        // Same spec under the snuca domain is a different address.
        assert_ne!(
            (k.hi, k.lo),
            {
                let s = snuca_key(
                    "paper:ZeroSkippedDesc",
                    scheme.as_ref(),
                    &cfg,
                    &profile,
                    base.seed,
                    base.accesses,
                );
                (s.hi, s.lo)
            }
        );
    }

    #[test]
    fn install_and_active_round_trip() {
        // Serialized with other store users via the handle itself.
        let store = Arc::new(CacheStore::in_memory(CELL_SCHEMA_VERSION));
        install(Some(Arc::clone(&store)));
        assert!(active().is_some());
        install(None);
    }
}
