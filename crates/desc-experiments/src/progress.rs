//! Live sweep progress for interactive `repro` runs.
//!
//! [`run_matrix`](crate::common::run_matrix) feeds two process-wide
//! counters — cells planned and cells completed — and `repro` marks
//! experiment boundaries with [`begin_experiment`] /
//! [`end_experiment`]. A [`Reporter`] started on top of that state
//! repaints one stderr status line a few times per second:
//!
//! ```text
//! [3/9] fig16 | cells 132/180 | 41.2 cells/s | elapsed 3.2s | eta 9s
//! ```
//!
//! and prints a per-figure summary line as each experiment finishes.
//! The reporter is plain observability: the counters are relaxed
//! atomics written once per sweep cell (a cell simulates thousands of
//! L2 accesses, so the cost vanishes), nothing here feeds back into
//! the simulation, and `repro` only starts a reporter when stderr is a
//! TTY and `--quiet` was not passed — CI logs and redirected output
//! never see control characters.
//!
//! The ETA blends two signals: cells completed against cells *planned
//! so far* (totals appear as each experiment plans its sweeps), scaled
//! by experiments remaining. Early in a run it is rough; it converges
//! as experiments complete. Formatting lives in pure functions
//! ([`format_status_line`], [`format_experiment_done`]) so tests can
//! pin the rendering without a terminal.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide sweep progress state.
struct State {
    /// Sweep cells planned by every `run_matrix` region so far.
    planned: AtomicU64,
    /// Sweep cells completed.
    done: AtomicU64,
    /// Experiments completed so far this run.
    experiments_done: AtomicU64,
    /// Total experiments this run (set once by `repro`).
    experiments_total: AtomicU64,
    /// Name of the experiment currently running, plus the cell count
    /// at the moment it started (for the per-figure summary).
    current: Mutex<Option<(String, u64, Instant)>>,
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| State {
        planned: AtomicU64::new(0),
        done: AtomicU64::new(0),
        experiments_done: AtomicU64::new(0),
        experiments_total: AtomicU64::new(0),
        current: Mutex::new(None),
    })
}

/// Records that a sweep region of `n` cells was planned.
pub fn cells_planned(n: u64) {
    state().planned.fetch_add(n, Ordering::Relaxed);
}

/// Records one completed sweep cell.
pub fn cell_done() {
    state().done.fetch_add(1, Ordering::Relaxed);
}

/// `(completed, planned)` sweep-cell counts since process start.
#[must_use]
pub fn cells() -> (u64, u64) {
    let s = state();
    (s.done.load(Ordering::Relaxed), s.planned.load(Ordering::Relaxed))
}

/// Declares how many experiments the run will execute (sizes the
/// `[i/N]` prefix and the ETA).
pub fn set_experiment_count(n: usize) {
    state().experiments_total.store(n as u64, Ordering::Relaxed);
}

/// Marks `name` as the experiment now running.
pub fn begin_experiment(name: &str) {
    let s = state();
    let mut cur = s.current.lock().unwrap_or_else(|e| e.into_inner());
    *cur = Some((name.to_owned(), s.done.load(Ordering::Relaxed), Instant::now()));
}

/// Marks the current experiment finished, returning `(name, cells it
/// ran, wall seconds)` for the per-figure summary line.
pub fn end_experiment() -> Option<(String, u64, f64)> {
    let s = state();
    let finished = s.current.lock().unwrap_or_else(|e| e.into_inner()).take();
    s.experiments_done.fetch_add(1, Ordering::Relaxed);
    finished.map(|(name, done_at_start, started)| {
        let ran = s.done.load(Ordering::Relaxed).saturating_sub(done_at_start);
        (name, ran, started.elapsed().as_secs_f64())
    })
}

/// One snapshot of everything the status line shows.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Experiments completed so far.
    pub experiments_done: u64,
    /// Experiments the run will execute.
    pub experiments_total: u64,
    /// Name of the experiment currently running, if any.
    pub current: Option<String>,
    /// Sweep cells completed.
    pub cells_done: u64,
    /// Sweep cells planned so far.
    pub cells_planned: u64,
    /// Wall seconds since the reporter started.
    pub elapsed_s: f64,
}

fn snapshot(started: Instant) -> Snapshot {
    let s = state();
    Snapshot {
        experiments_done: s.experiments_done.load(Ordering::Relaxed),
        experiments_total: s.experiments_total.load(Ordering::Relaxed),
        current: s
            .current
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|(name, _, _)| name.clone()),
        cells_done: s.done.load(Ordering::Relaxed),
        cells_planned: s.planned.load(Ordering::Relaxed),
        elapsed_s: started.elapsed().as_secs_f64(),
    }
}

/// Renders the repainted status line (no trailing newline; the
/// reporter prefixes `\r` and pads).
#[must_use]
pub fn format_status_line(s: &Snapshot) -> String {
    let mut line = String::new();
    if s.experiments_total > 0 {
        let running = (s.experiments_done + 1).min(s.experiments_total);
        line.push_str(&format!("[{running}/{}] ", s.experiments_total));
    }
    line.push_str(s.current.as_deref().unwrap_or("idle"));
    line.push_str(&format!(" | cells {}/{}", s.cells_done, s.cells_planned));
    if s.elapsed_s > 0.0 && s.cells_done > 0 {
        line.push_str(&format!(" | {:.1} cells/s", s.cells_done as f64 / s.elapsed_s));
    }
    line.push_str(&format!(" | elapsed {:.1}s", s.elapsed_s));
    if let Some(eta) = eta_seconds(s) {
        line.push_str(&format!(" | eta {}s", eta.ceil() as u64));
    }
    line
}

/// Estimated seconds remaining, or `None` before there is any signal.
///
/// Cells planned only materialize experiment by experiment, so the
/// cell-rate estimate for the *current* experiment is scaled by the
/// number of experiments still untouched (assumed equal-cost).
#[must_use]
pub fn eta_seconds(s: &Snapshot) -> Option<f64> {
    if s.cells_done == 0 || s.elapsed_s <= 0.0 || s.experiments_total == 0 {
        return None;
    }
    let rate = s.cells_done as f64 / s.elapsed_s;
    let current_remaining = s.cells_planned.saturating_sub(s.cells_done) as f64 / rate;
    let touched = s.experiments_done + u64::from(s.current.is_some());
    let untouched = s.experiments_total.saturating_sub(touched);
    if touched == 0 {
        return None;
    }
    let per_experiment = s.elapsed_s / touched as f64;
    Some(current_remaining + untouched as f64 * per_experiment)
}

/// Renders the per-figure summary printed when an experiment ends.
#[must_use]
pub fn format_experiment_done(name: &str, cells: u64, seconds: f64) -> String {
    if cells > 0 {
        format!("{name}: {cells} cells in {seconds:.1}s")
    } else {
        format!("{name}: done in {seconds:.1}s")
    }
}

/// True when stderr is an interactive terminal (the only place the
/// repainting reporter is allowed to write).
#[must_use]
pub fn stderr_is_tty() -> bool {
    std::io::stderr().is_terminal()
}

/// Background stderr status-line painter. Construct with
/// [`Reporter::start`]; drop (or [`Reporter::finish`]) clears the line
/// and joins the ticker thread.
pub struct Reporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Reporter {
    /// Spawns the ticker, repainting roughly every 200 ms.
    #[must_use]
    pub fn start() -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("desc-progress".to_owned())
            .spawn(move || {
                let started = Instant::now();
                let mut widest = 0;
                while !stop_flag.load(Ordering::Relaxed) {
                    let line = format_status_line(&snapshot(started));
                    widest = widest.max(line.len());
                    // Pad to the widest line painted so far so a
                    // shrinking line leaves no stale tail characters.
                    eprint!("\r{line:<widest$}");
                    let _ = std::io::stderr().flush();
                    std::thread::sleep(Duration::from_millis(200));
                }
                eprint!("\r{:widest$}\r", "");
                let _ = std::io::stderr().flush();
            })
            .expect("failed to spawn progress reporter thread");
        Reporter { stop, handle: Some(handle) }
    }

    /// Reports an experiment's completion: clears the status line so
    /// the summary prints on its own row. Safe to call concurrently
    /// with repainting — worst case is one transiently garbled frame.
    pub fn experiment_finished(&self, name: &str, cells: u64, seconds: f64) {
        eprintln!("\r{:<79}\r{}", "", format_experiment_done(name, cells, seconds));
    }

    /// Stops and joins the ticker, clearing the status line.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(done: u64, planned: u64, xd: u64, xt: u64, cur: Option<&str>, t: f64) -> Snapshot {
        Snapshot {
            experiments_done: xd,
            experiments_total: xt,
            current: cur.map(str::to_owned),
            cells_done: done,
            cells_planned: planned,
            elapsed_s: t,
        }
    }

    #[test]
    fn status_line_shows_counts_rate_and_eta() {
        let line = format_status_line(&snap(50, 100, 2, 9, Some("fig16"), 10.0));
        assert!(line.starts_with("[3/9] fig16"), "{line}");
        assert!(line.contains("cells 50/100"), "{line}");
        assert!(line.contains("5.0 cells/s"), "{line}");
        assert!(line.contains("elapsed 10.0s"), "{line}");
        assert!(line.contains("eta "), "{line}");
    }

    #[test]
    fn eta_needs_progress_and_shrinks_with_fewer_experiments_left() {
        assert!(eta_seconds(&snap(0, 100, 0, 9, Some("fig12"), 5.0)).is_none());
        let early = eta_seconds(&snap(50, 100, 0, 9, Some("fig12"), 10.0)).unwrap();
        let late = eta_seconds(&snap(50, 100, 7, 9, Some("fig28"), 10.0)).unwrap();
        assert!(late < early, "eta must drop as experiments complete: {early} vs {late}");
    }

    #[test]
    fn status_line_without_experiment_context_still_renders() {
        let line = format_status_line(&snap(3, 8, 0, 0, None, 1.0));
        assert!(line.contains("idle"), "{line}");
        assert!(line.contains("cells 3/8"), "{line}");
        assert!(!line.contains("eta"), "no experiment count, no eta: {line}");
    }

    #[test]
    fn experiment_summary_formats() {
        assert_eq!(format_experiment_done("fig16", 80, 1.25), "fig16: 80 cells in 1.2s");
        assert_eq!(format_experiment_done("fig17", 0, 0.05), "fig17: done in 0.1s");
    }

    #[test]
    fn counters_accumulate() {
        let (done0, planned0) = cells();
        cells_planned(5);
        cell_done();
        cell_done();
        let (done, planned) = cells();
        assert_eq!(done - done0, 2);
        assert_eq!(planned - planned0, 5);
    }
}
