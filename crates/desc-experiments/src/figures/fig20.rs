//! Fig. 20: execution time of the data-communication schemes,
//! normalised to binary encoding (paper: DESC variants within 2%,
//! wire-overhead baselines within 1%).

use crate::common::{run_app, run_matrix_labeled, Scale};
use crate::table::{geomean, r3, Table};
use desc_core::schemes::SchemeKind;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let suite = scale.suite();
    let mut t = Table::new(
        "Fig. 20: execution time by transfer technique (normalised to binary)",
        &["Scheme", "Normalised execution time"],
    );
    let times: Vec<Vec<f64>> = run_matrix_labeled(
        &SchemeKind::ALL,
        &suite,
        scale,
        |c, p| format!("{}/{}", SchemeKind::ALL[c].label(), suite[p].name),
        |&kind, p| run_app(kind, p, scale),
    )
    .into_iter()
    .map(|row| row.into_iter().map(|r| r.result.exec_time_s).collect())
    .collect();
    let base = SchemeKind::ALL
        .iter()
        .position(|&k| k == SchemeKind::ConventionalBinary)
        .expect("conventional binary is always part of the scheme list");
    for (i, kind) in SchemeKind::ALL.into_iter().enumerate() {
        let ratios: Vec<f64> = times.iter().map(|row| row[i] / row[base]).collect();
        t.row_owned(vec![kind.label().into(), r3(geomean(&ratios))]);
    }
    t.note("paper: zero-/last-value-skipped DESC add <2%; baselines ~1%");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_small() {
        let t = run(&Scale { accesses: 2_500, apps: 3, seed: 1, jobs: 2, shards: 1 });
        for row in 0..t.row_count() {
            let ratio: f64 = t.cell(row, 1).expect("ratio").parse().expect("number");
            assert!(
                (0.97..=1.10).contains(&ratio),
                "{} execution ratio {ratio}",
                t.cell(row, 0).expect("name")
            );
        }
    }
}
