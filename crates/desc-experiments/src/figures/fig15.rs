//! Fig. 15: L2 energy of the baseline encodings as a function of the
//! data-segment size, normalised to binary encoding. The best
//! configuration of each scheme (starred in the paper) becomes its
//! Fig. 16 baseline.

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{r2, Table};
use desc_core::schemes::{
    BusInvertScheme, DzcScheme, EncodedZeroSkipBusInvertScheme, SchemeKind,
    ZeroSkipBusInvertScheme,
};
use desc_core::TransferScheme;
use desc_sim::SimConfig;

/// The segment sizes the paper sweeps.
pub const SEGMENT_BITS: [usize; 5] = [64, 32, 16, 8, 4];

fn build(scheme: &str, seg: usize) -> Box<dyn TransferScheme> {
    match scheme {
        "DZC" => Box::new(DzcScheme::new(64, seg)),
        "BIC" => Box::new(BusInvertScheme::new(64, seg)),
        "BIC+ZS" => Box::new(ZeroSkipBusInvertScheme::new(64, seg)),
        "BIC+EZS" => Box::new(EncodedZeroSkipBusInvertScheme::new(64, seg)),
        other => panic!("unknown scheme {other}"),
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let suite = scale.suite();
    let cfg = SimConfig::paper_multithreaded();
    // One sweep over binary (the baseline, segment ignored) plus every
    // scheme × segment configuration.
    const SCHEMES: [&str; 4] = ["DZC", "BIC", "BIC+ZS", "BIC+EZS"];
    let mut configs: Vec<(&str, usize)> = vec![("Binary", 0)];
    for name in SCHEMES {
        configs.extend(SEGMENT_BITS.iter().map(|&seg| (name, seg)));
    }
    let per_app = run_matrix(&configs, &suite, scale, |&(name, seg), p| {
        if name == "Binary" {
            run_custom_keyed(
                "paper:ConventionalBinary",
                SchemeKind::ConventionalBinary.build_paper_config(),
                cfg,
                p,
                scale,
                1.0,
            )
            .l2_energy()
        } else {
            run_custom_keyed(&format!("{name}:w64:seg{seg}"), build(name, seg), cfg, p, scale, 1.005)
                .l2_energy()
        }
    });
    let totals: Vec<f64> =
        (0..configs.len()).map(|c| per_app.iter().map(|row| row[c]).sum()).collect();
    let binary_total = totals[0];

    let mut t = Table::new(
        "Fig. 15: baseline L2 energy vs segment size (normalised to binary)",
        &["Scheme", "64-bit", "32-bit", "16-bit", "8-bit", "4-bit"],
    );
    for (i, name) in SCHEMES.iter().enumerate() {
        let mut cells = vec![(*name).to_owned()];
        for j in 0..SEGMENT_BITS.len() {
            cells.push(r2(totals[1 + i * SEGMENT_BITS.len() + j] / binary_total));
        }
        t.row_owned(cells);
    }
    t.note("paper best configs: DZC 8-bit, BIC 32-bit, BIC+ZS 32-bit, BIC+EZS 16-bit");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_beat_or_match_binary_at_some_segment() {
        let t = run(&Scale { accesses: 1_500, apps: 2, seed: 1, jobs: 1, shards: 1 });
        assert_eq!(t.row_count(), 4);
        for row in 0..4 {
            let best = (1..=5)
                .map(|c| t.cell(row, c).expect("cell").parse::<f64>().expect("number"))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 1.05, "row {row} best {best} never beats binary");
        }
    }
}
