//! Fig. 26: sensitivity of zero-skipped DESC to the chunk size (1, 2,
//! 4, 8 bits) across bus widths (32–256 wires), normalised to the
//! binary baseline. Paper: 4-bit chunks with 128 wires give the best
//! energy-delay product; 8-bit chunks suffer long windows.

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{r2, Table};
use desc_core::schemes::{DescScheme, SkipMode};
use desc_core::ChunkSize;
use desc_sim::SimConfig;

/// Chunk widths and wire counts swept.
pub const CHUNKS: [u8; 4] = [1, 2, 4, 8];
/// Wire counts swept.
pub const WIRES: [usize; 4] = [32, 64, 128, 256];

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let suite = scale.suite();
    let cfg = SimConfig::paper_multithreaded();
    // Chunk bits 0 marks the binary baseline configuration.
    let mut configs: Vec<(u8, usize)> = vec![(0, 0)];
    for bits in CHUNKS {
        configs.extend(WIRES.iter().map(|&w| (bits, w)));
    }
    let per_app = run_matrix(&configs, &suite, scale, |&(bits, wires), p| {
        let run = if bits == 0 {
            run_custom_keyed(
                "paper:ConventionalBinary",
                desc_core::schemes::SchemeKind::ConventionalBinary.build_paper_config(),
                cfg,
                p,
                scale,
                1.0,
            )
        } else {
            let scheme = Box::new(DescScheme::new(
                wires,
                ChunkSize::new(bits).expect("valid"),
                SkipMode::Zero,
            ));
            run_custom_keyed(&format!("desc:w{wires}:c{bits}:skip=Zero"), scheme, cfg, p, scale, 1.03)
        };
        (run.l2_energy(), run.result.exec_time_s)
    });
    let sums: Vec<(f64, f64)> = (0..configs.len())
        .map(|c| {
            per_app
                .iter()
                .fold((0.0, 0.0), |acc, row| (acc.0 + row[c].0, acc.1 + row[c].1))
        })
        .collect();
    let (base_e, base_x) = sums[0];
    let mut t = Table::new(
        "Fig. 26: zero-skipped DESC vs chunk size and wires (normalised to binary)",
        &["Chunk bits", "Wires", "L2 energy", "Exec time"],
    );
    for (&(bits, wires), &(e, x)) in configs.iter().zip(&sums).skip(1) {
        t.row_owned(vec![
            bits.to_string(),
            wires.to_string(),
            r2(e / base_e),
            r2(x / base_x),
        ]);
    }
    t.note("paper: 4-bit chunks with 128 wires give the best L2 energy-delay product");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_chunks_beat_one_bit_on_energy_and_eight_bit_on_time() {
        let t = run(&Scale { accesses: 1_200, apps: 2, seed: 1, jobs: 1, shards: 1 });
        // Index rows: bits-major then wires; 128 wires is column 2.
        let row = |bits_i: usize, wires_i: usize| bits_i * WIRES.len() + wires_i;
        let energy = |r: usize| -> f64 { t.cell(r, 2).expect("e").parse().expect("num") };
        let time = |r: usize| -> f64 { t.cell(r, 3).expect("t").parse().expect("num") };
        let one_bit = row(0, 2);
        let four_bit = row(2, 2);
        let eight_bit = row(3, 2);
        // 1-bit chunks = one strobe per bit → far more transitions.
        assert!(energy(four_bit) < energy(one_bit));
        // 8-bit chunks → up-to-255-cycle windows → slower.
        assert!(time(four_bit) < time(eight_bit));
    }
}
