//! The paper's configuration tables (Tables 1–3), printed from the
//! code's own defaults so drift between documentation and
//! implementation is impossible.

use crate::table::Table;
use desc_core::synthesis::TechNode;
use desc_sim::SimConfig;
use desc_workloads::{parallel_suite, spec_suite};

/// Table 1: simulation parameters, read back from the simulator's
/// default configurations.
#[must_use]
pub fn table1() -> Table {
    let mt = SimConfig::paper_multithreaded();
    let ooo = SimConfig::paper_out_of_order();
    let mut t = Table::new("Table 1: simulation parameters", &["Parameter", "Value"]);
    t.row(&[
        "Multithreaded core",
        &format!("{} in-order cores, 3.2 GHz, 4 HW contexts per core", mt.core.cores()),
    ]);
    t.row(&["Single-threaded", "4-issue out-of-order core, 128 ROB entries, 3.2 GHz"]);
    let _ = ooo;
    t.row(&["IL1/DL1 cache (per core)", "16KB, 64B block, hit/miss delay 2/2"]);
    t.row_owned(vec![
        "L2 cache (shared)".into(),
        format!(
            "{}MB, {}-way, LRU, {}B block, {} banks",
            mt.l2.capacity_bytes >> 20,
            mt.l2.associativity,
            mt.l2.block_bytes,
            mt.l2.banks
        ),
    ]);
    t.row(&["Temperature", "350 K (77 C)"]);
    t.row_owned(vec![
        "DRAM".into(),
        format!(
            "{} DDR3-1066 channels, FR-FCFS, {} cycle latency",
            mt.dram_channels, mt.dram_latency_cycles
        ),
    ]);
    t
}

/// Table 2: applications and data sets, from the workload profiles.
#[must_use]
pub fn table2() -> Table {
    let mut t = Table::new("Table 2: applications and data sets", &["Benchmark", "Suite", "Input"]);
    for p in parallel_suite().into_iter().chain(spec_suite()) {
        t.row_owned(vec![p.name.into(), p.suite.to_string(), p.input.into()]);
    }
    t
}

/// Table 3: technology parameters from the synthesis model.
#[must_use]
pub fn table3() -> Table {
    let mut t =
        Table::new("Table 3: technology parameters", &["Technology", "Voltage", "FO4 Delay"]);
    for node in [TechNode::NM45, TechNode::NM22] {
        t.row_owned(vec![
            format!("{:.0}nm", node.feature_nm),
            format!("{:.2} V", node.vdd),
            format!("{:.2} ps", node.fo4_ps),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_table_values() {
        let s = table1().render();
        assert!(s.contains("8MB"));
        assert!(s.contains("16-way"));
        assert!(s.contains("DDR3-1066"));
    }

    #[test]
    fn table2_has_24_apps() {
        assert_eq!(table2().row_count(), 24);
    }

    #[test]
    fn table3_matches_paper() {
        let s = table3().render();
        assert!(s.contains("20.25 ps"));
        assert!(s.contains("11.75 ps"));
        assert!(s.contains("0.83 V"));
    }
}
