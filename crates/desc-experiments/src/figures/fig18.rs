//! Fig. 18: static vs dynamic contributions to L2 energy per transfer
//! technique, averaged over the suite and normalised to binary's
//! total. Paper: zero-skipped DESC halves dynamic energy at a 3%
//! static overhead.

use crate::common::{run_app, run_matrix, Scale};
use crate::table::{r3, Table};
use desc_core::schemes::SchemeKind;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let suite = scale.suite();
    let mut t = Table::new(
        "Fig. 18: static and dynamic L2 energy by technique (normalised to binary total)",
        &["Scheme", "Static", "Dynamic", "Total"],
    );
    let per_app = run_matrix(&SchemeKind::ALL, &suite, scale, |&kind, p| {
        let run = run_app(kind, p, scale);
        (run.l2.static_j, run.l2.array_dynamic_j + run.l2.htree_dynamic_j)
    });
    let mut rows = Vec::new();
    let mut binary_total = 0.0;
    for (i, kind) in SchemeKind::ALL.into_iter().enumerate() {
        let static_j: f64 = per_app.iter().map(|row| row[i].0).sum();
        let dynamic_j: f64 = per_app.iter().map(|row| row[i].1).sum();
        if kind == SchemeKind::ConventionalBinary {
            binary_total = static_j + dynamic_j;
        }
        rows.push((kind, static_j, dynamic_j));
    }
    for (kind, s, d) in rows {
        t.row_owned(vec![
            kind.label().into(),
            r3(s / binary_total),
            r3(d / binary_total),
            r3((s + d) / binary_total),
        ]);
    }
    t.note("paper: zero-skip DESC gives ~2x lower dynamic energy with ~3% static overhead");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_halves_dynamic_with_small_static_overhead() {
        let t = run(&Scale { accesses: 2_500, apps: 3, seed: 1, jobs: 1, shards: 1 });
        // Rows follow SchemeKind::ALL: binary first, zero-skip DESC 7th.
        let bin_dyn: f64 = t.cell(0, 2).expect("dyn").parse().expect("number");
        let bin_static: f64 = t.cell(0, 1).expect("static").parse().expect("number");
        let zs_dyn: f64 = t.cell(6, 2).expect("dyn").parse().expect("number");
        let zs_static: f64 = t.cell(6, 1).expect("static").parse().expect("number");
        assert!(zs_dyn < 0.72 * bin_dyn, "dynamic {zs_dyn} vs binary {bin_dyn}");
        assert!(zs_static >= bin_static, "DESC must not reduce static energy");
        assert!(zs_static < 1.35 * bin_static, "static overhead too large: {zs_static}");
    }
}
