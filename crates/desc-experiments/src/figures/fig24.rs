//! Fig. 24: L2 energy of zero-skipped DESC on an 8 MB S-NUCA-1 cache,
//! normalised to binary S-NUCA-1 (paper: 1.62× improvement, i.e.
//! ≈0.62 normalised).

use crate::common::{run_matrix, run_snuca, Scale};
use crate::table::{geomean, r2, Table};
use desc_core::schemes::SchemeKind;
use desc_sim::SimConfig;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 24: S-NUCA-1 L2 energy with zero-skipped DESC (normalised)",
        &["App", "Normalised L2 energy"],
    );
    let mut cfg = SimConfig::paper_multithreaded();
    cfg.shards = scale.shards.max(1);
    let suite = scale.suite();
    let per_app = run_matrix(&[()], &suite, scale, |&(), p| {
        let bin = run_snuca(
            "paper:ConventionalBinary",
            SchemeKind::ConventionalBinary.build_paper_config(),
            cfg,
            p,
            scale,
        );
        let desc = run_snuca(
            "paper:ZeroSkippedDesc",
            SchemeKind::ZeroSkippedDesc.build_paper_config(),
            cfg,
            p,
            scale,
        );
        // DESC interfaces add static overhead here too.
        (desc.wire_energy_j + desc.array_energy_j + desc.static_energy_j * 1.03)
            / bin.total_energy_j()
    });
    let mut ratios = Vec::new();
    for (p, row) in suite.iter().zip(&per_app) {
        ratios.push(row[0]);
        t.row_owned(vec![p.name.into(), r2(row[0])]);
    }
    t.row_owned(vec!["Geomean".into(), r2(geomean(&ratios))]);
    t.note("paper geomean ≈ 0.62 (1.62x energy reduction)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snuca_energy_reduction_holds() {
        let t = run(&Scale { accesses: 2_000, apps: 3, seed: 1, jobs: 1, shards: 1 });
        let last = t.row_count() - 1;
        let g: f64 = t.cell(last, 1).expect("geomean").parse().expect("number");
        assert!((0.35..=0.85).contains(&g), "S-NUCA energy ratio {g}");
    }
}
