//! Fig. 2: major components of L2 energy under the baseline binary
//! configuration (paper: H-tree dynamic ≈ 80% on average with LSTP
//! devices).

use crate::common::{run_app, Scale};
use crate::table::{r3, Table};
use desc_core::schemes::SchemeKind;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 2: components of L2 cache energy (binary baseline)",
        &["App", "Static", "Other dynamic", "H-tree dynamic"],
    );
    let mut static_sum = 0.0;
    let mut array_sum = 0.0;
    let mut htree_sum = 0.0;
    for p in scale.suite() {
        let run = run_app(SchemeKind::ConventionalBinary, &p, scale);
        let total = run.l2.total();
        t.row_owned(vec![
            p.name.into(),
            r3(run.l2.static_j / total),
            r3(run.l2.array_dynamic_j / total),
            r3(run.l2.htree_dynamic_j / total),
        ]);
        static_sum += run.l2.static_j;
        array_sum += run.l2.array_dynamic_j;
        htree_sum += run.l2.htree_dynamic_j;
    }
    let total = static_sum + array_sum + htree_sum;
    t.row_owned(vec![
        "Average".into(),
        r3(static_sum / total),
        r3(array_sum / total),
        r3(htree_sum / total),
    ]);
    t.note("paper average: H-tree ≈ 0.80 of L2 energy");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htree_dominates() {
        let t = run(&Scale { accesses: 2_000, apps: 3, seed: 1, jobs: 1, shards: 1 });
        let last = t.row_count() - 1;
        let htree: f64 = t.cell(last, 3).expect("avg").parse().expect("number");
        assert!((0.6..=0.92).contains(&htree), "H-tree share {htree}");
        let s: f64 = t.cell(last, 1).expect("static").parse().expect("number");
        let a: f64 = t.cell(last, 2).expect("array").parse().expect("number");
        assert!((s + a + htree - 1.0).abs() < 0.01);
    }
}
