//! Fig. 22: the cache design space (energy vs execution time) opened
//! up by DESC, sweeping banks and bus widths for conventional binary
//! and zero-skipped DESC, normalised to the 8-bank 64-bit binary
//! baseline. Paper: DESC points push the energy frontier left without
//! significantly increasing access latency.

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{r2, Table};
use desc_core::schemes::{BinaryScheme, DescScheme, SkipMode};
use desc_core::{ChunkSize, TransferScheme};
use desc_sim::SimConfig;

/// Sweep points: (banks, data wires).
pub const POINTS: [(usize, usize); 9] = [
    (2, 64),
    (8, 32),
    (8, 64),
    (8, 128),
    (8, 256),
    (32, 64),
    (32, 128),
    (2, 128),
    (32, 256),
];

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let suite = scale.suite();
    // Configurations: every point under binary, then under DESC; the
    // normalisation baseline (8 banks, 64-bit binary) is one of them.
    let configs: Vec<(bool, usize, usize)> = [false, true]
        .into_iter()
        .flat_map(|desc| POINTS.into_iter().map(move |(banks, wires)| (desc, banks, wires)))
        .collect();
    let per_app = run_matrix(&configs, &suite, scale, |&(desc, banks, wires), p| {
        let mut cfg = SimConfig::paper_multithreaded();
        cfg.l2.banks = banks;
        let (scheme, id): (Box<dyn TransferScheme>, String) = if desc {
            (
                Box::new(DescScheme::new(wires, ChunkSize::PAPER_DEFAULT, SkipMode::Zero)),
                format!("desc:w{wires}:c{}:skip=Zero", ChunkSize::PAPER_DEFAULT.bits()),
            )
        } else {
            (Box::new(BinaryScheme::new(wires)), format!("binary:w{wires}"))
        };
        let overhead = if desc { 1.03 } else { 1.0 };
        let run = run_custom_keyed(&id, scheme, cfg, p, scale, overhead);
        (run.l2_energy(), run.result.exec_time_s)
    });
    let sums: Vec<(f64, f64)> = (0..configs.len())
        .map(|c| {
            per_app
                .iter()
                .fold((0.0, 0.0), |acc, row| (acc.0 + row[c].0, acc.1 + row[c].1))
        })
        .collect();
    let base_index = configs
        .iter()
        .position(|&c| c == (false, 8, 64))
        .expect("the 8-bank 64-bit binary baseline is part of the sweep");
    let (base_e, base_t) = sums[base_index];
    let mut t = Table::new(
        "Fig. 22: design space — L2 energy vs execution time (normalised to 8 banks, 64-bit binary)",
        &["Scheme", "Banks", "Wires", "L2 energy", "Exec time"],
    );
    for (&(desc, banks, wires), &(e, x)) in configs.iter().zip(&sums) {
        t.row_owned(vec![
            if desc { "Zero-skip DESC" } else { "Binary" }.into(),
            banks.to_string(),
            wires.to_string(),
            r2(e / base_e),
            r2(x / base_t),
        ]);
    }
    t.note("paper: DESC opens lower-energy design points at similar execution time");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_frontier_dominates_on_energy() {
        let scale = Scale { accesses: 1_200, apps: 2, seed: 1, jobs: 1, shards: 1 };
        let t = run(&scale);
        assert_eq!(t.row_count(), 2 * POINTS.len());
        // Best DESC energy beats best binary energy.
        let energy = |row: usize| -> f64 {
            t.cell(row, 3).expect("energy").parse().expect("number")
        };
        let best_binary =
            (0..POINTS.len()).map(energy).fold(f64::INFINITY, f64::min);
        let best_desc = (POINTS.len()..2 * POINTS.len())
            .map(energy)
            .fold(f64::INFINITY, f64::min);
        assert!(best_desc < best_binary, "DESC {best_desc} vs binary {best_binary}");
    }
}
