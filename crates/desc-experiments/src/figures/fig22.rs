//! Fig. 22: the cache design space (energy vs execution time) opened
//! up by DESC, sweeping banks and bus widths for conventional binary
//! and zero-skipped DESC, normalised to the 8-bank 64-bit binary
//! baseline. Paper: DESC points push the energy frontier left without
//! significantly increasing access latency.

use crate::common::{run_custom, Scale};
use crate::table::{r2, Table};
use desc_core::schemes::{BinaryScheme, DescScheme, SkipMode};
use desc_core::{ChunkSize, TransferScheme};
use desc_sim::SimConfig;

/// Sweep points: (banks, data wires).
pub const POINTS: [(usize, usize); 9] = [
    (2, 64),
    (8, 32),
    (8, 64),
    (8, 128),
    (8, 256),
    (32, 64),
    (32, 128),
    (2, 128),
    (32, 256),
];

fn measure(scale: &Scale, banks: usize, wires: usize, desc: bool) -> (f64, f64) {
    let mut cfg = SimConfig::paper_multithreaded();
    cfg.l2.banks = banks;
    let mut energy = 0.0;
    let mut time = 0.0;
    for p in scale.suite() {
        let scheme: Box<dyn TransferScheme> = if desc {
            Box::new(DescScheme::new(wires, ChunkSize::PAPER_DEFAULT, SkipMode::Zero))
        } else {
            Box::new(BinaryScheme::new(wires))
        };
        let overhead = if desc { 1.03 } else { 1.0 };
        let run = run_custom(scheme, cfg, &p, scale, overhead);
        energy += run.l2_energy();
        time += run.result.exec_time_s;
    }
    (energy, time)
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let (base_e, base_t) = measure(scale, 8, 64, false);
    let mut t = Table::new(
        "Fig. 22: design space — L2 energy vs execution time (normalised to 8 banks, 64-bit binary)",
        &["Scheme", "Banks", "Wires", "L2 energy", "Exec time"],
    );
    for desc in [false, true] {
        for (banks, wires) in POINTS {
            let (e, x) = measure(scale, banks, wires, desc);
            t.row_owned(vec![
                if desc { "Zero-skip DESC" } else { "Binary" }.into(),
                banks.to_string(),
                wires.to_string(),
                r2(e / base_e),
                r2(x / base_t),
            ]);
        }
    }
    t.note("paper: DESC opens lower-energy design points at similar execution time");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_frontier_dominates_on_energy() {
        let scale = Scale { accesses: 1_200, apps: 2, seed: 1, jobs: 1 };
        let t = run(&scale);
        assert_eq!(t.row_count(), 2 * POINTS.len());
        // Best DESC energy beats best binary energy.
        let energy = |row: usize| -> f64 {
            t.cell(row, 3).expect("energy").parse().expect("number")
        };
        let best_binary =
            (0..POINTS.len()).map(energy).fold(f64::INFINITY, f64::min);
        let best_desc = (POINTS.len()..2 * POINTS.len())
            .map(energy)
            .fold(f64::INFINITY, f64::min);
        assert!(best_desc < best_binary, "DESC {best_desc} vs binary {best_binary}");
    }
}
