//! Fig. 5: the signaling trace for two three-bit chunks (values 2 and
//! 1) on a single data wire, produced by the cycle-stepped protocol.

use crate::table::Table;
use desc_core::protocol::{Link, LinkConfig, TraceCapture};
use desc_core::schemes::SkipMode;
use desc_core::{Block, ChunkSize};

/// Runs the experiment (fixed example).
#[must_use]
pub fn run() -> Table {
    let cfg = LinkConfig {
        wires: 1,
        chunk_size: ChunkSize::new(3).expect("valid"),
        mode: SkipMode::None,
        wire_delay: 0,
        trace: TraceCapture::Packed,
    };
    let mut link = Link::new(cfg);
    // Chunks 2, 1 (and a padded 0) LSB-first in one byte.
    let block = Block::from_bytes(&[0b0000_1010]);
    let out = link.transfer(&block);
    let mut t = Table::new(
        "Fig. 5: transmitting chunks (2, 1) over one wire — waveform",
        &["Signal trace"],
    );
    let trace = out.trace.as_ref().expect("fig. 5 link captures its waveform");
    for line in trace.to_string().lines() {
        t.row(&[line]);
    }
    t.row_owned(vec![format!(
        "decoded ok: {}, {} transitions, {} cycles",
        out.decoded == block,
        out.cost.total_transitions(),
        out.cost.cycles
    )]);
    t.note("paper: value 2 takes 3 cycles, value 1 takes 2 cycles");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_decodes_and_matches_timing() {
        let t = run();
        let text = t.render();
        assert!(text.contains("decoded ok: true"));
        assert!(text.contains("reset/skip"));
    }
}
