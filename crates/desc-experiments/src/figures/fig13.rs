//! Fig. 13: fraction of chunks that match the previously transmitted
//! chunk on their wire (paper geomean ≈ 0.39).

use crate::common::{run_matrix, Scale};
use crate::table::{geomean, r3, Table};
use desc_workloads::ChunkStats;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let blocks = (scale.accesses / 4).max(200);
    let mut t = Table::new(
        "Fig. 13: fraction of chunks matching the previous chunk on their wire",
        &["App", "Repeat fraction"],
    );
    let suite = scale.suite();
    let per_app = run_matrix(&[()], &suite, scale, |&(), p| {
        let stats = ChunkStats::measure_stream(&mut p.value_stream(scale.seed), blocks);
        stats.repeat_fraction().max(1e-6)
    });
    let mut fractions = Vec::new();
    for (p, row) in suite.iter().zip(&per_app) {
        fractions.push(row[0]);
        t.row_owned(vec![p.name.into(), r3(row[0])]);
    }
    t.row_owned(vec!["Geomean".into(), r3(geomean(&fractions))]);
    t.note("paper geomean ≈ 0.39");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_is_in_band() {
        let t = run(&Scale { accesses: 2_000, apps: 8, seed: 1, jobs: 1, shards: 1 });
        let last = t.row_count() - 1;
        let g: f64 = t.cell(last, 1).expect("geomean").parse().expect("number");
        assert!((0.25..=0.55).contains(&g), "repeat geomean {g}");
    }
}
