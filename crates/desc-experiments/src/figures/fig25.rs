//! Fig. 25: sensitivity of zero-skipped DESC to the number of L2
//! banks (1–64), normalised to the 8-bank binary baseline. Paper: 1→2
//! banks removes most bank conflicts; ≈8 banks minimises both energy
//! and time; beyond that per-bank overheads grow.

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{r2, Table};
use desc_core::schemes::SchemeKind;
use desc_sim::SimConfig;

/// The bank counts swept.
pub const BANKS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let suite = scale.suite();
    // The 8-bank binary baseline, then DESC at every bank count.
    let mut configs: Vec<(usize, SchemeKind)> = vec![(8, SchemeKind::ConventionalBinary)];
    configs.extend(BANKS.iter().map(|&b| (b, SchemeKind::ZeroSkippedDesc)));
    let per_app = run_matrix(&configs, &suite, scale, |&(banks, kind), p| {
        let mut cfg = SimConfig::paper_multithreaded();
        cfg.l2.banks = banks;
        let overhead = if kind.is_desc() { 1.03 } else { 1.0 };
        let run =
            run_custom_keyed(&format!("paper:{kind:?}"), kind.build_paper_config(), cfg, p, scale, overhead);
        (run.l2_energy(), run.result.exec_time_s)
    });
    let sums: Vec<(f64, f64)> = (0..configs.len())
        .map(|c| {
            per_app
                .iter()
                .fold((0.0, 0.0), |acc, row| (acc.0 + row[c].0, acc.1 + row[c].1))
        })
        .collect();
    let (base_e, base_x) = sums[0];
    let mut t = Table::new(
        "Fig. 25: zero-skipped DESC sensitivity to bank count (normalised to 8-bank binary)",
        &["Banks", "L2 energy", "Exec time"],
    );
    for (banks, (e, x)) in BANKS.iter().zip(&sums[1..]) {
        t.row_owned(vec![banks.to_string(), r2(e / base_e), r2(x / base_x)]);
    }
    t.note("paper: time drops sharply 1→2 banks; energy-delay optimum near 8 banks");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bank_is_slow_and_many_banks_cost_energy() {
        let t = run(&Scale { accesses: 2_000, apps: 2, seed: 1, jobs: 1, shards: 1 });
        let time = |row: usize| -> f64 { t.cell(row, 2).expect("t").parse().expect("num") };
        let energy = |row: usize| -> f64 { t.cell(row, 1).expect("e").parse().expect("num") };
        // Row order follows BANKS.
        assert!(time(0) > time(3), "1 bank {} !> 8 banks {}", time(0), time(3));
        assert!(energy(6) > energy(3), "64 banks {} !> 8 banks {}", energy(6), energy(3));
    }
}
