//! Fig. 21: average L2 hit delay for conventional binary and
//! zero-skipped DESC on 64- and 128-wire data buses. Paper: DESC adds
//! 31.2 cycles at 64 wires and 8.45 cycles at 128 wires.

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{r2, Table};
use desc_core::schemes::{BinaryScheme, DescScheme, SkipMode};
use desc_core::{ChunkSize, TransferScheme};
use desc_sim::SimConfig;

fn scheme_for(wires: usize, desc: bool) -> Box<dyn TransferScheme> {
    if desc {
        Box::new(DescScheme::new(wires, ChunkSize::PAPER_DEFAULT, SkipMode::Zero))
    } else {
        Box::new(BinaryScheme::new(wires))
    }
}

fn scheme_id(wires: usize, desc: bool) -> String {
    if desc {
        format!("desc:w{wires}:c{}:skip=Zero", ChunkSize::PAPER_DEFAULT.bits())
    } else {
        format!("binary:w{wires}")
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 21: average L2 hit delay (cycles)",
        &["App", "64-bit binary", "128-bit binary", "64-bit DESC", "128-bit DESC"],
    );
    let cfg = SimConfig::paper_multithreaded();
    let mut sums = [0.0f64; 4];
    let suite = scale.suite();
    let configs = [(64, false), (128, false), (64, true), (128, true)];
    let matrix = run_matrix(&configs, &suite, scale, |&(wires, desc), p| {
        run_custom_keyed(&scheme_id(wires, desc), scheme_for(wires, desc), cfg, p, scale, 1.0)
    });
    for (p, row) in suite.iter().zip(&matrix) {
        let mut cells = vec![p.name.to_owned()];
        for (i, run) in row.iter().enumerate() {
            sums[i] += run.result.avg_hit_latency_cycles;
            cells.push(r2(run.result.avg_hit_latency_cycles));
        }
        t.row_owned(cells);
    }
    let n = suite.len() as f64;
    t.row_owned(vec![
        "Average".into(),
        r2(sums[0] / n),
        r2(sums[1] / n),
        r2(sums[2] / n),
        r2(sums[3] / n),
    ]);
    t.note("paper: DESC adds 31.2 cycles (64-wire) / 8.45 cycles (128-wire) over same-width binary");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_gaps_follow_the_paper_shape() {
        let t = run(&Scale { accesses: 2_000, apps: 3, seed: 1, jobs: 2, shards: 1 });
        let last = t.row_count() - 1;
        let get = |c: usize| -> f64 { t.cell(last, c).expect("avg").parse().expect("number") };
        let (b64, b128, d64, d128) = (get(1), get(2), get(3), get(4));
        // Wider buses are faster for both schemes.
        assert!(b128 < b64);
        assert!(d128 < d64);
        // DESC is slower than binary at the same width, and the gap is
        // far larger at 64 wires (two serialized rounds).
        assert!(d64 > b64 && d128 > b128);
        assert!(
            (d64 - b64) > 1.5 * (d128 - b128),
            "64-wire gap {} vs 128-wire gap {}",
            d64 - b64,
            d128 - b128
        );
        // 128-wire DESC gap lands in the paper's ballpark (8.45 ± a few).
        assert!((3.0..=16.0).contains(&(d128 - b128)), "gap {}", d128 - b128);
    }
}
