//! Fig. 19: overall processor energy with zero-skipped DESC at the
//! L2, normalised to binary encoding, split into L2 and other
//! hardware units. Paper: 7% total processor savings.

use crate::common::{run_app, run_matrix, Scale};
use crate::table::{geomean, r3, Table};
use desc_core::schemes::SchemeKind;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 19: processor energy with zero-skipped DESC (normalised to binary)",
        &["App", "L2 share", "Other units share", "Total"],
    );
    let kinds = [SchemeKind::ConventionalBinary, SchemeKind::ZeroSkippedDesc];
    let suite = scale.suite();
    let per_app = run_matrix(&kinds, &suite, scale, |&kind, p| run_app(kind, p, scale));
    let mut totals = Vec::new();
    for (p, row) in suite.iter().zip(&per_app) {
        let (base, desc) = (&row[0], &row[1]);
        let denom = base.processor.processor_total_j();
        let l2 = desc.l2.total() / denom;
        let other = desc.processor.other_units_j() / denom;
        totals.push(l2 + other);
        t.row_owned(vec![p.name.into(), r3(l2), r3(other), r3(l2 + other)]);
    }
    t.row_owned(vec![
        "Geomean".into(),
        String::new(),
        String::new(),
        r3(geomean(&totals)),
    ]);
    t.note("paper: ~0.93 total (7% processor savings)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_savings_in_paper_band() {
        let t = run(&Scale { accesses: 2_500, apps: 3, seed: 1, jobs: 1, shards: 1 });
        let last = t.row_count() - 1;
        let total: f64 = t.cell(last, 3).expect("geomean").parse().expect("number");
        assert!((0.85..=0.99).contains(&total), "normalised processor energy {total}");
    }
}
