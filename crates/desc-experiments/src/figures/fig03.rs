//! Fig. 3: the illustrative one-byte comparison — parallel, serial,
//! and DESC transmission of 0b01010011 from all-zero wires.

use crate::table::Table;
use desc_core::schemes::{BinaryScheme, DescScheme, SerialScheme, SkipMode};
use desc_core::{Block, ChunkSize, TransferScheme};

/// Runs the experiment (no scale: it is a fixed example).
#[must_use]
pub fn run() -> Table {
    let byte = Block::from_bytes(&[0b0101_0011]);
    let mut t = Table::new(
        "Fig. 3: transmitting 01010011 — bit-flips and wires per technique",
        &["Technique", "Wires", "Bit-flips", "Cycles"],
    );
    let mut parallel = BinaryScheme::new(8);
    let c = parallel.transfer(&byte);
    t.row_owned(vec![
        "Parallel".into(),
        "8".into(),
        c.total_transitions().to_string(),
        c.cycles.to_string(),
    ]);
    let mut serial = SerialScheme::new();
    let c = serial.transfer(&byte);
    t.row_owned(vec![
        "Serial".into(),
        "1".into(),
        c.total_transitions().to_string(),
        c.cycles.to_string(),
    ]);
    let mut desc = DescScheme::new(2, ChunkSize::new(4).expect("valid"), SkipMode::None)
        .without_sync_strobe();
    let c = desc.transfer(&byte);
    t.row_owned(vec![
        "DESC (2 data + reset)".into(),
        "3".into(),
        c.total_transitions().to_string(),
        c.cycles.to_string(),
    ]);
    t.note("paper: parallel 4 flips, serial 5 flips, DESC 3 flips");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_counts() {
        let t = run();
        assert_eq!(t.cell(0, 2), Some("4"));
        assert_eq!(t.cell(1, 2), Some("5"));
        assert_eq!(t.cell(2, 2), Some("3"));
    }
}
