//! Fig. 28: execution time under SECDED ECC for binary and DESC in
//! the paper's W-S configurations (W data wires, S-bit code
//! segments), normalised to 64-bit binary with 64-bit-segment ECC.
//! Paper: zero-skipped DESC stays within ≈1% of binary.

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{geomean, r3, Table};
use desc_core::schemes::{BinaryScheme, DescScheme, SkipMode};
use desc_core::{ChunkSize, TransferScheme};
use desc_ecc::scheme::SecdedScheme;
use desc_ecc::SecdedCode;
use desc_sim::SimConfig;

/// The four W-S configurations of Figs. 28/29, in paper order.
pub const CONFIGS: [&str; 4] = ["64-64 Binary", "128-128 Binary", "128-64 DESC", "128-128 DESC"];

/// Builds the transfer scheme for one W-S configuration.
///
/// # Panics
///
/// Panics if `name` is not in [`CONFIGS`].
#[must_use]
pub fn build_config(name: &str) -> Box<dyn TransferScheme> {
    let c4 = ChunkSize::PAPER_DEFAULT;
    match name {
        // 512 data + 64 parity bits over 64 + 8 wires.
        "64-64 Binary" => Box::new(SecdedScheme::new(BinaryScheme::new(72), SecdedCode::c72_64(), 8)),
        // 512 + 36 bits over 128 + 9 wires.
        "128-128 Binary" => {
            Box::new(SecdedScheme::new(BinaryScheme::new(137), SecdedCode::c137_128(), 4))
        }
        // 144 chunks (128 data + 16 parity) over 144 strobe wires.
        "128-64 DESC" => Box::new(SecdedScheme::new(
            DescScheme::new(144, c4, SkipMode::Zero),
            SecdedCode::c72_64(),
            8,
        )),
        // 138 chunks (128 data + 9 parity + padding) over 138 wires.
        "128-128 DESC" => Box::new(SecdedScheme::new(
            DescScheme::new(138, c4, SkipMode::Zero),
            SecdedCode::c137_128(),
            4,
        )),
        other => panic!("unknown ECC configuration {other:?}"),
    }
}

/// Per-app measurements for the four configurations; shared with
/// Fig. 29.
#[must_use]
pub fn measure(scale: &Scale) -> Vec<(String, [f64; 4], [f64; 4])> {
    let cfg = SimConfig::paper_multithreaded();
    let suite = scale.suite();
    let per_app = run_matrix(&CONFIGS, &suite, scale, |name, p| {
        let overhead = if name.contains("DESC") { 1.03 } else { 1.0 };
        let run = run_custom_keyed(&format!("ecc:{name}"), build_config(name), cfg, p, scale, overhead);
        (run.result.exec_time_s, run.l2_energy())
    });
    suite
        .iter()
        .zip(&per_app)
        .map(|(p, row)| {
            let mut times = [0.0; 4];
            let mut energies = [0.0; 4];
            for (i, &(x, e)) in row.iter().enumerate() {
                times[i] = x;
                energies[i] = e;
            }
            (p.name.to_owned(), times, energies)
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 28: execution time under SECDED ECC (normalised to 64-64 binary)",
        &["App", CONFIGS[0], CONFIGS[1], CONFIGS[2], CONFIGS[3]],
    );
    let rows = measure(scale);
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (name, times, _) in &rows {
        let mut cells = vec![name.clone()];
        for (i, &x) in times.iter().enumerate() {
            let r = x / times[0];
            per_cfg[i].push(r);
            cells.push(r3(r));
        }
        t.row_owned(cells);
    }
    let mut geo = vec!["Geomean".to_owned()];
    for ratios in &per_cfg {
        geo.push(r3(geomean(ratios)));
    }
    t.row_owned(geo);
    t.note("paper: zero-skipped DESC within ~1% of binary under ECC");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_under_ecc_stays_close_to_binary() {
        let t = run(&Scale { accesses: 1_500, apps: 2, seed: 1, jobs: 1, shards: 1 });
        let last = t.row_count() - 1;
        for col in 1..=4 {
            let g: f64 = t.cell(last, col).expect("geomean").parse().expect("num");
            assert!((0.9..=1.1).contains(&g), "config {col} ratio {g}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown ECC configuration")]
    fn bad_config_rejected() {
        let _ = build_config("32-32 Ternary");
    }
}
