//! Fig. 12: distribution of four-bit chunk values transferred between
//! the L2 controller and the data arrays (paper: ≈31% zeros, roughly
//! uniform non-zero tail).

use crate::common::{run_matrix, Scale};
use crate::table::{r3, Table};
use desc_workloads::ChunkStats;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let blocks = (scale.accesses / 4).max(200);
    let suite = scale.suite();
    let per_app = run_matrix(&[()], &suite, scale, |&(), p| {
        ChunkStats::measure_stream(&mut p.value_stream(scale.seed), blocks).frequencies()
    });
    let mut totals = [0.0f64; 16];
    for row in &per_app {
        for (i, f) in row[0].iter().enumerate() {
            totals[i] += f;
        }
    }
    let mut t = Table::new(
        "Fig. 12: average frequency of transferred 4-bit chunk values",
        &["Chunk value", "Frequency"],
    );
    for (i, sum) in totals.iter().enumerate() {
        t.row_owned(vec![i.to_string(), r3(sum / suite.len() as f64)]);
    }
    t.note("paper: value 0 ≈ 0.31; non-zero values roughly uniform");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bin_dominates() {
        let t = run(&Scale { accesses: 2_000, apps: 6, seed: 1, jobs: 1, shards: 1 });
        assert_eq!(t.row_count(), 16);
        let zero: f64 = t.cell(0, 1).expect("zero bin").parse().expect("number");
        assert!((0.2..=0.45).contains(&zero), "zero frequency {zero}");
        for v in 1..16 {
            let f: f64 = t.cell(v, 1).expect("bin").parse().expect("number");
            assert!(f < zero, "value {v} frequency {f} exceeds the zero bin");
        }
    }
}
