//! Fig. 29: L2 energy under SECDED ECC for the W-S configurations,
//! normalised to 64-bit binary with 64-bit-segment ECC. Paper:
//! zero-skipped DESC improves cache energy 1.82× with (72,64) and
//! 1.92× with (137,128).

use crate::common::Scale;
use crate::figures::fig28::{measure, CONFIGS};
use crate::table::{geomean, r2, Table};

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 29: L2 energy under SECDED ECC (normalised to 64-64 binary)",
        &["App", CONFIGS[0], CONFIGS[1], CONFIGS[2], CONFIGS[3]],
    );
    let rows = measure(scale);
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (name, _, energies) in &rows {
        let mut cells = vec![name.clone()];
        for (i, &e) in energies.iter().enumerate() {
            let r = e / energies[0];
            per_cfg[i].push(r);
            cells.push(r2(r));
        }
        t.row_owned(cells);
    }
    let mut geo = vec!["Geomean".to_owned()];
    for ratios in &per_cfg {
        geo.push(r2(geomean(ratios)));
    }
    t.row_owned(geo);
    t.note("paper: DESC 1.82x with (72,64) and 1.92x with (137,128)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_saves_energy_under_ecc() {
        let t = run(&Scale { accesses: 1_500, apps: 2, seed: 1, jobs: 1, shards: 1 });
        let last = t.row_count() - 1;
        let desc64: f64 = t.cell(last, 3).expect("128-64").parse().expect("num");
        let desc128: f64 = t.cell(last, 4).expect("128-128").parse().expect("num");
        assert!(desc64 < 0.85, "128-64 DESC energy {desc64}");
        assert!(desc128 < 0.85, "128-128 DESC energy {desc128}");
    }
}
