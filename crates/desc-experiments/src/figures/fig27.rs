//! Fig. 27: impact of L2 capacity (512 KB – 64 MB) on cache energy
//! for binary and zero-skipped DESC, normalised to the 8 MB binary
//! cache. Paper: DESC improves energy 1.87× (512 KB) to 1.75×
//! (64 MB).

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{r2, Table};
use desc_core::schemes::SchemeKind;
use desc_sim::SimConfig;

/// Capacities swept, in bytes.
pub const CAPACITIES: [usize; 8] = [
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
    8 << 20,
    16 << 20,
    32 << 20,
    64 << 20,
];

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let suite = scale.suite();
    let configs: Vec<(usize, SchemeKind)> = CAPACITIES
        .into_iter()
        .flat_map(|cap| {
            [SchemeKind::ConventionalBinary, SchemeKind::ZeroSkippedDesc]
                .into_iter()
                .map(move |kind| (cap, kind))
        })
        .collect();
    let per_app = run_matrix(&configs, &suite, scale, |&(capacity, kind), p| {
        let mut cfg = SimConfig::paper_multithreaded();
        cfg.l2.capacity_bytes = capacity;
        let overhead = if kind.is_desc() { 1.03 } else { 1.0 };
        run_custom_keyed(&format!("paper:{kind:?}"), kind.build_paper_config(), cfg, p, scale, overhead).l2_energy()
    });
    let sums: Vec<f64> =
        (0..configs.len()).map(|c| per_app.iter().map(|row| row[c]).sum()).collect();
    let base_index = configs
        .iter()
        .position(|&c| c == (8 << 20, SchemeKind::ConventionalBinary))
        .expect("the 8MB binary baseline is part of the sweep");
    let base = sums[base_index];
    let mut t = Table::new(
        "Fig. 27: L2 energy vs capacity (normalised to 8MB binary)",
        &["Capacity", "Binary", "Zero-skip DESC", "DESC improvement"],
    );
    for (i, cap) in CAPACITIES.into_iter().enumerate() {
        let bin = sums[2 * i] / base;
        let desc = sums[2 * i + 1] / base;
        let label = if cap >= 1 << 20 {
            format!("{}MB", cap >> 20)
        } else {
            format!("{}KB", cap >> 10)
        };
        t.row_owned(vec![label, r2(bin), r2(desc), format!("{:.2}x", bin / desc)]);
    }
    t.note("paper: improvement 1.87x at 512KB tapering to 1.75x at 64MB");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_improves_at_every_capacity() {
        let t = run(&Scale { accesses: 1_200, apps: 2, seed: 1, jobs: 1, shards: 1 });
        assert_eq!(t.row_count(), CAPACITIES.len());
        for row in 0..t.row_count() {
            let bin: f64 = t.cell(row, 1).expect("bin").parse().expect("num");
            let desc: f64 = t.cell(row, 2).expect("desc").parse().expect("num");
            assert!(desc < bin, "row {row}: DESC {desc} !< binary {bin}");
        }
        // Energy grows with capacity for both schemes.
        let first_bin: f64 = t.cell(0, 1).expect("c").parse().expect("n");
        let last_bin: f64 = t.cell(t.row_count() - 1, 1).expect("c").parse().expect("n");
        assert!(last_bin > first_bin);
    }
}
