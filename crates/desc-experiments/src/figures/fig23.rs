//! Fig. 23: execution time of zero-skipped DESC on an 8 MB S-NUCA-1
//! cache, normalised to binary S-NUCA-1 (paper: ≈1% penalty).

use crate::common::{run_matrix, run_snuca, Scale};
use crate::table::{geomean, r3, Table};
use desc_core::schemes::SchemeKind;
use desc_sim::SimConfig;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 23: S-NUCA-1 execution time with zero-skipped DESC (normalised)",
        &["App", "Normalised execution time"],
    );
    let mut cfg = SimConfig::paper_multithreaded();
    cfg.shards = scale.shards.max(1);
    let suite = scale.suite();
    let per_app = run_matrix(&[()], &suite, scale, |&(), p| {
        let bin = run_snuca(
            "paper:ConventionalBinary",
            SchemeKind::ConventionalBinary.build_paper_config(),
            cfg,
            p,
            scale,
        );
        let desc = run_snuca(
            "paper:ZeroSkippedDesc",
            SchemeKind::ZeroSkippedDesc.build_paper_config(),
            cfg,
            p,
            scale,
        );
        desc.exec_time_s / bin.exec_time_s
    });
    let mut ratios = Vec::new();
    for (p, row) in suite.iter().zip(&per_app) {
        ratios.push(row[0]);
        t.row_owned(vec![p.name.into(), r3(row[0])]);
    }
    t.row_owned(vec!["Geomean".into(), r3(geomean(&ratios))]);
    t.note("paper geomean ≈ 1.01");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_is_small() {
        let t = run(&Scale { accesses: 2_000, apps: 3, seed: 1, jobs: 1, shards: 1 });
        let last = t.row_count() - 1;
        let g: f64 = t.cell(last, 1).expect("geomean").parse().expect("number");
        assert!((0.98..=1.06).contains(&g), "S-NUCA execution ratio {g}");
    }
}
