//! Fig. 30: execution time of SPEC CPU2006 applications on the
//! out-of-order machine with zero-skipped DESC, normalised to binary
//! (paper geomean ≈ 1.06 — latency-sensitive cores pay for DESC's
//! longer transfers).

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{geomean, r3, Table};
use desc_core::schemes::SchemeKind;
use desc_sim::SimConfig;
use desc_workloads::spec_suite;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 30: SPEC 2006 execution time with zero-skipped DESC (OoO core, normalised)",
        &["App", "Normalised execution time"],
    );
    let cfg = SimConfig::paper_out_of_order();
    let apps: Vec<_> = spec_suite().into_iter().take(scale.apps.max(2)).collect();
    let kinds = [SchemeKind::ConventionalBinary, SchemeKind::ZeroSkippedDesc];
    let per_app = run_matrix(&kinds, &apps, scale, |&kind, p| {
        let overhead = if kind.is_desc() { 1.03 } else { 1.0 };
        run_custom_keyed(&format!("paper:{kind:?}"), kind.build_paper_config(), cfg, p, scale, overhead).result.exec_time_s
    });
    let mut ratios = Vec::new();
    for (p, row) in apps.iter().zip(&per_app) {
        let r = row[1] / row[0];
        ratios.push(r);
        t.row_owned(vec![p.name.into(), r3(r)]);
    }
    t.row_owned(vec!["Geomean".into(), r3(geomean(&ratios))]);
    t.note("paper geomean ≈ 1.06");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ooo_slowdown_is_visible_but_bounded() {
        let t = run(&Scale { accesses: 2_500, apps: 4, seed: 1, jobs: 1, shards: 1 });
        let last = t.row_count() - 1;
        let g: f64 = t.cell(last, 1).expect("geomean").parse().expect("num");
        assert!((1.0..=1.15).contains(&g), "OoO slowdown {g}, paper ≈1.06");
    }
}
