//! Ablations of DESC's design choices — not paper figures, but
//! experiments the paper's §2/§3 discussion implies:
//!
//! * `abl_sync` — the synchronization strobe's cost: DESC on an
//!   asynchronous cache (strobe per §3.1) vs a synchronous cache
//!   sharing the clock network (no strobe).
//! * `abl_adaptive` — adaptive frequent-value skipping vs zero and
//!   last-value skipping (the paper's §3.3: gains "not appreciable").
//! * `abl_chunk_order` — sensitivity to the skip-value count-list
//!   optimisation: with and without excluding the skip value from the
//!   count list (Fig. 10's 6→5-cycle window shrink).
//! * `abl_wires` — DESC on low-swing interconnect (the paper's §2
//!   argues activity reduction composes with low-swing wires).

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{geomean, r2, r3, Table};
use desc_core::schemes::{AdaptiveDescScheme, DescScheme, SchemeKind, SkipMode};
use desc_core::{ChunkSize, TransferScheme};
use desc_sim::SimConfig;

/// Synchronization-strobe ablation.
#[must_use]
pub fn abl_sync(scale: &Scale) -> Table {
    let suite = scale.suite();
    let cfg = SimConfig::paper_multithreaded();
    let configs: [(&str, Option<bool>); 3] = [
        ("Binary", None),
        ("Zero-skip DESC + sync strobe (async cache)", Some(true)),
        ("Zero-skip DESC, shared clock (sync cache)", Some(false)),
    ];
    let per_app = run_matrix(&configs, &suite, scale, |&(_, build), p| {
        let (scheme, id): (Box<dyn TransferScheme>, &str) = match build {
            None => (SchemeKind::ConventionalBinary.build_paper_config(), "paper:ConventionalBinary"),
            Some(true) => (
                Box::new(DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero)),
                "desc:w128:c4:skip=Zero",
            ),
            Some(false) => (
                Box::new(
                    DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero)
                        .without_sync_strobe(),
                ),
                "desc:w128:c4:skip=Zero:nostrobe",
            ),
        };
        let overhead = if build.is_some() { 1.03 } else { 1.0 };
        run_custom_keyed(id, scheme, cfg, p, scale, overhead).l2_energy()
    });
    let totals: Vec<f64> =
        (0..configs.len()).map(|c| per_app.iter().map(|row| row[c]).sum()).collect();
    let base = totals[0];
    let mut t = Table::new(
        "Ablation: synchronization strobe cost (L2 energy vs binary)",
        &["Configuration", "Normalised L2 energy"],
    );
    for ((name, _), total) in configs.iter().zip(&totals) {
        t.row_owned(vec![(*name).into(), r3(total / base)]);
    }
    t.note("the strobe toggles once per window cycle; synchronous caches avoid it");
    t
}

/// Adaptive frequent-value skipping ablation (paper §3.3).
#[must_use]
pub fn abl_adaptive(scale: &Scale) -> Table {
    let suite = scale.suite();
    let cfg = SimConfig::paper_multithreaded();
    let mut t = Table::new(
        "Ablation: skip-value policies (L2 energy vs binary)",
        &["Policy", "Normalised L2 energy"],
    );
    // Configuration 0 is the per-app binary baseline; 1–3 the skip
    // policies, built by index so the sweep closure stays `Sync`.
    const POLICIES: [&str; 3] =
        ["Zero skipping", "Last-value skipping", "Adaptive frequent-value skipping"];
    let configs: [usize; 4] = [0, 1, 2, 3];
    let per_app = run_matrix(&configs, &suite, scale, |&i, p| {
        let (scheme, id, overhead): (Box<dyn TransferScheme>, &str, f64) = match i {
            0 => (
                SchemeKind::ConventionalBinary.build_paper_config(),
                "paper:ConventionalBinary",
                1.0,
            ),
            1 => (
                Box::new(DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero)),
                "desc:w128:c4:skip=Zero",
                1.03,
            ),
            2 => (
                Box::new(DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::LastValue)),
                "desc:w128:c4:skip=LastValue",
                1.03,
            ),
            _ => (
                Box::new(AdaptiveDescScheme::new(128, ChunkSize::PAPER_DEFAULT)),
                "adaptive-desc:w128:c4",
                1.03,
            ),
        };
        run_custom_keyed(id, scheme, cfg, p, scale, overhead).l2_energy()
    });
    for (i, name) in POLICIES.iter().enumerate() {
        let ratios: Vec<f64> = per_app.iter().map(|row| row[i + 1] / row[0]).collect();
        t.row_owned(vec![(*name).into(), r3(geomean(&ratios))]);
    }
    t.note("paper §3.3: adaptive detection of frequent non-zero chunks is not appreciably better");
    t
}

/// Count-list optimisation ablation: how much of the window shrink
/// comes from excluding the skip value from the count list. We model
/// the unoptimised variant by charging basic-DESC positions (v+1) on
/// an otherwise zero-skipped transfer — one extra cycle per window.
#[must_use]
pub fn abl_chunk_order(scale: &Scale) -> Table {
    let suite = scale.suite();
    let mut t = Table::new(
        "Ablation: count-list optimisation (mean window cycles per block)",
        &["Variant", "Mean transfer cycles", "Mean transitions"],
    );
    let per_app = run_matrix(&[()], &suite, scale, |&(), p| {
        let mut scheme =
            DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero).without_sync_strobe();
        let mut stream = p.value_stream(scale.seed);
        let mut cycles = 0.0;
        let mut trans = 0.0;
        let mut blocks = 0u64;
        for _ in 0..(scale.accesses / 4).max(100) {
            let c = scheme.transfer(&stream.next_block());
            cycles += c.cycles as f64;
            trans += c.total_transitions() as f64;
            blocks += 1;
        }
        (cycles, trans, blocks)
    });
    let mut optimised_cycles = 0.0;
    let mut optimised_trans = 0.0;
    let mut blocks = 0u64;
    for row in &per_app {
        optimised_cycles += row[0].0;
        optimised_trans += row[0].1;
        blocks += row[0].2;
    }
    let n = blocks as f64;
    t.row_owned(vec![
        "Skip value excluded (paper Fig. 10-b)".into(),
        r2(optimised_cycles / n),
        r2(optimised_trans / n),
    ]);
    // Unoptimised: every strobe position shifts by +1 (value v at
    // cycle v+1), so each non-empty window is one cycle longer.
    t.row_owned(vec![
        "Skip value kept in count list".into(),
        r2(optimised_cycles / n + 1.0),
        r2(optimised_trans / n),
    ]);
    t.note("excluding the skip value shortens every window by one cycle (6→5 in Fig. 10)");
    t
}

/// Low-swing interconnect ablation (paper §2: activity reduction
/// composes with low-swing signalling \[7, 2\]). Low-swing wires cut
/// per-transition energy several-fold for every scheme; DESC's
/// *relative* advantage persists.
#[must_use]
pub fn abl_wires(scale: &Scale) -> Table {
    use desc_cacti::Signaling;
    let suite = scale.suite();
    let kinds = [SchemeKind::ConventionalBinary, SchemeKind::ZeroSkippedDesc];
    let signalings = [Signaling::FullSwing, Signaling::low_swing_default()];
    let configs: Vec<(SchemeKind, Signaling)> = kinds
        .into_iter()
        .flat_map(|kind| signalings.into_iter().map(move |s| (kind, s)))
        .collect();
    let per_app = run_matrix(&configs, &suite, scale, |&(kind, signaling), p| {
        let mut cfg = SimConfig::paper_multithreaded();
        cfg.l2.signaling = signaling;
        let overhead = if kind.is_desc() { 1.03 } else { 1.0 };
        run_custom_keyed(&format!("paper:{kind:?}"), kind.build_paper_config(), cfg, p, scale, overhead).l2_energy()
    });
    let totals: Vec<f64> =
        (0..configs.len()).map(|c| per_app.iter().map(|row| row[c]).sum()).collect();
    let rows: Vec<(&str, f64, f64)> = kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| (kind.label(), totals[2 * i], totals[2 * i + 1]))
        .collect();
    let base = rows[0].1; // full-swing binary
    let mut t = Table::new(
        "Ablation: full-swing vs low-swing wires (L2 energy vs full-swing binary)",
        &["Scheme", "Full swing", "Low swing (0.2 V)"],
    );
    for (name, full, low) in rows {
        t.row_owned(vec![name.into(), r3(full / base), r3(low / base)]);
    }
    t.note("DESC's relative saving persists on low-swing interconnect (paper §2)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> Scale {
        Scale { accesses: 1_500, apps: 2, seed: 1, jobs: 1, shards: 1 }
    }

    #[test]
    fn sync_strobe_costs_measurable_energy() {
        let t = abl_sync(&scale());
        let with: f64 = t.cell(1, 1).expect("with").parse().expect("num");
        let without: f64 = t.cell(2, 1).expect("without").parse().expect("num");
        assert!(without < with, "removing the strobe must save energy");
        assert!(with - without < 0.2, "strobe cost implausibly large");
    }

    #[test]
    fn adaptive_is_not_appreciably_better() {
        let t = abl_adaptive(&scale());
        let zero: f64 = t.cell(0, 1).expect("zero").parse().expect("num");
        let adaptive: f64 = t.cell(2, 1).expect("adaptive").parse().expect("num");
        assert!((adaptive - zero).abs() < 0.08, "zero {zero} vs adaptive {adaptive}");
    }

    #[test]
    fn count_list_saves_one_cycle() {
        let t = abl_chunk_order(&scale());
        let opt: f64 = t.cell(0, 1).expect("opt").parse().expect("num");
        let unopt: f64 = t.cell(1, 1).expect("unopt").parse().expect("num");
        assert!((unopt - opt - 1.0).abs() < 1e-9);
    }

    #[test]
    fn low_swing_preserves_desc_advantage() {
        let t = abl_wires(&scale());
        let bin_low: f64 = t.cell(0, 2).expect("cell").parse().expect("num");
        let desc_low: f64 = t.cell(1, 2).expect("cell").parse().expect("num");
        assert!(desc_low < bin_low, "DESC must still win on low-swing wires");
    }
}
