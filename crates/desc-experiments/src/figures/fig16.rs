//! Fig. 16: L2 cache energy achieved by all eight data-transfer
//! techniques, per application, normalised to conventional binary.
//! The paper's headline: zero-skipped DESC reduces L2 energy 1.81×
//! (i.e. to ≈0.55) on average.

use crate::common::{run_app, run_matrix_labeled, Scale};
use crate::table::{geomean, r2, Table};
use desc_core::schemes::SchemeKind;

/// Index of the normalisation baseline within [`SchemeKind::ALL`].
fn binary_index() -> usize {
    SchemeKind::ALL
        .iter()
        .position(|&k| k == SchemeKind::ConventionalBinary)
        .expect("conventional binary is always part of the scheme list")
}

/// Per-app, per-scheme L2 energies for the whole sweep, computed
/// across `scale.jobs` workers (indexed `[app][scheme]`).
fn energy_matrix(scale: &Scale) -> Vec<Vec<f64>> {
    let suite = scale.suite();
    run_matrix_labeled(
        &SchemeKind::ALL,
        &suite,
        scale,
        |c, p| format!("{}/{}", SchemeKind::ALL[c].label(), suite[p].name),
        |&kind, p| run_app(kind, p, scale),
    )
    .into_iter()
    .map(|row| row.into_iter().map(|r| r.l2_energy()).collect())
    .collect()
}

/// Per-scheme geomean of normalised L2 energy — the numbers behind
/// the figure, exposed for tests and EXPERIMENTS.md.
#[must_use]
pub fn scheme_geomeans(scale: &Scale) -> Vec<(SchemeKind, f64)> {
    let energies = energy_matrix(scale);
    let base = binary_index();
    SchemeKind::ALL
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            let ratios: Vec<f64> = energies.iter().map(|row| row[i] / row[base]).collect();
            (kind, geomean(&ratios))
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let suite = scale.suite();
    let mut headers: Vec<&str> = vec!["App"];
    let labels: Vec<&str> = SchemeKind::ALL.iter().map(|k| k.label()).collect();
    headers.extend(labels.iter());
    let mut t = Table::new(
        "Fig. 16: L2 energy by transfer technique (normalised to binary)",
        &headers,
    );

    let energies = energy_matrix(scale);
    let base = binary_index();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); SchemeKind::ALL.len()];
    for (p, row) in suite.iter().zip(&energies) {
        let mut cells = vec![p.name.to_owned()];
        for (i, _) in SchemeKind::ALL.into_iter().enumerate() {
            let ratio = row[i] / row[base];
            per_scheme[i].push(ratio);
            cells.push(r2(ratio));
        }
        t.row_owned(cells);
    }
    let mut geo = vec!["Geomean".to_owned()];
    for ratios in &per_scheme {
        geo.push(r2(geomean(ratios)));
    }
    t.row_owned(geo);
    t.note("paper geomeans: DZC 0.90, BIC 0.81, BIC+ZS 0.80, basic DESC 0.89, zero-skip DESC 0.55 (1.81x), last-value DESC 0.56");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_orderings_hold() {
        let geo: std::collections::HashMap<_, _> =
            scheme_geomeans(&Scale { accesses: 2_500, apps: 3, seed: 1, jobs: 2, shards: 1 })
                .into_iter()
                .collect();
        let g = |k: SchemeKind| geo[&k];
        // Binary is the unit baseline.
        assert!((g(SchemeKind::ConventionalBinary) - 1.0).abs() < 1e-9);
        // Zero-skipped DESC is the overall winner (paper: 0.55).
        let zs = g(SchemeKind::ZeroSkippedDesc);
        assert!(zs < 0.75, "zero-skip DESC at {zs}");
        assert!(zs < g(SchemeKind::BusInvertCoding));
        assert!(zs < g(SchemeKind::DynamicZeroCompression));
        assert!(zs < g(SchemeKind::BasicDesc));
        // Last-value DESC is close behind but not better (paper: 0.56).
        assert!(g(SchemeKind::LastValueSkippedDesc) >= zs * 0.9);
        // Every technique saves energy vs binary.
        for kind in SchemeKind::ALL {
            assert!(g(kind) <= 1.05, "{kind} at {}", g(kind));
        }
    }
}
