//! Fig. 17: synthesis results for the DESC transmitter and receiver
//! (area, peak power, delay) for a 128-chunk interface.

use crate::table::Table;
use desc_core::synthesis::DescInterfaceModel;

/// Runs the experiment (pure model, no scale — there is no sweep to
/// fan across `--jobs` workers here).
#[must_use]
pub fn run() -> Table {
    let m = DescInterfaceModel::paper_default();
    let tx = m.transmitter();
    let rx = m.receiver();
    let both = m.interface();
    let mut t = Table::new(
        "Fig. 17: DESC transmitter/receiver synthesis estimates (128 chunks, 22nm)",
        &["Block", "Area (um2)", "Peak power (mW)", "Delay (ns)"],
    );
    for (name, e) in [("Transmitter", tx), ("Receiver", rx), ("TX+RX", both)] {
        t.row_owned(vec![
            name.into(),
            format!("{:.0}", e.area_um2),
            format!("{:.1}", e.peak_power_mw),
            format!("{:.3}", e.delay_ns),
        ]);
    }
    t.note("paper: interface 2120 um2, 46 mW peak, 625 ps added round-trip delay");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_near_paper() {
        let t = run();
        let area: f64 = t.cell(2, 1).expect("area").parse().expect("number");
        let power: f64 = t.cell(2, 2).expect("power").parse().expect("number");
        let delay: f64 = t.cell(2, 3).expect("delay").parse().expect("number");
        assert!((1600.0..=2700.0).contains(&area), "area {area}");
        assert!((35.0..=58.0).contains(&power), "power {power}");
        assert!((0.45..=0.8).contains(&delay), "delay {delay}");
    }
}
