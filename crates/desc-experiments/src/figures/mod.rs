//! One module per reproduced table/figure (see DESIGN.md §4 for the
//! experiment index).

pub mod ablations;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig05;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod fig25;
pub mod fig26;
pub mod fig27;
pub mod fig28;
pub mod fig29;
pub mod fig30;
pub mod tables;
