//! Fig. 14: design-space exploration of the L2 over ITRS device
//! classes (cells–periphery), normalised to the 8-bank, 64-bit,
//! LSTP-LSTP organisation. The paper's conclusion: LSTP-LSTP
//! minimises both L2 and total processor energy at a negligible
//! performance cost.

use crate::common::{run_custom_keyed, run_matrix, Scale};
use crate::table::{r2, Table};
use desc_cacti::DeviceType;
use desc_core::schemes::SchemeKind;
use desc_sim::SimConfig;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 14: L2 design space over device classes (8 banks, 64-bit bus, binary)",
        &["Cells-Periphery", "L2 energy", "Exec time", "Processor energy"],
    );
    let suite = scale.suite();
    let pairs: Vec<(DeviceType, DeviceType)> = DeviceType::ALL
        .into_iter()
        .flat_map(|cell| DeviceType::ALL.into_iter().map(move |peri| (cell, peri)))
        .collect();
    let per_app = run_matrix(&pairs, &suite, scale, |&(cell, periphery), p| {
        let mut cfg = SimConfig::paper_multithreaded();
        cfg.l2.cell_device = cell;
        cfg.l2.periphery_device = periphery;
        let run = run_custom_keyed(
            "paper:ConventionalBinary",
            SchemeKind::ConventionalBinary.build_paper_config(),
            cfg,
            p,
            scale,
            1.0,
        );
        (run.l2_energy(), run.result.exec_time_s, run.processor.processor_total_j())
    });
    // Sum each configuration's columns over the suite.
    let sums: Vec<(f64, f64, f64)> = (0..pairs.len())
        .map(|c| {
            per_app.iter().fold((0.0, 0.0, 0.0), |acc, row| {
                (acc.0 + row[c].0, acc.1 + row[c].1, acc.2 + row[c].2)
            })
        })
        .collect();

    let base_index = pairs
        .iter()
        .position(|&p| p == (DeviceType::Lstp, DeviceType::Lstp))
        .expect("LSTP-LSTP is part of the sweep");
    let (base_l2, base_time, base_proc) = sums[base_index];
    for ((cell, periphery), (l2, time, proc)) in pairs.iter().zip(&sums) {
        t.row_owned(vec![
            format!("{cell}-{periphery}"),
            r2(l2 / base_l2),
            r2(time / base_time),
            r2(proc / base_proc),
        ]);
    }
    t.note("paper: LSTP-LSTP minimises energy; HP is ≈2x faster at the array but <2% end-to-end");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstp_lstp_is_the_energy_minimum() {
        let t = run(&Scale { accesses: 1_500, apps: 2, seed: 1, jobs: 1, shards: 1 });
        assert_eq!(t.row_count(), 9);
        // Find rows; LSTP-LSTP is last (ALL order: HP, LOP, LSTP).
        let last = t.row_count() - 1;
        assert_eq!(t.cell(last, 0), Some("LSTP-LSTP"));
        let base_l2: f64 = t.cell(last, 1).expect("cell").parse().expect("number");
        assert!((base_l2 - 1.0).abs() < 1e-9);
        // HP-HP leaks orders of magnitude more.
        let hp_l2: f64 = t.cell(0, 1).expect("cell").parse().expect("number");
        assert!(hp_l2 > 3.0, "HP-HP relative energy {hp_l2}");
        // Execution-time cost of LSTP is small (paper: ≈2%).
        let hp_time: f64 = t.cell(0, 2).expect("cell").parse().expect("number");
        assert!(hp_time > 0.85 && hp_time <= 1.0, "HP-HP relative time {hp_time}");
    }
}
