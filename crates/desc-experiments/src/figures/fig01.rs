//! Fig. 1: L2 energy as a fraction of total processor energy
//! (baseline binary configuration; paper geomean ≈ 0.15).

use crate::common::{run_app, Scale};
use crate::table::{geomean, r3, Table};
use desc_core::schemes::SchemeKind;

/// Runs the experiment.
#[must_use]
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "Fig. 1: L2 energy as a fraction of total processor energy",
        &["App", "L2 fraction"],
    );
    let mut fractions = Vec::new();
    for p in scale.suite() {
        let run = run_app(SchemeKind::ConventionalBinary, &p, scale);
        let f = run.processor.l2_fraction();
        fractions.push(f);
        t.row_owned(vec![p.name.into(), r3(f)]);
    }
    t.row_owned(vec!["Geomean".into(), r3(geomean(&fractions))]);
    t.note("paper geomean ≈ 0.15");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_sane_and_near_paper() {
        let t = run(&Scale { accesses: 2_000, apps: 4, seed: 1, jobs: 1, shards: 1 });
        assert_eq!(t.row_count(), 5);
        let geo: f64 = t.cell(4, 1).expect("geomean row").parse().expect("number");
        assert!((0.05..=0.35).contains(&geo), "L2 fraction geomean {geo}");
    }
}
