//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro fig16 fig20        # specific experiments
//! repro all                # everything, full scale
//! repro --quick all        # everything, reduced scale
//! repro --report out.json  # machine-readable run report (implies all)
//! repro --trace out.json   # Chrome/Perfetto execution timeline
//! repro --list             # available experiment names
//! ```
//!
//! # Exit codes
//!
//! Errors are uniform: one line on stderr, and a distinct code per
//! error class so scripts can tell misuse from bad selection from I/O
//! failure.
//!
//! | code | meaning                                        |
//! |------|------------------------------------------------|
//! | 0    | success                                        |
//! | 2    | usage error (unknown/malformed flag, no names) |
//! | 3    | unknown experiment name                        |
//! | 4    | failed to write a requested output file        |
//! | 5    | `--cache-dir` unusable (cannot create/write)   |
//!
//! Damaged cache *contents* never exit nonzero: a version-mismatched
//! or corrupt entry is warned about, recomputed, and overwritten —
//! the cache can degrade a run's speed, never its figures.

use desc_experiments::progress::{self, Reporter};
use desc_experiments::{experiment_names, run_experiment, Scale};
use desc_telemetry::{Report, ReportMeta};
use std::process::ExitCode;
use std::time::Instant;

/// Malformed or unknown command line (see `--help`).
const EXIT_USAGE: u8 = 2;
/// An experiment name not in `--list`.
const EXIT_UNKNOWN_EXPERIMENT: u8 = 3;
/// A requested output file (`--report`, `--trace`) could not be
/// written.
const EXIT_WRITE_FAILED: u8 = 4;
/// `--cache-dir` could not be opened (created, probed writable, or
/// its manifest read).
const EXIT_CACHE: u8 = 5;

/// Prints a usage-class error and returns the usage exit code.
fn usage_error(msg: &str) -> ExitCode {
    eprintln!("repro: {msg}");
    eprintln!("repro: try `repro --help`");
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut scale_label = "full";
    let mut names: Vec<String> = Vec::new();
    let mut csv = false;
    let mut quiet = false;
    let mut force_progress = false;
    let mut jobs: Option<usize> = None;
    let mut report_path: Option<std::path::PathBuf> = None;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut no_cache = false;
    let mut resume = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => {
                scale = Scale::quick();
                scale_label = "quick";
            }
            "--csv" => csv = true,
            "--quiet" => quiet = true,
            "--progress" => force_progress = true,
            "--tiny" => {
                scale = Scale::tiny();
                scale_label = "tiny";
            }
            "--seed" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(seed)) => scale.seed = seed,
                _ => return usage_error("--seed needs an integer argument"),
            },
            "--accesses" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => scale.accesses = n,
                _ => return usage_error("--accesses needs a positive integer argument"),
            },
            "--apps" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if (1..=16).contains(&n) => scale.apps = n,
                _ => return usage_error("--apps needs an integer in 1..=16"),
            },
            "--jobs" | "-j" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = Some(n),
                _ => return usage_error("--jobs needs a positive integer argument"),
            },
            "--shards" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => scale.shards = n,
                _ => return usage_error("--shards needs a positive integer argument"),
            },
            "--report" => match iter.next() {
                Some(path) if !path.is_empty() => {
                    report_path = Some(std::path::PathBuf::from(path));
                }
                _ => return usage_error("--report needs an output path argument"),
            },
            "--cache-dir" => match iter.next() {
                Some(path) if !path.is_empty() => {
                    cache_dir = Some(std::path::PathBuf::from(path));
                }
                _ => return usage_error("--cache-dir needs a directory path argument"),
            },
            "--no-cache" => no_cache = true,
            "--resume" => resume = true,
            "--trace" => match iter.next() {
                Some(path) if !path.is_empty() => {
                    trace_path = Some(std::path::PathBuf::from(path));
                }
                _ => return usage_error("--trace needs an output path argument"),
            },
            "--list" | "-l" => {
                for n in experiment_names() {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick|--tiny] [--csv] [--quiet] [--seed N] [--accesses N] \
                     [--apps N] [--jobs N] [--shards N] [--report PATH] [--trace PATH] \
                     [--cache-dir DIR [--no-cache] [--resume]] <experiment...|all>\n\
                     --jobs N      run up to N sweep cells concurrently; results are\n\
                     bit-identical for any N (default: all hardware threads)\n\
                     --shards N    run up to N of each cell's bank partitions concurrently;\n\
                     bit-identical for any N (default: 1). jobs and shards\n\
                     are caps on one shared pool and never multiply threads\n\
                     --report PATH enable telemetry and write a machine-readable JSON run\n\
                     report (counters, histograms, pool utilization, spans);\n\
                     defaults to all experiments\n\
                     --trace PATH  enable telemetry and write a Chrome trace-event JSON\n\
                     timeline (one lane per pool thread) for Perfetto;\n\
                     see docs/TELEMETRY.md\n\
                     --cache-dir DIR  memoize completed sweep cells under DIR and serve\n\
                     repeat cells from it; warm results are byte-identical\n\
                     to cold ones (see docs/CACHE.md)\n\
                     --no-cache    ignore --cache-dir for this run (no reads or writes)\n\
                     --resume      continue an interrupted run from DIR's manifest;\n\
                     requires --cache-dir\n\
                     --quiet       suppress the live progress line on stderr\n\
                     --progress    force the live progress line even when stderr is\n\
                     not a terminal\n\
                     exit codes: 0 ok, 2 usage error, 3 unknown experiment,\n\
                     4 output write failure, 5 unusable cache dir\n\
                     experiments: {}",
                    experiment_names().join(" ")
                );
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiment_names().iter().map(|s| (*s).to_owned())),
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag {other:?}"));
            }
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        if report_path.is_some() || trace_path.is_some() {
            // A report or trace with no explicit selection covers
            // everything.
            names.extend(experiment_names().iter().map(|s| (*s).to_owned()));
        } else {
            return usage_error("no experiments requested");
        }
    }
    // Sweeps are deterministic for any job count, so defaulting to all
    // hardware threads is safe.
    scale.jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let known = experiment_names();
    for name in &names {
        if !known.contains(&name.as_str()) {
            eprintln!("repro: unknown experiment {name:?}; try `repro --list`");
            return ExitCode::from(EXIT_UNKNOWN_EXPERIMENT);
        }
    }
    if resume && (cache_dir.is_none() || no_cache) {
        return usage_error("--resume requires --cache-dir (and is meaningless with --no-cache)");
    }
    let telemetry = report_path.is_some() || trace_path.is_some();
    if telemetry {
        desc_telemetry::set_enabled(true);
    }
    // Open the cell cache after the telemetry switch settles so the
    // store's `cache.*` counters reach the report.
    let store = match (&cache_dir, no_cache) {
        (Some(dir), false) => {
            match desc_cache::CacheStore::open(dir, desc_experiments::cache::CELL_SCHEMA_VERSION) {
                Ok(store) => {
                    let store = std::sync::Arc::new(store);
                    desc_experiments::cache::install(Some(std::sync::Arc::clone(&store)));
                    if store.manifest_skipped() > 0 {
                        eprintln!(
                            "repro: warning: dropped {} malformed manifest line(s) in {}",
                            store.manifest_skipped(),
                            dir.display()
                        );
                    }
                    if resume {
                        eprintln!(
                            "repro: resuming from {} ({} completed cell(s) in the manifest)",
                            dir.display(),
                            store.manifest_cells()
                        );
                    }
                    Some(store)
                }
                Err(e) => {
                    eprintln!("repro: unusable cache dir {}: {e}", dir.display());
                    return ExitCode::from(EXIT_CACHE);
                }
            }
        }
        _ => None,
    };
    // Size the shared pool once telemetry state is settled. `--jobs`
    // sets the pool size; `--shards` only caps how many of a cell's
    // bank partitions run concurrently *within* that pool — the two
    // never multiply, so the process runs at most `jobs` sim threads.
    desc_exec::configure(scale.jobs);

    // Live progress goes to stderr only when someone is watching (or
    // explicitly asked): never into redirected logs, never with
    // `--quiet`.
    progress::set_experiment_count(names.len());
    let reporter = (!quiet && (force_progress || progress::stderr_is_tty()))
        .then(Reporter::start);

    for name in &names {
        let started = Instant::now();
        desc_telemetry::set_context(name);
        progress::begin_experiment(name);
        let table = {
            let _span = desc_telemetry::span("experiment", name.as_str());
            run_experiment(name, &scale)
        };
        desc_telemetry::set_context("");
        let finished = progress::end_experiment();
        if let (Some(reporter), Some((fig, cells, secs))) = (&reporter, finished) {
            reporter.experiment_finished(&fig, cells, secs);
        }
        if csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
            println!("[{name} completed in {:.1}s]\n", started.elapsed().as_secs_f64());
        }
    }
    if let Some(reporter) = reporter {
        reporter.finish();
    }

    if let Some(store) = &store {
        let s = store.stats();
        eprintln!(
            "cache: {} hits ({} memory, {} disk), {} misses, {} stores; manifest has {} cell(s)",
            s.hits(),
            s.hits_memory,
            s.hits_disk,
            s.misses,
            s.stores,
            store.manifest_cells()
        );
        if s.version_mismatches > 0 {
            eprintln!(
                "repro: warning: {} entr{} from a different cell-schema version recomputed",
                s.version_mismatches,
                if s.version_mismatches == 1 { "y" } else { "ies" }
            );
        }
        if s.errors > 0 {
            eprintln!(
                "repro: warning: {} corrupt or unwritable cache entr{} (recomputed; non-fatal)",
                s.errors,
                if s.errors == 1 { "y" } else { "ies" }
            );
        }
    }

    // One drain serves both artifacts, so the report's spans and the
    // Chrome timeline describe the same events.
    let spans = if telemetry { desc_telemetry::drain_spans() } else { Vec::new() };
    if let Some(path) = &trace_path {
        let doc = desc_telemetry::chrome_trace("repro", &desc_telemetry::worker_names(), &spans);
        if let Err(e) = std::fs::write(path, doc.to_pretty()) {
            eprintln!("repro: failed to write trace to {}: {e}", path.display());
            return ExitCode::from(EXIT_WRITE_FAILED);
        }
        eprintln!("wrote execution trace to {} (open in https://ui.perfetto.dev)", path.display());
    }
    if let Some(path) = &report_path {
        let report = Report {
            meta: ReportMeta {
                tool: "repro".to_owned(),
                version: env!("CARGO_PKG_VERSION").to_owned(),
                seed: scale.seed,
                scale: scale_label.to_owned(),
                jobs: scale.jobs,
                shards: scale.shards,
                experiments: names.clone(),
                spans_dropped: desc_telemetry::spans_dropped(),
            },
            snapshot: desc_telemetry::global().snapshot(),
            pool: Some(desc_exec::utilization()),
            cache: store.as_ref().map(|store| {
                let s = store.stats();
                desc_telemetry::CacheReport {
                    dir: store.dir().map(|p| p.display().to_string()),
                    schema_version: u64::from(store.version()),
                    hits_memory: s.hits_memory,
                    hits_disk: s.hits_disk,
                    misses: s.misses,
                    stores: s.stores,
                    version_mismatches: s.version_mismatches,
                    errors: s.errors,
                    evictions: s.evictions,
                    inflight_leads: s.inflight_leads,
                    inflight_waits: s.inflight_waits,
                    inflight_hits: s.inflight_hits,
                    inflight_handoffs: s.inflight_handoffs,
                    manifest_cells: store.manifest_cells(),
                    resumed: resume,
                }
            }),
            serve: None,
            spans,
        };
        if let Err(e) = report.write_to(path) {
            eprintln!("repro: failed to write report to {}: {e}", path.display());
            return ExitCode::from(EXIT_WRITE_FAILED);
        }
        eprintln!("wrote run report to {}", path.display());
    }
    ExitCode::SUCCESS
}
