//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro fig16 fig20        # specific experiments
//! repro all                # everything, full scale
//! repro --quick all        # everything, reduced scale
//! repro --list             # available experiment names
//! ```

use desc_experiments::{experiment_names, run_experiment, Scale};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut names: Vec<String> = Vec::new();
    let mut csv = false;
    let mut jobs: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => scale = Scale::quick(),
            "--csv" => csv = true,
            "--tiny" => scale = Scale::tiny(),
            "--seed" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(seed)) => scale.seed = seed,
                _ => {
                    eprintln!("--seed needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--accesses" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => scale.accesses = n,
                _ => {
                    eprintln!("--accesses needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--apps" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if (1..=16).contains(&n) => scale.apps = n,
                _ => {
                    eprintln!("--apps needs an integer in 1..=16");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--list" | "-l" => {
                for n in experiment_names() {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick|--tiny] [--csv] [--seed N] [--accesses N] [--apps N] \
                     [--jobs N] <experiment...|all>\n\
                     --jobs N  spread (app x scheme) sweeps over N threads; results are\n\
                     bit-identical for any N (default: all hardware threads)\n\
                     experiments: {}",
                    experiment_names().join(" ")
                );
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiment_names().iter().map(|s| (*s).to_owned())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        eprintln!("no experiments requested; try `repro --help`");
        return ExitCode::FAILURE;
    }
    // Sweeps are deterministic for any job count, so defaulting to all
    // hardware threads is safe.
    scale.jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let known = experiment_names();
    for name in &names {
        if !known.contains(&name.as_str()) {
            eprintln!("unknown experiment {name:?}; try `repro --list`");
            return ExitCode::FAILURE;
        }
    }
    for name in &names {
        let started = Instant::now();
        let table = run_experiment(name, &scale);
        if csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
            println!("[{name} completed in {:.1}s]\n", started.elapsed().as_secs_f64());
        }
    }
    ExitCode::SUCCESS
}
