//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro fig16 fig20        # specific experiments
//! repro all                # everything, full scale
//! repro --quick all        # everything, reduced scale
//! repro --report out.json  # machine-readable run report (implies all)
//! repro --list             # available experiment names
//! ```

use desc_experiments::{experiment_names, run_experiment, Scale};
use desc_telemetry::{Report, ReportMeta};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::full();
    let mut scale_label = "full";
    let mut names: Vec<String> = Vec::new();
    let mut csv = false;
    let mut jobs: Option<usize> = None;
    let mut report_path: Option<std::path::PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => {
                scale = Scale::quick();
                scale_label = "quick";
            }
            "--csv" => csv = true,
            "--tiny" => {
                scale = Scale::tiny();
                scale_label = "tiny";
            }
            "--seed" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(seed)) => scale.seed = seed,
                _ => {
                    eprintln!("--seed needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--accesses" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => scale.accesses = n,
                _ => {
                    eprintln!("--accesses needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--apps" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if (1..=16).contains(&n) => scale.apps = n,
                _ => {
                    eprintln!("--apps needs an integer in 1..=16");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => scale.shards = n,
                _ => {
                    eprintln!("--shards needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--report" => match iter.next() {
                Some(path) if !path.is_empty() => {
                    report_path = Some(std::path::PathBuf::from(path));
                }
                _ => {
                    eprintln!("--report needs an output path argument");
                    return ExitCode::FAILURE;
                }
            },
            "--list" | "-l" => {
                for n in experiment_names() {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick|--tiny] [--csv] [--seed N] [--accesses N] [--apps N] \
                     [--jobs N] [--shards N] [--report PATH] <experiment...|all>\n\
                     --jobs N      run up to N sweep cells concurrently; results are\n\
                     bit-identical for any N (default: all hardware threads)\n\
                     --shards N    run up to N of each cell's bank partitions concurrently;\n\
                     bit-identical for any N (default: 1). jobs and shards\n\
                     are caps on one shared pool and never multiply threads\n\
                     --report PATH enable telemetry and write a machine-readable JSON run\n\
                     report (counters, histograms, spans); defaults to all experiments\n\
                     experiments: {}",
                    experiment_names().join(" ")
                );
                return ExitCode::SUCCESS;
            }
            "all" => names.extend(experiment_names().iter().map(|s| (*s).to_owned())),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        if report_path.is_some() {
            // A report with no explicit selection covers everything.
            names.extend(experiment_names().iter().map(|s| (*s).to_owned()));
        } else {
            eprintln!("no experiments requested; try `repro --help`");
            return ExitCode::FAILURE;
        }
    }
    // Sweeps are deterministic for any job count, so defaulting to all
    // hardware threads is safe.
    scale.jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let known = experiment_names();
    for name in &names {
        if !known.contains(&name.as_str()) {
            eprintln!("unknown experiment {name:?}; try `repro --list`");
            return ExitCode::FAILURE;
        }
    }
    if report_path.is_some() {
        desc_telemetry::set_enabled(true);
    }
    // Size the shared pool once telemetry state is settled. `--jobs`
    // sets the pool size; `--shards` only caps how many of a cell's
    // bank partitions run concurrently *within* that pool — the two
    // never multiply, so the process runs at most `jobs` sim threads.
    desc_exec::configure(scale.jobs);
    for name in &names {
        let started = Instant::now();
        let table = {
            let _span = desc_telemetry::span("experiment", name.as_str());
            run_experiment(name, &scale)
        };
        if csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
            println!("[{name} completed in {:.1}s]\n", started.elapsed().as_secs_f64());
        }
    }
    if let Some(path) = report_path {
        let report = Report {
            meta: ReportMeta {
                tool: "repro".to_owned(),
                version: env!("CARGO_PKG_VERSION").to_owned(),
                seed: scale.seed,
                scale: scale_label.to_owned(),
                jobs: scale.jobs,
                shards: scale.shards,
                experiments: names.clone(),
            },
            snapshot: desc_telemetry::global().snapshot(),
            spans: desc_telemetry::drain_spans(),
        };
        if let Err(e) = report.write_to(&path) {
            eprintln!("failed to write report to {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote run report to {}", path.display());
    }
    ExitCode::SUCCESS
}
