//! Plain-text result tables.

use std::fmt;

/// A titled, column-aligned text table — the output format of every
/// experiment runner.
///
/// # Examples
///
/// ```
/// use desc_experiments::Table;
///
/// let mut t = Table::new("Demo", &["App", "Energy"]);
/// t.row(&["Radix", "0.55"]);
/// let text = t.render();
/// assert!(text.contains("Radix"));
/// assert!(text.contains("Energy"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row of preformatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote printed under the table.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_owned());
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Returns cell `(row, col)` if present.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }

    /// Renders the table as RFC-4180-style CSV (quotes around cells
    /// containing commas or quotes), headers first. Notes are omitted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let pad = widths[i].saturating_sub(c.chars().count());
                    if i == 0 {
                        format!("{c}{}", " ".repeat(pad))
                    } else {
                        format!("{}{c}", " ".repeat(pad))
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a ratio with two decimals.
#[must_use]
pub fn r2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio with three decimals.
#[must_use]
pub fn r3(x: f64) -> String {
    format!("{x:.3}")
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or non-positive.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of an empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "geomean requires positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_and_rows() {
        let mut t = Table::new("Fig. X", &["App", "A", "B"]);
        t.row(&["Radix", "1.00", "0.55"]);
        t.row(&["LongBenchmarkName", "0.99", "0.60"]);
        t.note("normalised to binary");
        let s = t.render();
        assert!(s.contains("== Fig. X =="));
        assert!(s.contains("LongBenchmarkName"));
        assert!(s.contains("note: normalised"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, 2), Some("0.55"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_escapes_and_includes_headers() {
        let mut t = Table::new("t", &["App", "Value"]);
        t.row(&["has,comma", "1.0"]);
        t.row(&["has\"quote", "2.0"]);
        t.note("notes never appear in CSV");
        let csv = t.to_csv();
        assert_eq!(csv.lines().next(), Some("App,Value"));
        assert!(csv.contains("\"has,comma\",1.0"));
        assert!(csv.contains("\"has\"\"quote\",2.0"));
        assert!(!csv.contains("notes"));
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(r2(1.8149), "1.81");
        assert_eq!(r3(0.0666), "0.067");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
