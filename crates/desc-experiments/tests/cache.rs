//! End-to-end tests of the cell-result cache through the `repro`
//! binary: warm reruns must be byte-identical to cold ones (CSV *and*
//! report metrics) across process boundaries and `(jobs, shards)`
//! shapes, interrupted runs must resume without recomputing
//! manifested cells, and damaged or version-mismatched entries must
//! degrade to recomputes with a warning — never a wrong figure.
//!
//! Each test runs the binary in fresh processes, so the warm-hit
//! assertions double as the cross-process cache-key stability test:
//! a disk hit in a new process is only possible if the second process
//! derived the same 128-bit content address as the first.

use desc_telemetry::Json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("failed to launch repro binary")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("desc-cache-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The report's `cache` stanza as `(field -> u64)` lookups.
fn cache_stanza(report_path: &Path) -> Json {
    let report = Json::parse(&std::fs::read_to_string(report_path).expect("report written"))
        .expect("report parses as JSON");
    report.get("cache").expect("report has a cache stanza").clone()
}

fn cache_u64(stanza: &Json, field: &str) -> u64 {
    stanza.get(field).and_then(Json::as_u64).unwrap_or_else(|| panic!("cache.{field} missing"))
}

/// Report metrics with the machine-shape stanzas (`pool.*`, `cache.*`)
/// filtered out — exactly the subset the determinism contract covers.
fn deterministic_metrics(report_path: &Path) -> Vec<(String, String)> {
    let report = Json::parse(&std::fs::read_to_string(report_path).expect("report written"))
        .expect("report parses as JSON");
    let Some(Json::Obj(entries)) = report.get("metrics") else {
        panic!("report has no metrics object");
    };
    entries
        .iter()
        .filter(|(k, _)| !k.starts_with("pool.") && !k.starts_with("cache."))
        .map(|(k, v)| (k.clone(), v.to_pretty()))
        .collect()
}

#[test]
fn warm_rerun_in_a_new_process_is_byte_identical_and_fully_served_from_cache() {
    let dir = temp_dir("warm");
    let cache = dir.join("cells");
    let cache_arg = cache.to_str().expect("utf-8 path");
    let cold_report = dir.join("cold.json");
    let warm_report = dir.join("warm.json");
    // fig23 and fig24 run the same S-NUCA cells, so even the cold run
    // sees intra-process sharing; fig16 covers the UCA pipeline.
    let experiments = ["fig16", "fig23", "fig24"];

    let mut cold_args = vec![
        "--tiny", "--csv", "--quiet", "--jobs", "4", "--shards", "2", "--cache-dir", cache_arg,
        "--report", cold_report.to_str().expect("utf-8 path"),
    ];
    cold_args.extend(experiments);
    let cold = repro(&cold_args);
    assert!(cold.status.success(), "cold run failed: {cold:?}");
    let cold_stats = cache_stanza(&cold_report);
    assert!(cache_u64(&cold_stats, "stores") > 0, "cold run stored nothing: {cold_stats:?}");
    assert_eq!(cache_u64(&cold_stats, "hits_disk"), 0, "cold run hit the disk tier");

    // New process, different pool shape: every cell must be a hit and
    // every output byte must match.
    let mut warm_args = vec![
        "--tiny", "--csv", "--quiet", "--jobs", "1", "--shards", "1", "--cache-dir", cache_arg,
        "--report", warm_report.to_str().expect("utf-8 path"),
    ];
    warm_args.extend(experiments);
    let warm = repro(&warm_args);
    assert!(warm.status.success(), "warm run failed: {warm:?}");
    assert_eq!(
        cold.stdout, warm.stdout,
        "warm CSV diverged from cold across processes and pool shapes"
    );
    let warm_stats = cache_stanza(&warm_report);
    assert_eq!(cache_u64(&warm_stats, "misses"), 0, "warm run recomputed: {warm_stats:?}");
    assert_eq!(cache_u64(&warm_stats, "stores"), 0, "warm run re-stored: {warm_stats:?}");
    assert!(cache_u64(&warm_stats, "hits_disk") > 0, "warm run never probed disk");
    assert_eq!(
        cache_u64(&cold_stats, "manifest_cells"),
        cache_u64(&warm_stats, "manifest_cells"),
        "warm run changed the manifest"
    );
    // Replayed metric deltas make the warm report metric-identical.
    assert_eq!(
        deterministic_metrics(&cold_report),
        deterministic_metrics(&warm_report),
        "warm report metrics diverged from cold"
    );

    // Any field change changes the key: a different seed shares no cells.
    let reseeded_report = dir.join("reseeded.json");
    let reseeded = repro(&[
        "--tiny", "--csv", "--quiet", "--seed", "999", "--cache-dir", cache_arg, "--report",
        reseeded_report.to_str().expect("utf-8 path"), "fig16",
    ]);
    assert!(reseeded.status.success(), "reseeded run failed: {reseeded:?}");
    let reseeded_stats = cache_stanza(&reseeded_report);
    assert_eq!(
        cache_u64(&reseeded_stats, "hits_memory") + cache_u64(&reseeded_stats, "hits_disk"),
        0,
        "a different seed must never hit: {reseeded_stats:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_run_resumes_without_recomputing_manifested_cells() {
    let dir = temp_dir("resume");
    let cache = dir.join("cells");
    let cache_arg = cache.to_str().expect("utf-8 path");

    // Reference output, no cache involved.
    let reference = repro(&["--tiny", "--csv", "--quiet", "fig16", "fig22"]);
    assert!(reference.status.success());

    // Start the same selection cold and kill it mid-run. Whatever was
    // manifested before the kill is the "completed" set; atomic object
    // and manifest writes guarantee the kill cannot poison it. The
    // killed run reports too: a telemetry-enabled resume only accepts
    // delta-bearing entries, so the cold run must store them that way.
    let killed_report = dir.join("killed.json");
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--tiny", "--csv", "--quiet", "--cache-dir", cache_arg, "--report",
            killed_report.to_str().expect("utf-8 path"), "fig16", "fig22",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro");
    std::thread::sleep(std::time::Duration::from_millis(300));
    let _ = child.kill();
    let _ = child.wait();

    // A killed atomic write may leave a stray temp file; one more,
    // planted by hand, must be ignored as well.
    std::fs::write(cache.join(".manifest.tmp.99999"), b"torn half-write").ok();
    let manifested_before = std::fs::read_to_string(cache.join("manifest"))
        .map(|text| text.lines().count() as u64)
        .unwrap_or(0);

    let resume_report = dir.join("resume.json");
    let resumed = repro(&[
        "--tiny", "--csv", "--quiet", "--cache-dir", cache_arg, "--resume", "--report",
        resume_report.to_str().expect("utf-8 path"), "fig16", "fig22",
    ]);
    assert!(resumed.status.success(), "resume run failed: {resumed:?}");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(stderr.contains("resuming from"), "no resume banner: {stderr:?}");
    assert_eq!(reference.stdout, resumed.stdout, "resumed CSV diverged from uncached reference");

    let stats = cache_stanza(&resume_report);
    assert!(stats.get("resumed").is_some_and(|r| matches!(r, Json::Bool(true))));
    // Every cell banked before the kill was served, not recomputed:
    // the resume run only stores the remainder. (`<=` rather than
    // `==`: a kill between an object write and its manifest record
    // leaves an extra on-disk cell that hits without re-storing.)
    let total = cache_u64(&stats, "manifest_cells");
    assert!(
        cache_u64(&stats, "stores") <= total - manifested_before,
        "resume recomputed manifested cells (manifested {manifested_before} of {total}): {stats:?}"
    );
    assert!(
        cache_u64(&stats, "hits_disk") >= manifested_before,
        "manifested cells were not all served from disk: {stats:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_mismatched_entry_warns_recomputes_and_never_changes_the_figure() {
    let dir = temp_dir("version");
    let cache = dir.join("cells");
    let cache_arg = cache.to_str().expect("utf-8 path");

    let cold = repro(&["--tiny", "--csv", "--quiet", "--cache-dir", cache_arg, "fig16"]);
    assert!(cold.status.success(), "cold run failed: {cold:?}");

    // Rewrite one object as a structurally valid entry carrying a
    // *future* schema version (what a cache dir shared with a newer
    // tool would contain).
    let objects = cache.join("objects");
    let object = std::fs::read_dir(&objects)
        .expect("objects dir")
        .flat_map(|bucket| std::fs::read_dir(bucket.expect("bucket").path()).expect("bucket dir"))
        .map(|f| f.expect("object file").path())
        .next()
        .expect("cold run left at least one object");
    let hex = object.file_stem().and_then(|s| s.to_str()).expect("hex object name");
    let key = desc_cache::CellKey::from_hex(hex).expect("object name is a cell key");
    let future = desc_cache::encode_entry(u32::MAX, &key, b"payload from the future", None);
    std::fs::write(&object, future).expect("rewrite object");

    let warm_report = dir.join("warm.json");
    let warm = repro(&[
        "--tiny", "--csv", "--quiet", "--cache-dir", cache_arg, "--report",
        warm_report.to_str().expect("utf-8 path"), "fig16",
    ]);
    assert!(warm.status.success(), "version mismatch must not fail the run: {warm:?}");
    assert_eq!(cold.stdout, warm.stdout, "a mismatched entry changed figure output");
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains("cell-schema version"), "no version-mismatch warning: {stderr:?}");
    let stats = cache_stanza(&warm_report);
    assert_eq!(cache_u64(&stats, "version_mismatches"), 1, "{stats:?}");
    // The recompute overwrote the entry under the current version.
    let fixed = repro(&["--tiny", "--csv", "--quiet", "--cache-dir", cache_arg, "fig16"]);
    assert!(fixed.status.success());
    assert_eq!(cold.stdout, fixed.stdout);

    std::fs::remove_dir_all(&dir).ok();
}
