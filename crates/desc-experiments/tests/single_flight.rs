//! In-process tests of single-flight cell dedup through the real
//! experiment path (`run_custom_keyed`): concurrent demanders of one
//! cold cell compute it exactly once, a cancelled leader hands the
//! cell off to a waiting follower (satellite: deadline kills the
//! computing leader mid-cell — the follower must inherit or
//! recompute, never hang, never observe a partial entry), and a
//! cancelled *follower* abandons its wait promptly.
//!
//! These tests install the process-global cache store, so they share
//! one `#[test]`-per-scenario process but serialize on a local mutex.

use desc_cache::{CacheStore, FlightOutcome};
use desc_core::schemes::SchemeKind;
use desc_experiments::cache::{self, CELL_SCHEMA_VERSION};
use desc_experiments::common::{run_custom_keyed, scheme_static_overhead, Scale};
use desc_sim::SimConfig;
use desc_workloads::BenchmarkId;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Serializes tests in this file: they install the process-global
/// store handle.
fn serialize() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const KIND: SchemeKind = SchemeKind::ZeroSkippedDesc;

fn run_cell() -> Vec<u8> {
    let kind = KIND;
    let run = run_custom_keyed(
        &format!("paper:{kind:?}"),
        kind.build_paper_config(),
        SimConfig::paper_multithreaded(),
        &BenchmarkId::Radix.profile(),
        &Scale::tiny(),
        scheme_static_overhead(kind),
    );
    cache::encode_app_run(&run)
}

fn cell_key() -> desc_cache::CellKey {
    let kind = KIND;
    let scheme = kind.build_paper_config();
    cache::app_key(
        &format!("paper:{kind:?}"),
        scheme.as_ref(),
        &SimConfig::paper_multithreaded(),
        &BenchmarkId::Radix.profile(),
        &Scale::tiny(),
        scheme_static_overhead(kind),
    )
}

#[test]
fn concurrent_demanders_compute_a_cold_cell_exactly_once() {
    let _guard = serialize();
    let expected = run_cell(); // no store installed: direct compute
    let store = Arc::new(CacheStore::in_memory(CELL_SCHEMA_VERSION));
    cache::install(Some(Arc::clone(&store)));
    let threads: Vec<_> = (0..4).map(|_| std::thread::spawn(run_cell)).collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    cache::install(None);
    for bytes in &results {
        assert_eq!(bytes, &expected, "shared result differs from direct compute");
    }
    let stats = store.stats();
    assert_eq!(stats.stores, 1, "cold cell computed more than once: {stats:?}");
    assert_eq!(stats.inflight_leads, 1, "{stats:?}");
}

#[test]
fn cancelled_leader_hands_the_cell_to_a_waiting_follower() {
    let _guard = serialize();
    let expected = run_cell();
    let store = Arc::new(CacheStore::in_memory(CELL_SCHEMA_VERSION));
    cache::install(Some(Arc::clone(&store)));
    let key = cell_key();

    // A stand-in leader claims the flight the way a real request's
    // compute does, then unwinds without publishing — exactly the
    // observable effect of a deadline cancelling the leader mid-cell
    // (its `FlightLease` drops during the unwind).
    let lease = match store.begin_flight(&key, false, &mut || {}) {
        FlightOutcome::Lead(lease) => lease,
        other => panic!("expected to lead the cold cell, got {other:?}"),
    };
    let follower = std::thread::spawn(run_cell);
    // Wait until the follower is queued behind the leader before
    // killing it, so the handoff path (not a plain cold miss) runs.
    while store.stats().inflight_waits == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(lease);

    let bytes = follower.join().expect("follower must never hang or die");
    cache::install(None);
    assert_eq!(bytes, expected, "inherited compute differs from direct compute");
    let stats = store.stats();
    assert!(stats.inflight_handoffs >= 1, "{stats:?}");
    assert_eq!(stats.stores, 1, "{stats:?}");
    // No partial entry: the published object decodes cleanly.
    let entry = store.lookup(&key, false).expect("cell published");
    cache::decode_app_run(&entry.payload).expect("entry is complete");
}

/// Regression: a *disk-backed* store holding an entry-level-valid
/// object whose payload the app codec rejects (codec drift without a
/// `CELL_SCHEMA_VERSION` bump — e.g. one `--cache-dir` reused across
/// builds). The demand must terminate with a recompute that
/// overwrites the object; it must never cycle
/// `lookup -> decode fail -> evict hot tier -> re-read disk` forever.
#[test]
fn undecodable_disk_entry_recomputes_and_overwrites_instead_of_looping() {
    let _guard = serialize();
    let expected = run_cell();
    let dir = std::env::temp_dir().join(format!("desc-sf-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = cell_key();
    // Plant the poisoned object with a throwaway store, then reopen so
    // the hot tier is cold and the demand takes the disk-read path the
    // infinite loop lived on.
    CacheStore::open(&dir, CELL_SCHEMA_VERSION)
        .unwrap()
        .store(&key, b"not an app run".to_vec(), None);
    let store = Arc::new(CacheStore::open(&dir, CELL_SCHEMA_VERSION).unwrap());
    cache::install(Some(Arc::clone(&store)));
    let bytes = run_cell();
    cache::install(None);
    assert_eq!(bytes, expected, "recomputed cell differs from direct compute");
    let stats = store.stats();
    assert!(stats.errors >= 1, "the poisoned entry must be counted: {stats:?}");
    assert_eq!(stats.stores, 1, "exactly one recompute: {stats:?}");
    // The object on disk is now the recompute: a fresh store (new
    // process) decodes it cleanly.
    let fresh = CacheStore::open(&dir, CELL_SCHEMA_VERSION).unwrap();
    let entry = fresh.lookup(&key, false).expect("overwritten object serves");
    cache::decode_app_run(&entry.payload).expect("entry decodes after the overwrite");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cancelled_follower_abandons_its_wait_without_disturbing_the_leader() {
    let _guard = serialize();
    let store = Arc::new(CacheStore::in_memory(CELL_SCHEMA_VERSION));
    cache::install(Some(Arc::clone(&store)));
    let key = cell_key();
    let lease = match store.begin_flight(&key, false, &mut || {}) {
        FlightOutcome::Lead(lease) => lease,
        other => panic!("expected to lead the cold cell, got {other:?}"),
    };

    let token = desc_exec::CancelToken::new();
    let follower = {
        let token = token.clone();
        std::thread::spawn(move || {
            let _cancel = desc_exec::install_cancel(Some(token));
            // The leader never publishes; only the cancellation poll
            // can end this wait.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(run_cell))
        })
    };
    while store.stats().inflight_waits == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    token.cancel();
    let outcome = follower.join().expect("follower thread must exit");
    assert!(outcome.is_err(), "cancelled follower must unwind, not return a result");

    // The leader is unaffected: it can still publish, and a fresh
    // lookup then serves the entry.
    lease.publish(b"payload".to_vec(), None);
    cache::install(None);
    assert_eq!(store.lookup(&key, false).expect("published").payload, b"payload");
}
