//! Telemetry acceptance tests: enabling instrumentation must not
//! change any figure output, counter values must be identical for
//! identical seeds and for any `--jobs` count, and disabling must
//! leave the registry silent.
//!
//! The enabled flag and registry are process-global, so everything
//! lives in one `#[test]` to keep toggles serialized.

use desc_experiments::{run_experiment, Scale};
use desc_telemetry::MetricValue;

#[test]
fn telemetry_is_invisible_in_outputs_and_deterministic_in_counters() {
    let scale = Scale::tiny();

    // Baseline render with telemetry off.
    desc_telemetry::set_enabled(false);
    let off = run_experiment("fig16", &scale).render();

    // Same run with telemetry on: byte-identical output, and a
    // registry populated from every instrumented layer.
    desc_telemetry::global().reset_all();
    desc_telemetry::set_enabled(true);
    let on_first = run_experiment("fig16", &scale).render();
    let first = desc_telemetry::global().snapshot();
    assert_eq!(off, on_first, "enabling telemetry changed figure output");
    for layer in ["core.", "sim.", "workloads."] {
        assert!(
            first.metrics.iter().any(|(name, _)| name.starts_with(layer)),
            "no {layer}* metrics registered by a fig16 run"
        );
    }
    match first.counter("core.cost.blocks") {
        Some(blocks) => assert!(blocks > 0, "core.cost.blocks stayed zero"),
        None => panic!("core.cost.blocks missing from snapshot"),
    }

    // Identical seed, second run: identical counter values.
    desc_telemetry::global().reset_all();
    let on_second = run_experiment("fig16", &scale).render();
    let second = desc_telemetry::global().snapshot();
    assert_eq!(on_first, on_second);
    assert_eq!(first.metrics, second.metrics, "counters diverged between identical runs");

    // Same run fanned over 4 workers (and 2-way sharded cells): same
    // rendered bytes, same counter values (all updates are
    // order-independent).
    desc_telemetry::global().reset_all();
    let _ = desc_telemetry::drain_spans();
    desc_telemetry::set_context("fig16");
    let parallel = run_experiment("fig16", &scale.with_jobs(4).with_shards(2)).render();
    desc_telemetry::set_context("");
    let fanned = desc_telemetry::global().snapshot();
    assert_eq!(on_first, parallel, "fig16 diverged under --jobs 4 with telemetry on");
    assert_eq!(first.metrics, fanned.metrics, "counters diverged under --jobs 4");
    // The sweep landed on the execution timeline: per-cell spans named
    // scheme/app, a "cells" executor region, per-bank "partition"
    // spans from the sharded simulations inside "parts"/"parts_mut"
    // regions — every one carrying the process-wide context. Drain so
    // later tests start clean.
    let spans = desc_telemetry::drain_spans();
    let cells: Vec<_> = spans.iter().filter(|s| s.name == "cell").collect();
    assert!(!cells.is_empty(), "parallel sweep recorded no per-cell spans");
    assert!(
        cells.iter().any(|s| s.label.contains('/')),
        "fig16 cell spans should be labeled scheme/app, got e.g. {:?}",
        cells.first().map(|s| &s.label)
    );
    assert!(
        cells.iter().all(|s| s.ctx == "fig16"),
        "cell spans recorded on pool workers lost the experiment context"
    );
    let region_labels: std::collections::BTreeSet<&str> =
        spans.iter().filter(|s| s.name == "region").map(|s| s.label.as_str()).collect();
    assert!(region_labels.contains("cells"), "no cells region span: {region_labels:?}");
    assert!(
        region_labels.contains("parts") || region_labels.contains("parts_mut"),
        "sharded cells recorded no partition regions: {region_labels:?}"
    );
    assert!(
        spans.iter().any(|s| s.name == "partition"),
        "sharded cells recorded no per-partition spans"
    );
    // Executor utilization saw the same sweep, without touching the
    // registry (the metric maps above already proved byte-equality).
    let util = desc_exec::utilization();
    assert!(
        util.regions.iter().any(|r| r.label == "cells" && r.tasks > 0),
        "pool utilization missing the cells region"
    );

    // Disabled again: running an experiment touches no counters.
    desc_telemetry::set_enabled(false);
    desc_telemetry::global().reset_all();
    let _ = run_experiment("fig13", &scale).render();
    let silent = desc_telemetry::global().snapshot();
    for (name, value) in &silent.metrics {
        let quiet = match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v == 0,
            MetricValue::Histogram { count, .. } => *count == 0,
        };
        assert!(quiet, "metric {name} advanced while telemetry was disabled");
    }
    assert!(
        desc_telemetry::drain_spans().is_empty(),
        "spans recorded while telemetry was disabled"
    );
}
