//! Cross-process determinism of the pooled sweep.
//!
//! The executor's contract is that `--jobs` and `--shards` bound
//! concurrency without ever entering the results: every figure table
//! and every run-report metric must be byte-identical for any
//! (jobs, shards) combination. These tests drive the real `repro`
//! binary — one process per combination, so each gets its own pool —
//! through the figures that exercise every sharded code path: fig16
//! (banked-L2 `SystemSim` sweep), fig23 and fig24 (S-NUCA-1, the
//! densest 128-partition decomposition).

use desc_telemetry::Json;
use std::process::Command;

const COMBOS: [(&str, &str); 3] = [("1", "1"), ("4", "2"), ("2", "8")];

fn repro(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro output is UTF-8")
}

#[test]
fn figure_csvs_identical_across_pool_shapes() {
    let mut baseline: Option<String> = None;
    for (jobs, shards) in COMBOS {
        let csv = repro(&[
            "--tiny", "--csv", "--jobs", jobs, "--shards", shards, "fig16", "fig23", "fig24",
        ]);
        assert!(csv.contains(','), "csv output looks empty: {csv:?}");
        match &baseline {
            None => baseline = Some(csv),
            Some(expected) => {
                assert_eq!(
                    expected, &csv,
                    "figure CSVs diverged at jobs={jobs} shards={shards}"
                );
            }
        }
    }
}

/// The `metrics` object of a run report with the pool's own
/// `pool.*` instrumentation removed: pool execution counters describe
/// *where* work ran, which legitimately differs between an inline
/// serial run and a pooled one, while every simulation metric must
/// not.
fn sim_metrics(report_path: &std::path::Path) -> String {
    let text = std::fs::read_to_string(report_path).expect("read report");
    let doc = Json::parse(&text).expect("parse report");
    let Some(Json::Obj(pairs)) = doc.get("metrics") else {
        panic!("report has no metrics object");
    };
    let filtered: Vec<(String, Json)> =
        pairs.iter().filter(|(k, _)| !k.starts_with("pool.")).cloned().collect();
    assert!(!filtered.is_empty(), "report metrics are empty");
    Json::Obj(filtered).to_pretty()
}

#[test]
fn report_metrics_identical_across_pool_shapes() {
    let dir = std::env::temp_dir().join(format!("desc-pool-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut baseline: Option<String> = None;
    for (jobs, shards) in COMBOS {
        let path = dir.join(format!("report-j{jobs}-s{shards}.json"));
        repro(&[
            "--tiny",
            "--jobs",
            jobs,
            "--shards",
            shards,
            "--report",
            path.to_str().expect("utf-8 temp path"),
            "fig16",
            "fig23",
        ]);
        let metrics = sim_metrics(&path);
        match &baseline {
            None => baseline = Some(metrics),
            Some(expected) => {
                assert_eq!(
                    expected, &metrics,
                    "report metrics diverged at jobs={jobs} shards={shards}"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
