//! Bank-sharding acceptance tests: figure output must be
//! byte-identical and `desc-run-report/v1` metrics identical for any
//! `--shards` count at a fixed seed, because the decomposition unit is
//! the L2 bank (fixed by the machine config), not the thread count.
//!
//! The telemetry flag and registry are process-global, so everything
//! lives in one `#[test]` to keep toggles serialized.

use desc_experiments::{run_experiment, Scale};
use desc_telemetry::{Report, ReportMeta};

fn report_for(shards: usize, scale: &Scale) -> (String, String) {
    desc_telemetry::global().reset_all();
    let rendered = run_experiment("fig16", &scale.with_shards(shards)).render();
    let _ = desc_telemetry::drain_spans();
    let report = Report {
        meta: ReportMeta {
            tool: "test".to_owned(),
            version: "0.0.0".to_owned(),
            seed: scale.seed,
            scale: "tiny".to_owned(),
            jobs: scale.jobs,
            shards,
            experiments: vec!["fig16".to_owned()],
        },
        snapshot: desc_telemetry::global().snapshot(),
        spans: Vec::new(),
    };
    // Metrics only: `meta` records the shard count itself (and a
    // timestamp), which legitimately differs between runs.
    let json = report.to_json();
    let metrics = json.get("metrics").expect("report has metrics").to_pretty();
    (rendered, metrics)
}

#[test]
fn figure_bytes_and_report_metrics_are_shard_invariant() {
    let scale = Scale::tiny();
    desc_telemetry::set_enabled(true);
    let (serial_render, serial_metrics) = report_for(1, &scale);
    assert!(
        serial_metrics.contains("sim.l2.accesses"),
        "baseline report recorded no simulator metrics"
    );
    for shards in [2, 8] {
        let (render, metrics) = report_for(shards, &scale);
        assert_eq!(
            serial_render, render,
            "fig16 output diverged at --shards {shards}"
        );
        assert_eq!(
            serial_metrics, metrics,
            "run-report metrics diverged at --shards {shards}"
        );
    }
    desc_telemetry::set_enabled(false);
    desc_telemetry::global().reset_all();
}
