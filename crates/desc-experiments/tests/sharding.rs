//! Bank-sharding acceptance tests: figure output must be
//! byte-identical and `desc-run-report/v1` metrics identical for any
//! `--shards` count at a fixed seed, because the decomposition unit is
//! the L2 bank (fixed by the machine config), not the thread count.
//! Covered figures span both machine organisations: fig16 (UCA,
//! `SystemSim`) and fig23/fig24 (S-NUCA-1, `SnucaSim`).
//!
//! The telemetry flag and registry are process-global, so everything
//! lives in one `#[test]` to keep toggles serialized.

use desc_experiments::{run_experiment, Scale};
use desc_telemetry::{Report, ReportMeta};

fn report_for(experiments: &[&str], shards: usize, scale: &Scale) -> (Vec<String>, String) {
    desc_telemetry::global().reset_all();
    let renders: Vec<String> = experiments
        .iter()
        .map(|name| run_experiment(name, &scale.with_shards(shards)).render())
        .collect();
    let _ = desc_telemetry::drain_spans();
    let report = Report {
        meta: ReportMeta {
            tool: "test".to_owned(),
            version: "0.0.0".to_owned(),
            seed: scale.seed,
            scale: "tiny".to_owned(),
            jobs: scale.jobs,
            shards,
            experiments: experiments.iter().map(|&e| e.to_owned()).collect(),
            spans_dropped: desc_telemetry::spans_dropped(),
        },
        snapshot: desc_telemetry::global().snapshot(),
        pool: None,
        cache: None,
        serve: None,
        spans: Vec::new(),
    };
    // Metrics only: `meta` records the shard count itself (and a
    // timestamp), which legitimately differs between runs.
    let json = report.to_json();
    let metrics = json.get("metrics").expect("report has metrics").to_pretty();
    (renders, metrics)
}

#[test]
fn figure_bytes_and_report_metrics_are_shard_invariant() {
    let scale = Scale::tiny();
    let experiments = ["fig16", "fig23", "fig24"];
    desc_telemetry::set_enabled(true);
    let (serial_renders, serial_metrics) = report_for(&experiments, 1, &scale);
    assert!(
        serial_metrics.contains("sim.l2.accesses"),
        "baseline report recorded no UCA simulator metrics"
    );
    assert!(
        serial_metrics.contains("sim.snuca.accesses"),
        "baseline report recorded no S-NUCA simulator metrics"
    );
    for shards in [2, 8] {
        let (renders, metrics) = report_for(&experiments, shards, &scale);
        for (name, (serial, sharded)) in
            experiments.iter().zip(serial_renders.iter().zip(&renders))
        {
            assert_eq!(serial, sharded, "{name} output diverged at --shards {shards}");
        }
        assert_eq!(
            serial_metrics, metrics,
            "run-report metrics diverged at --shards {shards}"
        );
    }
    desc_telemetry::set_enabled(false);
    desc_telemetry::global().reset_all();
}
