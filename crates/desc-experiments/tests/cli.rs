//! End-to-end tests of the `repro` binary's command-line contract:
//! distinct exit codes per error class, a Perfetto-loadable `--trace`
//! artifact, a `--report` carrying the `pool_utilization` stanza, and
//! byte-identical CSV output whether tracing is on or off and for any
//! `(jobs, shards)` shape.

use desc_telemetry::Json;
use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("failed to launch repro binary")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("desc-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn bad_arguments_exit_2_with_a_stderr_line() {
    let cases: &[&[&str]] = &[
        &[],                         // no experiments requested
        &["--seed"],                 // missing value
        &["--seed", "NaN", "fig13"], // malformed value
        &["--accesses", "0", "fig13"],
        &["--apps", "99", "fig13"],
        &["--jobs", "0", "fig13"],
        &["--shards", "zero", "fig13"],
        &["--report"],
        &["--trace"],
        &["--cache-dir"],           // missing value
        &["--cache-dir", "", "fig13"],
        &["--resume", "--tiny", "fig13"], // --resume needs --cache-dir
        &["--resume", "--no-cache", "--cache-dir", "/tmp", "fig13"],
        &["--frobnicate", "fig13"], // unknown flag
    ];
    for args in cases {
        let out = repro(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "repro {args:?} must exit 2, got {:?}",
            out.status.code()
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.starts_with("repro: "),
            "repro {args:?} stderr must explain the usage error: {stderr:?}"
        );
        assert!(out.stdout.is_empty(), "usage errors must not print results");
    }
}

#[test]
fn unknown_experiment_exits_3() {
    let out = repro(&["--tiny", "fig99"]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment"), "{stderr:?}");
    assert!(stderr.contains("--list"), "stderr should point at --list: {stderr:?}");
}

#[test]
fn unwritable_output_path_exits_4() {
    let missing = std::env::temp_dir().join("desc-cli-no-such-dir").join("out.json");
    let missing = missing.to_str().expect("utf-8 temp path");
    for flag in ["--trace", "--report"] {
        let out = repro(&["--tiny", "--quiet", flag, missing, "fig13"]);
        assert_eq!(
            out.status.code(),
            Some(4),
            "{flag} to an unwritable path must exit 4, got {:?}",
            out.status.code()
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("failed to write"), "{stderr:?}");
    }
}

#[test]
fn unusable_cache_dir_exits_5() {
    let dir = temp_dir("cache-exit");
    // A plain file where the cache directory should be.
    let file = dir.join("not-a-dir");
    std::fs::write(&file, b"x").expect("create blocking file");
    let out = repro(&["--tiny", "--quiet", "--cache-dir", file.to_str().expect("utf-8"), "fig13"]);
    assert_eq!(
        out.status.code(),
        Some(5),
        "a file as --cache-dir must exit 5, got {:?}",
        out.status.code()
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unusable cache dir"), "{stderr:?}");
    assert!(out.stdout.is_empty(), "cache errors must not print partial results");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_and_report_artifacts_are_valid_and_csv_is_bit_exact_across_pool_shapes() {
    let dir = temp_dir("artifacts");
    let trace_path = dir.join("trace.json");
    let report_path = dir.join("report.json");

    // Baseline: serial, untraced.
    let base = repro(&["--tiny", "--csv", "--quiet", "fig16", "fig23"]);
    assert!(base.status.success(), "baseline run failed: {base:?}");
    assert!(!base.stdout.is_empty());

    // Fanned out, untraced: identical CSV bytes.
    let fanned = repro(&[
        "--tiny", "--csv", "--quiet", "--jobs", "4", "--shards", "2", "fig16", "fig23",
    ]);
    assert!(fanned.status.success());
    assert_eq!(
        base.stdout, fanned.stdout,
        "CSV output diverged between (jobs,shards)=(1,1) and (4,2)"
    );

    // Fanned out *and* traced *and* reporting: still identical bytes.
    let traced = repro(&[
        "--tiny",
        "--csv",
        "--quiet",
        "--jobs",
        "4",
        "--shards",
        "2",
        "--trace",
        trace_path.to_str().expect("utf-8 path"),
        "--report",
        report_path.to_str().expect("utf-8 path"),
        "fig16",
        "fig23",
    ]);
    assert!(traced.status.success(), "traced run failed: {traced:?}");
    assert_eq!(base.stdout, traced.stdout, "enabling --trace/--report changed CSV output");

    // The trace is valid Chrome trace-event JSON: named worker lanes,
    // X events on the timeline, and every event lane has lane metadata.
    let trace = Json::parse(&std::fs::read_to_string(&trace_path).expect("trace written"))
        .expect("trace parses as JSON");
    let events = trace.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let xs: Vec<&Json> =
        events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
    assert!(!xs.is_empty(), "trace has no complete events");
    let lane_named = |tid: u64| {
        events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("name").and_then(Json::as_str) == Some("thread_name")
                && e.get("tid").and_then(Json::as_u64) == Some(tid)
        })
    };
    for x in &xs {
        let tid = x.get("tid").and_then(Json::as_u64).expect("X event has tid");
        assert!(lane_named(tid), "event lane {tid} has no thread_name metadata");
    }
    // The sweep itself is on the timeline: experiment, cell, and
    // region spans (partitions come from --shards 2 sharded cells).
    for family in ["experiment", "cell", "region", "partition"] {
        assert!(
            xs.iter().any(|x| {
                x.get("args").and_then(|a| a.get("family")).and_then(Json::as_str)
                    == Some(family)
            }),
            "no {family} events in the trace"
        );
    }

    // The report carries the pool_utilization stanza, consistent with
    // the schema: cells region present with nonzero tasks, and worker
    // ordinals that the trace also used.
    let report = Json::parse(&std::fs::read_to_string(&report_path).expect("report written"))
        .expect("report parses as JSON");
    assert_eq!(
        report.get("schema").and_then(Json::as_str),
        Some("desc-run-report/v1"),
        "report schema tag"
    );
    assert!(report.get("meta").and_then(|m| m.get("spans_dropped")).is_some());
    let pool = report.get("pool_utilization").expect("report has pool_utilization");
    let workers = pool.get("workers").and_then(Json::as_arr).expect("workers array");
    assert!(!workers.is_empty(), "pool_utilization lists no workers");
    let regions = pool.get("regions").expect("regions object");
    let cells = regions.get("cells").expect("cells region in pool_utilization");
    assert!(
        cells.get("tasks").and_then(Json::as_u64).unwrap_or(0) > 0,
        "cells region ran no tasks"
    );

    std::fs::remove_dir_all(&dir).ok();
}
