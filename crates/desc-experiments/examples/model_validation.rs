//! Per-application model-validation dump: miss rates, static-energy
//! shares, and execution windows under the binary baseline — the
//! quantities that must stay physically plausible for the figure
//! reproductions to be meaningful.
//!
//! ```text
//! cargo run --release -p desc-experiments --example model_validation
//! ```

use desc_core::schemes::SchemeKind;
use desc_experiments::common::{run_app, Scale};
use desc_workloads::parallel_suite;

fn main() {
    let scale = Scale { accesses: 15_000, apps: 16, seed: 2013, jobs: 1, shards: 1 };
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "app", "miss", "static frac", "htree frac", "flips/block", "exec (us)"
    );
    for p in parallel_suite() {
        let r = run_app(SchemeKind::ConventionalBinary, &p, &scale);
        println!(
            "{:<16} {:>6.2} {:>12.2} {:>12.2} {:>12.0} {:>10.1}",
            p.name,
            r.result.miss_rate(),
            r.l2.static_j / r.l2.total(),
            r.l2.htree_dynamic_j / r.l2.total(),
            r.result.activity.htree_transitions as f64 / r.result.transfer.blocks() as f64,
            r.result.exec_time_s * 1e6,
        );
    }
}
