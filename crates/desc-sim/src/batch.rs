//! Slab batching for the simulators' transfer hot path.
//!
//! Both simulators drive every L2 block movement through a real
//! [`TransferScheme`]; per-access `transfer` calls dominated their
//! profiles. Instead, value-stream blocks accumulate into a per-channel
//! [`BlockSlab`] and are encoded in bounded flushes through
//! [`TransferScheme::transfer_many`], whose kernels are bit-identical
//! to the scalar path (pinned by `desc-core`'s slab-equivalence suite).
//! The queued accesses are then replayed in program order against the
//! returned costs, so every downstream accumulation — cost summaries,
//! f64 energy sums, bank schedules, DRAM events — happens in exactly
//! the order the per-access code produced.
//!
//! Setting the `DESC_SCALAR_TRANSFERS` environment variable to anything
//! but `0`/empty forces the scalar reference loop
//! ([`desc_core::transfer_each`]) inside the same drain structure; CI
//! byte-compares figure CSVs across the toggle.

use desc_core::{transfer_each, Block, BlockSlab, TransferCost, TransferScheme};

/// Queued blocks per partition before a drain is forced. Bounds the
/// slab and cost buffers to a few tens of KiB per channel while still
/// amortizing dispatch and telemetry over hundreds of blocks.
pub(crate) const FLUSH_CAP: usize = 256;

/// True when the `DESC_SCALAR_TRANSFERS` toggle selects the scalar
/// reference path.
pub(crate) fn scalar_transfers() -> bool {
    std::env::var_os("DESC_SCALAR_TRANSFERS").is_some_and(|v| !v.is_empty() && v != "0")
}

/// One transfer channel's batch state: the slab of blocks awaiting
/// encode and the costs of the last drain, consumed in FIFO order.
pub(crate) struct ChannelBatch {
    slab: BlockSlab,
    costs: Vec<TransferCost>,
    cursor: usize,
}

impl ChannelBatch {
    pub(crate) fn new(block_bytes: usize) -> Self {
        Self {
            slab: BlockSlab::with_capacity(block_bytes, FLUSH_CAP),
            costs: Vec::with_capacity(FLUSH_CAP),
            cursor: 0,
        }
    }

    /// Queues one block (copied into the slab — the caller may reuse
    /// the source buffer immediately).
    pub(crate) fn push(&mut self, block: &Block) {
        self.slab.push(block);
    }

    /// Blocks queued since the last [`ChannelBatch::encode`].
    pub(crate) fn queued(&self) -> usize {
        self.slab.len()
    }

    /// Encodes the queued slab through `scheme`, refilling the cost
    /// queue. `scalar` selects the reference loop instead of the
    /// batched kernel (the `DESC_SCALAR_TRANSFERS` toggle).
    pub(crate) fn encode(&mut self, scheme: &mut dyn TransferScheme, scalar: bool) {
        debug_assert_eq!(self.cursor, self.costs.len(), "unconsumed costs at encode");
        self.costs.clear();
        self.cursor = 0;
        if scalar {
            transfer_each(scheme, &self.slab, &mut self.costs);
        } else {
            scheme.transfer_many(&self.slab, &mut self.costs);
        }
        self.slab.clear();
    }

    /// Pops the next cost in queue order.
    pub(crate) fn next_cost(&mut self) -> TransferCost {
        let cost = self.costs[self.cursor];
        self.cursor += 1;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_core::schemes::{DescScheme, SkipMode};
    use desc_core::ChunkSize;

    #[test]
    fn costs_come_back_in_queue_order_across_drains() {
        let mut scalar = DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::LastValue);
        let mut batched = scalar.clone();
        let mut batch = ChannelBatch::new(64);
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for round in 0..3u8 {
            for k in 0..10u8 {
                let block = Block::from_bytes(&[round.wrapping_mul(31) ^ k; 64]);
                expected.push(scalar.transfer(&block));
                batch.push(&block);
            }
            batch.encode(&mut batched, false);
            for _ in 0..10 {
                got.push(batch.next_cost());
            }
        }
        assert_eq!(expected, got);
    }

    #[test]
    fn scalar_toggle_takes_the_reference_loop() {
        let mut a = DescScheme::new(128, ChunkSize::PAPER_DEFAULT, SkipMode::Zero);
        let mut b = a.clone();
        let mut fast = ChannelBatch::new(64);
        let mut reference = ChannelBatch::new(64);
        for k in 0..20u8 {
            let block = Block::from_bytes(&[k; 64]);
            fast.push(&block);
            reference.push(&block);
        }
        fast.encode(&mut a, false);
        reference.encode(&mut b, true);
        for _ in 0..20 {
            assert_eq!(fast.next_cost(), reference.next_cost());
        }
    }
}
