//! Set-associative cache directory with true-LRU replacement.
//!
//! Tags only — block *contents* are modelled statistically by
//! `desc-workloads` value streams, so the directory tracks presence,
//! dirtiness, and sharers, which is all the timing and activity model
//! needs.

/// Result of a cache lookup-and-update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// The block was present.
    Hit,
    /// The block was absent; no dirty block was displaced.
    Miss {
        /// Whether the fill displaced a dirty block that must be
        /// written back.
        writeback: bool,
    },
}

impl CacheOutcome {
    /// True on hit.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: higher = more recent.
    stamp: u64,
    /// Bitmap of cores that touched the block since the last write.
    sharers: u32,
}

/// A set-associative, write-back, allocate-on-miss cache directory.
///
/// # Examples
///
/// ```
/// use desc_sim::SetAssocCache;
///
/// let mut l2 = SetAssocCache::new(8 << 20, 64, 16);
/// assert!(!l2.access(0x1000, false, 0).is_hit()); // cold miss
/// assert!(l2.access(0x1000, false, 0).is_hit());  // now resident
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    /// All lines in one flat allocation, `ways` consecutive entries
    /// per set — the directory is scanned on every simulated access,
    /// so contiguity (and not re-allocating per bank slice) matters.
    lines: Vec<Line>,
    ways: usize,
    block_bytes: u64,
    set_shift: u32,
    /// Mask over the *global* set index (full-cache set count − 1),
    /// even for a bank slice.
    set_mask: u64,
    /// log2 of the global set count — where the tag begins.
    tag_shift: u32,
    /// log2 of the bank count for a bank slice (0 for a full cache):
    /// with block-interleaved banking the low `slice_shift` bits of the
    /// global set index equal the bank id, so shifting them out yields
    /// the local set index.
    slice_shift: u32,
    clock: u64,
    invalidations: u64,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `block_bytes` blocks
    /// and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not
    /// a power-of-two multiple of `block_bytes × ways`).
    #[must_use]
    pub fn new(capacity_bytes: usize, block_bytes: usize, ways: usize) -> Self {
        let set_count = Self::checked_set_count(capacity_bytes, block_bytes, ways);
        Self {
            lines: vec![Line::default(); set_count * ways],
            ways,
            block_bytes: block_bytes as u64,
            set_shift: block_bytes.trailing_zeros(),
            set_mask: (set_count - 1) as u64,
            tag_shift: set_count.trailing_zeros(),
            slice_shift: 0,
            clock: 0,
            invalidations: 0,
        }
    }

    /// Validates the geometry and returns the full-cache set count.
    fn checked_set_count(capacity_bytes: usize, block_bytes: usize, ways: usize) -> usize {
        assert!(capacity_bytes > 0 && block_bytes > 0 && ways > 0, "degenerate geometry");
        let blocks = capacity_bytes / block_bytes;
        assert!(blocks >= ways, "capacity below one set");
        let set_count = blocks / ways;
        assert!(set_count.is_power_of_two(), "set count {set_count} must be a power of two");
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        set_count
    }

    /// Creates the directory slice owned by one bank of a
    /// block-interleaved banked cache.
    ///
    /// With `bank_of(addr) = block % banks` and `set = block % sets`,
    /// any power-of-two `banks ≤ sets` makes the bank id exactly the
    /// low bits of the set index, so the cache's sets partition cleanly
    /// across banks: this slice holds the `sets / banks` sets whose
    /// index is ≡ `bank (mod banks)` and sees exactly the accesses the
    /// full cache would route to them. Simulating every bank's slice
    /// independently therefore reproduces the full cache's hit/miss/
    /// victim decisions — the basis of bank-sharded simulation.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`SetAssocCache::new`]), if
    /// `banks` is not a power of two, if `banks` exceeds the set count,
    /// or if `bank >= banks`.
    #[must_use]
    pub fn bank_slice(
        capacity_bytes: usize,
        block_bytes: usize,
        ways: usize,
        banks: usize,
        bank: usize,
    ) -> Self {
        // The slice allocates only its own sets — a 128-bank S-NUCA
        // run builds 128 slices per cell, so constructing (and then
        // discarding) the full directory here would dominate setup.
        let set_count = Self::checked_set_count(capacity_bytes, block_bytes, ways);
        assert!(banks.is_power_of_two(), "bank count {banks} must be a power of two");
        assert!(banks <= set_count, "bank count {banks} exceeds set count {set_count}");
        assert!(bank < banks, "bank {bank} out of range");
        Self {
            lines: vec![Line::default(); (set_count / banks) * ways],
            ways,
            block_bytes: block_bytes as u64,
            set_shift: block_bytes.trailing_zeros(),
            set_mask: (set_count - 1) as u64,
            tag_shift: set_count.trailing_zeros(),
            slice_shift: banks.trailing_zeros(),
            clock: 0,
            invalidations: 0,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.lines.len() / self.ways
    }

    /// Looks up `addr`, allocating on miss (LRU victim), marking dirty
    /// on write, and tracking sharers for invalidation statistics.
    pub fn access(&mut self, addr: u64, write: bool, core: u8) -> CacheOutcome {
        self.clock += 1;
        let block = addr >> self.set_shift;
        let set_index = ((block & self.set_mask) >> self.slice_shift) as usize;
        let tag = block >> self.tag_shift;
        let base = set_index * self.ways;
        let set = &mut self.lines[base..base + self.ways];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.clock;
            if write {
                // A write by one core invalidates other sharers' L1
                // copies (MESI-style upgrade).
                let others = line.sharers & !(1 << core);
                if others != 0 {
                    self.invalidations += u64::from(others.count_ones());
                }
                line.dirty = true;
                line.sharers = 1 << core;
            } else {
                line.sharers |= 1 << core;
            }
            return CacheOutcome::Hit;
        }

        // Miss: evict LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("sets are non-empty");
        let writeback = victim.valid && victim.dirty;
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.clock,
            sharers: 1 << core,
        };
        CacheOutcome::Miss { writeback }
    }

    /// L1 invalidation messages generated by write sharing so far.
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Block size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l2_geometry() {
        let l2 = SetAssocCache::new(8 << 20, 64, 16);
        assert_eq!(l2.set_count(), 8192);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, 2-set cache: fill one set with A and B, touch A, add
        // C → B must be evicted.
        let mut c = SetAssocCache::new(256, 64, 2); // 2 sets × 2 ways
        let a = 0x000;
        let b = 0x100; // same set as A (set bit = bit 6)
        let c3 = 0x200;
        assert!(!c.access(a, false, 0).is_hit());
        assert!(!c.access(b, false, 0).is_hit());
        assert!(c.access(a, false, 0).is_hit());
        assert!(!c.access(c3, false, 0).is_hit()); // evicts B
        assert!(c.access(a, false, 0).is_hit());
        assert!(!c.access(b, false, 0).is_hit()); // B was the victim
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = SetAssocCache::new(128, 64, 1); // direct-mapped, 2 sets
        assert!(!c.access(0x000, true, 0).is_hit());
        match c.access(0x100, false, 0) {
            CacheOutcome::Miss { writeback } => assert!(writeback),
            CacheOutcome::Hit => panic!("conflicting block must miss"),
        }
        // The replacement was clean, so the next eviction is clean.
        match c.access(0x200, false, 0) {
            CacheOutcome::Miss { writeback } => assert!(!writeback),
            CacheOutcome::Hit => panic!("conflicting block must miss"),
        }
    }

    #[test]
    fn write_sharing_counts_invalidations() {
        let mut c = SetAssocCache::new(8 << 20, 64, 16);
        c.access(0x40, false, 0);
        c.access(0x40, false, 1);
        c.access(0x40, false, 2);
        assert_eq!(c.invalidations(), 0);
        c.access(0x40, true, 3); // invalidates cores 0–2
        assert_eq!(c.invalidations(), 3);
        c.access(0x40, true, 3); // sole owner: nothing to invalidate
        assert_eq!(c.invalidations(), 3);
    }

    #[test]
    fn working_set_beyond_capacity_misses() {
        let mut c = SetAssocCache::new(4096, 64, 4);
        // Stream 4× the capacity twice: second pass still misses.
        let blocks = 4 * 4096 / 64;
        for pass in 0..2 {
            let mut misses = 0;
            for b in 0..blocks {
                if !c.access((b * 64) as u64, false, 0).is_hit() {
                    misses += 1;
                }
            }
            assert_eq!(misses, blocks, "pass {pass}");
        }
    }

    #[test]
    fn resident_set_hits_after_warmup() {
        let mut c = SetAssocCache::new(8192, 64, 4);
        for b in 0..64u64 {
            c.access(b * 64, false, 0);
        }
        let hits = (0..64u64).filter(|b| c.access(b * 64, false, 0).is_hit()).count();
        assert_eq!(hits, 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = SetAssocCache::new(3 * 64 * 4, 64, 4);
    }

    #[test]
    fn bank_slices_reproduce_the_full_cache_exactly() {
        // Drive a mixed read/write stream through the full cache and
        // through per-bank slices; every outcome must match and the
        // invalidation counts must sum. This is the exactness argument
        // behind bank-sharded simulation: sets partition by bank, and
        // LRU stamps only ever compare within one set.
        let (capacity, block, ways, banks) = (16 << 10, 64, 4, 4);
        let mut full = SetAssocCache::new(capacity, block, ways);
        let mut slices: Vec<SetAssocCache> = (0..banks)
            .map(|b| SetAssocCache::bank_slice(capacity, block, ways, banks, b))
            .collect();

        let mut state = 42u64;
        for i in 0..20_000u64 {
            // Cheap LCG over a footprint 4× the capacity.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (state >> 16) % (4 * capacity as u64);
            let write = state.is_multiple_of(3);
            let core = (state % 4) as u8;
            let bank = ((addr / block as u64) % banks as u64) as usize;
            let expect = full.access(addr, write, core);
            let got = slices[bank].access(addr, write, core);
            assert_eq!(got, expect, "access {i} addr {addr:#x} bank {bank}");
        }
        let sliced: u64 = slices.iter().map(SetAssocCache::invalidations).sum();
        assert_eq!(sliced, full.invalidations());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bank_slice_rejects_non_power_of_two_banks() {
        let _ = SetAssocCache::bank_slice(8 << 20, 64, 16, 3, 0);
    }
}
