//! Per-core L1 caches in front of the shared L2 (Table 1: 16 KB
//! direct-mapped IL1, 16 KB 4-way DL1, MESI protocol).
//!
//! The main experiment pipeline drives the L2 with post-L1 traces (the
//! statistics `desc-workloads` calibrates are L2-level), but the L1
//! layer is a real substrate: a [`CoreComplex`] filters a CPU-level
//! access stream through private L1s with MESI coherence, producing
//! the L2 request stream plus hit/miss and protocol statistics.

use crate::cache::SetAssocCache;
use crate::coherence::{CoherenceStats, Directory};
use desc_core::rng::Rng64;
use desc_workloads::Access;

/// Statistics from filtering a CPU stream through the L1 layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct L1Stats {
    /// Data-cache accesses.
    pub accesses: u64,
    /// Data-cache hits.
    pub hits: u64,
    /// L1 evictions of dirty lines (write-backs toward the L2).
    pub writebacks: u64,
}

impl L1Stats {
    /// L1 hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// The private L1 layer of all cores plus the MESI directory.
///
/// # Examples
///
/// ```
/// use desc_sim::hierarchy::CoreComplex;
/// use desc_workloads::Access;
///
/// let mut cores = CoreComplex::new(8);
/// // A tight per-core loop hits in the L1 after the first touch.
/// let a = Access { addr: 0x4000, write: false, core: 2 };
/// assert!(cores.access(a).is_some());  // cold: goes to the L2
/// assert!(cores.access(a).is_none());  // warm: filtered
/// ```
#[derive(Clone, Debug)]
pub struct CoreComplex {
    l1d: Vec<SetAssocCache>,
    directory: Directory,
    stats: L1Stats,
}

/// Table 1 DL1 geometry: 16 KB, 4-way, 64 B blocks.
const L1_BYTES: usize = 16 << 10;
const L1_WAYS: usize = 4;
const BLOCK_BYTES: usize = 64;

impl CoreComplex {
    /// Creates `cores` private DL1s and the shared directory.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or above 32.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        assert!((1..=32).contains(&cores), "core count {cores} out of range");
        Self {
            l1d: (0..cores).map(|_| SetAssocCache::new(L1_BYTES, BLOCK_BYTES, L1_WAYS)).collect(),
            directory: Directory::new(cores),
            stats: L1Stats::default(),
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.l1d.len()
    }

    /// Filters one CPU access through the issuing core's L1. Returns
    /// `Some(access)` when the request must go to the L2 (L1 miss),
    /// `None` when the L1 absorbs it.
    ///
    /// # Panics
    ///
    /// Panics if the access names a core this complex does not have.
    pub fn access(&mut self, access: Access) -> Option<Access> {
        let core = access.core as usize;
        assert!(core < self.l1d.len(), "core {core} out of range");
        self.stats.accesses += 1;
        // Keep the directory coherent regardless of hit/miss.
        if access.write {
            self.directory.write(access.core, access.addr);
        } else {
            let _ = self.directory.read(access.core, access.addr);
        }
        let outcome = self.l1d[core].access(access.addr, access.write, access.core);
        let result = match outcome {
            crate::cache::CacheOutcome::Hit => {
                self.stats.hits += 1;
                None
            }
            crate::cache::CacheOutcome::Miss { writeback } => {
                if writeback {
                    self.stats.writebacks += 1;
                }
                Some(access)
            }
        };
        // Mirror into the global registry; the per-instance `L1Stats`
        // stays authoritative for per-run figure math.
        if desc_telemetry::enabled() {
            desc_telemetry::counter!("sim.l1.accesses").incr();
            if result.is_none() {
                desc_telemetry::counter!("sim.l1.hits").incr();
            }
            if matches!(outcome, crate::cache::CacheOutcome::Miss { writeback: true }) {
                desc_telemetry::counter!("sim.l1.writebacks").incr();
            }
        }
        result
    }

    /// L1-layer statistics.
    #[must_use]
    pub fn stats(&self) -> L1Stats {
        self.stats
    }

    /// MESI protocol traffic.
    #[must_use]
    pub fn coherence(&self) -> CoherenceStats {
        self.directory.stats()
    }
}

/// Expands a benchmark's L2-level trace back into a CPU-level stream:
/// each L2-bound access is preceded by a burst of accesses to the
/// issuing core's private, L1-resident working set (stack and locals),
/// so that the L1 filter reproduces the benchmark's L2 intensity.
///
/// # Examples
///
/// ```
/// use desc_sim::hierarchy::{CoreComplex, CpuStream};
/// use desc_workloads::BenchmarkId;
///
/// let profile = BenchmarkId::Lu.profile();
/// let mut stream = CpuStream::new(&profile, 3, 9);
/// let mut cores = CoreComplex::new(profile.cores);
/// let mut to_l2 = 0;
/// for _ in 0..2_000 {
///     if cores.access(stream.next_access()).is_some() {
///         to_l2 += 1;
///     }
/// }
/// assert!(to_l2 < 2_000, "the L1s must absorb private traffic");
/// ```
#[derive(Clone, Debug)]
pub struct CpuStream {
    inner: desc_workloads::TraceGenerator,
    rng: Rng64,
    /// Private accesses emitted per shared (L2-bound) access.
    burst: u32,
    burst_left: u32,
    pending: Option<Access>,
    cores: usize,
}

impl CpuStream {
    /// Creates a CPU-level stream for `profile`; `burst` private
    /// accesses accompany each shared access.
    #[must_use]
    pub fn new(profile: &desc_workloads::BenchmarkProfile, burst: u32, seed: u64) -> Self {
        Self {
            inner: profile.trace(seed),
            rng: Rng64::seed_from_u64(seed ^ 0xABCD_EF01),
            burst,
            burst_left: 0,
            pending: None,
            cores: profile.cores,
        }
    }

    /// Draws the next CPU-level access.
    pub fn next_access(&mut self) -> Access {
        if self.burst_left == 0 {
            let shared = self.inner.next_access();
            self.burst_left = self.burst;
            self.pending = Some(shared);
            if self.burst == 0 {
                self.burst_left = 0;
                return self.pending.take().expect("just set");
            }
        }
        self.burst_left -= 1;
        if self.burst_left == 0 {
            if let Some(shared) = self.pending.take() {
                return shared;
            }
        }
        // Private access: a small per-core region disjoint from the
        // shared working set (high address bit set).
        let core = self
            .pending
            .map_or_else(|| self.rng.gen_range(0..self.cores) as u8, |a| a.core);
        let slot = self.rng.gen_range(0..64u64); // 4 KB of hot locals
        Access {
            addr: (1 << 40) | (u64::from(core) << 20) | (slot * 64),
            write: self.rng.gen::<f64>() < 0.3,
            core,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_workloads::BenchmarkId;

    #[test]
    fn l1_absorbs_private_bursts() {
        let profile = BenchmarkId::Swim.profile();
        let mut stream = CpuStream::new(&profile, 9, 1);
        let mut cores = CoreComplex::new(profile.cores);
        let n = 50_000;
        let mut to_l2 = 0u64;
        for _ in 0..n {
            if cores.access(stream.next_access()).is_some() {
                to_l2 += 1;
            }
        }
        let hit_rate = cores.stats().hit_rate();
        assert!(hit_rate > 0.7, "L1 hit rate {hit_rate:.3}");
        // Roughly one in (burst+1) accesses is shared; most shared
        // accesses miss the tiny L1.
        let share = to_l2 as f64 / n as f64;
        assert!((0.02..=0.25).contains(&share), "L2-bound share {share:.3}");
    }

    #[test]
    fn coherence_traffic_appears_on_shared_data() {
        let profile = BenchmarkId::Ocean.profile();
        let mut stream = CpuStream::new(&profile, 3, 2);
        let mut cores = CoreComplex::new(profile.cores);
        for _ in 0..40_000 {
            let _ = cores.access(stream.next_access());
        }
        let c = cores.coherence();
        assert!(c.invalidations > 0, "expected write sharing");
        assert!(c.downgrades > 0, "expected M-line reads");
    }

    #[test]
    fn single_core_spec_apps_have_no_coherence_traffic() {
        let profile = BenchmarkId::Sjeng.profile();
        let mut stream = CpuStream::new(&profile, 5, 3);
        let mut cores = CoreComplex::new(profile.cores);
        for _ in 0..20_000 {
            let _ = cores.access(stream.next_access());
        }
        let c = cores.coherence();
        assert_eq!(c.invalidations, 0);
        assert_eq!(c.downgrades, 0);
        assert!(cores.stats().hit_rate() > 0.5);
    }

    #[test]
    fn zero_burst_passes_the_raw_trace() {
        let profile = BenchmarkId::Lu.profile();
        let mut plain = profile.trace(7);
        let mut stream = CpuStream::new(&profile, 0, 7);
        for _ in 0..100 {
            assert_eq!(stream.next_access(), plain.next_access());
        }
    }

    #[test]
    fn dirty_l1_evictions_count_writebacks() {
        let mut cores = CoreComplex::new(1);
        // Write a streaming footprint bigger than the 16 KB L1.
        for i in 0..2_000u64 {
            let _ = cores.access(Access { addr: i * 64, write: true, core: 0 });
        }
        assert!(cores.stats().writebacks > 0);
    }
}
