//! S-NUCA-1 system simulation (paper §5.5, Figs. 23/24).
//!
//! 128 banks with private, statically-routed 128-bit channels: access
//! latency and wire energy depend on the bank, there is no shared
//! H-tree trunk, and bank-level parallelism is abundant. Each bank's
//! channel keeps its own wire state, so transfer schemes are
//! instantiated per bank.
//!
//! # Bank-sharded execution
//!
//! The S-NUCA organisation is the ideal case for the bank-sharded
//! decomposition used by [`crate::system::SystemSim`], because the
//! serial model *already* gives every bank a private channel (its own
//! [`TransferScheme`] replica) and a private value stream: there is no
//! shared wire state to replicate, so the per-bank decomposition is
//! exact by construction. One simulation cell always decomposes into
//! one partition per bank — each owning the bank's directory slice
//! ([`crate::cache::SetAssocCache::bank_slice`]), channel replica
//! ([`TransferScheme::clone_box`]), value stream
//! (`mix_seed(seed, bank)`), and port schedule — and the partitions run
//! serially or on up to [`crate::config::SimConfig::shards`] worker
//! threads. The only cross-bank coupling, DRAM channel contention, is
//! reconciled at a deterministic epoch barrier: partitions emit miss
//! requests with issue timestamps, and the requests are replayed
//! through one shared [`Dram`] ordered by
//! `(issue / dram_epoch_cycles, program index)`. Results are therefore
//! **bit-identical for any shard count**.

use crate::bank::{home_bank, BankScheduler};
use crate::batch::{scalar_transfers, ChannelBatch, FLUSH_CAP};
use crate::cache::{CacheOutcome, SetAssocCache};
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::shard::run_parts;
use desc_cacti::snuca::SnucaModel;
use desc_core::TransferScheme;
use desc_workloads::{Access, BenchmarkProfile};
use std::sync::Mutex;

/// Result of an S-NUCA-1 run.
#[derive(Clone, Debug)]
pub struct SnucaResult {
    /// L2 accesses simulated.
    pub accesses: u64,
    /// L2 misses.
    pub misses: u64,
    /// Execution time in cycles.
    pub exec_cycles: u64,
    /// Execution time in seconds.
    pub exec_time_s: f64,
    /// Wire switching energy on the bank channels in joules.
    pub wire_energy_j: f64,
    /// Array + tag dynamic energy in joules.
    pub array_energy_j: f64,
    /// Leakage energy in joules.
    pub static_energy_j: f64,
    /// Mean intrinsic hit latency in cycles.
    pub avg_hit_latency_cycles: f64,
}

impl SnucaResult {
    /// Total L2 energy in joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.wire_energy_j + self.array_energy_j + self.static_energy_j
    }
}

/// Per-bank array delay: S-NUCA banks are 64 KB, much faster than the
/// UCA's 1 MB banks — a fixed 3-cycle array access.
const ARRAY_CYCLES: u64 = 3;

/// One bank partition's output. Every field merges
/// order-independently (sums, maxima, histogram absorbs), so the
/// reduction over partitions is deterministic for any shard count.
struct PartitionOut {
    wire_energy_j: f64,
    array_energy_j: f64,
    hits: u64,
    misses: u64,
    hit_latency_sum: u64,
    /// Queue + intrinsic latency over the partition's accesses; the
    /// DRAM share of miss latency is added at the epoch barrier.
    latency_sum: u64,
    horizon: u64,
    transitions: u64,
    /// Miss requests for the shared DRAM, exchanged at the barrier.
    events: Vec<MissEvent>,
    hit_latency_hist: desc_telemetry::LocalHistogram,
}

/// An access whose bookkeeping is deferred until its channel's batch
/// drains: the S-NUCA energy sums are `f64` accumulations whose order
/// must match the per-access scalar loop bit for bit, so *everything*
/// except the directory lookup and the value-stream draws replays at
/// drain time, in program order.
struct PendingAccess {
    idx: u32,
    addr: u64,
    bank: usize,
    miss: bool,
    writeback: bool,
}

/// A cross-bank DRAM request exchanged at the epoch barrier.
struct MissEvent {
    /// Global program-order index — the within-epoch order.
    idx: u64,
    addr: u64,
    /// Cycle the request reaches DRAM (bank start + array + wire).
    issue: u64,
    /// Requester arrival time, subtracted from the DRAM completion to
    /// yield the access's memory latency share.
    arrival: u64,
}

/// A configured S-NUCA-1 simulation.
///
/// The same `SnucaSim` can run different transfer schemes; each run
/// replays the identical trace and per-bank block-content streams, so
/// scheme comparisons are paired.
pub struct SnucaSim {
    config: SimConfig,
    profile: BenchmarkProfile,
    seed: u64,
}

impl SnucaSim {
    /// Creates an S-NUCA-1 simulation of `profile`.
    #[must_use]
    pub fn new(config: SimConfig, profile: BenchmarkProfile, seed: u64) -> Self {
        Self { config, profile, seed }
    }

    /// Runs `accesses` accesses through `scheme` and returns the
    /// measured result.
    ///
    /// `scheme` supplies the configuration — each of the 128 bank
    /// channels gets its own power-on replica via
    /// [`TransferScheme::clone_box`], because S-NUCA channels have
    /// independent wire state. The cell always decomposes into one
    /// partition per bank, executed on up to
    /// [`SimConfig::shards`] worker threads (see the module docs);
    /// the result is bit-identical for any shard count.
    ///
    /// # Examples
    ///
    /// ```
    /// use desc_core::schemes::SchemeKind;
    /// use desc_sim::{SimConfig, SnucaSim};
    /// use desc_workloads::BenchmarkId;
    ///
    /// let mut cfg = SimConfig::paper_multithreaded();
    /// cfg.shards = 2; // worker threads; the result does not depend on this
    /// let sim = SnucaSim::new(cfg, BenchmarkId::Ocean.profile(), 2013);
    /// let r = sim.run(SchemeKind::ZeroSkippedDesc.build_paper_config(), 2_000);
    /// assert_eq!(r.accesses, 2_000);
    /// assert!(r.wire_energy_j > 0.0 && r.exec_time_s > 0.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero.
    pub fn run(&self, scheme: Box<dyn TransferScheme>, accesses: usize) -> SnucaResult {
        assert!(accesses > 0, "simulate at least one access");
        let cfg = &self.config;
        let model = SnucaModel::paper_default();
        let banks_n = model.banks();
        let is_desc = scheme.name().contains("DESC");
        let iface = if is_desc { cfg.desc_interface_cycles } else { 0 };
        let block_bytes = cfg.l2.block_bytes as u64;
        let cache_model = desc_cacti::CacheModel::new(cfg.l2);

        // One partition per bank whenever the geometry decomposes
        // (power-of-two bank count no larger than the set count — the
        // paper's 128-bank / 8192-set configuration always does);
        // otherwise a single partition simulates all banks. Either
        // way the partition count is fixed by the configuration, never
        // by `shards`, so results are shard-count invariant.
        let capacity_blocks = cfg.l2.capacity_bytes / cfg.l2.block_bytes;
        let set_count = capacity_blocks / cfg.l2.associativity;
        let parts = if banks_n.is_power_of_two() && banks_n <= set_count { banks_n } else { 1 };
        let threads = cfg.shards.max(1);

        // The trace is generated once (one sequential RNG stream) and
        // bucketed by owning partition *during* generation: with 128
        // bank partitions, the old shared-trace-plus-`owns()`-filter
        // approach re-scanned the full trace 128 times per cell, which
        // dominated S-NUCA wall-clock. Warmup (directory only — no
        // transfers, no energy) brings the directory to steady state.
        let warmup = (2 * capacity_blocks).max(accesses);
        assert!(accesses < u32::MAX as usize, "measured window exceeds u32 program indices");
        let mut trace_gen = self.profile.trace(self.seed);
        let mut warm_parts: Vec<Vec<Access>> =
            (0..parts).map(|_| Vec::with_capacity(warmup / parts + warmup / 16 + 8)).collect();
        let mut meas_parts: Vec<Vec<(u32, Access)>> =
            (0..parts).map(|_| Vec::with_capacity(accesses / parts + accesses / 16 + 8)).collect();
        for i in 0..warmup + accesses {
            let a = trace_gen.next_access();
            let p = home_bank(a.addr, block_bytes, banks_n) % parts;
            if i < warmup {
                warm_parts[p].push(a);
            } else {
                meas_parts[p].push(((i - warmup) as u32, a));
            }
        }

        // One channel replica per bank, cloned up front on this thread
        // (`clone_box` borrows the template); each partition takes its
        // owned banks' replicas.
        let replicas: Vec<Mutex<Option<Box<dyn TransferScheme>>>> = (0..banks_n)
            .map(|_| {
                let mut replica = scheme.clone_box();
                replica.reset();
                Mutex::new(Some(replica))
            })
            .collect();

        let telemetry = desc_telemetry::enabled();

        let apki = self.profile.l2_apki;
        let cores = self.profile.cores as f64;
        let base_cpa = 1000.0 / (apki * cores * self.profile.base_ipc);

        // ---- Per-bank phase: directory, transfers, bank timing. -----
        // Partition `p` owns banks `b` with `b % parts == p` (exactly
        // bank `p` in the decomposed case): its directory slice, the
        // banks' channel replicas and value streams, and the banks'
        // port schedules. Partitions share no mutable state; the merge
        // below is a deterministic reduction in fixed bank order.
        let outs: Vec<PartitionOut> = run_parts(parts, threads, |p| {
            let mut l2 = SetAssocCache::bank_slice(
                cfg.l2.capacity_bytes,
                cfg.l2.block_bytes,
                cfg.l2.associativity,
                parts,
                p,
            );
            // Owned bank `b` lives at index `b / parts` (b ≡ p mod parts).
            let mut channels: Vec<(Box<dyn TransferScheme>, desc_workloads::ValueStream)> =
                (p..banks_n)
                    .step_by(parts)
                    .map(|b| {
                        let replica = replicas[b]
                            .lock()
                            .expect("replica mutex poisoned")
                            .take()
                            .expect("each bank's replica is taken once");
                        (replica, self.profile.value_stream_for_bank(self.seed, b))
                    })
                    .collect();
            let mut sched = BankScheduler::new(banks_n);

            for &Access { addr, write, core } in &warm_parts[p] {
                let _ = l2.access(addr, write, core);
            }

            let mut out = PartitionOut {
                wire_energy_j: 0.0,
                array_energy_j: 0.0,
                hits: 0,
                misses: 0,
                hit_latency_sum: 0,
                latency_sum: 0,
                horizon: 0,
                transitions: 0,
                events: Vec::new(),
                hit_latency_hist: desc_telemetry::LocalHistogram::new(),
            };
            // Transfers are batched per channel; the queued accesses
            // replay in program order at drain time, so the f64 energy
            // accumulation order — and with it every result bit — is
            // identical to the per-access scalar loop (which the
            // `DESC_SCALAR_TRANSFERS` toggle forces).
            let scalar = scalar_transfers();
            let mut batches: Vec<ChannelBatch> =
                (0..channels.len()).map(|_| ChannelBatch::new(cfg.l2.block_bytes)).collect();
            let mut pending: Vec<PendingAccess> = Vec::with_capacity(FLUSH_CAP);

            let drain = |channels: &mut [(Box<dyn TransferScheme>, desc_workloads::ValueStream)],
                         batches: &mut [ChannelBatch],
                         pending: &mut Vec<PendingAccess>,
                         sched: &mut BankScheduler,
                         out: &mut PartitionOut| {
                if pending.is_empty() {
                    return;
                }
                for (ch, batch) in batches.iter_mut().enumerate() {
                    if batch.queued() > 0 {
                        batch.encode(channels[ch].0.as_mut(), scalar);
                    }
                }
                for pa in pending.drain(..) {
                    let bank = pa.bank;
                    let wire_lat = model.bank_latency_cycles(bank);
                    let arrival = (f64::from(pa.idx) * base_cpa) as u64;
                    out.array_energy_j += cache_model.tag_access_energy();

                    // (occupancy cycles, effective latency cycles) —
                    // the effective window (Fig. 21) makes the
                    // requester-visible latency shorter than the
                    // port-occupancy window.
                    let take = |out: &mut PartitionOut, batch: &mut ChannelBatch| -> (u64, u64) {
                        let cost = batch.next_cost();
                        let transitions = cost.total_transitions();
                        out.transitions += transitions;
                        out.wire_energy_j +=
                            transitions as f64 * model.bank_energy_per_transition(bank);
                        (cost.cycles, cost.latency())
                    };

                    let batch = &mut batches[bank / parts];
                    if pa.miss {
                        out.misses += 1;
                        let (fill, fill_lat) = take(out, batch);
                        out.array_energy_j += cache_model.array_write_energy();
                        let mut service = ARRAY_CYCLES + fill;
                        if pa.writeback {
                            service += take(out, batch).0;
                            out.array_energy_j += cache_model.array_read_energy();
                        }
                        let (start, queue) = sched.schedule(bank, arrival, service);
                        out.events.push(MissEvent {
                            idx: u64::from(pa.idx),
                            addr: pa.addr,
                            issue: start + ARRAY_CYCLES + wire_lat,
                            arrival,
                        });
                        // The DRAM share (completion − arrival) is
                        // added at the epoch barrier below.
                        out.latency_sum += queue + fill_lat + iface;
                    } else {
                        out.hits += 1;
                        let (cycles, lat) = take(out, batch);
                        out.array_energy_j += cache_model.array_read_energy();
                        let latency = ARRAY_CYCLES + wire_lat + lat + iface;
                        out.hit_latency_sum += latency;
                        if telemetry {
                            out.hit_latency_hist.record(latency);
                        }
                        let (_, queue) = sched.schedule(bank, arrival, ARRAY_CYCLES + cycles);
                        out.latency_sum += latency + queue;
                    }
                }
            };

            let mut queued_blocks = 0usize;
            for &(i, Access { addr, write, core }) in &meas_parts[p] {
                let bank = home_bank(addr, block_bytes, banks_n);
                // Queue the access's block(s) — the stream's scratch
                // block is copied into the slab, so the draw order and
                // bytes are identical to per-access transfers.
                let (miss, writeback) = match l2.access(addr, write, core) {
                    CacheOutcome::Hit => (false, false),
                    CacheOutcome::Miss { writeback } => (true, writeback),
                };
                let (_, values) = &mut channels[bank / parts];
                let batch = &mut batches[bank / parts];
                batch.push(values.next_block_ref());
                queued_blocks += 1;
                if miss && writeback {
                    batch.push(values.next_block_ref());
                    queued_blocks += 1;
                }
                pending.push(PendingAccess { idx: i, addr, bank, miss, writeback });
                if queued_blocks >= FLUSH_CAP {
                    drain(&mut channels, &mut batches, &mut pending, &mut sched, &mut out);
                    queued_blocks = 0;
                }
            }
            drain(&mut channels, &mut batches, &mut pending, &mut sched, &mut out);
            out.horizon = sched.horizon();
            out
        });

        // ---- Epoch barrier: shared DRAM replay. ---------------------
        // Cross-bank DRAM channel contention is the one coupling the
        // partitions cannot resolve alone. Requests are ordered by
        // (issue epoch, program order) — a pure function of the
        // per-partition outputs, hence identical for any shard count —
        // and replayed through one shared DRAM.
        let epoch_cycles = cfg.dram_epoch_cycles.max(1);
        let mut events: Vec<MissEvent> = Vec::new();
        let mut outs = outs;
        for out in &mut outs {
            events.append(&mut out.events);
        }
        events.sort_unstable_by_key(|e| (e.issue / epoch_cycles, e.idx));
        let mut dram =
            Dram::new(cfg.dram_channels, cfg.dram_latency_cycles, cfg.dram_occupancy_cycles);
        let mut dram_latency_sum = 0u64;
        for e in &events {
            let done = dram.access(e.addr, e.issue);
            dram_latency_sum += done - e.arrival;
        }

        // ---- Deterministic merge, fixed bank order. -----------------
        let mut wire_energy_j = 0.0f64;
        let mut array_energy_j = 0.0f64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut hit_latency_sum = 0u64;
        let mut latency_sum = dram_latency_sum;
        let mut transitions = 0u64;
        let mut hit_latency_hist = desc_telemetry::LocalHistogram::new();
        let mut horizon = 0u64;
        for out in &outs {
            wire_energy_j += out.wire_energy_j;
            array_energy_j += out.array_energy_j;
            hits += out.hits;
            misses += out.misses;
            hit_latency_sum += out.hit_latency_sum;
            latency_sum += out.latency_sum;
            transitions += out.transitions;
            horizon = horizon.max(out.horizon);
            hit_latency_hist.absorb(&out.hit_latency_hist);
        }

        let base_cycles = (accesses as f64 * base_cpa).ceil() as u64;
        let stall = (latency_sum as f64 * cfg.core.exposure() / cores) as u64;
        let exec_cycles = (base_cycles + stall).max(horizon);
        let exec_time_s = exec_cycles as f64 * cfg.l2.tech.cycle_s();
        let static_energy_j = cache_model.leakage_power() * exec_time_s;

        if telemetry {
            desc_telemetry::counter!("sim.snuca.accesses").add(accesses as u64);
            desc_telemetry::counter!("sim.snuca.hits").add(hits);
            desc_telemetry::counter!("sim.snuca.misses").add(misses);
            desc_telemetry::counter!("sim.snuca.wire_transitions").add(transitions);
            desc_telemetry::counter!("sim.snuca.dram.accesses").add(dram.accesses());
            desc_telemetry::counter!("sim.snuca.dram.row_hits").add(dram.row_hits());
            hit_latency_hist
                .flush_into(desc_telemetry::histogram!("sim.snuca.hit_latency_cycles"));
            desc_telemetry::counter!("sim.snuca.runs").incr();
        }

        SnucaResult {
            accesses: accesses as u64,
            misses,
            exec_cycles,
            exec_time_s,
            wire_energy_j,
            array_energy_j,
            static_energy_j,
            avg_hit_latency_cycles: if hits > 0 {
                hit_latency_sum as f64 / hits as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_core::schemes::SchemeKind;
    use desc_workloads::BenchmarkId;

    fn run(kind: SchemeKind, n: usize) -> SnucaResult {
        let cfg = SimConfig::paper_multithreaded();
        let sim = SnucaSim::new(cfg, BenchmarkId::Ocean.profile(), 11);
        sim.run(kind.build_paper_config(), n)
    }

    #[test]
    fn desc_reduces_snuca_wire_energy() {
        // Paper Fig. 24: zero-skipped DESC improves S-NUCA-1 cache
        // energy by ≈1.6×.
        let bin = run(SchemeKind::ConventionalBinary, 8_000);
        let desc = run(SchemeKind::ZeroSkippedDesc, 8_000);
        assert!(
            desc.wire_energy_j < 0.8 * bin.wire_energy_j,
            "DESC {:.3e} vs binary {:.3e}",
            desc.wire_energy_j,
            bin.wire_energy_j
        );
    }

    #[test]
    fn desc_snuca_execution_penalty_is_small() {
        // Paper Fig. 23: ≈1% execution-time penalty.
        let bin = run(SchemeKind::ConventionalBinary, 8_000);
        let desc = run(SchemeKind::ZeroSkippedDesc, 8_000);
        let overhead = desc.exec_time_s / bin.exec_time_s - 1.0;
        assert!(overhead < 0.05, "S-NUCA overhead {overhead:.3}");
    }

    #[test]
    fn hit_latency_sits_in_the_3_to_13_cycle_band_plus_transfer() {
        let bin = run(SchemeKind::ConventionalBinary, 6_000);
        // array 3 + wire 3..13 + 4 beats (128-bit port → 512/128).
        assert!(
            bin.avg_hit_latency_cycles > 8.0 && bin.avg_hit_latency_cycles < 25.0,
            "hit latency {:.1}",
            bin.avg_hit_latency_cycles
        );
    }

    #[test]
    fn energy_components_are_positive() {
        let r = run(SchemeKind::ZeroSkippedDesc, 4_000);
        assert!(r.wire_energy_j > 0.0);
        assert!(r.array_energy_j > 0.0);
        assert!(r.static_energy_j > 0.0);
        assert!(r.total_energy_j() > r.wire_energy_j);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(SchemeKind::ZeroSkippedDesc, 3_000);
        let b = run(SchemeKind::ZeroSkippedDesc, 3_000);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert!((a.wire_energy_j - b.wire_energy_j).abs() < 1e-18);
    }

    #[test]
    fn shard_count_never_changes_results() {
        // The decomposition unit is the bank — all 128 of them, fixed
        // by the S-NUCA configuration — and `shards` only picks the
        // worker-thread count, so results must be bit-identical for
        // any shard count, including with a stateful last-value
        // scheme whose wire state evolves per channel.
        desc_exec::configure(4);
        for (kind, seed) in [
            (SchemeKind::ZeroSkippedDesc, 2013u64),
            (SchemeKind::LastValueSkippedDesc, 99),
        ] {
            let serial = {
                let mut cfg = SimConfig::paper_multithreaded();
                cfg.shards = 1;
                SnucaSim::new(cfg, BenchmarkId::Ocean.profile(), seed)
                    .run(kind.build_paper_config(), 5_000)
            };
            for shards in [2, 8, 32] {
                let mut cfg = SimConfig::paper_multithreaded();
                cfg.shards = shards;
                let sharded = SnucaSim::new(cfg, BenchmarkId::Ocean.profile(), seed)
                    .run(kind.build_paper_config(), 5_000);
                assert_eq!(serial.misses, sharded.misses, "shards={shards}");
                assert_eq!(serial.exec_cycles, sharded.exec_cycles, "shards={shards}");
                assert_eq!(
                    serial.wire_energy_j.to_bits(),
                    sharded.wire_energy_j.to_bits(),
                    "shards={shards}"
                );
                assert_eq!(
                    serial.array_energy_j.to_bits(),
                    sharded.array_energy_j.to_bits(),
                    "shards={shards}"
                );
                assert_eq!(
                    serial.avg_hit_latency_cycles.to_bits(),
                    sharded.avg_hit_latency_cycles.to_bits(),
                    "shards={shards}"
                );
            }
        }
    }
}
