//! S-NUCA-1 system simulation (paper §5.5, Figs. 23/24).
//!
//! 128 banks with private, statically-routed 128-bit channels: access
//! latency and wire energy depend on the bank, there is no shared
//! H-tree trunk, and bank-level parallelism is abundant. Each bank's
//! channel keeps its own wire state, so transfer schemes are
//! instantiated per bank.

use crate::bank::BankScheduler;
use crate::cache::{CacheOutcome, SetAssocCache};
use crate::config::SimConfig;
use crate::dram::Dram;
use desc_cacti::snuca::SnucaModel;
use desc_core::{TransferScheme, Block};
use desc_workloads::{Access, BenchmarkProfile};

/// Result of an S-NUCA-1 run.
#[derive(Clone, Debug)]
pub struct SnucaResult {
    /// L2 accesses simulated.
    pub accesses: u64,
    /// L2 misses.
    pub misses: u64,
    /// Execution time in cycles.
    pub exec_cycles: u64,
    /// Execution time in seconds.
    pub exec_time_s: f64,
    /// Wire switching energy on the bank channels in joules.
    pub wire_energy_j: f64,
    /// Array + tag dynamic energy in joules.
    pub array_energy_j: f64,
    /// Leakage energy in joules.
    pub static_energy_j: f64,
    /// Mean intrinsic hit latency in cycles.
    pub avg_hit_latency_cycles: f64,
}

impl SnucaResult {
    /// Total L2 energy in joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.wire_energy_j + self.array_energy_j + self.static_energy_j
    }
}

/// A configured S-NUCA-1 simulation.
pub struct SnucaSim {
    config: SimConfig,
    profile: BenchmarkProfile,
    seed: u64,
}

impl SnucaSim {
    /// Creates an S-NUCA-1 simulation of `profile`.
    #[must_use]
    pub fn new(config: SimConfig, profile: BenchmarkProfile, seed: u64) -> Self {
        Self { config, profile, seed }
    }

    /// Runs `accesses` accesses; `make_scheme` builds one transfer
    /// scheme per bank channel (each channel has independent wire
    /// state).
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero.
    pub fn run(
        &self,
        make_scheme: &dyn Fn() -> Box<dyn TransferScheme>,
        accesses: usize,
    ) -> SnucaResult {
        assert!(accesses > 0, "simulate at least one access");
        let model = SnucaModel::paper_default();
        let banks_n = model.banks();
        let mut schemes: Vec<Box<dyn TransferScheme>> = (0..banks_n).map(|_| make_scheme()).collect();
        let is_desc = schemes[0].name().contains("DESC");
        let iface = if is_desc { self.config.desc_interface_cycles } else { 0 };

        // Per-bank array delay: banks are 64 KB, much faster than the
        // UCA's 1 MB banks — use a fixed 3-cycle array access.
        let array = 3u64;

        let mut l2 = SetAssocCache::new(
            self.config.l2.capacity_bytes,
            self.config.l2.block_bytes,
            self.config.l2.associativity,
        );
        let mut values = self.profile.value_stream(self.seed);
        let mut trace_gen = self.profile.trace(self.seed);
        let mut banks = BankScheduler::new(banks_n);
        let mut dram = Dram::new(
            self.config.dram_channels,
            self.config.dram_latency_cycles,
            self.config.dram_occupancy_cycles,
        );

        // Steady-state warmup (directory only), as in `SystemSim`.
        let capacity_blocks = self.config.l2.capacity_bytes / self.config.l2.block_bytes;
        for _ in 0..(2 * capacity_blocks).max(accesses) {
            let Access { addr, write, core } = trace_gen.next_access();
            let _ = l2.access(addr, write, core);
        }

        let mut wire_energy_j = 0.0f64;
        let mut array_energy_j = 0.0f64;
        let mut misses = 0u64;
        let mut hit_latency_sum = 0u64;
        let mut hits = 0u64;
        let mut latency_sum = 0u64;

        let apki = self.profile.l2_apki;
        let cores = self.profile.cores as f64;
        let base_cpa = 1000.0 / (apki * cores * self.profile.base_ipc);
        let cache_model = desc_cacti::CacheModel::new(self.config.l2);

        // (occupancy cycles, effective latency cycles) — DESC's
        // effective window (Fig. 21) makes the requester-visible
        // latency shorter than the port-occupancy window.
        let mut transfer = |bank: usize,
                            schemes: &mut Vec<Box<dyn TransferScheme>>,
                            values: &mut desc_workloads::ValueStream|
         -> (u64, u64) {
            let block: Block = values.next_block();
            let cost = schemes[bank].transfer(&block);
            wire_energy_j +=
                cost.total_transitions() as f64 * model.bank_energy_per_transition(bank);
            (cost.cycles, cost.latency())
        };

        for i in 0..accesses {
            let Access { addr, write, core } = trace_gen.next_access();
            let bank = (addr / 64 % banks_n as u64) as usize;
            let wire_lat = model.bank_latency_cycles(bank);
            let arrival = (i as f64 * base_cpa) as u64;
            array_energy_j += cache_model.tag_access_energy();
            match l2.access(addr, write, core) {
                CacheOutcome::Hit => {
                    hits += 1;
                    let (cycles, lat) = transfer(bank, &mut schemes, &mut values);
                    array_energy_j += cache_model.array_read_energy();
                    let latency = array + wire_lat + lat + iface;
                    hit_latency_sum += latency;
                    let (_, queue) = banks.schedule(bank, arrival, array + cycles);
                    latency_sum += latency + queue;
                }
                CacheOutcome::Miss { writeback } => {
                    misses += 1;
                    let (fill, fill_lat) = transfer(bank, &mut schemes, &mut values);
                    array_energy_j += cache_model.array_write_energy();
                    let mut service = array + fill;
                    if writeback {
                        service += transfer(bank, &mut schemes, &mut values).0;
                        array_energy_j += cache_model.array_read_energy();
                    }
                    let (start, queue) = banks.schedule(bank, arrival, service);
                    let done = dram.access(addr, start + array + wire_lat);
                    latency_sum += queue + (done - arrival) + fill_lat + iface;
                }
            }
        }

        let base_cycles = (accesses as f64 * base_cpa).ceil() as u64;
        let stall = (latency_sum as f64 * self.config.core.exposure() / cores) as u64;
        let exec_cycles = (base_cycles + stall).max(banks.horizon());
        let exec_time_s = exec_cycles as f64 * self.config.l2.tech.cycle_s();
        let static_energy_j = cache_model.leakage_power() * exec_time_s;

        SnucaResult {
            accesses: accesses as u64,
            misses,
            exec_cycles,
            exec_time_s,
            wire_energy_j,
            array_energy_j,
            static_energy_j,
            avg_hit_latency_cycles: if hits > 0 {
                hit_latency_sum as f64 / hits as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_core::schemes::SchemeKind;
    use desc_workloads::BenchmarkId;

    fn run(kind: SchemeKind, n: usize) -> SnucaResult {
        let cfg = SimConfig::paper_multithreaded();
        let sim = SnucaSim::new(cfg, BenchmarkId::Ocean.profile(), 11);
        sim.run(&|| kind.build_paper_config(), n)
    }

    #[test]
    fn desc_reduces_snuca_wire_energy() {
        // Paper Fig. 24: zero-skipped DESC improves S-NUCA-1 cache
        // energy by ≈1.6×.
        let bin = run(SchemeKind::ConventionalBinary, 8_000);
        let desc = run(SchemeKind::ZeroSkippedDesc, 8_000);
        assert!(
            desc.wire_energy_j < 0.8 * bin.wire_energy_j,
            "DESC {:.3e} vs binary {:.3e}",
            desc.wire_energy_j,
            bin.wire_energy_j
        );
    }

    #[test]
    fn desc_snuca_execution_penalty_is_small() {
        // Paper Fig. 23: ≈1% execution-time penalty.
        let bin = run(SchemeKind::ConventionalBinary, 8_000);
        let desc = run(SchemeKind::ZeroSkippedDesc, 8_000);
        let overhead = desc.exec_time_s / bin.exec_time_s - 1.0;
        assert!(overhead < 0.05, "S-NUCA overhead {overhead:.3}");
    }

    #[test]
    fn hit_latency_sits_in_the_3_to_13_cycle_band_plus_transfer() {
        let bin = run(SchemeKind::ConventionalBinary, 6_000);
        // array 3 + wire 3..13 + 4 beats (128-bit port → 512/128).
        assert!(
            bin.avg_hit_latency_cycles > 8.0 && bin.avg_hit_latency_cycles < 25.0,
            "hit latency {:.1}",
            bin.avg_hit_latency_cycles
        );
    }

    #[test]
    fn energy_components_are_positive() {
        let r = run(SchemeKind::ZeroSkippedDesc, 4_000);
        assert!(r.wire_energy_j > 0.0);
        assert!(r.array_energy_j > 0.0);
        assert!(r.static_energy_j > 0.0);
        assert!(r.total_energy_j() > r.wire_energy_j);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(SchemeKind::ZeroSkippedDesc, 3_000);
        let b = run(SchemeKind::ZeroSkippedDesc, 3_000);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert!((a.wire_energy_j - b.wire_energy_j).abs() < 1e-18);
    }
}
