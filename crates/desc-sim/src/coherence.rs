//! MESI coherence directory for the private L1s sharing the L2
//! (Table 1: per-core write-back L1 data caches with a MESI protocol).
//!
//! The directory sits logically at the shared L2: it tracks, per
//! block, which cores hold the line and in what state, and counts the
//! protocol actions (invalidations, downgrades, ownership upgrades,
//! writebacks) that the interconnect must carry.

use std::collections::HashMap;

/// MESI stability states for a line in one core's L1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MesiState {
    /// Dirty sole owner.
    Modified,
    /// Clean sole owner (silent upgrade to M allowed).
    Exclusive,
    /// Clean, possibly multiple sharers.
    Shared,
    /// Not present.
    Invalid,
}

/// Protocol traffic counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoherenceStats {
    /// Invalidation messages sent to sharers on a write.
    pub invalidations: u64,
    /// M→S downgrades (with data writeback) on a remote read.
    pub downgrades: u64,
    /// S→M upgrade requests (write to a shared line).
    pub upgrades: u64,
    /// Dirty data pushed to the L2 by downgrades or evictions.
    pub writebacks: u64,
    /// Cache-to-cache transfers (remote L1 supplies the data).
    pub interventions: u64,
}

/// A full-map MESI directory over the cores' L1 contents.
///
/// # Examples
///
/// ```
/// use desc_sim::coherence::{Directory, MesiState};
///
/// let mut dir = Directory::new(4);
/// assert_eq!(dir.read(0, 0x40), MesiState::Exclusive); // first reader
/// assert_eq!(dir.read(1, 0x40), MesiState::Shared);    // second reader
/// dir.write(2, 0x40);                                  // writer invalidates both
/// assert_eq!(dir.state(0, 0x40), MesiState::Invalid);
/// assert_eq!(dir.state(2, 0x40), MesiState::Modified);
/// assert_eq!(dir.stats().invalidations, 2);
/// ```
#[derive(Clone, Debug)]
pub struct Directory {
    cores: usize,
    /// Per block: (owner-or-sharer bitmap, state of the line class).
    lines: HashMap<u64, LineEntry>,
    stats: CoherenceStats,
}

#[derive(Clone, Copy, Debug)]
struct LineEntry {
    sharers: u32,
    /// Core holding the line in M or E, if any.
    owner: Option<u8>,
    dirty: bool,
}

const BLOCK: u64 = 64;

impl Directory {
    /// Creates a directory for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is 0 or exceeds 32.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        assert!((1..=32).contains(&cores), "core count {cores} out of range");
        Self { cores, lines: HashMap::new(), stats: CoherenceStats::default() }
    }

    /// The protocol traffic so far.
    #[must_use]
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// Current state of `addr`'s block in `core`'s L1.
    #[must_use]
    pub fn state(&self, core: u8, addr: u64) -> MesiState {
        let block = addr / BLOCK;
        match self.lines.get(&block) {
            None => MesiState::Invalid,
            Some(e) => {
                if e.sharers & (1 << core) == 0 {
                    MesiState::Invalid
                } else if e.owner == Some(core) {
                    if e.dirty {
                        MesiState::Modified
                    } else {
                        MesiState::Exclusive
                    }
                } else {
                    MesiState::Shared
                }
            }
        }
    }

    /// Core `core` reads `addr`; returns the state the line ends up in
    /// at that core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn read(&mut self, core: u8, addr: u64) -> MesiState {
        assert!((core as usize) < self.cores, "core {core} out of range");
        let block = addr / BLOCK;
        let me = 1u32 << core;
        let entry = self.lines.entry(block).or_insert(LineEntry {
            sharers: 0,
            owner: None,
            dirty: false,
        });
        if entry.sharers == 0 {
            // Sole reader: Exclusive.
            entry.sharers = me;
            entry.owner = Some(core);
            entry.dirty = false;
            return MesiState::Exclusive;
        }
        if entry.sharers & me != 0 {
            // Already present; state unchanged.
        } else {
            // Remote sharers exist. A dirty owner must downgrade and
            // supply the data.
            if entry.dirty {
                self.stats.downgrades += 1;
                self.stats.writebacks += 1;
                self.stats.interventions += 1;
                entry.dirty = false;
                if desc_telemetry::enabled() {
                    desc_telemetry::counter!("sim.coherence.downgrades").incr();
                    desc_telemetry::counter!("sim.coherence.writebacks").incr();
                    desc_telemetry::counter!("sim.coherence.interventions").incr();
                }
            } else if entry.owner.is_some() {
                // E owner supplies data cache-to-cache.
                self.stats.interventions += 1;
                if desc_telemetry::enabled() {
                    desc_telemetry::counter!("sim.coherence.interventions").incr();
                }
            }
            entry.owner = None;
            entry.sharers |= me;
        }
        if entry.owner == Some(core) {
            if entry.dirty {
                MesiState::Modified
            } else {
                MesiState::Exclusive
            }
        } else {
            MesiState::Shared
        }
    }

    /// Core `core` writes `addr`; all other sharers are invalidated
    /// and the line becomes Modified at `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn write(&mut self, core: u8, addr: u64) {
        assert!((core as usize) < self.cores, "core {core} out of range");
        let block = addr / BLOCK;
        let me = 1u32 << core;
        let entry = self.lines.entry(block).or_insert(LineEntry {
            sharers: 0,
            owner: None,
            dirty: false,
        });
        let others = entry.sharers & !me;
        if others != 0 {
            self.stats.invalidations += u64::from(others.count_ones());
            if desc_telemetry::enabled() {
                desc_telemetry::counter!("sim.coherence.invalidations")
                    .add(u64::from(others.count_ones()));
            }
            if entry.dirty && entry.owner != Some(core) {
                // Remote M line is transferred, not written back.
                self.stats.interventions += 1;
                if desc_telemetry::enabled() {
                    desc_telemetry::counter!("sim.coherence.interventions").incr();
                }
            }
        }
        if entry.sharers & me != 0 && entry.owner.is_none() {
            // S → M needs an upgrade request even with no other sharer
            // race, counted per transition.
            self.stats.upgrades += 1;
            if desc_telemetry::enabled() {
                desc_telemetry::counter!("sim.coherence.upgrades").incr();
            }
        }
        entry.sharers = me;
        entry.owner = Some(core);
        entry.dirty = true;
    }

    /// Core `core` evicts `addr` from its L1; returns `true` if dirty
    /// data had to be written back.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn evict(&mut self, core: u8, addr: u64) -> bool {
        assert!((core as usize) < self.cores, "core {core} out of range");
        let block = addr / BLOCK;
        let me = 1u32 << core;
        if let Some(entry) = self.lines.get_mut(&block) {
            if entry.sharers & me != 0 {
                let was_dirty = entry.dirty && entry.owner == Some(core);
                entry.sharers &= !me;
                if entry.owner == Some(core) {
                    entry.owner = None;
                    entry.dirty = false;
                }
                if entry.sharers == 0 {
                    self.lines.remove(&block);
                }
                if was_dirty {
                    self.stats.writebacks += 1;
                    if desc_telemetry::enabled() {
                        desc_telemetry::counter!("sim.coherence.writebacks").incr();
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Checks the single-writer invariant over all tracked lines:
    /// a dirty line has exactly one sharer, and an owner is always a
    /// sharer. Used by property tests.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.lines.values().all(|e| {
            let owner_ok = e.owner.is_none_or(|o| e.sharers & (1 << o) != 0);
            let dirty_ok = !e.dirty || (e.owner.is_some() && e.sharers.count_ones() == 1);
            owner_ok && dirty_ok
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_is_exclusive_second_is_shared() {
        let mut d = Directory::new(8);
        assert_eq!(d.read(0, 0x100), MesiState::Exclusive);
        assert_eq!(d.read(1, 0x100), MesiState::Shared);
        assert_eq!(d.state(0, 0x100), MesiState::Shared);
        assert_eq!(d.stats().interventions, 1); // E owner supplied data
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new(8);
        d.read(0, 0x40);
        d.read(1, 0x40);
        d.read(2, 0x40);
        d.write(3, 0x40);
        assert_eq!(d.stats().invalidations, 3);
        for c in 0..3 {
            assert_eq!(d.state(c, 0x40), MesiState::Invalid);
        }
        assert_eq!(d.state(3, 0x40), MesiState::Modified);
        assert!(d.invariants_hold());
    }

    #[test]
    fn remote_read_downgrades_modified() {
        let mut d = Directory::new(4);
        d.write(0, 0x80);
        assert_eq!(d.state(0, 0x80), MesiState::Modified);
        assert_eq!(d.read(1, 0x80), MesiState::Shared);
        assert_eq!(d.state(0, 0x80), MesiState::Shared);
        assert_eq!(d.stats().downgrades, 1);
        assert_eq!(d.stats().writebacks, 1);
        assert!(d.invariants_hold());
    }

    #[test]
    fn silent_e_to_m_upgrade_costs_nothing() {
        let mut d = Directory::new(4);
        d.read(0, 0xC0); // Exclusive
        d.write(0, 0xC0); // silent upgrade
        assert_eq!(d.state(0, 0xC0), MesiState::Modified);
        assert_eq!(d.stats().upgrades, 0);
        assert_eq!(d.stats().invalidations, 0);
    }

    #[test]
    fn shared_write_counts_an_upgrade() {
        let mut d = Directory::new(4);
        d.read(0, 0xC0);
        d.read(1, 0xC0);
        d.write(0, 0xC0);
        assert_eq!(d.stats().upgrades, 1);
        assert_eq!(d.stats().invalidations, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut d = Directory::new(4);
        d.write(2, 0x1000);
        assert!(d.evict(2, 0x1000));
        assert_eq!(d.state(2, 0x1000), MesiState::Invalid);
        // Clean eviction does not.
        d.read(1, 0x2000);
        assert!(!d.evict(1, 0x2000));
    }

    #[test]
    fn invariants_hold_under_random_traffic() {
        use desc_core::rng::Rng64;
        let mut rng = Rng64::seed_from_u64(5);
        let mut d = Directory::new(8);
        for _ in 0..20_000 {
            let core = rng.gen_range(0..8u8);
            let addr = u64::from(rng.gen_range(0..64u32)) * 64;
            match rng.gen_range(0..3) {
                0 => {
                    let _ = d.read(core, addr);
                }
                1 => d.write(core, addr),
                _ => {
                    let _ = d.evict(core, addr);
                }
            }
            debug_assert!(d.invariants_hold());
        }
        assert!(d.invariants_hold());
        assert!(d.stats().invalidations > 0);
        assert!(d.stats().downgrades > 0);
    }
}
