//! # desc-sim
//!
//! Trace-driven system simulator standing in for the paper's modified
//! SESC (§4.1): a shared, banked L2 cache with pluggable data-transfer
//! schemes, a DRAM channel model, and core timing models for the two
//! evaluated machines (Table 1) — an 8-core Niagara-like fine-grained
//! multithreaded processor and a 4-issue out-of-order core.
//!
//! The simulator is *activity-exact* where the paper's results need it
//! to be: every L2 block transfer runs through a real
//! [`TransferScheme`] from `desc-core` with real block contents from
//! `desc-workloads`, so H-tree transition counts and value-dependent
//! transfer latencies are measured, not estimated. Timing uses an
//! iterated event model: bank occupancy and queueing are simulated
//! event-by-event, and the resulting stalls feed back into the access
//! arrival rate until execution time converges.
//!
//! ```
//! use desc_sim::{SimConfig, SystemSim};
//! use desc_workloads::BenchmarkId;
//! use desc_core::schemes::SchemeKind;
//!
//! let cfg = SimConfig::paper_multithreaded();
//! let result = SystemSim::new(cfg, BenchmarkId::Radix.profile(), 1)
//!     .run(SchemeKind::ZeroSkippedDesc.build_paper_config(), 5_000);
//! assert!(result.exec_time_s > 0.0);
//! assert!(result.activity.htree_transitions > 0);
//! ```
//!
//! [`TransferScheme`]: desc_core::TransferScheme

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
mod batch;
pub mod cache;
pub mod coherence;
pub mod config;
pub mod dram;
pub mod hierarchy;
mod shard;
pub mod snuca;
pub mod system;

pub use cache::SetAssocCache;
pub use config::{CoreModel, SimConfig};
pub use snuca::SnucaSim;
pub use system::{SimResult, SystemSim};
