//! Bank-partition execution on the process-wide executor.
//!
//! One simulation cell decomposes into independent bank partitions
//! (see [`crate::system::SystemSim`] for the UCA machine and
//! [`crate::snuca::SnucaSim`] for S-NUCA-1); this module submits the
//! partition closures to the shared [`desc_exec`] pool with
//! [`crate::config::SimConfig::shards`] as the region's concurrency
//! cap, and returns results **in partition order** so callers can
//! merge them with a deterministic reduction.
//!
//! `shards` is a *cap*, not a thread count: partitions run on the same
//! fixed worker set that executes `run_matrix` sweep cells, so a
//! sweep of sharded cells never oversubscribes the machine, and no
//! simulation ever spawns a thread. With a cap of 1 — or an empty pool
//! (1-CPU machine) — the partitions run serially on the calling
//! thread with no synchronisation at all.
//!
//! The partition function is pure with respect to ordering (each
//! partition touches only its own state), so results are bit-identical
//! for any thread count; the pool only changes wall-clock time.
//! Results are delivered through the executor's per-index slots (no
//! per-partition lock), and a panicking partition is re-raised on the
//! submitting thread after the region drains, instead of poisoning a
//! mutex.

/// Runs `part_fn(0..parts)` with at most `threads` partitions in
/// flight on the shared pool and returns the results indexed by
/// partition.
///
/// On the execution timeline these land as a `"parts"` region (queue
/// wait and run time per partition task, see `desc_exec::utilization`)
/// and, when telemetry is enabled, one `"partition"` span per bank
/// partition (label `p<n>`) on whichever pool thread ran it.
pub(crate) fn run_parts<T, F>(parts: usize, threads: usize, part_fn: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    desc_exec::run_labeled("parts", parts, threads, |p| {
        let _span =
            desc_telemetry::enabled().then(|| desc_telemetry::span("partition", format!("p{p}")));
        part_fn(p)
    })
}

/// In-place twin of [`run_parts`] for per-partition state that
/// persists across repeated passes (the timing fixed-point): runs
/// `part_fn(p, &mut states[p])` for every partition with at most
/// `threads` in flight. Timeline attribution matches [`run_parts`]
/// under the region label `"parts_mut"`.
pub(crate) fn run_parts_mut<S, F>(states: &mut [S], threads: usize, part_fn: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    desc_exec::run_mut_labeled("parts_mut", states, threads, |p, s| {
        let _span =
            desc_telemetry::enabled().then(|| desc_telemetry::span("partition", format!("p{p}")));
        part_fn(p, s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_partition_order_for_any_thread_count() {
        desc_exec::configure(4);
        let expect: Vec<usize> = (0..13).map(|p| p * p).collect();
        for threads in [1, 2, 3, 8, 32] {
            assert_eq!(run_parts(13, threads, |p| p * p), expect, "threads={threads}");
        }
    }

    #[test]
    fn zero_parts_is_empty() {
        assert!(run_parts(0, 4, |p| p).is_empty());
    }

    #[test]
    fn run_parts_mut_reuses_state_across_passes() {
        desc_exec::configure(4);
        let mut states = vec![0u64; 9];
        for pass in 1..=3u64 {
            run_parts_mut(&mut states, 4, |p, s| *s += pass * 100 + p as u64);
        }
        let expect: Vec<u64> = (0..9).map(|p| 600 + 3 * p).collect();
        assert_eq!(states, expect);
    }
}
