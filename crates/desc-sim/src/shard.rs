//! Worker-pool plumbing for bank-sharded simulation.
//!
//! One simulation cell decomposes into independent bank partitions
//! (see [`crate::system::SystemSim`] for the UCA machine and
//! [`crate::snuca::SnucaSim`] for S-NUCA-1); this module runs the
//! partition closures on up to `threads` scoped worker threads and
//! returns the results **in partition order**, so callers can merge
//! them with a deterministic reduction. With `threads <= 1` the partitions run
//! serially on the calling thread — no pool, no synchronisation.
//!
//! The partition function is pure with respect to ordering (each
//! partition touches only its own state), so results are bit-identical
//! for any thread count; the pool only changes wall-clock time.

/// Runs `part_fn(0..parts)` on up to `threads` worker threads and
/// returns the results indexed by partition.
///
/// Work is handed out through an atomic counter, so an arbitrary
/// worker may run an arbitrary partition; determinism comes from each
/// result landing in its partition's slot regardless of which worker
/// produced it.
pub(crate) fn run_parts<T, F>(parts: usize, threads: usize, part_fn: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(parts.max(1));
    if threads <= 1 {
        return (0..parts).map(part_fn).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(parts, || None);
    {
        let slot_refs: Vec<std::sync::Mutex<&mut Option<T>>> =
            slots.iter_mut().map(std::sync::Mutex::new).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let p = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if p >= parts {
                        break;
                    }
                    let out = part_fn(p);
                    **slot_refs[p].lock().expect("worker panicked") = Some(out);
                });
            }
        });
    }
    slots.into_iter().map(|s| s.expect("all partitions completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_partition_order_for_any_thread_count() {
        let expect: Vec<usize> = (0..13).map(|p| p * p).collect();
        for threads in [1, 2, 3, 8, 32] {
            assert_eq!(run_parts(13, threads, |p| p * p), expect, "threads={threads}");
        }
    }

    #[test]
    fn zero_parts_is_empty() {
        assert!(run_parts(0, 4, |p| p).is_empty());
    }
}
