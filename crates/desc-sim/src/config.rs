//! Simulation parameters (paper Table 1).

use desc_cacti::CacheConfig;

/// Core timing model: how much of the L2 access latency reaches
/// execution time.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum CoreModel {
    /// Niagara-like fine-grained multithreading: 8 in-order cores with
    /// 4 hardware contexts each. A stalled context's latency is almost
    /// always hidden by the other contexts, so only a small fraction
    /// of each L2 access's latency is exposed.
    Throughput {
        /// Cores sharing the L2.
        cores: usize,
        /// Hardware contexts per core.
        contexts: usize,
        /// Fraction of per-access L2 latency exposed to execution time
        /// (calibrated so DESC's ≈8-cycle hit-latency increase costs
        /// <2% execution time, §5.3).
        exposure: f64,
    },
    /// 4-issue out-of-order core with a 128-entry ROB (§5.8): the ROB
    /// overlaps some latency, but a large fraction is exposed.
    OutOfOrder {
        /// Reorder-buffer entries.
        rob: usize,
        /// Fraction of per-access L2 latency exposed (calibrated so
        /// DESC costs ≈6% on SPEC 2006, Fig. 30).
        exposure: f64,
    },
}

impl CoreModel {
    /// Number of cores issuing accesses.
    #[must_use]
    pub fn cores(&self) -> usize {
        match self {
            CoreModel::Throughput { cores, .. } => *cores,
            CoreModel::OutOfOrder { .. } => 1,
        }
    }

    /// Exposed fraction of L2 latency.
    #[must_use]
    pub fn exposure(&self) -> f64 {
        match self {
            CoreModel::Throughput { exposure, .. } | CoreModel::OutOfOrder { exposure, .. } => {
                *exposure
            }
        }
    }
}

/// Full system configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimConfig {
    /// L2 organisation and devices.
    pub l2: CacheConfig,
    /// Core timing model.
    pub core: CoreModel,
    /// DRAM channels (Table 1: two DDR3-1066 channels).
    pub dram_channels: usize,
    /// DRAM access latency in core cycles (row activate + CAS + bus,
    /// ≈37 ns at 3.2 GHz).
    pub dram_latency_cycles: u64,
    /// Core cycles a 64-byte line occupies one DRAM channel
    /// (64 B / 8.5 GB s⁻¹ ≈ 7.5 ns ≈ 24 cycles).
    pub dram_occupancy_cycles: u64,
    /// Extra round-trip logic latency of a DESC interface pair in
    /// cycles (synthesis §5.1: 625 ps ≈ 2 cycles at 3.2 GHz).
    pub desc_interface_cycles: u64,
    /// Relative extra H-tree energy on *write* transitions under
    /// last-value-skipped DESC, which must broadcast writes across
    /// subbanks to keep the controller's last-value table coherent
    /// (§5.2). 0.0 for every other scheme.
    pub last_value_write_penalty: f64,
    /// Worker threads simulating one cell's L2 bank partitions (the
    /// intra-cell shard knob, `repro --shards`), honoured by both
    /// [`crate::system::SystemSim`] and [`crate::snuca::SnucaSim`].
    ///
    /// The simulation always decomposes a cell by home bank and merges
    /// per-bank results with a deterministic, order-independent
    /// reduction, so every result is **bit-identical for any value** —
    /// this knob only controls how many OS threads carry the bank
    /// partitions. 1 (the default) runs them serially on the calling
    /// thread.
    pub shards: usize,
    /// Epoch length in cycles for the epoch-barrier reduction of
    /// cross-bank DRAM traffic: bank partitions advance independently
    /// within an epoch and their DRAM requests are exchanged and
    /// ordered `(epoch, program-order)` at epoch boundaries. Smaller
    /// epochs order DRAM contention closer to pure program order;
    /// larger epochs weight issue-time order more. Does not affect
    /// shard-count invariance.
    pub dram_epoch_cycles: u64,
}

impl SimConfig {
    /// The Table 1 multithreaded system: 8 in-order cores × 4
    /// contexts, 8 MB 16-way L2, two DDR3-1066 channels.
    #[must_use]
    pub fn paper_multithreaded() -> Self {
        Self {
            l2: CacheConfig::paper_baseline(),
            core: CoreModel::Throughput { cores: 8, contexts: 4, exposure: 0.24 },
            dram_channels: 2,
            dram_latency_cycles: 120,
            dram_occupancy_cycles: 24,
            desc_interface_cycles: 2,
            last_value_write_penalty: 0.5,
            shards: 1,
            dram_epoch_cycles: 2048,
        }
    }

    /// The Table 1 single-threaded system: one 4-issue out-of-order
    /// core with a 128-entry ROB.
    #[must_use]
    pub fn paper_out_of_order() -> Self {
        Self {
            core: CoreModel::OutOfOrder { rob: 128, exposure: 0.55 },
            ..Self::paper_multithreaded()
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_multithreaded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let mt = SimConfig::paper_multithreaded();
        assert_eq!(mt.core.cores(), 8);
        assert_eq!(mt.l2.capacity_bytes, 8 << 20);
        assert_eq!(mt.l2.associativity, 16);
        assert_eq!(mt.dram_channels, 2);

        let ooo = SimConfig::paper_out_of_order();
        assert_eq!(ooo.core.cores(), 1);
        assert!(matches!(ooo.core, CoreModel::OutOfOrder { rob: 128, .. }));
    }

    #[test]
    fn throughput_cores_hide_more_latency_than_ooo() {
        let mt = SimConfig::paper_multithreaded();
        let ooo = SimConfig::paper_out_of_order();
        assert!(mt.core.exposure() < ooo.core.exposure());
    }
}
