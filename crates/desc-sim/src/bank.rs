//! Bank occupancy and queueing.
//!
//! Each L2 bank has one data port; a block transfer occupies the port
//! for the array-access time plus the scheme's transfer window. The
//! paper's bank-count sensitivity (Fig. 25) is driven by exactly this
//! contention.

/// Tracks when each bank's port becomes free.
///
/// # Examples
///
/// ```
/// use desc_sim::bank::BankScheduler;
///
/// let mut banks = BankScheduler::new(2);
/// // Two back-to-back accesses to bank 0: the second queues.
/// let (s0, _) = banks.schedule(0, 100, 10);
/// let (s1, q1) = banks.schedule(0, 101, 10);
/// assert_eq!(s0, 100);
/// assert_eq!(s1, 110);
/// assert_eq!(q1, 9);
/// // Bank 1 is free.
/// assert_eq!(banks.schedule(1, 101, 10).1, 0);
/// ```
#[derive(Clone, Debug)]
pub struct BankScheduler {
    free_at: Vec<u64>,
}

impl BankScheduler {
    /// Creates a scheduler for `banks` banks, all free at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        assert!(banks > 0, "at least one bank required");
        Self { free_at: vec![0; banks] }
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.free_at.len()
    }

    /// Schedules an access arriving at `arrival` that occupies the
    /// bank for `service` cycles. Returns `(start, queueing_delay)`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn schedule(&mut self, bank: usize, arrival: u64, service: u64) -> (u64, u64) {
        assert!(bank < self.free_at.len(), "bank {bank} out of range");
        let start = arrival.max(self.free_at[bank]);
        self.free_at[bank] = start + service;
        (start, start - arrival)
    }

    /// The time the last-finishing bank becomes free.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.free_at.iter().copied().max().unwrap_or(0)
    }

    /// Resets all banks to free.
    pub fn reset(&mut self) {
        self.free_at.fill(0);
    }

    /// Maps a block address to its bank (block-interleaved).
    #[must_use]
    pub fn bank_of(&self, addr: u64, block_bytes: u64) -> usize {
        home_bank(addr, block_bytes, self.free_at.len())
    }
}

/// Maps a block address to its home bank (block-interleaved), without
/// needing a scheduler instance — the S-NUCA mapping shared by the
/// scheduler, the S-NUCA model, and bank-sharded trace partitioning.
#[must_use]
pub fn home_bank(addr: u64, block_bytes: u64, banks: usize) -> usize {
    ((addr / block_bytes) % banks as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_banks_do_not_queue() {
        let mut b = BankScheduler::new(8);
        for bank in 0..8 {
            let (_, q) = b.schedule(bank, 50, 20);
            assert_eq!(q, 0);
        }
    }

    #[test]
    fn single_bank_serializes() {
        let mut b = BankScheduler::new(1);
        let mut total_queue = 0;
        for i in 0..10 {
            let (_, q) = b.schedule(0, i, 10);
            total_queue += q;
        }
        assert!(total_queue > 300, "queueing {total_queue} too small for saturation");
        assert_eq!(b.horizon(), 100);
    }

    #[test]
    fn idle_bank_starts_immediately() {
        let mut b = BankScheduler::new(2);
        b.schedule(0, 0, 10);
        let (start, q) = b.schedule(0, 100, 10);
        assert_eq!(start, 100);
        assert_eq!(q, 0);
    }

    #[test]
    fn bank_interleaving_spreads_blocks() {
        let b = BankScheduler::new(8);
        assert_eq!(b.bank_of(0, 64), 0);
        assert_eq!(b.bank_of(64, 64), 1);
        assert_eq!(b.bank_of(64 * 9, 64), 1);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut b = BankScheduler::new(1);
        b.schedule(0, 0, 1000);
        b.reset();
        let (_, q) = b.schedule(0, 0, 10);
        assert_eq!(q, 0);
    }
}
