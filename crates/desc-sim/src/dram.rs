//! DRAM channel model (Table 1: two DDR3-1066 channels, FR-FCFS).
//!
//! A miss occupies one channel for the line-transfer time and
//! completes after the access latency. FR-FCFS row-buffer reordering
//! is approximated by a fixed row-hit latency discount for
//! consecutively-addressed requests on the same channel.

/// A multi-channel DRAM with occupancy queueing.
///
/// # Examples
///
/// ```
/// use desc_sim::dram::Dram;
///
/// let mut dram = Dram::new(2, 120, 24);
/// let first = dram.access(0x0000, 0);
/// // Sequential address on the same channel: row-buffer hit, cheaper.
/// let second = dram.access(0x0080, first);
/// assert!(second - first <= 120);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    channel_free: Vec<u64>,
    last_row: Vec<Option<u64>>,
    latency: u64,
    occupancy: u64,
    accesses: u64,
    row_hits: u64,
}

/// DRAM row size in bytes for row-hit detection.
const ROW_BYTES: u64 = 4096;

impl Dram {
    /// Creates a DRAM with `channels` channels, `latency` cycles per
    /// access and `occupancy` cycles of channel busy time per line.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(channels: usize, latency: u64, occupancy: u64) -> Self {
        assert!(channels > 0, "at least one DRAM channel required");
        Self {
            channel_free: vec![0; channels],
            last_row: vec![None; channels],
            latency,
            occupancy,
            accesses: 0,
            row_hits: 0,
        }
    }

    /// Issues a line access for `addr` at time `now`; returns the
    /// completion time.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        let ch = ((addr / 64) % self.channel_free.len() as u64) as usize;
        let row = addr / ROW_BYTES;
        let start = now.max(self.channel_free[ch]);
        // FR-FCFS approximation: hitting the open row skips the
        // activate phase (≈40% of the access latency).
        let latency = if self.last_row[ch] == Some(row) {
            self.row_hits += 1;
            self.latency * 6 / 10
        } else {
            self.latency
        };
        self.last_row[ch] = Some(row);
        self.channel_free[ch] = start + self.occupancy;
        self.accesses += 1;
        start + latency
    }

    /// Total accesses issued.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Row-buffer hits (FR-FCFS benefit).
    #[must_use]
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Resets channel state.
    pub fn reset(&mut self) {
        self.channel_free.fill(0);
        self.last_row.fill(None);
        self.accesses = 0;
        self.row_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hits_are_faster() {
        let mut d = Dram::new(1, 120, 24);
        let t1 = d.access(0, 0); // row miss
        assert_eq!(t1, 120);
        let t2 = d.access(64, t1); // next channel... same channel, same row
        assert_eq!(t2 - t1, 72);
        assert_eq!(d.row_hits(), 1);
    }

    #[test]
    fn channels_interleave_by_line() {
        let mut d = Dram::new(2, 120, 24);
        d.access(0, 0); // channel 0
        d.access(64, 0); // channel 1 — no queueing
        assert_eq!(d.accesses(), 2);
        // Both channels were free: both finished at t=120.
    }

    #[test]
    fn busy_channel_queues() {
        let mut d = Dram::new(1, 120, 24);
        let a = d.access(0, 0);
        // Different row, issued immediately: starts after occupancy.
        let b = d.access(1 << 20, 0);
        assert_eq!(a, 120);
        assert_eq!(b, 24 + 120);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = Dram::new(2, 120, 24);
        d.access(0, 0);
        d.reset();
        assert_eq!(d.accesses(), 0);
        assert_eq!(d.access(0, 0), 120);
    }
}
