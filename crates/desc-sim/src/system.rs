//! The top-level system simulation: trace → L2 directory → transfer
//! scheme → bank/DRAM timing → execution time.
//!
//! # Bank-sharded execution
//!
//! One simulation cell decomposes by L2 home bank: each bank owns a
//! disjoint slice of the cache's sets ([`SetAssocCache::bank_slice`]),
//! its own transfer channel (a [`TransferScheme::clone_box`] replica —
//! wire state is per-channel, as in the S-NUCA model), its own address
//! bus, and a value stream derived from `(seed, bank)`. Bank partitions
//! are therefore simulated independently — serially or on worker
//! threads ([`SimConfig::shards`]) — and merged with a deterministic,
//! order-independent reduction (sums, maxima, and histogram merges in
//! fixed bank order), so **results are bit-identical for any shard
//! count**. Cross-bank DRAM channel contention is reintroduced at an
//! epoch barrier: partitions emit their miss requests with issue
//! timestamps, and the requests are replayed through one shared DRAM
//! model ordered by `(issue_epoch, program_order)`
//! ([`SimConfig::dram_epoch_cycles`]).

use crate::bank::{home_bank, BankScheduler};
use crate::batch::{scalar_transfers, ChannelBatch, FLUSH_CAP};
use crate::cache::{CacheOutcome, SetAssocCache};
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::shard::{run_parts, run_parts_mut};
use desc_cacti::cache::CacheActivity;
use desc_cacti::CacheModel;
use desc_core::wire::Bus;
use desc_core::{CostSummary, TransferScheme};
use desc_workloads::{Access, BenchmarkProfile};
use std::sync::Mutex;

/// Everything measured by one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// L2 accesses simulated.
    pub accesses: u64,
    /// L2 hits.
    pub hits: u64,
    /// L2 misses.
    pub misses: u64,
    /// Dirty evictions written back to DRAM.
    pub writebacks: u64,
    /// L1 invalidations from write sharing.
    pub invalidations: u64,
    /// Mean intrinsic L2 hit latency in cycles (array + H-tree +
    /// value-dependent transfer + interface logic) — paper Fig. 21.
    pub avg_hit_latency_cycles: f64,
    /// Mean end-to-end access latency including bank queueing and
    /// DRAM.
    pub avg_access_latency_cycles: f64,
    /// Execution time in cycles.
    pub exec_cycles: u64,
    /// Execution time in seconds.
    pub exec_time_s: f64,
    /// Instructions represented by the simulated access window.
    pub instructions: u64,
    /// Activity counters for energy pricing by `desc-cacti`.
    pub activity: CacheActivity,
    /// Per-block transfer cost statistics.
    pub transfer: CostSummary,
}

impl SimResult {
    /// L2 miss rate.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Per-access record from the functional phase, consumed by the
/// timing phase.
struct AccessRecord {
    /// Program-order index within the measured window (global across
    /// bank partitions — arrivals and DRAM ordering key off it).
    idx: u64,
    addr: u64,
    bank: usize,
    miss: bool,
    /// Bank-port busy time (array + transfers through this bank).
    service: u64,
    /// Intrinsic latency excluding queueing and DRAM.
    base_latency: u64,
}

/// An access whose transfer cost(s) are still queued in the channel's
/// [`ChannelBatch`]; the directory outcome and all order-insensitive
/// counters were settled when it was enqueued.
struct PendingAccess {
    idx: u32,
    addr: u64,
    bank: usize,
    kind: PendingKind,
}

/// Which transfer costs a pending access consumes at drain time: one
/// for a hit or a clean miss fill, two for a miss with writeback.
enum PendingKind {
    Hit { write: bool },
    Miss { writeback: bool },
}

/// One bank partition's functional-phase output. Every field merges
/// order-independently (sums / summary merges / histogram absorbs).
struct PartitionSim {
    records: Vec<AccessRecord>,
    transfer: CostSummary,
    activity: CacheActivity,
    hits: u64,
    misses: u64,
    writebacks: u64,
    hit_latency_sum: u64,
    invalidations: u64,
    hit_latency_hist: desc_telemetry::LocalHistogram,
}

/// One bank partition's timing-pass state. Allocated once per run and
/// reused across the fixed-point passes — each pass clears and refills
/// the buffers in place instead of reallocating them per partition per
/// pass.
struct PartitionPass {
    /// Per-bank port occupancy, reset at the start of each pass.
    sched: BankScheduler,
    /// Per-record latency (queue + base; DRAM extra added at the epoch
    /// barrier), parallel to the partition's `records`.
    lat: Vec<u64>,
    /// Miss requests for the shared DRAM, exchanged at the barrier.
    misses: Vec<MissEvent>,
    horizon: u64,
    queue_hist: desc_telemetry::LocalHistogram,
    bank_conflicts: u64,
    bank_busy_cycles: u64,
}

/// A cross-shard DRAM request exchanged at the epoch barrier.
struct MissEvent {
    /// Global program-order index — the within-epoch order.
    idx: u64,
    /// Originating partition, for routing the DRAM delay back.
    part: usize,
    /// Index into the partition's `lat` vector.
    slot: usize,
    addr: u64,
    /// Cycle the request reaches DRAM (bank start + miss detect).
    issue: u64,
}

/// A configured simulation of one benchmark on one machine.
///
/// The same `SystemSim` can run different transfer schemes; each run
/// replays the identical trace and block-content stream, so scheme
/// comparisons are paired.
pub struct SystemSim {
    config: SimConfig,
    profile: BenchmarkProfile,
    seed: u64,
}

impl SystemSim {
    /// Creates a simulation of `profile` on `config` with a
    /// deterministic `seed`.
    #[must_use]
    pub fn new(config: SimConfig, profile: BenchmarkProfile, seed: u64) -> Self {
        Self { config, profile, seed }
    }

    /// Runs `accesses` L2 accesses through `scheme` and returns the
    /// measured result.
    ///
    /// The cell is decomposed by home bank and the bank partitions are
    /// simulated on up to [`SimConfig::shards`] worker threads (see the
    /// module docs); the result is bit-identical for any shard count.
    /// `scheme` supplies the configuration — each bank channel gets its
    /// own power-on replica via [`TransferScheme::clone_box`].
    ///
    /// # Examples
    ///
    /// ```
    /// use desc_core::schemes::SchemeKind;
    /// use desc_sim::{SimConfig, SystemSim};
    /// use desc_workloads::BenchmarkId;
    ///
    /// let mut cfg = SimConfig::paper_multithreaded();
    /// cfg.shards = 2; // worker threads; the result does not depend on this
    /// let sim = SystemSim::new(cfg, BenchmarkId::Radix.profile(), 2013);
    /// let r = sim.run(SchemeKind::ZeroSkippedDesc.build_paper_config(), 2_000);
    /// assert_eq!(r.hits + r.misses, r.accesses);
    /// assert!(r.activity.htree_transitions > 0 && r.exec_time_s > 0.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero.
    pub fn run(&self, scheme: Box<dyn TransferScheme>, accesses: usize) -> SimResult {
        assert!(accesses > 0, "simulate at least one access");
        let cfg = &self.config;
        let model = CacheModel::new(cfg.l2);
        let is_desc = scheme.name().contains("DESC");
        let is_last_value = scheme.name().contains("Last Value");
        let iface = if is_desc { cfg.desc_interface_cycles } else { 0 };
        let array = model.array_delay_cycles();
        let tree = model.htree_delay_cycles();
        let miss_detect = model.miss_latency_cycles();
        let banks_n = cfg.l2.banks;
        let block_bytes = cfg.l2.block_bytes as u64;

        // One partition per bank whenever the geometry decomposes (any
        // power-of-two bank count up to the set count — set index and
        // bank id are then both low block-address bits, so each bank
        // owns whole sets). Otherwise a single partition simulates all
        // banks; that degenerate shape is still shard-count invariant.
        let capacity_blocks = cfg.l2.capacity_bytes / cfg.l2.block_bytes;
        let set_count = capacity_blocks / cfg.l2.associativity;
        let parts = if banks_n.is_power_of_two() && banks_n <= set_count { banks_n } else { 1 };
        let threads = cfg.shards.max(1);

        // The trace is generated once (one sequential RNG stream) and
        // bucketed by owning partition *during* generation, so the
        // functional phase touches every access exactly once
        // process-wide — previously each partition re-scanned the
        // whole shared trace through an `owns()` filter, which cost
        // `parts × (warmup + accesses)` predicate checks per cell.
        //
        // Warmup brings the directory to steady state so measurements
        // exclude cold-start compulsory misses (the paper runs
        // applications to completion; we measure a steady-state
        // window). Warmup touches the directory only — no transfers,
        // no energy.
        let warmup = (2 * capacity_blocks).max(accesses);
        assert!(accesses < u32::MAX as usize, "measured window exceeds u32 program indices");
        let mut trace_gen = self.profile.trace(self.seed);
        let mut warm_parts: Vec<Vec<Access>> =
            (0..parts).map(|_| Vec::with_capacity(warmup / parts + warmup / 16 + 8)).collect();
        let mut meas_parts: Vec<Vec<(u32, Access)>> =
            (0..parts).map(|_| Vec::with_capacity(accesses / parts + accesses / 16 + 8)).collect();
        for i in 0..warmup + accesses {
            let a = trace_gen.next_access();
            let p = home_bank(a.addr, block_bytes, banks_n) % parts;
            if i < warmup {
                warm_parts[p].push(a);
            } else {
                meas_parts[p].push(((i - warmup) as u32, a));
            }
        }

        // Clone one scheme replica per bank channel up front (on this
        // thread — `clone_box` borrows the template), then let each
        // partition take its own.
        let replicas: Vec<Mutex<Option<Box<dyn TransferScheme>>>> = (0..parts)
            .map(|_| {
                let mut replica = scheme.clone_box();
                replica.reset();
                Mutex::new(Some(replica))
            })
            .collect();

        // Telemetry is checked once per run; the per-access cost when
        // enabled is plain (non-atomic) local-histogram adds, merged
        // into the global registry in fixed bank order at the end.
        let telemetry = desc_telemetry::enabled();

        // Transfers are batched: value-stream blocks accumulate into a
        // per-channel slab and are encoded through
        // `TransferScheme::transfer_many` in bounded flushes; the
        // queued accesses then replay in program order against the
        // returned costs, so every result is bit-identical to the
        // per-access scalar path (which the `DESC_SCALAR_TRANSFERS`
        // toggle forces, for byte-compares).
        let scalar = scalar_transfers();
        let lv_penalty = self.config.last_value_write_penalty;

        // ---- Functional phase: directory, transfers, transitions. ---
        // Each partition owns its bank's directory slice, channel wire
        // state, address bus, and value stream; partitions never share
        // mutable state, so the worker threads need no synchronisation
        // and the merge below is deterministic.
        let sims: Vec<PartitionSim> = run_parts(parts, threads, |p| {
            let mut l2 = SetAssocCache::bank_slice(
                cfg.l2.capacity_bytes,
                cfg.l2.block_bytes,
                cfg.l2.associativity,
                parts,
                p,
            );
            let mut scheme = replicas[p]
                .lock()
                .expect("replica mutex poisoned")
                .take()
                .expect("each partition takes its replica once");
            let mut values = self.profile.value_stream_for_bank(self.seed, p);
            let mut addr_bus = Bus::new(48);

            for &Access { addr, write, core } in &warm_parts[p] {
                let _ = l2.access(addr, write, core);
            }
            let invalidations_at_warmup = l2.invalidations();

            let mut out = PartitionSim {
                records: Vec::with_capacity(meas_parts[p].len()),
                transfer: CostSummary::new(),
                activity: CacheActivity::default(),
                hits: 0,
                misses: 0,
                writebacks: 0,
                hit_latency_sum: 0,
                invalidations: 0,
                hit_latency_hist: desc_telemetry::LocalHistogram::new(),
            };
            let mut batch = ChannelBatch::new(cfg.l2.block_bytes);
            let mut pending: Vec<PendingAccess> = Vec::with_capacity(FLUSH_CAP);

            // Replays the queued accesses against the drained costs in
            // program order — the exact per-access bookkeeping the
            // scalar loop did, just decoupled from encoding.
            let drain = |batch: &mut ChannelBatch,
                             scheme: &mut Box<dyn TransferScheme>,
                             pending: &mut Vec<PendingAccess>,
                             out: &mut PartitionSim| {
                if pending.is_empty() {
                    return;
                }
                batch.encode(scheme.as_mut(), scalar);
                for pa in pending.drain(..) {
                    let take = |out: &mut PartitionSim,
                                    batch: &mut ChannelBatch,
                                    write_dir: bool|
                     -> desc_core::TransferCost {
                        let cost = batch.next_cost();
                        out.transfer.record(cost);
                        let mut transitions = cost.total_transitions();
                        if is_last_value && write_dir {
                            // Last-value skipping broadcasts write data
                            // across subbanks to keep the controller's
                            // last-value table coherent (§5.2): extra
                            // H-tree energy.
                            transitions +=
                                (cost.data_transitions as f64 * lv_penalty).round() as u64;
                        }
                        out.activity.htree_transitions += transitions;
                        cost
                    };
                    match pa.kind {
                        PendingKind::Hit { write } => {
                            let cost = take(out, batch, write);
                            // Effective latency (Fig. 21 window model);
                            // port occupancy uses the full window.
                            let latency = array + tree + cost.latency() + iface;
                            out.hit_latency_sum += latency;
                            if telemetry {
                                out.hit_latency_hist.record(latency);
                            }
                            out.records.push(AccessRecord {
                                idx: u64::from(pa.idx),
                                addr: pa.addr,
                                bank: pa.bank,
                                miss: false,
                                service: array + cost.cycles,
                                base_latency: latency,
                            });
                        }
                        PendingKind::Miss { writeback } => {
                            // Fill: one block moves over the H-tree
                            // into the bank (and onward to the
                            // requester).
                            let fill = take(out, batch, true);
                            let mut service = array + fill.cycles;
                            if writeback {
                                let wb = take(out, batch, false);
                                service += wb.cycles;
                            }
                            out.records.push(AccessRecord {
                                idx: u64::from(pa.idx),
                                addr: pa.addr,
                                bank: pa.bank,
                                miss: true,
                                service,
                                // DRAM latency is added during the
                                // timing phase.
                                base_latency: miss_detect + fill.latency() + iface,
                            });
                        }
                    }
                }
            };

            for &(i, Access { addr, write, core }) in &meas_parts[p] {
                let bank = home_bank(addr, block_bytes, banks_n);
                let outcome = l2.access(addr, write, core);
                out.activity.tag_lookups += 1;
                let addr_flips = u64::from(addr_bus.drive((addr >> 6) & ((1 << 48) - 1)));
                out.activity.htree_transitions += addr_flips;

                // Queue the access's block(s) — the stream's scratch
                // block is copied into the slab, so the draw order and
                // bytes are identical to per-access transfers. Counters
                // that don't need the cost are settled here.
                match outcome {
                    CacheOutcome::Hit => {
                        batch.push(values.next_block_ref());
                        out.hits += 1;
                        if write {
                            out.activity.array_writes += 1;
                        } else {
                            out.activity.array_reads += 1;
                        }
                        pending.push(PendingAccess {
                            idx: i,
                            addr,
                            bank,
                            kind: PendingKind::Hit { write },
                        });
                    }
                    CacheOutcome::Miss { writeback } => {
                        batch.push(values.next_block_ref());
                        out.misses += 1;
                        out.activity.array_writes += 1;
                        if writeback {
                            out.writebacks += 1;
                            batch.push(values.next_block_ref());
                            out.activity.array_reads += 1;
                        }
                        pending.push(PendingAccess {
                            idx: i,
                            addr,
                            bank,
                            kind: PendingKind::Miss { writeback },
                        });
                    }
                }
                if batch.queued() >= FLUSH_CAP {
                    drain(&mut batch, &mut scheme, &mut pending, &mut out);
                }
            }
            drain(&mut batch, &mut scheme, &mut pending, &mut out);
            out.invalidations = l2.invalidations() - invalidations_at_warmup;
            out
        });

        // Deterministic functional merge, fixed bank order.
        let mut transfer_stats = CostSummary::new();
        let mut activity = CacheActivity::default();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut writebacks = 0u64;
        let mut hit_latency_sum = 0u64;
        let mut invalidations = 0u64;
        let mut hit_latency_hist = desc_telemetry::LocalHistogram::new();
        for sim in &sims {
            transfer_stats.merge(&sim.transfer);
            activity.htree_transitions += sim.activity.htree_transitions;
            activity.array_reads += sim.activity.array_reads;
            activity.array_writes += sim.activity.array_writes;
            activity.tag_lookups += sim.activity.tag_lookups;
            hits += sim.hits;
            misses += sim.misses;
            writebacks += sim.writebacks;
            hit_latency_sum += sim.hit_latency_sum;
            invalidations += sim.invalidations;
            hit_latency_hist.absorb(&sim.hit_latency_hist);
        }

        // ---- Timing phase: iterate arrivals to a fixed point. -------
        // Each pass: (A) banks advance independently per partition,
        // collecting DRAM requests; (B) epoch barrier — the requests
        // are ordered by (issue epoch, program order) and replayed
        // through one shared DRAM, routing channel-contention delays
        // back to their partitions; (C) order-independent merge.
        let apki = self.profile.l2_apki;
        let cores = self.profile.cores as f64;
        let base_cpa = 1000.0 / (apki * cores * self.profile.base_ipc);
        let base_cycles = (accesses as f64 * base_cpa).ceil() as u64;
        let exposure = cfg.core.exposure();
        let epoch_cycles = cfg.dram_epoch_cycles.max(1);

        let mut cpa = base_cpa;
        let mut exec_cycles = base_cycles;
        let mut latency_sum = 0u64;
        // Converged-iteration telemetry: re-initialised each pass, so
        // the values merged below reflect the final fixed-point
        // iteration only.
        let mut queue_hist = desc_telemetry::LocalHistogram::new();
        let mut access_latency_hist = desc_telemetry::LocalHistogram::new();
        let mut bank_conflicts = 0u64;
        let mut bank_busy_cycles = 0u64;
        let mut dram_accesses = 0u64;
        let mut dram_row_hits = 0u64;
        // Pass state is allocated once and reused across the three
        // fixed-point passes (and the event buffer across barriers).
        let mut passes: Vec<PartitionPass> = sims
            .iter()
            .map(|sim| PartitionPass {
                sched: BankScheduler::new(banks_n),
                lat: Vec::with_capacity(sim.records.len()),
                misses: Vec::new(),
                horizon: 0,
                queue_hist: desc_telemetry::LocalHistogram::new(),
                bank_conflicts: 0,
                bank_busy_cycles: 0,
            })
            .collect();
        let mut events: Vec<MissEvent> = Vec::new();
        for _ in 0..3 {
            // (A) Independent bank scheduling per partition.
            let pass_cpa = cpa;
            run_parts_mut(&mut passes, threads, |p, pass| {
                let sim = &sims[p];
                pass.sched.reset();
                pass.lat.clear();
                pass.misses.clear();
                pass.queue_hist = desc_telemetry::LocalHistogram::new();
                pass.bank_conflicts = 0;
                pass.bank_busy_cycles = 0;
                for (slot, r) in sim.records.iter().enumerate() {
                    let arrival = (r.idx as f64 * pass_cpa) as u64;
                    let (start, queue) = pass.sched.schedule(r.bank, arrival, r.service);
                    pass.lat.push(queue + r.base_latency);
                    if r.miss {
                        pass.misses.push(MissEvent {
                            idx: r.idx,
                            part: p,
                            slot,
                            addr: r.addr,
                            issue: start + miss_detect,
                        });
                    }
                    if telemetry {
                        pass.queue_hist.record(queue);
                        if queue > 0 {
                            pass.bank_conflicts += 1;
                        }
                        pass.bank_busy_cycles += r.service;
                    }
                }
                pass.horizon = pass.sched.horizon();
            });

            // (B) Epoch barrier: order cross-bank DRAM requests by
            // (issue epoch, program order) — within an epoch, program
            // order; across epochs, issue time — and replay them
            // through one shared DRAM. The sort key is a pure function
            // of per-partition results, so this is deterministic for
            // any shard count.
            events.clear();
            for pass in &mut passes {
                events.append(&mut pass.misses);
            }
            events.sort_unstable_by_key(|e| (e.issue / epoch_cycles, e.idx));
            let mut dram =
                Dram::new(cfg.dram_channels, cfg.dram_latency_cycles, cfg.dram_occupancy_cycles);
            for e in &events {
                let done = dram.access(e.addr, e.issue);
                passes[e.part].lat[e.slot] += done - e.issue;
            }
            dram_accesses = dram.accesses();
            dram_row_hits = dram.row_hits();

            // (C) Order-independent merge in fixed bank order.
            latency_sum = passes.iter().map(|p| p.lat.iter().sum::<u64>()).sum();
            if telemetry {
                queue_hist = desc_telemetry::LocalHistogram::new();
                access_latency_hist = desc_telemetry::LocalHistogram::new();
                bank_conflicts = 0;
                bank_busy_cycles = 0;
                for pass in &passes {
                    queue_hist.absorb(&pass.queue_hist);
                    bank_conflicts += pass.bank_conflicts;
                    bank_busy_cycles += pass.bank_busy_cycles;
                    for &lat in &pass.lat {
                        access_latency_hist.record(lat);
                    }
                }
            }
            let horizon = passes.iter().map(|p| p.horizon).max().unwrap_or(0);
            let stall_cycles = (latency_sum as f64 * exposure / cores) as u64;
            exec_cycles = (base_cycles + stall_cycles).max(horizon);
            cpa = exec_cycles as f64 / accesses as f64;
        }

        let exec_time_s = exec_cycles as f64 * cfg.l2.tech.cycle_s();
        activity.elapsed_s = exec_time_s;

        if telemetry {
            desc_telemetry::counter!("sim.l2.accesses").add(accesses as u64);
            desc_telemetry::counter!("sim.l2.hits").add(hits);
            desc_telemetry::counter!("sim.l2.misses").add(misses);
            desc_telemetry::counter!("sim.l2.writebacks").add(writebacks);
            desc_telemetry::counter!("sim.l2.invalidations").add(invalidations);
            hit_latency_hist.flush_into(desc_telemetry::histogram!("sim.l2.hit_latency_cycles"));
            access_latency_hist
                .flush_into(desc_telemetry::histogram!("sim.l2.access_latency_cycles"));
            queue_hist.flush_into(desc_telemetry::histogram!("sim.bank.queue_cycles"));
            desc_telemetry::counter!("sim.bank.conflicts").add(bank_conflicts);
            desc_telemetry::counter!("sim.bank.busy_cycles").add(bank_busy_cycles);
            desc_telemetry::counter!("sim.dram.accesses").add(dram_accesses);
            desc_telemetry::counter!("sim.dram.row_hits").add(dram_row_hits);
            desc_telemetry::counter!("sim.dram.busy_cycles")
                .add(dram_accesses * cfg.dram_occupancy_cycles);
            desc_telemetry::counter!("sim.runs").incr();
        }

        SimResult {
            accesses: accesses as u64,
            hits,
            misses,
            writebacks,
            invalidations,
            avg_hit_latency_cycles: if hits > 0 { hit_latency_sum as f64 / hits as f64 } else { 0.0 },
            avg_access_latency_cycles: latency_sum as f64 / accesses as f64,
            exec_cycles,
            exec_time_s,
            instructions: (accesses as f64 * 1000.0 / apki) as u64,
            activity,
            transfer: transfer_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_core::schemes::SchemeKind;
    use desc_workloads::BenchmarkId;

    fn quick(kind: SchemeKind, bench: BenchmarkId, accesses: usize) -> SimResult {
        let sim = SystemSim::new(SimConfig::paper_multithreaded(), bench.profile(), 7);
        sim.run(kind.build_paper_config(), accesses)
    }

    #[test]
    fn binary_baseline_hit_latency_near_table1() {
        let r = quick(SchemeKind::ConventionalBinary, BenchmarkId::Lu, 8_000);
        assert!(
            (17.0..=21.0).contains(&r.avg_hit_latency_cycles),
            "hit latency {:.1}",
            r.avg_hit_latency_cycles
        );
    }

    #[test]
    fn desc_hit_latency_is_modestly_longer() {
        // Paper Fig. 21: 128-wire zero-skipped DESC adds ≈8 cycles to
        // the 128-wire binary hit; vs 64-wire binary the gap is
        // similar in spirit.
        let bin = quick(SchemeKind::ConventionalBinary, BenchmarkId::Ocean, 8_000);
        let desc = quick(SchemeKind::ZeroSkippedDesc, BenchmarkId::Ocean, 8_000);
        let delta = desc.avg_hit_latency_cycles - bin.avg_hit_latency_cycles;
        assert!((2.0..=16.0).contains(&delta), "hit-latency delta {delta:.1}");
    }

    #[test]
    fn desc_reduces_htree_transitions() {
        let bin = quick(SchemeKind::ConventionalBinary, BenchmarkId::Swim, 10_000);
        let desc = quick(SchemeKind::ZeroSkippedDesc, BenchmarkId::Swim, 10_000);
        assert!(
            (desc.activity.htree_transitions as f64)
                < 0.8 * bin.activity.htree_transitions as f64,
            "DESC {} vs binary {}",
            desc.activity.htree_transitions,
            bin.activity.htree_transitions
        );
    }

    #[test]
    fn desc_execution_overhead_is_small_on_throughput_cores() {
        // Paper §5.3: <2% execution-time overhead on the multithreaded
        // machine. Allow a little slack for the synthetic workloads.
        let bin = quick(SchemeKind::ConventionalBinary, BenchmarkId::Art, 12_000);
        let desc = quick(SchemeKind::ZeroSkippedDesc, BenchmarkId::Art, 12_000);
        let overhead = desc.exec_time_s / bin.exec_time_s - 1.0;
        assert!(overhead < 0.05, "execution overhead {:.3}", overhead);
        assert!(overhead > -0.02, "DESC should not speed execution up: {overhead:.3}");
    }

    #[test]
    fn ooo_core_is_more_latency_sensitive() {
        let mt_cfg = SimConfig::paper_multithreaded();
        let ooo_cfg = SimConfig::paper_out_of_order();
        let p = BenchmarkId::Mcf.profile();
        let slowdown = |cfg: SimConfig| {
            let bin = SystemSim::new(cfg, p, 3)
                .run(SchemeKind::ConventionalBinary.build_paper_config(), 10_000);
            let desc = SystemSim::new(cfg, p, 3)
                .run(SchemeKind::ZeroSkippedDesc.build_paper_config(), 10_000);
            desc.exec_time_s / bin.exec_time_s
        };
        assert!(slowdown(ooo_cfg) > slowdown(mt_cfg));
    }

    #[test]
    fn miss_rate_tracks_working_set() {
        // LU fits in 8 MB (2 MB footprint) → low miss rate; MCF's
        // 64 MB streaming footprint → high miss rate.
        let lu = quick(SchemeKind::ConventionalBinary, BenchmarkId::Lu, 20_000);
        let sim = SystemSim::new(
            SimConfig::paper_out_of_order(),
            BenchmarkId::Mcf.profile(),
            7,
        );
        let mcf = sim.run(SchemeKind::ConventionalBinary.build_paper_config(), 20_000);
        assert!(lu.miss_rate() < 0.25, "LU miss rate {:.3}", lu.miss_rate());
        assert!(mcf.miss_rate() > 0.3, "MCF miss rate {:.3}", mcf.miss_rate());
    }

    #[test]
    fn fewer_banks_increase_execution_time() {
        let p = BenchmarkId::Fft.profile();
        let mut one_bank = SimConfig::paper_multithreaded();
        one_bank.l2.banks = 1;
        let base = SystemSim::new(SimConfig::paper_multithreaded(), p, 5)
            .run(SchemeKind::ConventionalBinary.build_paper_config(), 12_000);
        let congested = SystemSim::new(one_bank, p, 5)
            .run(SchemeKind::ConventionalBinary.build_paper_config(), 12_000);
        assert!(
            congested.exec_cycles > base.exec_cycles,
            "1 bank {} !> 8 banks {}",
            congested.exec_cycles,
            base.exec_cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(SchemeKind::LastValueSkippedDesc, BenchmarkId::Cg, 5_000);
        let b = quick(SchemeKind::LastValueSkippedDesc, BenchmarkId::Cg, 5_000);
        assert_eq!(a.activity.htree_transitions, b.activity.htree_transitions);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn shard_count_never_changes_results() {
        // The decomposition unit is the bank, which is fixed by the
        // config; `shards` only caps in-flight partitions on the shared
        // pool. Results must be bit-identical for any shard count, on
        // both machine models and for stateful (last-value) schemes.
        desc_exec::configure(4);
        for (mk, kind, seed) in [
            (SimConfig::paper_multithreaded as fn() -> SimConfig, SchemeKind::ZeroSkippedDesc, 2013u64),
            (SimConfig::paper_out_of_order, SchemeKind::LastValueSkippedDesc, 99),
        ] {
            let serial = {
                let mut cfg = mk();
                cfg.shards = 1;
                SystemSim::new(cfg, BenchmarkId::Ocean.profile(), seed)
                    .run(kind.build_paper_config(), 6_000)
            };
            for shards in [2, 8, 32] {
                let mut cfg = mk();
                cfg.shards = shards;
                let sharded = SystemSim::new(cfg, BenchmarkId::Ocean.profile(), seed)
                    .run(kind.build_paper_config(), 6_000);
                assert_eq!(serial.hits, sharded.hits, "shards={shards}");
                assert_eq!(serial.misses, sharded.misses, "shards={shards}");
                assert_eq!(serial.writebacks, sharded.writebacks, "shards={shards}");
                assert_eq!(serial.exec_cycles, sharded.exec_cycles, "shards={shards}");
                assert_eq!(
                    serial.activity.htree_transitions, sharded.activity.htree_transitions,
                    "shards={shards}"
                );
                assert_eq!(serial.transfer.total(), sharded.transfer.total(), "shards={shards}");
                assert_eq!(
                    serial.avg_access_latency_cycles.to_bits(),
                    sharded.avg_access_latency_cycles.to_bits(),
                    "shards={shards}"
                );
            }
        }
    }

    #[test]
    fn non_power_of_two_banks_fall_back_to_one_partition() {
        // 3 banks cannot own whole cache sets, so the cell runs as a
        // single partition — still correct and still shard-invariant.
        let mut cfg = SimConfig::paper_multithreaded();
        cfg.l2.banks = 3;
        let serial = SystemSim::new(cfg, BenchmarkId::Fft.profile(), 11)
            .run(SchemeKind::ConventionalBinary.build_paper_config(), 5_000);
        cfg.shards = 4;
        let sharded = SystemSim::new(cfg, BenchmarkId::Fft.profile(), 11)
            .run(SchemeKind::ConventionalBinary.build_paper_config(), 5_000);
        assert_eq!(serial.exec_cycles, sharded.exec_cycles);
        assert_eq!(serial.activity.htree_transitions, sharded.activity.htree_transitions);
        assert!(serial.hits + serial.misses == serial.accesses);
    }

    #[test]
    fn activity_accounts_fills_and_writebacks() {
        let r = quick(SchemeKind::ConventionalBinary, BenchmarkId::Mg, 10_000);
        assert_eq!(r.hits + r.misses, r.accesses);
        assert!(r.writebacks > 0);
        // Every access moves one block (hit serve or miss fill), and
        // every writeback moves one more.
        assert_eq!(r.activity.array_reads + r.activity.array_writes, r.accesses + r.writebacks);
        assert_eq!(r.transfer.blocks(), r.hits + r.misses + r.writebacks);
    }
}
