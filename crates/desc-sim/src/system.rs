//! The top-level system simulation: trace → L2 directory → transfer
//! scheme → bank/DRAM timing → execution time.

use crate::bank::BankScheduler;
use crate::cache::{CacheOutcome, SetAssocCache};
use crate::config::SimConfig;
use crate::dram::Dram;
use desc_cacti::cache::CacheActivity;
use desc_cacti::CacheModel;
use desc_core::wire::Bus;
use desc_core::{CostSummary, TransferScheme};
use desc_workloads::{Access, BenchmarkProfile};

/// Everything measured by one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// L2 accesses simulated.
    pub accesses: u64,
    /// L2 hits.
    pub hits: u64,
    /// L2 misses.
    pub misses: u64,
    /// Dirty evictions written back to DRAM.
    pub writebacks: u64,
    /// L1 invalidations from write sharing.
    pub invalidations: u64,
    /// Mean intrinsic L2 hit latency in cycles (array + H-tree +
    /// value-dependent transfer + interface logic) — paper Fig. 21.
    pub avg_hit_latency_cycles: f64,
    /// Mean end-to-end access latency including bank queueing and
    /// DRAM.
    pub avg_access_latency_cycles: f64,
    /// Execution time in cycles.
    pub exec_cycles: u64,
    /// Execution time in seconds.
    pub exec_time_s: f64,
    /// Instructions represented by the simulated access window.
    pub instructions: u64,
    /// Activity counters for energy pricing by `desc-cacti`.
    pub activity: CacheActivity,
    /// Per-block transfer cost statistics.
    pub transfer: CostSummary,
}

impl SimResult {
    /// L2 miss rate.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Per-access record from the functional phase, consumed by the
/// timing phase.
struct AccessRecord {
    addr: u64,
    bank: usize,
    miss: bool,
    /// Bank-port busy time (array + transfers through this bank).
    service: u64,
    /// Intrinsic latency excluding queueing and DRAM.
    base_latency: u64,
}

/// A configured simulation of one benchmark on one machine.
///
/// The same `SystemSim` can run different transfer schemes; each run
/// replays the identical trace and block-content stream, so scheme
/// comparisons are paired.
pub struct SystemSim {
    config: SimConfig,
    profile: BenchmarkProfile,
    seed: u64,
}

impl SystemSim {
    /// Creates a simulation of `profile` on `config` with a
    /// deterministic `seed`.
    #[must_use]
    pub fn new(config: SimConfig, profile: BenchmarkProfile, seed: u64) -> Self {
        Self { config, profile, seed }
    }

    /// Runs `accesses` L2 accesses through `scheme` and returns the
    /// measured result.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero.
    pub fn run(&self, mut scheme: Box<dyn TransferScheme>, accesses: usize) -> SimResult {
        assert!(accesses > 0, "simulate at least one access");
        let cfg = &self.config;
        let model = CacheModel::new(cfg.l2);
        let is_desc = scheme.name().contains("DESC");
        let is_last_value = scheme.name().contains("Last Value");
        let iface = if is_desc { cfg.desc_interface_cycles } else { 0 };
        let array = model.array_delay_cycles();
        let tree = model.htree_delay_cycles();
        let miss_detect = model.miss_latency_cycles();

        // ---- Functional phase: directory, transfers, transitions. ---
        let mut l2 = SetAssocCache::new(cfg.l2.capacity_bytes, cfg.l2.block_bytes, cfg.l2.associativity);
        let mut banks = BankScheduler::new(cfg.l2.banks);
        let mut values = self.profile.value_stream(self.seed);
        let mut trace_gen = self.profile.trace(self.seed);
        let mut addr_bus = Bus::new(48);
        scheme.reset();

        // Warm the directory so measurements reflect steady state
        // rather than cold-start compulsory misses (the paper runs
        // applications to completion; we measure a steady-state
        // window). Warmup touches the directory only — no transfers,
        // no energy.
        let capacity_blocks = cfg.l2.capacity_bytes / cfg.l2.block_bytes;
        let warmup = (2 * capacity_blocks).max(accesses);
        for _ in 0..warmup {
            let Access { addr, write, core } = trace_gen.next_access();
            let _ = l2.access(addr, write, core);
        }

        let invalidations_at_warmup = l2.invalidations();
        let mut records = Vec::with_capacity(accesses);
        let mut transfer_stats = CostSummary::new();
        let mut activity = CacheActivity::default();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut writebacks = 0u64;
        let mut hit_latency_sum = 0u64;
        // Telemetry is checked once per run; the per-access cost when
        // enabled is plain (non-atomic) local-histogram adds, merged
        // into the global registry after the timing phase.
        let telemetry = desc_telemetry::enabled();
        let mut hit_latency_hist = desc_telemetry::LocalHistogram::new();

        for _ in 0..accesses {
            let Access { addr, write, core } = trace_gen.next_access();
            let bank = banks.bank_of(addr, l2.block_bytes());
            let outcome = l2.access(addr, write, core);
            activity.tag_lookups += 1;
            let addr_flips = u64::from(addr_bus.drive((addr >> 6) & ((1 << 48) - 1)));
            activity.htree_transitions += addr_flips;

            let mut transfer_one = |scheme: &mut Box<dyn TransferScheme>,
                                    values: &mut desc_workloads::ValueStream,
                                    write_dir: bool|
             -> u64 {
                let block = values.next_block();
                let cost = scheme.transfer(&block);
                transfer_stats.record(cost);
                let mut transitions = cost.total_transitions();
                if is_last_value && write_dir {
                    // Last-value skipping broadcasts write data across
                    // subbanks to keep the controller's last-value
                    // table coherent (§5.2): extra H-tree energy.
                    transitions += (cost.data_transitions as f64
                        * self.config.last_value_write_penalty)
                        .round() as u64;
                }
                activity.htree_transitions += transitions;
                cost.cycles
            };

            match outcome {
                CacheOutcome::Hit => {
                    hits += 1;
                    let cycles = transfer_one(&mut scheme, &mut values, write);
                    if write {
                        activity.array_writes += 1;
                    } else {
                        activity.array_reads += 1;
                    }
                    let latency = array + tree + cycles + iface;
                    hit_latency_sum += latency;
                    if telemetry {
                        hit_latency_hist.record(latency);
                    }
                    records.push(AccessRecord {
                        addr,
                        bank,
                        miss: false,
                        service: array + cycles,
                        base_latency: latency,
                    });
                }
                CacheOutcome::Miss { writeback } => {
                    misses += 1;
                    // Fill: one block moves over the H-tree into the
                    // bank (and onward to the requester).
                    let fill_cycles = transfer_one(&mut scheme, &mut values, true);
                    activity.array_writes += 1;
                    let mut service = array + fill_cycles;
                    if writeback {
                        writebacks += 1;
                        let wb_cycles = transfer_one(&mut scheme, &mut values, false);
                        activity.array_reads += 1;
                        service += wb_cycles;
                    }
                    records.push(AccessRecord {
                        addr,
                        bank,
                        miss: true,
                        service,
                        // DRAM latency is added during the timing phase.
                        base_latency: miss_detect + fill_cycles + iface,
                    });
                }
            }
        }

        // ---- Timing phase: iterate arrivals to a fixed point. -------
        let apki = self.profile.l2_apki;
        let cores = self.profile.cores as f64;
        let base_cpa = 1000.0 / (apki * cores * self.profile.base_ipc);
        let base_cycles = (accesses as f64 * base_cpa).ceil() as u64;
        let exposure = cfg.core.exposure();

        let mut cpa = base_cpa;
        let mut exec_cycles = base_cycles;
        let mut latency_sum = 0u64;
        // Converged-iteration telemetry: re-initialised each pass, so
        // the values merged below reflect the final fixed-point
        // iteration only.
        let mut queue_hist = desc_telemetry::LocalHistogram::new();
        let mut access_latency_hist = desc_telemetry::LocalHistogram::new();
        let mut bank_conflicts = 0u64;
        let mut bank_busy_cycles = 0u64;
        let mut dram_accesses = 0u64;
        let mut dram_row_hits = 0u64;
        for _ in 0..3 {
            banks.reset();
            let mut dram = Dram::new(cfg.dram_channels, cfg.dram_latency_cycles, cfg.dram_occupancy_cycles);
            latency_sum = 0;
            if telemetry {
                queue_hist = desc_telemetry::LocalHistogram::new();
                access_latency_hist = desc_telemetry::LocalHistogram::new();
                bank_conflicts = 0;
                bank_busy_cycles = 0;
            }
            for (i, r) in records.iter().enumerate() {
                let arrival = (i as f64 * cpa) as u64;
                let (start, queue) = banks.schedule(r.bank, arrival, r.service);
                let mut latency = queue + r.base_latency;
                if r.miss {
                    let issue = start + miss_detect;
                    let done = dram.access(r.addr, issue);
                    latency += done - issue;
                }
                latency_sum += latency;
                if telemetry {
                    queue_hist.record(queue);
                    access_latency_hist.record(latency);
                    if queue > 0 {
                        bank_conflicts += 1;
                    }
                    bank_busy_cycles += r.service;
                }
            }
            dram_accesses = dram.accesses();
            dram_row_hits = dram.row_hits();
            let stall_cycles = (latency_sum as f64 * exposure / cores) as u64;
            exec_cycles = (base_cycles + stall_cycles).max(banks.horizon());
            cpa = exec_cycles as f64 / accesses as f64;
        }

        let exec_time_s = exec_cycles as f64 * cfg.l2.tech.cycle_s();
        activity.elapsed_s = exec_time_s;

        if telemetry {
            desc_telemetry::counter!("sim.l2.accesses").add(accesses as u64);
            desc_telemetry::counter!("sim.l2.hits").add(hits);
            desc_telemetry::counter!("sim.l2.misses").add(misses);
            desc_telemetry::counter!("sim.l2.writebacks").add(writebacks);
            desc_telemetry::counter!("sim.l2.invalidations")
                .add(l2.invalidations() - invalidations_at_warmup);
            hit_latency_hist.flush_into(desc_telemetry::histogram!("sim.l2.hit_latency_cycles"));
            access_latency_hist
                .flush_into(desc_telemetry::histogram!("sim.l2.access_latency_cycles"));
            queue_hist.flush_into(desc_telemetry::histogram!("sim.bank.queue_cycles"));
            desc_telemetry::counter!("sim.bank.conflicts").add(bank_conflicts);
            desc_telemetry::counter!("sim.bank.busy_cycles").add(bank_busy_cycles);
            desc_telemetry::counter!("sim.dram.accesses").add(dram_accesses);
            desc_telemetry::counter!("sim.dram.row_hits").add(dram_row_hits);
            desc_telemetry::counter!("sim.dram.busy_cycles")
                .add(dram_accesses * cfg.dram_occupancy_cycles);
            desc_telemetry::counter!("sim.runs").incr();
        }

        SimResult {
            accesses: accesses as u64,
            hits,
            misses,
            writebacks,
            invalidations: l2.invalidations() - invalidations_at_warmup,
            avg_hit_latency_cycles: if hits > 0 { hit_latency_sum as f64 / hits as f64 } else { 0.0 },
            avg_access_latency_cycles: latency_sum as f64 / accesses as f64,
            exec_cycles,
            exec_time_s,
            instructions: (accesses as f64 * 1000.0 / apki) as u64,
            activity,
            transfer: transfer_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desc_core::schemes::SchemeKind;
    use desc_workloads::BenchmarkId;

    fn quick(kind: SchemeKind, bench: BenchmarkId, accesses: usize) -> SimResult {
        let sim = SystemSim::new(SimConfig::paper_multithreaded(), bench.profile(), 7);
        sim.run(kind.build_paper_config(), accesses)
    }

    #[test]
    fn binary_baseline_hit_latency_near_table1() {
        let r = quick(SchemeKind::ConventionalBinary, BenchmarkId::Lu, 8_000);
        assert!(
            (17.0..=21.0).contains(&r.avg_hit_latency_cycles),
            "hit latency {:.1}",
            r.avg_hit_latency_cycles
        );
    }

    #[test]
    fn desc_hit_latency_is_modestly_longer() {
        // Paper Fig. 21: 128-wire zero-skipped DESC adds ≈8 cycles to
        // the 128-wire binary hit; vs 64-wire binary the gap is
        // similar in spirit.
        let bin = quick(SchemeKind::ConventionalBinary, BenchmarkId::Ocean, 8_000);
        let desc = quick(SchemeKind::ZeroSkippedDesc, BenchmarkId::Ocean, 8_000);
        let delta = desc.avg_hit_latency_cycles - bin.avg_hit_latency_cycles;
        assert!((2.0..=16.0).contains(&delta), "hit-latency delta {delta:.1}");
    }

    #[test]
    fn desc_reduces_htree_transitions() {
        let bin = quick(SchemeKind::ConventionalBinary, BenchmarkId::Swim, 10_000);
        let desc = quick(SchemeKind::ZeroSkippedDesc, BenchmarkId::Swim, 10_000);
        assert!(
            (desc.activity.htree_transitions as f64)
                < 0.8 * bin.activity.htree_transitions as f64,
            "DESC {} vs binary {}",
            desc.activity.htree_transitions,
            bin.activity.htree_transitions
        );
    }

    #[test]
    fn desc_execution_overhead_is_small_on_throughput_cores() {
        // Paper §5.3: <2% execution-time overhead on the multithreaded
        // machine. Allow a little slack for the synthetic workloads.
        let bin = quick(SchemeKind::ConventionalBinary, BenchmarkId::Art, 12_000);
        let desc = quick(SchemeKind::ZeroSkippedDesc, BenchmarkId::Art, 12_000);
        let overhead = desc.exec_time_s / bin.exec_time_s - 1.0;
        assert!(overhead < 0.05, "execution overhead {:.3}", overhead);
        assert!(overhead > -0.02, "DESC should not speed execution up: {overhead:.3}");
    }

    #[test]
    fn ooo_core_is_more_latency_sensitive() {
        let mt_cfg = SimConfig::paper_multithreaded();
        let ooo_cfg = SimConfig::paper_out_of_order();
        let p = BenchmarkId::Mcf.profile();
        let slowdown = |cfg: SimConfig| {
            let bin = SystemSim::new(cfg, p, 3)
                .run(SchemeKind::ConventionalBinary.build_paper_config(), 10_000);
            let desc = SystemSim::new(cfg, p, 3)
                .run(SchemeKind::ZeroSkippedDesc.build_paper_config(), 10_000);
            desc.exec_time_s / bin.exec_time_s
        };
        assert!(slowdown(ooo_cfg) > slowdown(mt_cfg));
    }

    #[test]
    fn miss_rate_tracks_working_set() {
        // LU fits in 8 MB (2 MB footprint) → low miss rate; MCF's
        // 64 MB streaming footprint → high miss rate.
        let lu = quick(SchemeKind::ConventionalBinary, BenchmarkId::Lu, 20_000);
        let sim = SystemSim::new(
            SimConfig::paper_out_of_order(),
            BenchmarkId::Mcf.profile(),
            7,
        );
        let mcf = sim.run(SchemeKind::ConventionalBinary.build_paper_config(), 20_000);
        assert!(lu.miss_rate() < 0.25, "LU miss rate {:.3}", lu.miss_rate());
        assert!(mcf.miss_rate() > 0.3, "MCF miss rate {:.3}", mcf.miss_rate());
    }

    #[test]
    fn fewer_banks_increase_execution_time() {
        let p = BenchmarkId::Fft.profile();
        let mut one_bank = SimConfig::paper_multithreaded();
        one_bank.l2.banks = 1;
        let base = SystemSim::new(SimConfig::paper_multithreaded(), p, 5)
            .run(SchemeKind::ConventionalBinary.build_paper_config(), 12_000);
        let congested = SystemSim::new(one_bank, p, 5)
            .run(SchemeKind::ConventionalBinary.build_paper_config(), 12_000);
        assert!(
            congested.exec_cycles > base.exec_cycles,
            "1 bank {} !> 8 banks {}",
            congested.exec_cycles,
            base.exec_cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(SchemeKind::LastValueSkippedDesc, BenchmarkId::Cg, 5_000);
        let b = quick(SchemeKind::LastValueSkippedDesc, BenchmarkId::Cg, 5_000);
        assert_eq!(a.activity.htree_transitions, b.activity.htree_transitions);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn activity_accounts_fills_and_writebacks() {
        let r = quick(SchemeKind::ConventionalBinary, BenchmarkId::Mg, 10_000);
        assert_eq!(r.hits + r.misses, r.accesses);
        assert!(r.writebacks > 0);
        // Every access moves one block (hit serve or miss fill), and
        // every writeback moves one more.
        assert_eq!(r.activity.array_reads + r.activity.array_writes, r.accesses + r.writebacks);
        assert_eq!(r.transfer.blocks(), r.hits + r.misses + r.writebacks);
    }
}
