//! Property-based tests for the simulator substrates.

// Gated: compiled only with `--features proptest`, which requires
// network access to fetch the `proptest` crate (see Cargo.toml).
#![cfg(feature = "proptest")]

use desc_sim::bank::BankScheduler;
use desc_sim::coherence::Directory;
use desc_sim::dram::Dram;
use desc_sim::SetAssocCache;
use proptest::prelude::*;

proptest! {
    /// Bank scheduling: starts never precede arrivals, queueing is
    /// exactly the difference, and the horizon covers every grant.
    #[test]
    fn bank_scheduler_is_work_conserving(
        requests in prop::collection::vec((0u64..1000, 1u64..50, 0usize..8), 1..200),
    ) {
        let mut banks = BankScheduler::new(8);
        let mut last_end = 0u64;
        for (arrival, service, bank) in requests {
            let (start, queue) = banks.schedule(bank, arrival, service);
            prop_assert!(start >= arrival);
            prop_assert_eq!(queue, start - arrival);
            last_end = last_end.max(start + service);
        }
        prop_assert_eq!(banks.horizon(), last_end);
    }

    /// DRAM completions are causal and row hits never slower than
    /// row misses.
    #[test]
    fn dram_is_causal(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..200),
    ) {
        let mut dram = Dram::new(2, 120, 24);
        let mut now = 0u64;
        for addr in addrs {
            let done = dram.access(addr & !63, now);
            prop_assert!(done >= now + 72, "row hits still cost 60% of latency");
            // Worst case: every request queues behind every earlier one
            // on the same channel.
            prop_assert!(done <= now + 200 * 24 + 120);
            now += 3;
        }
    }

    /// The cache directory conserves accesses: every access is a hit
    /// or a miss, and a set never holds duplicate tags.
    #[test]
    fn cache_conserves_accesses(
        accesses in prop::collection::vec((0u64..(1 << 16), any::<bool>()), 1..500),
    ) {
        let mut cache = SetAssocCache::new(4096, 64, 4);
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (addr, write) in &accesses {
            if cache.access(addr & !63, *write, 0).is_hit() {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        prop_assert_eq!(hits + misses, accesses.len() as u64);
        // Re-touching the most recent block always hits.
        if let Some((addr, _)) = accesses.last() {
            prop_assert!(cache.access(addr & !63, false, 0).is_hit());
        }
    }

    /// MESI invariants survive arbitrary interleavings of reads,
    /// writes and evictions from all cores.
    #[test]
    fn mesi_invariants_hold(
        ops in prop::collection::vec((0u8..8, 0u64..32, 0u8..3), 1..400),
    ) {
        let mut dir = Directory::new(8);
        for (core, block, op) in ops {
            let addr = block * 64;
            match op {
                0 => { let _ = dir.read(core, addr); }
                1 => dir.write(core, addr),
                _ => { let _ = dir.evict(core, addr); }
            }
            prop_assert!(dir.invariants_hold());
        }
    }

    /// A block written by one core and read by another always
    /// produces at least one downgrade or intervention.
    #[test]
    fn sharing_generates_protocol_traffic(writer in 0u8..8, reader in 0u8..8) {
        prop_assume!(writer != reader);
        let mut dir = Directory::new(8);
        dir.write(writer, 0x1000);
        let _ = dir.read(reader, 0x1000);
        let stats = dir.stats();
        prop_assert!(stats.downgrades + stats.interventions >= 1);
    }
}
