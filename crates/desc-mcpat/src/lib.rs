//! # desc-mcpat
//!
//! A processor-level power roll-up standing in for McPAT (paper §4:
//! "Using McPAT, we estimate the overall processor power with and
//! without DESC at the L2 cache").
//!
//! The paper uses McPAT for exactly one purpose: converting L2 energy
//! changes into *total processor* energy changes (Figs. 1, 14, 19).
//! That conversion is governed by a single anchor — the L2 accounts
//! for ≈15% of processor energy on the baseline configuration — so
//! this crate models the rest of the chip as per-instruction core
//! energy, per-access L1 energy, and per-core leakage, with constants
//! chosen to land the anchor. Absolute wattage is *not* calibrated to
//! any real silicon (neither is the paper's, which reports everything
//! normalised); the ratios are what matter.
//!
//! ```
//! use desc_mcpat::{ProcessorConfig, ProcessorEnergy};
//! use desc_cacti::EnergyBreakdown;
//!
//! let cfg = ProcessorConfig::niagara_like();
//! let l2 = EnergyBreakdown { static_j: 2e-3, array_dynamic_j: 1e-3, htree_dynamic_j: 12e-3 };
//! let e = cfg.roll_up(1_000_000_000, 0.05, l2, 5_000_000);
//! let f = e.l2_fraction();
//! assert!(f > 0.0 && f < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use desc_cacti::EnergyBreakdown;
use std::fmt;

/// Per-component energy constants for a processor class.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ProcessorConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core pipeline energy per committed instruction in joules
    /// (fetch/decode/execute/register files).
    pub core_j_per_instruction: f64,
    /// L1 (I+D) energy per L1 access in joules.
    pub l1_j_per_access: f64,
    /// L1 accesses per instruction (instruction fetch + data).
    pub l1_accesses_per_instruction: f64,
    /// Core + L1 leakage per core in watts (low-leakage cores, as the
    /// paper's LSTP-biased design space implies).
    pub core_leakage_w: f64,
    /// DRAM energy per 64-byte access in joules. Reported separately;
    /// *not* part of processor energy (McPAT models the chip).
    pub dram_j_per_access: f64,
}

impl ProcessorConfig {
    /// The Table 1 multithreaded machine: 8 in-order cores, 4 contexts
    /// each. Constants are set so the 8 MB LSTP L2 lands at ≈15% of
    /// processor energy on the parallel suite (paper Fig. 1).
    #[must_use]
    pub fn niagara_like() -> Self {
        Self {
            cores: 8,
            core_j_per_instruction: 7.3e-12,
            l1_j_per_access: 0.85e-12,
            l1_accesses_per_instruction: 1.3,
            core_leakage_w: 2.7e-3,
            dram_j_per_access: 20e-9,
        }
    }

    /// The Table 1 single-threaded machine: one 4-issue out-of-order
    /// core (wider structures → much higher per-instruction energy).
    #[must_use]
    pub fn out_of_order() -> Self {
        Self {
            cores: 1,
            core_j_per_instruction: 50e-12,
            l1_j_per_access: 1.2e-12,
            l1_accesses_per_instruction: 1.4,
            core_leakage_w: 8.3e-3,
            dram_j_per_access: 20e-9,
        }
    }

    /// Rolls up processor energy for a simulated interval.
    ///
    /// * `instructions` — committed instructions in the interval,
    /// * `exec_time_s` — wall-clock duration,
    /// * `l2` — the L2's energy breakdown (from `desc-cacti`),
    /// * `dram_accesses` — L2 misses + writebacks reaching DRAM.
    #[must_use]
    pub fn roll_up(
        &self,
        instructions: u64,
        exec_time_s: f64,
        l2: EnergyBreakdown,
        dram_accesses: u64,
    ) -> ProcessorEnergy {
        let core_dynamic = instructions as f64 * self.core_j_per_instruction;
        let l1 = instructions as f64 * self.l1_accesses_per_instruction * self.l1_j_per_access;
        let core_static = self.cores as f64 * self.core_leakage_w * exec_time_s;
        ProcessorEnergy {
            core_j: core_dynamic + core_static,
            l1_j: l1,
            l2,
            dram_j: dram_accesses as f64 * self.dram_j_per_access,
        }
    }
}

/// Energy of one simulated interval, by component.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ProcessorEnergy {
    /// Core pipelines (dynamic + leakage).
    pub core_j: f64,
    /// L1 instruction + data caches.
    pub l1_j: f64,
    /// The shared L2 (static / array / H-tree split preserved).
    pub l2: EnergyBreakdown,
    /// Off-chip DRAM (not counted in processor totals).
    pub dram_j: f64,
}

impl ProcessorEnergy {
    /// Total on-chip processor energy (cores + L1s + L2).
    #[must_use]
    pub fn processor_total_j(&self) -> f64 {
        self.core_j + self.l1_j + self.l2.total()
    }

    /// Fraction of processor energy spent in the L2 (paper Fig. 1).
    #[must_use]
    pub fn l2_fraction(&self) -> f64 {
        self.l2.total() / self.processor_total_j()
    }

    /// Energy of everything except the L2 (the paper's Fig. 19 "Other
    /// Hardware Units" bar).
    #[must_use]
    pub fn other_units_j(&self) -> f64 {
        self.core_j + self.l1_j
    }
}

impl fmt::Display for ProcessorEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} J processor ({:.1}% L2), {:.3e} J DRAM",
            self.processor_total_j(),
            100.0 * self.l2_fraction(),
            self.dram_j
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2_sample() -> EnergyBreakdown {
        // Representative of the baseline L2 over a 50 ms window at
        // ~300M accesses/s: mostly H-tree.
        EnergyBreakdown { static_j: 0.27e-3, array_dynamic_j: 0.12e-3, htree_dynamic_j: 1.5e-3 }
    }

    #[test]
    fn niagara_l2_fraction_is_near_15_percent() {
        // Paper Fig. 1 geomean anchor. 50 ms of 8 cores at 3.2 GHz and
        // IPC ≈ 0.9 → ~1.15e9 instructions.
        let e = ProcessorConfig::niagara_like().roll_up(1_150_000_000, 0.05, l2_sample(), 4_000_000);
        let f = e.l2_fraction();
        assert!((0.10..=0.22).contains(&f), "L2 fraction {f:.3}, paper ≈0.15");
    }

    #[test]
    fn halving_l2_energy_saves_roughly_its_share() {
        // Paper Fig. 19 arithmetic: 1.81× L2 reduction at a 15% share
        // → ≈7% total processor savings.
        let cfg = ProcessorConfig::niagara_like();
        let base = cfg.roll_up(1_150_000_000, 0.05, l2_sample(), 4_000_000);
        let mut reduced = l2_sample();
        reduced.htree_dynamic_j /= 2.4; // what zero-skip DESC does
        let better = cfg.roll_up(1_150_000_000, 0.05, reduced, 4_000_000);
        let saving = 1.0 - better.processor_total_j() / base.processor_total_j();
        assert!((0.03..=0.13).contains(&saving), "processor saving {saving:.3}, paper ≈0.07");
    }

    #[test]
    fn ooo_core_dwarfs_l2_share() {
        let e = ProcessorConfig::out_of_order().roll_up(200_000_000, 0.05, l2_sample(), 4_000_000);
        assert!(e.l2_fraction() < 0.25);
        assert!(e.core_j > e.l1_j);
    }

    #[test]
    fn dram_not_in_processor_total() {
        let cfg = ProcessorConfig::niagara_like();
        let a = cfg.roll_up(1_000_000, 0.001, l2_sample(), 0);
        let b = cfg.roll_up(1_000_000, 0.001, l2_sample(), 1_000_000);
        assert!((a.processor_total_j() - b.processor_total_j()).abs() < 1e-15);
        assert!(b.dram_j > a.dram_j);
    }

    #[test]
    fn components_decompose() {
        let e = ProcessorConfig::niagara_like().roll_up(1_000_000, 0.001, l2_sample(), 10);
        assert!(
            (e.processor_total_j() - e.other_units_j() - e.l2.total()).abs()
                < 1e-12 * e.processor_total_j()
        );
        assert!(format!("{e}").contains("processor"));
    }
}
