//! Property-based tests for the cache model: the physical
//! monotonicities every valid calibration must respect.

// Gated: compiled only with `--features proptest`, which requires
// network access to fetch the `proptest` crate (see Cargo.toml).
#![cfg(feature = "proptest")]

use desc_cacti::{CacheConfig, CacheModel, DeviceType, Signaling};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = DeviceType> {
    prop_oneof![Just(DeviceType::Hp), Just(DeviceType::Lop), Just(DeviceType::Lstp)]
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![
            Just(512usize << 10),
            Just(1 << 20),
            Just(2 << 20),
            Just(8 << 20),
            Just(32 << 20)
        ],
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16), Just(32), Just(64)],
        prop_oneof![Just(16usize), Just(64), Just(128), Just(256), Just(512)],
        arb_device(),
        arb_device(),
    )
        .prop_map(|(capacity_bytes, banks, bus_width_bits, cell, periphery)| CacheConfig {
            capacity_bytes,
            banks,
            bus_width_bits,
            cell_device: cell,
            periphery_device: periphery,
            ..CacheConfig::paper_baseline()
        })
}

proptest! {
    /// All five CACTI quantities are finite and positive everywhere in
    /// the explored design space.
    #[test]
    fn quantities_are_physical(config in arb_config()) {
        let m = CacheModel::new(config);
        prop_assert!(m.htree_energy_per_transition() > 0.0);
        prop_assert!(m.htree_energy_per_transition() < 1e-9, "over a nanojoule per flip");
        prop_assert!(m.array_read_energy() > 0.0);
        prop_assert!(m.leakage_power() > 0.0 && m.leakage_power() < 100.0);
        prop_assert!(m.area_mm2() > 0.1 && m.area_mm2() < 1000.0);
        prop_assert!(m.hit_latency_cycles() >= 3);
        prop_assert!(m.miss_latency_cycles() <= m.hit_latency_cycles());
    }

    /// More capacity → more area, more leakage, costlier wires.
    #[test]
    fn capacity_monotonicity(config in arb_config()) {
        let small = CacheModel::new(config);
        let big = CacheModel::new(CacheConfig {
            capacity_bytes: config.capacity_bytes * 2,
            ..config
        });
        prop_assert!(big.area_mm2() > small.area_mm2());
        prop_assert!(big.leakage_power() > small.leakage_power());
        prop_assert!(big.htree_energy_per_transition() > small.htree_energy_per_transition());
    }

    /// Wider buses never lengthen binary transfers; hit latency is
    /// monotone non-increasing in width.
    #[test]
    fn width_monotonicity(config in arb_config()) {
        let narrow = CacheModel::new(config);
        let wide = CacheModel::new(CacheConfig {
            bus_width_bits: config.bus_width_bits * 2,
            ..config
        });
        prop_assert!(wide.binary_transfer_cycles() <= narrow.binary_transfer_cycles());
        // Extra wires add routing area (a slightly longer tree), so
        // allow one cycle of slack when widening saves no beats.
        prop_assert!(wide.hit_latency_cycles() <= narrow.hit_latency_cycles() + 1);
    }

    /// Device-class leakage ordering holds for any organisation.
    #[test]
    fn device_leakage_ordering(config in arb_config()) {
        let with = |d: DeviceType| {
            CacheModel::new(CacheConfig { cell_device: d, periphery_device: d, ..config })
                .leakage_power()
        };
        let hp = with(DeviceType::Hp);
        let lop = with(DeviceType::Lop);
        let lstp = with(DeviceType::Lstp);
        prop_assert!(hp > lop);
        prop_assert!(lop > lstp);
    }

    /// Low-swing signaling always reduces per-transition energy and
    /// never reduces delay.
    #[test]
    fn low_swing_tradeoff(config in arb_config(), swing in 0.05f64..0.5) {
        let full = CacheModel::new(config);
        let low = CacheModel::new(CacheConfig {
            signaling: Signaling::LowSwing { swing_v: swing },
            ..config
        });
        prop_assert!(low.htree_energy_per_transition() < full.htree_energy_per_transition());
        prop_assert!(low.htree_delay_cycles() >= full.htree_delay_cycles());
    }

    /// Energy pricing is linear in activity.
    #[test]
    fn energy_linear_in_activity(
        config in arb_config(),
        transitions in 1u64..1_000_000,
        reads in 1u64..100_000,
    ) {
        use desc_cacti::cache::CacheActivity;
        let m = CacheModel::new(config);
        let one = m.energy_for(&CacheActivity {
            htree_transitions: transitions,
            array_reads: reads,
            array_writes: 0,
            tag_lookups: reads,
            elapsed_s: 0.001,
        });
        let two = m.energy_for(&CacheActivity {
            htree_transitions: transitions * 2,
            array_reads: reads * 2,
            array_writes: 0,
            tag_lookups: reads * 2,
            elapsed_s: 0.002,
        });
        prop_assert!((two.total() - 2.0 * one.total()).abs() < 1e-9 * two.total().max(1e-30));
    }
}
