//! Cache floorplanning: bank organisation, area, and H-tree lengths
//! (paper Fig. 7: main, horizontal and vertical H-trees).

use crate::tech::TechParams;

/// Floorplan of a banked cache.
///
/// The model is square-root floorplanning: SRAM bits occupy
/// `bits × cell_area / efficiency`; every bank adds a fixed overhead
/// footprint (decoders, sense amplifiers, port wiring, and — when DESC
/// is used — the transmitter/receiver interfaces); banks tile a square
/// die region. The data H-tree path to a mat is the main-tree route
/// from the cache controller into the bank grid plus the in-bank
/// (horizontal + vertical) tree.
///
/// # Examples
///
/// ```
/// use desc_cacti::geometry::Floorplan;
/// use desc_cacti::TechParams;
///
/// let f = Floorplan::new(&TechParams::nm22(), 8 << 20, 8, 64);
/// assert!(f.area_mm2() > 10.0 && f.area_mm2() < 30.0);
/// assert!(f.htree_path_mm() > 1.0 && f.htree_path_mm() < 8.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Floorplan {
    capacity_bytes: usize,
    banks: usize,
    area_mm2: f64,
    bank_area_mm2: f64,
    main_tree_mm: f64,
    bank_tree_mm: f64,
}

/// Fixed per-bank overhead footprint in mm² (decoders, sense
/// amplifiers, bank I/O). This is what makes very high bank counts
/// area- and energy-inefficient (paper Fig. 25).
const BANK_OVERHEAD_MM2: f64 = 0.2;

/// Additional area per data-bus wire in mm² (routing tracks over the
/// array).
const WIRE_TRACK_MM2: f64 = 0.002;

impl Floorplan {
    /// Builds a floorplan for `capacity_bytes` of SRAM in `banks`
    /// banks with a `bus_width_bits`-wire data bus.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    #[must_use]
    pub fn new(tech: &TechParams, capacity_bytes: usize, banks: usize, bus_width_bits: usize) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        assert!(banks > 0, "bank count must be positive");
        assert!(bus_width_bits > 0, "bus width must be positive");
        let bits = capacity_bytes as f64 * 8.0;
        let array_mm2 = bits * tech.cell_area_um2 * 1e-6 / tech.array_efficiency;
        let area_mm2 = array_mm2
            + banks as f64 * BANK_OVERHEAD_MM2
            + bus_width_bits as f64 * WIRE_TRACK_MM2;
        let bank_area_mm2 = area_mm2 / banks as f64;
        // Main tree: controller at the die edge to a bank's corner.
        // More banks deepen the tree slightly (extra branch levels).
        let main_tree_mm = 0.5 * area_mm2.sqrt() * (1.0 + (banks as f64).log2() / 8.0);
        // In-bank horizontal + vertical trees to reach a mat.
        let bank_tree_mm = 0.7 * bank_area_mm2.sqrt();
        Self { capacity_bytes, banks, area_mm2, bank_area_mm2, main_tree_mm, bank_tree_mm }
    }

    /// Total die area of the cache in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// Area of one bank in mm².
    #[must_use]
    pub fn bank_area_mm2(&self) -> f64 {
        self.bank_area_mm2
    }

    /// One-way data-path length from the cache controller to a mat in
    /// millimetres (main tree + in-bank trees).
    #[must_use]
    pub fn htree_path_mm(&self) -> f64 {
        self.main_tree_mm + self.bank_tree_mm
    }

    /// Main-tree (controller → bank) portion of the path.
    #[must_use]
    pub fn main_tree_mm(&self) -> f64 {
        self.main_tree_mm
    }

    /// In-bank (horizontal + vertical tree) portion of the path.
    #[must_use]
    pub fn bank_tree_mm(&self) -> f64 {
        self.bank_tree_mm
    }

    /// Total routed wire length of the whole data H-tree per bus wire,
    /// in millimetres — used for repeater leakage accounting. An
    /// H-tree that reaches `banks` bank positions has total length
    /// ≈ 3·√area (sum over branch levels), largely independent of the
    /// branch count.
    #[must_use]
    pub fn total_tree_mm_per_wire(&self) -> f64 {
        3.0 * self.area_mm2.sqrt()
    }

    /// Bits per bank.
    #[must_use]
    pub fn bank_bits(&self) -> f64 {
        self.capacity_bytes as f64 * 8.0 / self.banks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechParams {
        TechParams::nm22()
    }

    #[test]
    fn paper_baseline_area_is_plausible() {
        // 8 MB at 22 nm: roughly 13–20 mm² including overheads.
        let f = Floorplan::new(&tech(), 8 << 20, 8, 64);
        assert!(f.area_mm2() > 13.0 && f.area_mm2() < 20.0, "area {}", f.area_mm2());
    }

    #[test]
    fn area_grows_with_capacity() {
        let small = Floorplan::new(&tech(), 512 << 10, 8, 64);
        let big = Floorplan::new(&tech(), 64 << 20, 8, 64);
        assert!(big.area_mm2() > 10.0 * small.area_mm2());
    }

    #[test]
    fn more_banks_cost_overhead_area() {
        let few = Floorplan::new(&tech(), 8 << 20, 2, 64);
        let many = Floorplan::new(&tech(), 8 << 20, 64, 64);
        assert!(many.area_mm2() > few.area_mm2() + 10.0);
    }

    #[test]
    fn htree_path_shrinks_within_bank_as_banks_grow() {
        let few = Floorplan::new(&tech(), 8 << 20, 2, 64);
        let many = Floorplan::new(&tech(), 8 << 20, 32, 64);
        assert!(many.bank_tree_mm() < few.bank_tree_mm());
        assert!(many.main_tree_mm() > few.main_tree_mm());
    }

    #[test]
    fn path_decomposes() {
        let f = Floorplan::new(&tech(), 8 << 20, 8, 64);
        assert!((f.htree_path_mm() - f.main_tree_mm() - f.bank_tree_mm()).abs() < 1e-12);
    }

    #[test]
    fn bank_bits_partition_capacity() {
        let f = Floorplan::new(&tech(), 8 << 20, 16, 64);
        assert!((f.bank_bits() - (8.0 * (8 << 20) as f64 / 16.0)).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "bank count")]
    fn zero_banks_rejected() {
        let _ = Floorplan::new(&tech(), 8 << 20, 0, 64);
    }
}
