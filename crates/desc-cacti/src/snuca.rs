//! S-NUCA-1 organisation (Kim, Burger & Keckler \[8\]; paper §5.5).
//!
//! 128 banks, each with a private statically-routed 128-bit port to the
//! cache controller (no switches), so access latency and wire energy
//! depend on the bank's physical distance: the paper quotes bank
//! latencies of 3–13 core cycles.

use crate::cache::CacheConfig;
use crate::geometry::Floorplan;
use crate::wire::WireModel;

/// An S-NUCA-1 cache: per-bank private channels with
/// distance-dependent latency and energy.
///
/// # Examples
///
/// ```
/// use desc_cacti::snuca::SnucaModel;
///
/// let m = SnucaModel::paper_default();
/// assert_eq!(m.banks(), 128);
/// assert_eq!(m.bank_latency_cycles(0), 3);    // nearest bank
/// assert_eq!(m.bank_latency_cycles(127), 13); // farthest bank
/// ```
#[derive(Clone, Debug)]
pub struct SnucaModel {
    config: CacheConfig,
    floorplan: Floorplan,
    bank_wires: Vec<WireModel>,
}

impl SnucaModel {
    /// The paper's S-NUCA-1 configuration: 8 MB, 128 banks, 128-bit
    /// ports, LSTP devices.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(CacheConfig {
            banks: 128,
            bus_width_bits: 128,
            ..CacheConfig::paper_baseline()
        })
    }

    /// Builds an S-NUCA-1 model from a cache configuration whose
    /// `banks` are laid out in a grid around the controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than 2 banks.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.banks >= 2, "S-NUCA needs multiple banks");
        let floorplan =
            Floorplan::new(&config.tech, config.capacity_bytes, config.banks, config.bus_width_bits);
        // Banks sorted by distance: bank k sits at a routed distance
        // interpolated between the nearest corner of the array and the
        // farthest (≈ the die diagonal).
        let near = 0.15 * floorplan.area_mm2().sqrt();
        let far = 1.4 * floorplan.area_mm2().sqrt();
        let bank_wires = (0..config.banks)
            .map(|k| {
                let t = k as f64 / (config.banks - 1) as f64;
                let len = near + t * (far - near);
                WireModel::new(&config.tech, len, config.periphery_device)
            })
            .collect();
        Self { config, floorplan, bank_wires }
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.config.banks
    }

    /// The underlying configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Wire latency to `bank` in cycles, mapped onto the paper's 3–13
    /// cycle range by distance order.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank_latency_cycles(&self, bank: usize) -> u64 {
        assert!(bank < self.config.banks, "bank {bank} out of range");
        let t = bank as f64 / (self.config.banks - 1) as f64;
        (3.0 + t * 10.0).round() as u64
    }

    /// Per-transition wire energy for `bank`'s private channel in
    /// joules.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank_energy_per_transition(&self, bank: usize) -> f64 {
        assert!(bank < self.config.banks, "bank {bank} out of range");
        self.bank_wires[bank].energy_per_transition()
    }

    /// Mean per-transition energy across banks (uniform bank usage).
    #[must_use]
    pub fn mean_energy_per_transition(&self) -> f64 {
        self.bank_wires.iter().map(WireModel::energy_per_transition).sum::<f64>()
            / self.config.banks as f64
    }

    /// Mean bank latency in cycles (uniform bank usage).
    #[must_use]
    pub fn mean_latency_cycles(&self) -> f64 {
        (0..self.config.banks).map(|b| self.bank_latency_cycles(b) as f64).sum::<f64>()
            / self.config.banks as f64
    }

    /// Total area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.floorplan.area_mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_range_matches_paper() {
        let m = SnucaModel::paper_default();
        assert_eq!(m.bank_latency_cycles(0), 3);
        assert_eq!(m.bank_latency_cycles(127), 13);
        for b in 0..128 {
            let l = m.bank_latency_cycles(b);
            assert!((3..=13).contains(&l));
        }
    }

    #[test]
    fn energy_grows_with_distance() {
        let m = SnucaModel::paper_default();
        assert!(m.bank_energy_per_transition(127) > 3.0 * m.bank_energy_per_transition(0));
    }

    #[test]
    fn mean_statistics_are_interior() {
        let m = SnucaModel::paper_default();
        let mean_e = m.mean_energy_per_transition();
        assert!(mean_e > m.bank_energy_per_transition(0));
        assert!(mean_e < m.bank_energy_per_transition(127));
        let mean_l = m.mean_latency_cycles();
        assert!(mean_l > 3.0 && mean_l < 13.0);
    }

    #[test]
    fn mean_wire_energy_comparable_to_uca_htree() {
        use crate::cache::CacheModel;
        // Sanity: S-NUCA private channels average out near the UCA
        // H-tree path energy (same die, different routing).
        let snuca = SnucaModel::paper_default();
        let uca = CacheModel::new(CacheConfig::paper_baseline());
        let ratio = snuca.mean_energy_per_transition() / uca.htree_energy_per_transition();
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio:.2}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_index_validated() {
        let m = SnucaModel::paper_default();
        let _ = m.bank_latency_cycles(128);
    }
}
