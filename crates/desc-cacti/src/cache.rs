//! Whole-cache roll-up: the five CACTI quantities as functions of the
//! cache organisation (paper §4.1).

use crate::geometry::Floorplan;
use crate::tech::{DeviceType, TechParams};
use crate::wire::{Signaling, WireModel};
use std::fmt;

/// Organisation of a banked SRAM cache.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Number of independently accessible banks.
    pub banks: usize,
    /// Data-bus width in wires (the paper sweeps 8–512).
    pub bus_width_bits: usize,
    /// Cache block size in bytes (Table 1: 64).
    pub block_bytes: usize,
    /// Set associativity (Table 1: 16).
    pub associativity: usize,
    /// Device class of the SRAM cells.
    pub cell_device: DeviceType,
    /// Device class of the peripheral circuitry (decoders, sense amps,
    /// H-tree repeaters).
    pub periphery_device: DeviceType,
    /// Process constants.
    pub tech: TechParams,
    /// Electrical signaling style of the H-tree wires.
    pub signaling: Signaling,
}

impl CacheConfig {
    /// The paper's most energy-efficient baseline (§4.1): 8 MB, 8
    /// banks, 64-bit data bus, LSTP cells and periphery.
    #[must_use]
    pub fn paper_baseline() -> Self {
        Self {
            capacity_bytes: 8 << 20,
            banks: 8,
            bus_width_bits: 64,
            block_bytes: 64,
            associativity: 16,
            cell_device: DeviceType::Lstp,
            periphery_device: DeviceType::Lstp,
            tech: TechParams::nm22(),
            signaling: Signaling::FullSwing,
        }
    }

    /// Address + control wires accompanying the data bus (sent in
    /// plain binary even under DESC, §3.2.1).
    #[must_use]
    pub fn address_control_wires(&self) -> usize {
        48
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Per-access and per-second cost factors of a cache organisation.
///
/// # Examples
///
/// ```
/// use desc_cacti::{CacheConfig, CacheModel, DeviceType};
///
/// let lstp = CacheModel::new(CacheConfig::paper_baseline());
/// let hp = CacheModel::new(CacheConfig {
///     cell_device: DeviceType::Hp,
///     periphery_device: DeviceType::Hp,
///     ..CacheConfig::paper_baseline()
/// });
/// // HP arrays are faster but leak orders of magnitude more.
/// assert!(hp.hit_latency_cycles() < lstp.hit_latency_cycles());
/// assert!(hp.leakage_power() > 50.0 * lstp.leakage_power());
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CacheModel {
    config: CacheConfig,
    floorplan: Floorplan,
    data_path: WireModel,
}

impl CacheModel {
    /// Builds the model for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero capacity, banks
    /// or widths).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.block_bytes > 0, "block size must be positive");
        assert!(config.associativity > 0, "associativity must be positive");
        let floorplan = Floorplan::new(
            &config.tech,
            config.capacity_bytes,
            config.banks,
            config.bus_width_bits,
        );
        let data_path = WireModel::with_signaling(
            &config.tech,
            floorplan.htree_path_mm(),
            config.periphery_device,
            config.signaling,
        );
        Self { config, floorplan, data_path }
    }

    /// The configuration this model was built from.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The floorplan underlying the model.
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Energy of one transition on one H-tree wire over the full
    /// controller ↔ mat path, in joules. **This is the quantity DESC
    /// reduces.**
    #[must_use]
    pub fn htree_energy_per_transition(&self) -> f64 {
        self.data_path.energy_per_transition()
    }

    /// Array energy per block read in joules: row decode (periphery)
    /// plus bitline/senseamp swing for every bit of the block (cells).
    #[must_use]
    pub fn array_read_energy(&self) -> f64 {
        let decode = 5e-12 * self.config.periphery_device.dynamic_energy_factor();
        let bitlines = self.config.block_bytes as f64
            * 8.0
            * 20e-15
            * self.config.cell_device.dynamic_energy_factor();
        decode + bitlines
    }

    /// Array energy per block write in joules (full bitline swing:
    /// ≈1.2× a read).
    #[must_use]
    pub fn array_write_energy(&self) -> f64 {
        self.array_read_energy() * 1.2
    }

    /// Tag-array energy per lookup in joules.
    #[must_use]
    pub fn tag_access_energy(&self) -> f64 {
        2e-12 * self.config.periphery_device.dynamic_energy_factor()
    }

    /// Total leakage power in watts: cells + peripheral circuitry +
    /// H-tree repeaters for the data, address and control wires.
    #[must_use]
    pub fn leakage_power(&self) -> f64 {
        let bits = self.config.capacity_bytes as f64 * 8.0;
        let cells = bits * self.config.cell_device.cell_leakage_w_per_bit();
        // Peripheral area = everything that is not cells.
        let cell_area_um2 = bits * self.config.tech.cell_area_um2;
        let periphery_area_um2 = (self.floorplan.area_mm2() * 1e6 - cell_area_um2).max(0.0);
        let periphery =
            periphery_area_um2 * self.config.periphery_device.periphery_leakage_w_per_um2();
        let wires = self.config.bus_width_bits + self.config.address_control_wires();
        let repeaters = self.floorplan.total_tree_mm_per_wire()
            * wires as f64
            * 60.0
            * self.config.periphery_device.periphery_leakage_w_per_um2();
        cells + periphery + repeaters
    }

    /// Cache area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.floorplan.area_mm2()
    }

    /// Array (decode + wordline + bitline + sense) delay in cycles for
    /// a data access, before any interconnect or serialization.
    #[must_use]
    pub fn array_delay_cycles(&self) -> u64 {
        // HP array delay ≈ 22.3 ps × (bank bits)^0.25 — calibrated so a
        // 1 MB LSTP bank takes ≈2.4 ns (paper Table 1 latencies).
        let t_hp_s = 22.3e-12 * self.floorplan.bank_bits().powf(0.25);
        let device = 0.5 * self.config.cell_device.delay_factor()
            + 0.5 * self.config.periphery_device.delay_factor();
        ((t_hp_s * device) / self.config.tech.cycle_s()).ceil().max(1.0) as u64
    }

    /// One-way H-tree flight time in cycles.
    #[must_use]
    pub fn htree_delay_cycles(&self) -> u64 {
        self.data_path.delay_cycles(&self.config.tech)
    }

    /// Bus beats to move one block over the data bus in plain binary.
    #[must_use]
    pub fn binary_transfer_cycles(&self) -> u64 {
        (self.config.block_bytes * 8).div_ceil(self.config.bus_width_bits) as u64
    }

    /// L2 hit latency in cycles with conventional binary transfer:
    /// array access + tree flight + block serialization. For the
    /// paper baseline this lands on Table 1's 19 cycles.
    #[must_use]
    pub fn hit_latency_cycles(&self) -> u64 {
        self.array_delay_cycles() + self.htree_delay_cycles() + self.binary_transfer_cycles()
    }

    /// Hit latency with the block-transfer serialization replaced by a
    /// caller-supplied cycle count (how DESC and the baselines plug
    /// their own transfer latencies in), plus any interface logic
    /// delay in cycles.
    #[must_use]
    pub fn hit_latency_with_transfer(&self, transfer_cycles: u64, interface_cycles: u64) -> u64 {
        self.array_delay_cycles() + self.htree_delay_cycles() + transfer_cycles + interface_cycles
    }

    /// Miss-detection latency in cycles (tag path only; Table 1: 12).
    #[must_use]
    pub fn miss_latency_cycles(&self) -> u64 {
        self.array_delay_cycles() + self.htree_delay_cycles() + 1
    }
}

/// Energy of a simulated interval, split the way the paper's Fig. 2 /
/// Fig. 18 split it.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnergyBreakdown {
    /// Leakage energy in joules.
    pub static_j: f64,
    /// Array + tag dynamic energy in joules ("other dynamic").
    pub array_dynamic_j: f64,
    /// H-tree switching energy in joules.
    pub htree_dynamic_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.static_j + self.array_dynamic_j + self.htree_dynamic_j
    }

    /// Fraction contributed by the H-tree.
    #[must_use]
    pub fn htree_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.htree_dynamic_j / self.total()
        }
    }

    /// Fraction contributed by leakage.
    #[must_use]
    pub fn static_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.static_j / self.total()
        }
    }

    /// Element-wise sum.
    #[must_use]
    pub fn combined(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            static_j: self.static_j + other.static_j,
            array_dynamic_j: self.array_dynamic_j + other.array_dynamic_j,
            htree_dynamic_j: self.htree_dynamic_j + other.htree_dynamic_j,
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} J (static {:.0}%, array {:.0}%, H-tree {:.0}%)",
            self.total(),
            100.0 * self.static_fraction(),
            100.0 * self.array_dynamic_j / self.total().max(f64::MIN_POSITIVE),
            100.0 * self.htree_fraction()
        )
    }
}

/// Activity counts accumulated by a simulation, to be priced by a
/// [`CacheModel`].
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CacheActivity {
    /// Wire transitions on the data H-tree (full-path, summed over
    /// wires).
    pub htree_transitions: u64,
    /// Block reads served by the arrays.
    pub array_reads: u64,
    /// Block writes into the arrays.
    pub array_writes: u64,
    /// Tag lookups.
    pub tag_lookups: u64,
    /// Simulated wall-clock time in seconds.
    pub elapsed_s: f64,
}

impl CacheModel {
    /// Prices a simulated interval's activity.
    #[must_use]
    pub fn energy_for(&self, activity: &CacheActivity) -> EnergyBreakdown {
        EnergyBreakdown {
            static_j: self.leakage_power() * activity.elapsed_s,
            array_dynamic_j: activity.array_reads as f64 * self.array_read_energy()
                + activity.array_writes as f64 * self.array_write_energy()
                + activity.tag_lookups as f64 * self.tag_access_energy(),
            htree_dynamic_j: activity.htree_transitions as f64
                * self.htree_energy_per_transition(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_hit_latency_matches_table1() {
        let m = CacheModel::new(CacheConfig::paper_baseline());
        let hit = m.hit_latency_cycles();
        assert!((17..=21).contains(&hit), "hit latency {hit} cycles, Table 1 says 19");
        let miss = m.miss_latency_cycles();
        assert!((10..=14).contains(&miss), "miss latency {miss} cycles, Table 1 says 12");
    }

    #[test]
    fn htree_transition_energy_is_subpicojoule_to_picojoule() {
        let m = CacheModel::new(CacheConfig::paper_baseline());
        let e = m.htree_energy_per_transition();
        assert!(e > 0.2e-12 && e < 3e-12, "H-tree energy {e:e} J/transition");
    }

    #[test]
    fn lstp_htree_dominates_under_representative_activity() {
        // Paper Fig. 2: with LSTP devices the H-tree is ~80% of L2
        // energy. Representative activity: 2.5e8 accesses/s for 1 s,
        // ~160 data + 10 address transitions per access.
        let m = CacheModel::new(CacheConfig::paper_baseline());
        let accesses = 250_000_000u64;
        let breakdown = m.energy_for(&CacheActivity {
            htree_transitions: accesses * 170,
            array_reads: accesses,
            array_writes: accesses / 4,
            tag_lookups: accesses,
            elapsed_s: 1.0,
        });
        let f = breakdown.htree_fraction();
        assert!((0.65..=0.9).contains(&f), "H-tree fraction {f:.2}, paper says ~0.8");
        let s = breakdown.static_fraction();
        assert!((0.02..=0.30).contains(&s), "static fraction {s:.2}");
    }

    #[test]
    fn hp_everything_is_leakage_dominated() {
        let m = CacheModel::new(CacheConfig {
            cell_device: DeviceType::Hp,
            periphery_device: DeviceType::Hp,
            ..CacheConfig::paper_baseline()
        });
        let accesses = 250_000_000u64;
        let b = m.energy_for(&CacheActivity {
            htree_transitions: accesses * 170,
            array_reads: accesses,
            array_writes: accesses / 4,
            tag_lookups: accesses,
            elapsed_s: 1.0,
        });
        assert!(b.static_fraction() > 0.8, "HP static fraction {:.2}", b.static_fraction());
    }

    #[test]
    fn leakage_scales_with_capacity() {
        let small = CacheModel::new(CacheConfig {
            capacity_bytes: 512 << 10,
            ..CacheConfig::paper_baseline()
        });
        let big = CacheModel::new(CacheConfig {
            capacity_bytes: 64 << 20,
            ..CacheConfig::paper_baseline()
        });
        assert!(big.leakage_power() > 20.0 * small.leakage_power());
    }

    #[test]
    fn wider_bus_fewer_beats() {
        let narrow = CacheModel::new(CacheConfig {
            bus_width_bits: 64,
            ..CacheConfig::paper_baseline()
        });
        let wide = CacheModel::new(CacheConfig {
            bus_width_bits: 512,
            ..CacheConfig::paper_baseline()
        });
        assert_eq!(narrow.binary_transfer_cycles(), 8);
        assert_eq!(wide.binary_transfer_cycles(), 1);
        assert!(wide.hit_latency_cycles() < narrow.hit_latency_cycles());
    }

    #[test]
    fn hit_latency_with_transfer_substitutes_serialization() {
        let m = CacheModel::new(CacheConfig::paper_baseline());
        let base = m.hit_latency_cycles();
        let desc = m.hit_latency_with_transfer(12, 2);
        // DESC at 128 wires: window ≈ 12 cycles + 2 interface cycles
        // vs 8 binary beats → a handful of extra cycles.
        assert!(desc > base);
        assert!(desc - base <= 10);
    }

    #[test]
    fn more_banks_add_leakage_and_area() {
        let few = CacheModel::new(CacheConfig { banks: 8, ..CacheConfig::paper_baseline() });
        let many = CacheModel::new(CacheConfig { banks: 64, ..CacheConfig::paper_baseline() });
        assert!(many.area_mm2() > few.area_mm2());
        assert!(many.leakage_power() > few.leakage_power());
    }

    #[test]
    fn energy_breakdown_combines() {
        let a = EnergyBreakdown { static_j: 1.0, array_dynamic_j: 2.0, htree_dynamic_j: 3.0 };
        let b = EnergyBreakdown { static_j: 0.5, array_dynamic_j: 0.5, htree_dynamic_j: 0.5 };
        let c = a.combined(&b);
        assert!((c.total() - 7.5).abs() < 1e-12);
        assert!(format!("{c}").contains("J"));
    }

    #[test]
    fn snapshot_quantities_are_positive_across_sweeps() {
        for banks in [1usize, 2, 4, 8, 16, 32, 64] {
            for width in [8usize, 32, 64, 128, 256, 512] {
                let m = CacheModel::new(CacheConfig {
                    banks,
                    bus_width_bits: width,
                    ..CacheConfig::paper_baseline()
                });
                assert!(m.htree_energy_per_transition() > 0.0);
                assert!(m.leakage_power() > 0.0);
                assert!(m.hit_latency_cycles() >= 3);
            }
        }
    }
}
