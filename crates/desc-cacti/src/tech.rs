//! ITRS device classes and 22 nm technology constants.
//!
//! The paper explores ITRS high-performance (HP), low-operating-power
//! (LOP) and low-standby-power (LSTP) devices for the SRAM cells and
//! the peripheral circuitry independently (§4.1, Fig. 14). The
//! constants below are first-order values from the CACTI 6.5 / ITRS
//! era at 22 nm and 350 K (the paper's Table 1 temperature), chosen so
//! the qualitative orderings the paper relies on hold:
//!
//! * leakage: HP ≫ LOP ≫ LSTP (orders of magnitude),
//! * speed: HP ≈ 2× faster array access than LSTP (paper footnote 3),
//! * switching energy: comparable across classes (slightly higher for
//!   HP due to larger transistors).

use std::fmt;

/// An ITRS device class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeviceType {
    /// High performance: fastest, leakiest.
    Hp,
    /// Low operating power: moderate speed and leakage.
    Lop,
    /// Low standby power: slowest, minimal leakage — the paper's
    /// choice for energy-efficient last-level caches.
    Lstp,
}

impl DeviceType {
    /// All classes in the paper's Fig. 14 sweep order.
    pub const ALL: [DeviceType; 3] = [DeviceType::Hp, DeviceType::Lop, DeviceType::Lstp];

    /// Short uppercase label as used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DeviceType::Hp => "HP",
            DeviceType::Lop => "LOP",
            DeviceType::Lstp => "LSTP",
        }
    }

    /// Leakage power per SRAM bit in watts (cell array, 350 K).
    ///
    /// LSTP cells leak ~0.04 nW/bit; HP cells several hundred times
    /// more (the paper cites "two orders of magnitude" savings from
    /// low-leakage techniques \[27\]).
    #[must_use]
    pub fn cell_leakage_w_per_bit(self) -> f64 {
        match self {
            DeviceType::Hp => 10e-9,
            DeviceType::Lop => 0.67e-9,
            DeviceType::Lstp => 0.04e-9,
        }
    }

    /// Leakage power per µm² of peripheral circuitry in watts
    /// (decoders, sense amplifiers, H-tree repeaters).
    #[must_use]
    pub fn periphery_leakage_w_per_um2(self) -> f64 {
        match self {
            DeviceType::Hp => 40e-9,
            DeviceType::Lop => 1.33e-9,
            DeviceType::Lstp => 0.17e-9,
        }
    }

    /// Relative array access delay (HP = 1).
    ///
    /// The paper's footnote 3: HP devices give ≈2× faster access time
    /// than LSTP.
    #[must_use]
    pub fn delay_factor(self) -> f64 {
        match self {
            DeviceType::Hp => 1.0,
            DeviceType::Lop => 1.4,
            DeviceType::Lstp => 2.0,
        }
    }

    /// Relative dynamic switching energy (LSTP = 1). HP transistors
    /// are larger (more capacitance); LOP runs at reduced voltage.
    #[must_use]
    pub fn dynamic_energy_factor(self) -> f64 {
        match self {
            DeviceType::Hp => 1.25,
            DeviceType::Lop => 0.85,
            DeviceType::Lstp => 1.0,
        }
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Process-level constants at the paper's 22 nm node (Table 3) plus
/// the Table 1 clock.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TechParams {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// SRAM cell area in µm² (22 nm tri-gate era, ≈0.1 µm²).
    pub cell_area_um2: f64,
    /// Wire capacitance per millimetre in farads (global/semi-global
    /// H-tree wires with repeater loading folded in).
    pub wire_cap_f_per_mm: f64,
    /// Repeated-wire signal velocity in seconds per millimetre (HP
    /// repeaters; scaled by the periphery delay factor).
    pub wire_delay_s_per_mm: f64,
    /// Core clock frequency in hertz (Table 1: 3.2 GHz).
    pub clock_hz: f64,
    /// Fraction of a bank's footprint that is SRAM cells (array
    /// efficiency); the rest is decoders, sense amps and wiring.
    pub array_efficiency: f64,
}

impl TechParams {
    /// The paper's 22 nm / 3.2 GHz configuration.
    #[must_use]
    pub fn nm22() -> Self {
        Self {
            vdd: 0.83,
            cell_area_um2: 0.1,
            wire_cap_f_per_mm: 0.50e-12,
            wire_delay_s_per_mm: 110e-12,
            clock_hz: 3.2e9,
            array_efficiency: 0.5,
        }
    }

    /// Clock cycle time in seconds.
    #[must_use]
    pub fn cycle_s(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Energy per wire transition per millimetre of H-tree in joules:
    /// full-swing C·V² switching (the ½ is absorbed by the driver's
    /// internal dissipation, the CACTI convention), including repeater
    /// input capacitance.
    #[must_use]
    pub fn wire_energy_j_per_mm(&self) -> f64 {
        self.wire_cap_f_per_mm * self.vdd * self.vdd
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::nm22()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_ordering_spans_orders_of_magnitude() {
        let hp = DeviceType::Hp.cell_leakage_w_per_bit();
        let lop = DeviceType::Lop.cell_leakage_w_per_bit();
        let lstp = DeviceType::Lstp.cell_leakage_w_per_bit();
        assert!(hp > 10.0 * lop);
        assert!(lop > 10.0 * lstp);
        assert!(hp / lstp >= 100.0, "paper: two orders of magnitude");
    }

    #[test]
    fn hp_is_twice_as_fast_as_lstp() {
        assert!((DeviceType::Lstp.delay_factor() / DeviceType::Hp.delay_factor() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wire_energy_is_subpicojoule_per_mm() {
        let t = TechParams::nm22();
        let e = t.wire_energy_j_per_mm();
        assert!(e > 0.05e-12 && e < 1e-12, "unphysical wire energy {e:e}");
    }

    #[test]
    fn cycle_time_matches_clock() {
        let t = TechParams::nm22();
        assert!((t.cycle_s() - 0.3125e-9).abs() < 1e-15);
    }

    #[test]
    fn labels_round_trip() {
        for d in DeviceType::ALL {
            assert_eq!(format!("{d}"), d.label());
        }
    }

    #[test]
    fn periphery_leakage_ordering() {
        assert!(
            DeviceType::Hp.periphery_leakage_w_per_um2()
                > DeviceType::Lop.periphery_leakage_w_per_um2()
        );
        assert!(
            DeviceType::Lop.periphery_leakage_w_per_um2()
                > DeviceType::Lstp.periphery_leakage_w_per_um2()
        );
    }
}
