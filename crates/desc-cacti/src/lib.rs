//! # desc-cacti
//!
//! An analytic cache energy / delay / area model standing in for the
//! paper's modified CACTI 6.5 (§4.1).
//!
//! The DESC evaluation needs exactly five quantities from CACTI, all as
//! functions of the cache organisation (capacity, banks, bus width)
//! and the ITRS device classes used for the SRAM cells and the
//! peripheral circuitry:
//!
//! 1. H-tree energy **per wire transition** (the quantity DESC
//!    optimises),
//! 2. array energy per access (decode, wordline, bitline, sense),
//! 3. leakage power,
//! 4. area,
//! 5. access delay.
//!
//! This crate computes all five from first-order circuit equations
//! (C·V² wire switching, per-bit leakage, square-root floorplanning)
//! with technology constants documented in [`tech`] and calibrated to
//! the paper's anchors: with low-standby-power (LSTP) devices the
//! H-tree dominates L2 energy (≈80%, paper Fig. 2), and the most
//! energy-efficient organisation of an 8 MB cache is 8 banks with a
//! 64-bit bus (paper Fig. 14).
//!
//! ## Example
//!
//! ```
//! use desc_cacti::{CacheConfig, CacheModel};
//!
//! let config = CacheConfig::paper_baseline();
//! assert_eq!(config.banks, 8);
//! let model = CacheModel::new(config);
//!
//! // The five CACTI quantities:
//! assert!(model.htree_energy_per_transition() > 0.0);
//! assert!(model.array_read_energy() > 0.0);
//! assert!(model.leakage_power() > 0.0);
//! assert!(model.area_mm2() > 0.0);
//! assert!(model.hit_latency_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod geometry;
pub mod tech;
pub mod snuca;
pub mod wire;

pub use cache::{CacheConfig, CacheModel, EnergyBreakdown};
pub use tech::{DeviceType, TechParams};
pub use wire::{Signaling, WireModel};
