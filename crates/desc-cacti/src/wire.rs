//! Repeated global-wire model for the cache H-trees.

use crate::tech::{DeviceType, TechParams};

/// Electrical signaling style of the interconnect wires.
///
/// The paper (§2) notes that activity-reduction techniques like DESC
/// compose with low-swing signaling (Zhang & Rabaey \[7\], Udipi et
/// al. \[2\]): the swing scales the energy of *every* transition, the
/// encoding scales *how many* transitions there are.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Signaling {
    /// Conventional full-swing repeated wires.
    #[default]
    FullSwing,
    /// Reduced-swing differential wires: transition energy is
    /// `C·V_dd·V_swing` plus a fixed receiver sense cost, at the price
    /// of extra receiver latency.
    LowSwing {
        /// Signal swing in volts (typically 0.1–0.3 V at 22 nm).
        swing_v: f64,
    },
}

impl Signaling {
    /// A representative low-swing configuration (0.2 V swing).
    #[must_use]
    pub fn low_swing_default() -> Self {
        Signaling::LowSwing { swing_v: 0.2 }
    }
}

/// A repeated wire of a given length driven by periphery devices of a
/// given class.
///
/// # Examples
///
/// ```
/// use desc_cacti::{DeviceType, TechParams, WireModel};
///
/// let tech = TechParams::nm22();
/// let wire = WireModel::new(&tech, 4.0, DeviceType::Lstp);
/// // A 4 mm H-tree path costs on the order of a picojoule per flip.
/// assert!(wire.energy_per_transition() > 0.1e-12);
/// assert!(wire.energy_per_transition() < 10e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WireModel {
    length_mm: f64,
    energy_per_transition_j: f64,
    delay_s: f64,
    leakage_w: f64,
}

impl WireModel {
    /// Builds a wire of `length_mm` millimetres with `periphery`-class
    /// repeaters.
    ///
    /// # Panics
    ///
    /// Panics if `length_mm` is not positive and finite.
    #[must_use]
    pub fn new(tech: &TechParams, length_mm: f64, periphery: DeviceType) -> Self {
        Self::with_signaling(tech, length_mm, periphery, Signaling::FullSwing)
    }

    /// Builds a wire with an explicit [`Signaling`] style.
    ///
    /// # Panics
    ///
    /// Panics if `length_mm` is not positive and finite, or if a
    /// low-swing voltage is not within (0, V_dd].
    #[must_use]
    pub fn with_signaling(
        tech: &TechParams,
        length_mm: f64,
        periphery: DeviceType,
        signaling: Signaling,
    ) -> Self {
        assert!(
            length_mm.is_finite() && length_mm > 0.0,
            "wire length {length_mm} must be positive"
        );
        // Switching energy: wire + repeater capacitance, scaled by the
        // periphery device's energy factor.
        let full_swing_j =
            tech.wire_energy_j_per_mm() * length_mm * periphery.dynamic_energy_factor();
        // Repeated-wire delay is linear in length; slower devices make
        // slower repeaters.
        let mut delay_s = tech.wire_delay_s_per_mm * length_mm * periphery.delay_factor();
        let energy_per_transition_j = match signaling {
            Signaling::FullSwing => full_swing_j,
            Signaling::LowSwing { swing_v } => {
                assert!(
                    swing_v > 0.0 && swing_v <= tech.vdd,
                    "swing {swing_v} V outside (0, {}]",
                    tech.vdd
                );
                // C·V_dd·V_swing on the wire plus a ~50 fJ sense
                // amplifier per traversal.
                delay_s += 100e-12; // receiver sense latency
                full_swing_j * (swing_v / tech.vdd) + 50e-15
            }
        };
        // Repeater leakage: modelled as periphery area of ~60 µm² per
        // millimetre of repeated wire.
        let leakage_w = periphery.periphery_leakage_w_per_um2() * 60.0 * length_mm;
        Self { length_mm, energy_per_transition_j, delay_s, leakage_w }
    }

    /// Wire length in millimetres.
    #[must_use]
    pub fn length_mm(&self) -> f64 {
        self.length_mm
    }

    /// Energy of one full-path transition in joules.
    #[must_use]
    pub fn energy_per_transition(&self) -> f64 {
        self.energy_per_transition_j
    }

    /// End-to-end propagation delay in seconds.
    #[must_use]
    pub fn delay(&self) -> f64 {
        self.delay_s
    }

    /// Propagation delay in whole clock cycles (rounded up, minimum 1).
    #[must_use]
    pub fn delay_cycles(&self, tech: &TechParams) -> u64 {
        (self.delay_s / tech.cycle_s()).ceil().max(1.0) as u64
    }

    /// Repeater leakage power in watts (per wire).
    #[must_use]
    pub fn leakage(&self) -> f64 {
        self.leakage_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_linearly_with_length() {
        let tech = TechParams::nm22();
        let short = WireModel::new(&tech, 1.0, DeviceType::Lstp);
        let long = WireModel::new(&tech, 4.0, DeviceType::Lstp);
        let ratio = long.energy_per_transition() / short.energy_per_transition();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lstp_repeaters_are_slower_but_leak_less() {
        let tech = TechParams::nm22();
        let hp = WireModel::new(&tech, 4.0, DeviceType::Hp);
        let lstp = WireModel::new(&tech, 4.0, DeviceType::Lstp);
        assert!(lstp.delay() > hp.delay());
        assert!(lstp.leakage() < hp.leakage());
    }

    #[test]
    fn delay_cycles_rounds_up_and_is_at_least_one() {
        let tech = TechParams::nm22();
        let tiny = WireModel::new(&tech, 0.1, DeviceType::Hp);
        assert_eq!(tiny.delay_cycles(&tech), 1);
        let big = WireModel::new(&tech, 8.0, DeviceType::Lstp);
        assert!(big.delay_cycles(&tech) >= 5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_length_rejected() {
        let tech = TechParams::nm22();
        let _ = WireModel::new(&tech, 0.0, DeviceType::Hp);
    }
}

#[cfg(test)]
mod signaling_tests {
    use super::*;

    #[test]
    fn low_swing_cuts_transition_energy_severalfold() {
        let tech = TechParams::nm22();
        let full = WireModel::new(&tech, 4.0, DeviceType::Lstp);
        let low = WireModel::with_signaling(
            &tech,
            4.0,
            DeviceType::Lstp,
            Signaling::low_swing_default(),
        );
        let ratio = full.energy_per_transition() / low.energy_per_transition();
        assert!(ratio > 2.5 && ratio < 6.0, "low-swing ratio {ratio:.2}");
        // But the receiver adds latency.
        assert!(low.delay() > full.delay());
    }

    #[test]
    fn default_signaling_is_full_swing() {
        assert_eq!(Signaling::default(), Signaling::FullSwing);
        let tech = TechParams::nm22();
        let a = WireModel::new(&tech, 2.0, DeviceType::Hp);
        let b = WireModel::with_signaling(&tech, 2.0, DeviceType::Hp, Signaling::FullSwing);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn excessive_swing_rejected() {
        let tech = TechParams::nm22();
        let _ = WireModel::with_signaling(
            &tech,
            2.0,
            DeviceType::Hp,
            Signaling::LowSwing { swing_v: 2.0 },
        );
    }
}
