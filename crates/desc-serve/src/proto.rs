//! The `desc-run-request/v1` / `desc-run-response/v1` message schemas:
//! parsing (requests) and construction (responses) on top of the
//! in-tree [`Json`] value type. The wire format is specified key by
//! key in `docs/SERVICE.md`; `tests/service_doc.rs` pins that document
//! to the encoders here.

use desc_telemetry::Json;

/// Schema tag every request must carry.
pub const REQUEST_SCHEMA: &str = "desc-run-request/v1";
/// Schema tag every response carries.
pub const RESPONSE_SCHEMA: &str = "desc-run-response/v1";

/// Machine-readable error classes (`error.code` in an error response).
/// Stable strings: clients dispatch on them, `docs/SERVICE.md` lists
/// them, and the conformance test pins the list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission queue full; retry after `error.retry_after_ms`.
    Busy,
    /// The request's `deadline_ms` elapsed (queued or mid-run).
    Deadline,
    /// Unparsable or schema-invalid payload in a well-formed frame.
    Malformed,
    /// Frame length prefix over the limit; the connection closes.
    Oversized,
    /// An experiment name not in `repro --list`.
    UnknownExperiment,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// A cell panicked or another server-side invariant broke.
    Internal,
}

impl ErrorCode {
    /// The wire string for this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownExperiment => "unknown_experiment",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// What the client asked the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute experiments and return a run report.
    Run,
    /// Liveness + stats probe; returns `serve` and `cache` stanzas.
    Ping,
    /// Drain in-flight requests, then stop the server.
    Shutdown,
}

/// Requested rendering of experiment tables in the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tables {
    /// No `tables` object in the response (default).
    #[default]
    None,
    /// `Table::render()` text, as `repro` prints it.
    Text,
    /// `Table::to_csv()` bytes, as `repro --csv` prints them.
    Csv,
}

/// A parsed, validated `desc-run-request/v1`.
#[derive(Debug, Clone)]
pub struct Request {
    /// The operation.
    pub op: Op,
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: String,
    /// Client identity used for fair cross-client scheduling: requests
    /// carrying the same `client` share one fair-queue weight; absent,
    /// the request is scheduled under its own identity.
    pub client: Option<String>,
    /// Experiment names (already expanded if the client sent `"all"`).
    pub experiments: Vec<String>,
    /// Scale preset name: `"tiny"`, `"quick"`, or `"full"`.
    pub preset: String,
    /// Override for [`Scale::accesses`](desc_experiments::Scale).
    pub accesses: Option<usize>,
    /// Override for `Scale::apps` (validated to 1..=16).
    pub apps: Option<usize>,
    /// Override for `Scale::seed`.
    pub seed: Option<u64>,
    /// Override for `Scale::shards`.
    pub shards: Option<usize>,
    /// Cap on concurrently executing sweep cells for this request.
    pub jobs: Option<usize>,
    /// Per-request deadline, measured from frame receipt.
    pub deadline_ms: Option<u64>,
    /// Requested table rendering.
    pub tables: Tables,
}

/// Reads an optional non-negative integer field, rejecting zero when
/// `nonzero` and anything non-numeric.
fn opt_uint(
    obj: &Json,
    key: &str,
    nonzero: bool,
) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(0) if nonzero => Err(format!("`{key}` must be a positive integer")),
            Some(n) => Ok(Some(n)),
            None => Err(format!("`{key}` must be a non-negative integer")),
        },
    }
}

impl Request {
    /// Parses and validates one request payload. `Err` carries a
    /// human-readable reason destined for a `malformed` error reply —
    /// except unknown experiment names, which the server maps to
    /// `unknown_experiment` after name resolution.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_owned())?;
        let json = Json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
        if !matches!(json, Json::Obj(_)) {
            return Err("payload must be a JSON object".to_owned());
        }
        match json.get("schema").and_then(Json::as_str) {
            Some(REQUEST_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported schema {other:?}")),
            None => return Err(format!("missing `schema` (expected {REQUEST_SCHEMA:?})")),
        }
        let op = match json.get("op").and_then(Json::as_str) {
            Some("run") => Op::Run,
            Some("ping") => Op::Ping,
            Some("shutdown") => Op::Shutdown,
            Some(other) => return Err(format!("unknown op {other:?}")),
            None => return Err("missing `op` (run | ping | shutdown)".to_owned()),
        };
        let id = match json.get("id") {
            None => String::new(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| "`id` must be a string".to_owned())?
                .to_owned(),
        };
        let client = match json.get("client") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| "`client` must be a string".to_owned())?
                    .to_owned(),
            ),
        };
        let experiments = match json.get("experiments") {
            None if op == Op::Run => {
                return Err("`op: run` requires `experiments` (a name list or \"all\")".to_owned())
            }
            None => Vec::new(),
            Some(Json::Str(s)) if s == "all" => desc_experiments::experiment_names()
                .iter()
                .map(|&n| n.to_owned())
                .collect(),
            Some(Json::Arr(items)) if !items.is_empty() => {
                let mut names = Vec::with_capacity(items.len());
                for item in items {
                    names.push(
                        item.as_str()
                            .ok_or_else(|| "`experiments` entries must be strings".to_owned())?
                            .to_owned(),
                    );
                }
                names
            }
            Some(_) => {
                return Err("`experiments` must be a non-empty name list or \"all\"".to_owned())
            }
        };
        let scale = json.get("scale");
        let preset = match scale.and_then(|s| s.get("preset")) {
            None => "tiny".to_owned(),
            Some(v) => match v.as_str() {
                Some(p @ ("tiny" | "quick" | "full")) => p.to_owned(),
                _ => return Err("`scale.preset` must be tiny | quick | full".to_owned()),
            },
        };
        let (accesses, apps, seed, shards) = match scale {
            None => (None, None, None, None),
            Some(s) => {
                if !matches!(s, Json::Obj(_)) {
                    return Err("`scale` must be an object".to_owned());
                }
                let accesses = opt_uint(s, "accesses", true)?.map(|n| n as usize);
                let apps = match opt_uint(s, "apps", true)? {
                    Some(n) if (1..=16).contains(&n) => Some(n as usize),
                    Some(_) => return Err("`scale.apps` must be in 1..=16".to_owned()),
                    None => None,
                };
                let seed = opt_uint(s, "seed", false)?;
                let shards = opt_uint(s, "shards", true)?.map(|n| n as usize);
                (accesses, apps, seed, shards)
            }
        };
        let jobs = opt_uint(&json, "jobs", true)?.map(|n| n as usize);
        let deadline_ms = opt_uint(&json, "deadline_ms", true)?;
        let tables = match json.get("tables") {
            None => Tables::None,
            Some(v) => match v.as_str() {
                Some("none") => Tables::None,
                Some("text") => Tables::Text,
                Some("csv") => Tables::Csv,
                _ => return Err("`tables` must be none | text | csv".to_owned()),
            },
        };
        Ok(Request {
            op,
            id,
            client,
            experiments,
            preset,
            accesses,
            apps,
            seed,
            shards,
            jobs,
            deadline_ms,
            tables,
        })
    }
}

/// The shared `{schema, id, status}` response prefix. Key order is
/// part of the (pretty-printed, insertion-ordered) wire format.
fn response_base(id: &str, status: &str) -> Json {
    Json::obj()
        .with("schema", Json::Str(RESPONSE_SCHEMA.to_owned()))
        .with("id", Json::Str(id.to_owned()))
        .with("status", Json::Str(status.to_owned()))
}

/// A successful `run` response embedding a full `desc-run-report/v1`
/// document and, when requested, rendered tables keyed by experiment.
/// `dedup_cells` counts this request's cells that were computed by a
/// concurrent request and shared via single-flight (warm cache hits do
/// not count).
#[must_use]
pub fn ok_run(
    id: &str,
    elapsed_ms: u64,
    dedup_cells: u64,
    report: Json,
    tables: Option<Json>,
) -> Json {
    let mut out = response_base(id, "ok")
        .with("elapsed_ms", Json::UInt(elapsed_ms))
        .with("dedup_cells", Json::UInt(dedup_cells))
        .with("report", report);
    if let Some(tables) = tables {
        out = out.with("tables", tables);
    }
    out
}

/// A successful `ping` response with the server's live `serve` and
/// (when a store is installed) `cache` stanzas.
#[must_use]
pub fn ok_ping(id: &str, elapsed_ms: u64, serve: Json, cache: Option<Json>) -> Json {
    let mut out = response_base(id, "ok")
        .with("elapsed_ms", Json::UInt(elapsed_ms))
        .with("serve", serve);
    if let Some(cache) = cache {
        out = out.with("cache", cache);
    }
    out
}

/// A successful `shutdown` acknowledgement.
#[must_use]
pub fn ok_shutdown(id: &str, elapsed_ms: u64) -> Json {
    response_base(id, "ok").with("elapsed_ms", Json::UInt(elapsed_ms))
}

/// An error response. `retry_after_ms` is only meaningful for
/// [`ErrorCode::Busy`].
#[must_use]
pub fn error(id: &str, code: ErrorCode, message: &str, retry_after_ms: Option<u64>) -> Json {
    let mut err = Json::obj()
        .with("code", Json::Str(code.as_str().to_owned()))
        .with("message", Json::Str(message.to_owned()));
    if let Some(ms) = retry_after_ms {
        err = err.with("retry_after_ms", Json::UInt(ms));
    }
    response_base(id, "error").with("error", err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, String> {
        Request::parse(text.as_bytes())
    }

    #[test]
    fn parses_a_minimal_run_request() {
        let req = parse(
            r#"{"schema":"desc-run-request/v1","op":"run","experiments":["fig16"]}"#,
        )
        .unwrap();
        assert_eq!(req.op, Op::Run);
        assert_eq!(req.experiments, ["fig16"]);
        assert_eq!(req.preset, "tiny");
        assert_eq!(req.tables, Tables::None);
        assert!(req.deadline_ms.is_none());
        assert!(req.client.is_none());
    }

    #[test]
    fn parses_the_client_identity() {
        let req = parse(
            r#"{"schema":"desc-run-request/v1","op":"run","client":"ci-bot","experiments":["fig16"]}"#,
        )
        .unwrap();
        assert_eq!(req.client.as_deref(), Some("ci-bot"));
    }

    #[test]
    fn expands_all_to_every_experiment() {
        let req = parse(
            r#"{"schema":"desc-run-request/v1","op":"run","experiments":"all"}"#,
        )
        .unwrap();
        assert_eq!(req.experiments.len(), desc_experiments::experiment_names().len());
    }

    #[test]
    fn rejects_bad_schema_op_and_fields() {
        for (text, needle) in [
            (r#"{"op":"run","experiments":["fig16"]}"#, "schema"),
            (r#"{"schema":"desc-run-request/v2","op":"run"}"#, "unsupported schema"),
            (r#"{"schema":"desc-run-request/v1","op":"dance"}"#, "unknown op"),
            (r#"{"schema":"desc-run-request/v1","op":"run"}"#, "experiments"),
            (
                r#"{"schema":"desc-run-request/v1","op":"run","experiments":[]}"#,
                "experiments",
            ),
            (
                r#"{"schema":"desc-run-request/v1","op":"run","experiments":["fig16"],"scale":{"apps":17}}"#,
                "apps",
            ),
            (
                r#"{"schema":"desc-run-request/v1","op":"run","experiments":["fig16"],"deadline_ms":0}"#,
                "deadline_ms",
            ),
            (
                r#"{"schema":"desc-run-request/v1","op":"run","experiments":["fig16"],"client":7}"#,
                "client",
            ),
            ("not json at all", "not JSON"),
            (r#"[1,2,3]"#, "object"),
        ] {
            let err = parse(text).unwrap_err();
            assert!(err.contains(needle), "{text}: error {err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn response_builders_tag_the_schema_and_echo_the_id() {
        let ok = ok_run("req-1", 12, 0, Json::obj(), None);
        assert_eq!(ok.get("schema").and_then(Json::as_str), Some(RESPONSE_SCHEMA));
        assert_eq!(ok.get("id").and_then(Json::as_str), Some("req-1"));
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
        let err = error("req-2", ErrorCode::Busy, "queue full", Some(250));
        assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
        let code = err.get("error").and_then(|e| e.get("code")).and_then(Json::as_str);
        assert_eq!(code, Some("busy"));
        let retry =
            err.get("error").and_then(|e| e.get("retry_after_ms")).and_then(Json::as_u64);
        assert_eq!(retry, Some(250));
    }
}
