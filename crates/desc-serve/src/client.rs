//! A minimal blocking client for the `desc-run-request/v1` protocol:
//! request construction ([`RunRequest`]) and a framed round-trip
//! ([`Client`]). Used by the integration tests and the worked example
//! in `docs/SERVICE.md`; external clients in any language only need a
//! TCP socket and a JSON encoder (the document shows a `python3`
//! one-liner equivalent).

use crate::frame;
use crate::proto::{Tables, REQUEST_SCHEMA};
use desc_telemetry::Json;
use std::net::{TcpStream, ToSocketAddrs};

/// Builder for a request document. Every field maps one-to-one onto a
/// wire key of `docs/SERVICE.md`; unset optionals are omitted from the
/// encoded JSON (the server applies its defaults).
#[derive(Debug, Clone, Default)]
pub struct RunRequest {
    /// Correlation id echoed in the response (optional).
    pub id: Option<String>,
    /// Client identity for fair cross-client scheduling (optional);
    /// requests sharing a `client` share one fair-queue weight.
    pub client: Option<String>,
    /// Experiment names; `None` encodes `"all"`.
    pub experiments: Option<Vec<String>>,
    /// Scale preset (`tiny` | `quick` | `full`; server default `tiny`).
    pub preset: Option<String>,
    /// `scale.accesses` override.
    pub accesses: Option<u64>,
    /// `scale.apps` override (1..=16).
    pub apps: Option<u64>,
    /// `scale.seed` override.
    pub seed: Option<u64>,
    /// `scale.shards` override.
    pub shards: Option<u64>,
    /// Per-request sweep-cell concurrency cap.
    pub jobs: Option<u64>,
    /// Deadline covering queueing and execution.
    pub deadline_ms: Option<u64>,
    /// Requested table rendering.
    pub tables: Tables,
}

impl RunRequest {
    /// A request for the named experiments at the given preset.
    #[must_use]
    pub fn new(experiments: &[&str], preset: &str) -> RunRequest {
        RunRequest {
            experiments: Some(experiments.iter().map(|&s| s.to_owned()).collect()),
            preset: Some(preset.to_owned()),
            ..RunRequest::default()
        }
    }

    /// Encodes the `op: run` request document this builder describes.
    /// This encoder is the reference for the `request.*` rows of the
    /// `docs/SERVICE.md` Key index (pinned by `tests/service_doc.rs`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj()
            .with("schema", Json::Str(REQUEST_SCHEMA.to_owned()))
            .with("op", Json::Str("run".to_owned()));
        if let Some(id) = &self.id {
            out = out.with("id", Json::Str(id.clone()));
        }
        if let Some(client) = &self.client {
            out = out.with("client", Json::Str(client.clone()));
        }
        out = out.with(
            "experiments",
            match &self.experiments {
                None => Json::Str("all".to_owned()),
                Some(names) => {
                    Json::Arr(names.iter().map(|n| Json::Str(n.clone())).collect())
                }
            },
        );
        let mut scale = Json::obj();
        let mut any = false;
        if let Some(p) = &self.preset {
            scale = scale.with("preset", Json::Str(p.clone()));
            any = true;
        }
        for (key, value) in [
            ("accesses", self.accesses),
            ("apps", self.apps),
            ("seed", self.seed),
            ("shards", self.shards),
        ] {
            if let Some(v) = value {
                scale = scale.with(key, Json::UInt(v));
                any = true;
            }
        }
        if any {
            out = out.with("scale", scale);
        }
        if let Some(jobs) = self.jobs {
            out = out.with("jobs", Json::UInt(jobs));
        }
        if let Some(ms) = self.deadline_ms {
            out = out.with("deadline_ms", Json::UInt(ms));
        }
        match self.tables {
            Tables::None => {}
            Tables::Text => out = out.with("tables", Json::Str("text".to_owned())),
            Tables::Csv => out = out.with("tables", Json::Str("csv".to_owned())),
        }
        out
    }
}

/// The `op: ping` request document.
#[must_use]
pub fn ping_request(id: &str) -> Json {
    Json::obj()
        .with("schema", Json::Str(REQUEST_SCHEMA.to_owned()))
        .with("op", Json::Str("ping".to_owned()))
        .with("id", Json::Str(id.to_owned()))
}

/// The `op: shutdown` request document.
#[must_use]
pub fn shutdown_request(id: &str) -> Json {
    Json::obj()
        .with("schema", Json::Str(REQUEST_SCHEMA.to_owned()))
        .with("op", Json::Str("shutdown".to_owned()))
        .with("id", Json::Str(id.to_owned()))
}

/// One framed connection to a server. Requests on a connection are
/// strictly sequential (send, then read the one reply); open more
/// connections for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Ok(Client { stream: TcpStream::connect(addr)? })
    }

    /// Sends one request document and reads the one reply. An `Err`
    /// means transport failure; protocol-level errors come back as
    /// parsed `status: "error"` responses.
    pub fn request(&mut self, request: &Json) -> std::io::Result<Json> {
        frame::write_frame(&mut self.stream, request.to_pretty().as_bytes())?;
        self.read_reply()
    }

    /// Sends raw payload bytes (not necessarily valid JSON) and reads
    /// the reply — the malformed-input path of the protocol tests.
    pub fn request_raw(&mut self, payload: &[u8]) -> std::io::Result<Json> {
        frame::write_frame(&mut self.stream, payload)?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> std::io::Result<Json> {
        let payload = frame::read_frame(&mut self.stream).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
        })?;
        let text = std::str::from_utf8(&payload).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
        })?;
        Json::parse(text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}
