//! `desc-serve` — a long-lived sweep-exploration service over the
//! process-wide [`desc_exec`] pool and the shared [`desc_cache`] cell
//! store.
//!
//! One server process accepts many concurrent TCP clients speaking the
//! length-prefixed JSON protocol of `docs/SERVICE.md`
//! ([`proto::REQUEST_SCHEMA`]). Every admitted `run` request executes
//! its experiments as sweep cells on the *same* executor pool, reading
//! and writing the *same* cell cache — so clients exploring
//! overlapping parameter sweeps pay for each distinct cell once,
//! process-wide, and the response embeds a `desc-run-report/v1`
//! document whose `metrics` match what `repro --report` produces for
//! the same cells (modulo the `pool.*` / `cache.*` / `serve.*`
//! operational families, which describe the process, not the
//! simulation — see `docs/REPORT_SCHEMA.md`).
//!
//! # Robustness contract
//!
//! - **Backpressure**: at most [`ServeConfig::workers`] requests
//!   execute at once; up to [`ServeConfig::queue`] more wait. Beyond
//!   that a request is rejected immediately with `busy` and a
//!   `retry_after_ms` hint — the server never queues unboundedly. The
//!   hint is dynamic: queue depth times an EWMA of recent service
//!   times, divided by the worker count, clamped to [25 ms, 60 s]
//!   (the configured constant until a first request completes).
//! - **Fairness**: each admitted request executes its cells under the
//!   [`desc_exec::Group`] of the request's `client` key (its `id`
//!   when untagged) — one shared group *instance* per identity, so N
//!   concurrent requests from one client share one fair-queue weight
//!   rather than multiplying their share — and pool workers drain
//!   concurrent clients' regions weighted-round-robin: a 1-cell probe
//!   completes while a 1000-cell sweep is in flight instead of
//!   queueing behind it.
//!   Overlapping sweeps also deduplicate: a cell already being
//!   computed by another request is shared via single-flight, reported
//!   per-request as `dedup_cells` and cumulatively as
//!   `serve.dedup_*`.
//! - **Deadlines**: a request's `deadline_ms` covers queueing *and*
//!   execution. Expiry cancels the request's remaining cells at the
//!   next task boundary (see [`desc_exec::CancelToken`]) and replies
//!   `deadline`. Completed cells stay cached — a retry resumes warm.
//! - **Malformed input never kills the server**: an unparsable payload
//!   in a well-formed frame gets a `malformed` reply on a surviving
//!   connection; an oversized frame gets an `oversized` reply and a
//!   connection close (the stream is desynchronized, the server is
//!   not).
//! - **Graceful shutdown**: the `shutdown` op stops admissions, lets
//!   in-flight requests finish and reply, closes idle connections, and
//!   returns from [`Server::run`]. Cache writes are atomic
//!   (temp-file + rename), so even a hard kill loses no completed
//!   entry.
//!
//! Operational counters are exposed three ways, all named `serve.*`:
//! mirrored into the global metric registry, embedded as the `serve`
//! stanza of every response report, and returned by `ping`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::time::{Duration, Instant};

use desc_exec::{CancelToken, Cancelled};
use desc_telemetry::{Json, Report, ReportMeta, ServeReport};
use frame::FrameError;
use proto::{ErrorCode, Op, Request, Tables};

/// How a [`Server`] listens and admits work.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Maximum concurrently *executing* run requests.
    pub workers: usize,
    /// Maximum run requests waiting for a worker slot; beyond this,
    /// requests are rejected with `busy`.
    pub queue: usize,
    /// Fallback `retry_after_ms` hint attached to `busy` rejections
    /// before any request has completed; afterwards the hint is
    /// derived from queue depth and an EWMA of recent service times.
    pub retry_after_ms: u64,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Default per-request sweep-cell concurrency cap (`scale.jobs`)
    /// when the request does not set `jobs`.
    pub default_jobs: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue: 8,
            retry_after_ms: 250,
            default_deadline_ms: None,
            default_jobs: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
        }
    }
}

/// Lifetime counters for the `serve.*` stanza; every increment is also
/// mirrored into the global metric registry under the same name (the
/// `serve.*` family is excluded from request captures and determinism
/// comparisons, like `pool.*` and `cache.*`).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_malformed: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    dedup_cells: AtomicU64,
    dedup_requests: AtomicU64,
    active: AtomicU64,
}

impl Counters {
    fn bump(field: &AtomicU64, name: &'static str) {
        Counters::add(field, name, 1);
    }

    fn add(field: &AtomicU64, name: &'static str, n: u64) {
        if n == 0 {
            return;
        }
        field.fetch_add(n, Ordering::Relaxed);
        if desc_telemetry::enabled() {
            desc_telemetry::global().counter(name).add(n);
        }
    }
}

/// Admission gate: a counting semaphore with a bounded wait queue and
/// a drain switch. Plain `Mutex` + `Condvar` so the wait can poll the
/// request's deadline token.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    workers: usize,
    queue: usize,
}

#[derive(Default)]
struct GateState {
    active: usize,
    queued: usize,
    draining: bool,
}

/// Outcome of [`Gate::acquire`].
enum Admission {
    /// Admitted; drop the permit to release the slot.
    Admitted(Permit),
    /// Queue full — reject with `busy`.
    Busy,
    /// Server is draining — reject with `shutting_down`.
    Draining,
    /// The request's deadline passed while it was queued.
    Expired,
}

/// An occupied execution slot; releases it (and wakes one queued
/// waiter) on drop.
struct Permit {
    gate: Arc<Gate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().unwrap_or_else(|e| e.into_inner());
        s.active -= 1;
        drop(s);
        self.gate.cv.notify_all();
    }
}

impl Gate {
    fn new(workers: usize, queue: usize) -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            workers: workers.max(1),
            queue,
        })
    }

    /// Tries to occupy an execution slot, waiting in the bounded queue
    /// if none is free. `cancel` (the request's deadline token) is
    /// polled while queued so a request cannot wait past its deadline.
    fn acquire(self: &Arc<Gate>, cancel: Option<&CancelToken>) -> Admission {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.draining {
            return Admission::Draining;
        }
        if s.active < self.workers {
            s.active += 1;
            return Admission::Admitted(Permit { gate: Arc::clone(self) });
        }
        if s.queued >= self.queue {
            return Admission::Busy;
        }
        s.queued += 1;
        loop {
            // A bounded wait, not a pure block: the deadline token has
            // no waker, so poll it at queue granularity (25 ms is
            // negligible next to any real cell).
            let (guard, _timeout) = self
                .cv
                .wait_timeout(s, Duration::from_millis(25))
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
            if s.draining {
                s.queued -= 1;
                return Admission::Draining;
            }
            if cancel.is_some_and(CancelToken::is_cancelled) {
                s.queued -= 1;
                return Admission::Expired;
            }
            if s.active < self.workers {
                s.queued -= 1;
                s.active += 1;
                return Admission::Admitted(Permit { gate: Arc::clone(self) });
            }
        }
    }

    /// Flips the drain switch: every queued waiter is rejected and no
    /// future request is admitted.
    fn drain(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.draining = true;
        drop(s);
        self.cv.notify_all();
    }

    fn is_draining(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).draining
    }

    fn queued(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).queued
    }
}

/// Per-connection bookkeeping so a drain can close *idle* connections
/// (blocked reading a frame) while *busy* ones finish and reply.
struct Conn {
    stream: TcpStream,
    busy: AtomicBool,
    done: AtomicBool,
}

/// One client identity's scheduling group plus how many admitted
/// requests currently hold it; the registry entry is dropped when the
/// count returns to zero, so an idle (or one-shot) identity leaves no
/// state behind.
struct GroupSlot {
    group: desc_exec::Group,
    active: usize,
}

struct Shared {
    config: ServeConfig,
    addr: SocketAddr,
    gate: Arc<Gate>,
    counters: Counters,
    conns: Mutex<Vec<Arc<Conn>>>,
    /// Live fair-scheduling groups keyed by client identity, so N
    /// concurrent requests carrying the same `client` share **one**
    /// fair-queue weight (the documented contract) instead of
    /// multiplying their share by submitting concurrently.
    groups: Mutex<HashMap<String, GroupSlot>>,
    /// EWMA (α = 1/8) of completed-request service time in ms; `0`
    /// means no request has completed yet. Feeds [`Shared::retry_hint`].
    service_ewma_ms: AtomicU64,
}

/// Holds one request's claim on its client identity's [`GroupSlot`];
/// dropping it releases the claim (and retires the idle group).
struct GroupLease<'a> {
    shared: &'a Shared,
    identity: String,
    group: desc_exec::Group,
}

impl Drop for GroupLease<'_> {
    fn drop(&mut self) {
        let mut groups = self.shared.groups.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = groups.get_mut(&self.identity) {
            slot.active = slot.active.saturating_sub(1);
            if slot.active == 0 {
                groups.remove(&self.identity);
            }
        }
    }
}

impl Shared {
    /// Checks out the scheduling group for `identity`, creating it on
    /// first use and sharing the *same* group instance with every
    /// concurrently admitted request carrying the identity (fairness
    /// is per group instance — see [`desc_exec::Group::same`]).
    fn checkout_group(&self, identity: &str) -> GroupLease<'_> {
        let mut groups = self.groups.lock().unwrap_or_else(|e| e.into_inner());
        let slot = groups
            .entry(identity.to_owned())
            .or_insert_with(|| GroupSlot { group: desc_exec::Group::new(identity, 1), active: 0 });
        slot.active += 1;
        GroupLease { shared: self, identity: identity.to_owned(), group: slot.group.clone() }
    }

    /// Folds one completed request's service time into the EWMA. A
    /// single atomic read-modify-write so concurrent completions each
    /// land a sample instead of overwriting each other.
    fn note_service_ms(&self, elapsed_ms: u64) {
        let sample = elapsed_ms.max(1);
        let folded = self.service_ewma_ms.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |old| Some(if old == 0 { sample } else { (old * 7 + sample) / 8 }),
        );
        debug_assert!(folded.is_ok(), "fetch_update with Some never fails");
    }

    /// The `retry_after_ms` hint for a `busy` rejection: the time the
    /// queue is expected to take to drain one slot, estimated from the
    /// current queue depth and the recent service-time EWMA, clamped
    /// to [25 ms, 60 s]. Falls back to the configured constant until a
    /// first request completes.
    fn retry_hint(&self) -> u64 {
        let ewma = self.service_ewma_ms.load(Ordering::Relaxed);
        if ewma == 0 {
            return self.config.retry_after_ms;
        }
        let queued = self.gate.queued() as u64;
        ((queued + 1).saturating_mul(ewma) / self.gate.workers as u64).clamp(25, 60_000)
    }
    /// The live `serve` stanza.
    fn serve_report(&self) -> ServeReport {
        let c = &self.counters;
        ServeReport {
            addr: self.addr.to_string(),
            workers: self.config.workers as u64,
            queue_capacity: self.config.queue as u64,
            connections: c.connections.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected_busy: c.rejected_busy.load(Ordering::Relaxed),
            rejected_malformed: c.rejected_malformed.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            dedup_cells: c.dedup_cells.load(Ordering::Relaxed),
            dedup_requests: c.dedup_requests.load(Ordering::Relaxed),
            active: c.active.load(Ordering::Relaxed),
            draining: self.gate.is_draining(),
        }
    }

    /// The cumulative `cache` stanza for the installed store, if any.
    fn cache_report(&self) -> Option<desc_telemetry::CacheReport> {
        let store = desc_experiments::cache::active()?;
        let s = store.stats();
        Some(desc_telemetry::CacheReport {
            dir: store.dir().map(|p| p.display().to_string()),
            schema_version: u64::from(store.version()),
            hits_memory: s.hits_memory,
            hits_disk: s.hits_disk,
            misses: s.misses,
            stores: s.stores,
            version_mismatches: s.version_mismatches,
            errors: s.errors,
            evictions: s.evictions,
            inflight_leads: s.inflight_leads,
            inflight_waits: s.inflight_waits,
            inflight_hits: s.inflight_hits,
            inflight_handoffs: s.inflight_handoffs,
            manifest_cells: store.manifest_cells(),
            resumed: false,
        })
    }
}

/// The cancellation payload [`desc_exec`] unwinds with is expected
/// noise here, not a crash: filter it out of the process panic hook so
/// a deadline does not spray backtraces over the server log. Installed
/// once, delegating everything else to the previous hook.
fn silence_cancelled_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Cancelled>().is_none() {
                prev(info);
            }
        }));
    });
}

/// A bound, not-yet-running service. [`Server::run`] blocks the
/// calling thread in the accept loop until a client issues the
/// `shutdown` op.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener, sizes the shared executor pool, and turns
    /// telemetry on (responses embed run reports, so collection must
    /// be live). Does not accept connections yet.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        desc_telemetry::set_enabled(true);
        desc_exec::configure(config.default_jobs);
        silence_cancelled_panics();
        let gate = Gate::new(config.workers, config.queue);
        let shared = Arc::new(Shared {
            config,
            addr,
            gate,
            counters: Counters::default(),
            conns: Mutex::new(Vec::new()),
            groups: Mutex::new(HashMap::new()),
            service_ewma_ms: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Accepts and serves connections until a `shutdown` request
    /// drains the server. In-flight requests finish and reply; idle
    /// connections are closed; completed cache entries are all on
    /// disk when this returns (every store is atomic at cell
    /// granularity). Returns the final `serve` stanza.
    pub fn run(self) -> std::io::Result<ServeReport> {
        let mut threads = Vec::new();
        loop {
            // `accept` is woken during drain by a loopback connection
            // from the draining thread (see `initiate_drain`).
            let (stream, _) = self.listener.accept()?;
            if self.shared.gate.is_draining() {
                break;
            }
            Counters::bump(&self.shared.counters.connections, "serve.connections");
            let conn = Arc::new(Conn {
                stream: stream.try_clone()?,
                busy: AtomicBool::new(false),
                done: AtomicBool::new(false),
            });
            {
                let mut conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
                // Drop bookkeeping for connections that already ended,
                // so a long-lived server does not accrete state.
                conns.retain(|c| !c.done.load(Ordering::Relaxed));
                conns.push(Arc::clone(&conn));
            }
            let shared = Arc::clone(&self.shared);
            threads.push(std::thread::spawn(move || serve_connection(&shared, &conn, stream)));
        }
        // Close idle connections (their reader sees EOF); busy ones
        // finish their request and observe the drain switch.
        let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        for conn in conns.iter() {
            if !conn.busy.load(Ordering::Relaxed) {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
        drop(conns);
        for t in threads {
            let _ = t.join();
        }
        Ok(self.shared.serve_report())
    }
}

/// Flips the drain switch and wakes the accept loop with a loopback
/// connection.
fn initiate_drain(shared: &Shared) {
    shared.gate.drain();
    let _ = TcpStream::connect(shared.addr);
}

/// One connection's read-dispatch-reply loop. Returns when the peer
/// closes, the stream desynchronizes (oversized frame), a `shutdown`
/// is processed, or the server drains.
fn serve_connection(shared: &Shared, conn: &Conn, mut stream: TcpStream) {
    loop {
        let payload = match frame::read_frame(&mut stream) {
            Ok(p) => p,
            Err(FrameError::Closed) => break,
            Err(FrameError::Oversized { declared }) => {
                Counters::bump(&shared.counters.rejected_malformed, "serve.rejected_malformed");
                let reply = proto::error(
                    "",
                    ErrorCode::Oversized,
                    &format!(
                        "frame of {declared} bytes exceeds the {}-byte limit; closing \
                         (stream position is no longer trustworthy)",
                        frame::MAX_FRAME
                    ),
                    None,
                );
                let _ = write_reply(&mut stream, &reply);
                break;
            }
            // Also covers a mid-frame disconnect during drain.
            Err(FrameError::Io(_)) => break,
        };
        conn.busy.store(true, Ordering::Relaxed);
        let (reply, shutdown) = handle_request(shared, &payload);
        let sent = write_reply(&mut stream, &reply);
        conn.busy.store(false, Ordering::Relaxed);
        if shutdown {
            initiate_drain(shared);
            break;
        }
        if sent.is_err() || shared.gate.is_draining() {
            break;
        }
    }
    conn.done.store(true, Ordering::Relaxed);
    // The drain registry holds a clone of this socket, so dropping
    // `stream` alone would not send FIN; shut it down explicitly so
    // the peer sees the close immediately.
    let _ = stream.shutdown(Shutdown::Both);
}

fn write_reply(stream: &mut TcpStream, reply: &Json) -> std::io::Result<()> {
    frame::write_frame(stream, reply.to_pretty().as_bytes())
}

/// Dispatches one well-framed payload. Returns the reply and whether
/// the server should drain afterwards. Never panics outward: run
/// execution is wrapped in `catch_unwind`, and parse errors become
/// `malformed` replies.
fn handle_request(shared: &Shared, payload: &[u8]) -> (Json, bool) {
    let started = Instant::now();
    let request = match Request::parse(payload) {
        Ok(r) => r,
        Err(msg) => {
            Counters::bump(&shared.counters.rejected_malformed, "serve.rejected_malformed");
            // Echo the id if one survives in the broken payload, so
            // clients can still correlate the rejection.
            let id = std::str::from_utf8(payload)
                .ok()
                .and_then(|t| Json::parse(t).ok())
                .and_then(|j| j.get("id").and_then(Json::as_str).map(str::to_owned))
                .unwrap_or_default();
            return (proto::error(&id, ErrorCode::Malformed, &msg, None), false);
        }
    };
    let elapsed = |started: Instant| started.elapsed().as_millis() as u64;
    match request.op {
        Op::Ping => {
            let serve = shared.serve_report().to_json();
            let cache = shared.cache_report().map(|c| c.to_json());
            (proto::ok_ping(&request.id, elapsed(started), serve, cache), false)
        }
        Op::Shutdown => (proto::ok_shutdown(&request.id, elapsed(started)), true),
        Op::Run => {
            let reply = handle_run(shared, &request, started);
            (reply, false)
        }
    }
}

/// Admission, execution, and report assembly for one `run` request.
fn handle_run(shared: &Shared, request: &Request, started: Instant) -> Json {
    let known = desc_experiments::experiment_names();
    if let Some(bad) = request.experiments.iter().find(|n| !known.contains(&n.as_str())) {
        Counters::bump(&shared.counters.rejected_malformed, "serve.rejected_malformed");
        return proto::error(
            &request.id,
            ErrorCode::UnknownExperiment,
            &format!("unknown experiment {bad:?}; known names match `repro --list`"),
            None,
        );
    }
    let deadline_ms = request.deadline_ms.or(shared.config.default_deadline_ms);
    let cancel = deadline_ms.map(|ms| CancelToken::with_deadline(Duration::from_millis(ms)));

    let permit = match shared.gate.acquire(cancel.as_ref()) {
        Admission::Admitted(p) => p,
        Admission::Busy => {
            Counters::bump(&shared.counters.rejected_busy, "serve.rejected_busy");
            return proto::error(
                &request.id,
                ErrorCode::Busy,
                &format!(
                    "{} running and {} queued requests; retry later",
                    shared.config.workers, shared.config.queue
                ),
                Some(shared.retry_hint()),
            );
        }
        Admission::Draining => {
            return proto::error(
                &request.id,
                ErrorCode::ShuttingDown,
                "server is draining; no new work is admitted",
                None,
            )
        }
        Admission::Expired => {
            Counters::bump(&shared.counters.timed_out, "serve.timed_out");
            return proto::error(
                &request.id,
                ErrorCode::Deadline,
                &format!(
                    "deadline of {} ms elapsed while queued",
                    deadline_ms.unwrap_or_default()
                ),
                None,
            );
        }
    };

    Counters::bump(&shared.counters.accepted, "serve.accepted");
    shared.counters.active.fetch_add(1, Ordering::Relaxed);
    if desc_telemetry::enabled() {
        desc_telemetry::global()
            .gauge("serve.active")
            .set(shared.counters.active.load(Ordering::Relaxed));
    }

    let mut scale = match request.preset.as_str() {
        "full" => desc_experiments::Scale::full(),
        "quick" => desc_experiments::Scale::quick(),
        _ => desc_experiments::Scale::tiny(),
    };
    if let Some(n) = request.accesses {
        scale.accesses = n;
    }
    if let Some(n) = request.apps {
        scale.apps = n;
    }
    if let Some(n) = request.seed {
        scale.seed = n;
    }
    if let Some(n) = request.shards {
        scale.shards = n;
    }
    scale.jobs = request.jobs.unwrap_or(shared.config.default_jobs);
    desc_exec::configure(scale.jobs);

    // The request-scoped sink: every cell delta — computed fresh or
    // served warm from the shared cache — is absorbed into it (see
    // `desc_experiments::run_custom_keyed`), so the embedded report's
    // `metrics` match a `repro --report` of the same cells.
    // The request's fair-scheduling identity: concurrent requests
    // tagged with the same `client` check out the *same* group from
    // the shared registry, so together they get one fair-queue weight
    // — a client cannot multiply its share by submitting concurrent
    // requests — while a small client still drains alongside a large
    // sweep instead of behind it (see `desc_exec`'s fair cross-group
    // scheduling). The lease drops when this request finishes, which
    // retires the group once its last concurrent holder is done.
    let identity = request.client.as_deref().unwrap_or(if request.id.is_empty() {
        "anonymous"
    } else {
        request.id.as_str()
    });
    let group_lease = shared.checkout_group(identity);

    let sink = desc_telemetry::CaptureSink::new();
    let outcome = {
        let _cancel_guard = desc_exec::install_cancel(cancel.clone());
        let _group_guard = desc_exec::install_group(Some(group_lease.group.clone()));
        catch_unwind(AssertUnwindSafe(|| {
            desc_telemetry::with_capture(&sink, || {
                request
                    .experiments
                    .iter()
                    .map(|name| (name.clone(), desc_experiments::run_experiment(name, &scale)))
                    .collect::<Vec<_>>()
            })
        }))
    };

    shared.counters.active.fetch_sub(1, Ordering::Relaxed);
    if desc_telemetry::enabled() {
        desc_telemetry::global()
            .gauge("serve.active")
            .set(shared.counters.active.load(Ordering::Relaxed));
    }
    drop(permit);

    let results = match outcome {
        Ok(results) => results,
        Err(payload) if payload.downcast_ref::<Cancelled>().is_some() => {
            Counters::bump(&shared.counters.timed_out, "serve.timed_out");
            return proto::error(
                &request.id,
                ErrorCode::Deadline,
                &format!(
                    "deadline of {} ms elapsed mid-run; completed cells stay cached, \
                     a retry resumes warm",
                    deadline_ms.unwrap_or_default()
                ),
                None,
            );
        }
        Err(payload) => {
            Counters::bump(&shared.counters.failed, "serve.failed");
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "a cell panicked with a non-string payload".to_owned());
            return proto::error(&request.id, ErrorCode::Internal, &msg, None);
        }
    };

    // Cells this request got from a concurrent leader via
    // single-flight (operational side-channel of the capture sink;
    // warm cache hits do not count).
    let dedup_cells = sink.op_count("dedup_cells");
    Counters::add(&shared.counters.dedup_cells, "serve.dedup_cells", dedup_cells);
    if dedup_cells > 0 {
        Counters::bump(&shared.counters.dedup_requests, "serve.dedup_requests");
    }

    let report = Report {
        meta: ReportMeta {
            tool: "serve".to_owned(),
            version: env!("CARGO_PKG_VERSION").to_owned(),
            seed: scale.seed,
            scale: request.preset.clone(),
            jobs: scale.jobs,
            shards: scale.shards,
            experiments: request.experiments.clone(),
            spans_dropped: desc_telemetry::spans_dropped(),
        },
        snapshot: sink.snapshot(),
        pool: None,
        cache: shared.cache_report(),
        serve: Some(shared.serve_report()),
        spans: Vec::new(),
    };
    let tables = match request.tables {
        Tables::None => None,
        Tables::Text => Some(
            results
                .iter()
                .fold(Json::obj(), |acc, (name, t)| acc.with(name, Json::Str(t.render()))),
        ),
        Tables::Csv => Some(
            results
                .iter()
                .fold(Json::obj(), |acc, (name, t)| acc.with(name, Json::Str(t.to_csv()))),
        ),
    };
    Counters::bump(&shared.counters.completed, "serve.completed");
    let elapsed_ms = started.elapsed().as_millis() as u64;
    shared.note_service_ms(elapsed_ms);
    proto::ok_run(&request.id, elapsed_ms, dedup_cells, report.to_json(), tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_workers_then_queues_then_rejects() {
        let gate = Gate::new(2, 1);
        let a = match gate.acquire(None) {
            Admission::Admitted(p) => p,
            _ => panic!("first slot admits"),
        };
        let b = match gate.acquire(None) {
            Admission::Admitted(p) => p,
            _ => panic!("second slot admits"),
        };
        // Third request must queue; run it on a helper thread and
        // reject a fourth while the queue is occupied.
        let gate2 = Arc::clone(&gate);
        let queued = std::thread::spawn(move || match gate2.acquire(None) {
            Admission::Admitted(p) => {
                drop(p);
                true
            }
            _ => false,
        });
        // Wait until the helper is actually queued.
        loop {
            let s = gate.state.lock().unwrap();
            if s.queued == 1 {
                break;
            }
            drop(s);
            std::thread::yield_now();
        }
        assert!(matches!(gate.acquire(None), Admission::Busy), "queue of 1 is full");
        drop(a);
        assert!(queued.join().unwrap(), "queued request admits when a slot frees");
        drop(b);
    }

    fn test_shared() -> Shared {
        Shared {
            config: ServeConfig { workers: 2, retry_after_ms: 250, ..ServeConfig::default() },
            addr: "127.0.0.1:0".parse().unwrap(),
            gate: Gate::new(2, 8),
            counters: Counters::default(),
            conns: Mutex::new(Vec::new()),
            groups: Mutex::new(HashMap::new()),
            service_ewma_ms: AtomicU64::new(0),
        }
    }

    #[test]
    fn concurrent_requests_with_one_client_share_one_group() {
        let shared = test_shared();
        // Two concurrent checkouts of the same identity: one group
        // instance (one fair-queue weight), per the protocol docs.
        let a = shared.checkout_group("ci-bot");
        let b = shared.checkout_group("ci-bot");
        assert!(a.group.same(&b.group), "same client must share one group");
        // A different identity gets its own group.
        let other = shared.checkout_group("probe");
        assert!(!a.group.same(&other.group));
        // Releasing one holder keeps the group alive for the other...
        drop(a);
        let c = shared.checkout_group("ci-bot");
        assert!(b.group.same(&c.group), "group persists while a holder remains");
        // ...and releasing the last retires the registry entry, so a
        // later request starts a fresh group (no unbounded growth).
        drop(b);
        drop(c);
        drop(other);
        assert!(shared.groups.lock().unwrap().is_empty(), "idle identities leave no state");
        let fresh = shared.checkout_group("ci-bot");
        assert_eq!(fresh.group.name(), "ci-bot");
    }

    #[test]
    fn retry_hint_tracks_service_time_and_falls_back_when_unsampled() {
        let shared = test_shared();
        // No completed request yet: the configured constant.
        assert_eq!(shared.retry_hint(), 250);
        // First sample seeds the EWMA; an empty queue estimates one
        // service time spread over the workers.
        shared.note_service_ms(800);
        assert_eq!(shared.retry_hint(), 400);
        // Subsequent samples fold in at α = 1/8 (zero clamps to 1 ms).
        shared.note_service_ms(0);
        assert_eq!(shared.service_ewma_ms.load(Ordering::Relaxed), 700);
        // The hint never drops below 25 ms nor exceeds 60 s.
        shared.service_ewma_ms.store(10, Ordering::Relaxed);
        assert_eq!(shared.retry_hint(), 25);
        shared.service_ewma_ms.store(1_000_000, Ordering::Relaxed);
        assert_eq!(shared.retry_hint(), 60_000);
    }

    #[test]
    fn gate_expires_queued_requests_and_rejects_while_draining() {
        let gate = Gate::new(1, 4);
        let slot = match gate.acquire(None) {
            Admission::Admitted(p) => p,
            _ => panic!("slot admits"),
        };
        let expired = CancelToken::new();
        expired.cancel();
        assert!(matches!(gate.acquire(Some(&expired)), Admission::Expired));
        gate.drain();
        assert!(matches!(gate.acquire(None), Admission::Draining));
        drop(slot);
        assert!(matches!(gate.acquire(None), Admission::Draining));
    }
}
