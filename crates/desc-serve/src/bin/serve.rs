//! `serve` — the DESC sweep-exploration service.
//!
//! ```text
//! serve                          # 127.0.0.1:0 (free port), no cache
//! serve --addr 127.0.0.1:7013    # fixed port
//! serve --cache-dir cells        # share a persistent cell store
//! serve --workers 4 --queue 16   # admission limits
//! ```
//!
//! Prints exactly one `serve: listening on HOST:PORT` line to stdout
//! once the listener is bound (scripts parse it to learn the port),
//! then serves until a client issues the `shutdown` op. The wire
//! protocol is specified in `docs/SERVICE.md`.
//!
//! # Exit codes
//!
//! Aligned with `repro` (`docs/SERVICE.md` has the uniform table):
//!
//! | code | meaning                                      |
//! |------|----------------------------------------------|
//! | 0    | clean shutdown (drained via the protocol)    |
//! | 2    | usage error (unknown/malformed flag)         |
//! | 4    | failed to write `--report` at shutdown       |
//! | 5    | `--cache-dir` unusable (cannot create/write) |
//! | 6    | could not bind `--addr`                      |

use desc_serve::{ServeConfig, Server};
use std::process::ExitCode;

/// Malformed or unknown command line (see `--help`).
const EXIT_USAGE: u8 = 2;
/// The `--report` file could not be written at shutdown.
const EXIT_WRITE_FAILED: u8 = 4;
/// `--cache-dir` could not be opened (created, probed writable, or
/// its manifest read).
const EXIT_CACHE: u8 = 5;
/// The listen address could not be bound.
const EXIT_BIND: u8 = 6;

/// Prints a usage-class error and returns the usage exit code.
fn usage_error(msg: &str) -> ExitCode {
    eprintln!("serve: {msg}");
    eprintln!("serve: try `serve --help`");
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig::default();
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut report_path: Option<std::path::PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next() {
                Some(addr) if !addr.is_empty() => config.addr = addr.clone(),
                _ => return usage_error("--addr needs a HOST:PORT argument"),
            },
            "--workers" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => config.workers = n,
                _ => return usage_error("--workers needs a positive integer argument"),
            },
            "--queue" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => config.queue = n,
                _ => return usage_error("--queue needs a non-negative integer argument"),
            },
            "--jobs" | "-j" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => config.default_jobs = n,
                _ => return usage_error("--jobs needs a positive integer argument"),
            },
            "--default-deadline-ms" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => config.default_deadline_ms = Some(n),
                _ => return usage_error("--default-deadline-ms needs a positive integer"),
            },
            "--retry-after-ms" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => config.retry_after_ms = n,
                _ => return usage_error("--retry-after-ms needs an integer argument"),
            },
            "--cache-dir" => match iter.next() {
                Some(path) if !path.is_empty() => {
                    cache_dir = Some(std::path::PathBuf::from(path));
                }
                _ => return usage_error("--cache-dir needs a directory path argument"),
            },
            "--report" => match iter.next() {
                Some(path) if !path.is_empty() => {
                    report_path = Some(std::path::PathBuf::from(path));
                }
                _ => return usage_error("--report needs an output path argument"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: serve [--addr HOST:PORT] [--workers N] [--queue N] [--jobs N]\n\
                     \x20            [--default-deadline-ms N] [--retry-after-ms N]\n\
                     \x20            [--cache-dir DIR] [--report PATH]\n\
                     --addr HOST:PORT  listen address; port 0 picks a free port\n\
                     \x20                 (default: 127.0.0.1:0)\n\
                     --workers N       run requests executing concurrently (default: 2)\n\
                     --queue N         run requests waiting beyond that before `busy`\n\
                     \x20                 rejections (default: 8)\n\
                     --jobs N          default sweep-cell concurrency per request\n\
                     \x20                 (default: all hardware threads)\n\
                     --default-deadline-ms N  deadline for requests that carry none\n\
                     --retry-after-ms N  fallback hint attached to `busy` rejections\n\
                     \x20                 before any request completes (default: 250);\n\
                     \x20                 afterwards the hint tracks queue depth and\n\
                     \x20                 recent service times\n\
                     --cache-dir DIR   share a persistent cell store across requests\n\
                     \x20                 and restarts (see docs/CACHE.md)\n\
                     --report PATH     write a final desc-run-report/v1 (with the\n\
                     \x20                 `serve` stanza) at clean shutdown\n\
                     exit codes: 0 clean shutdown, 2 usage error,\n\
                     4 report write failure, 5 unusable cache dir, 6 bind failure\n\
                     protocol: docs/SERVICE.md (desc-run-request/v1)"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown flag {other:?}")),
        }
    }

    // Telemetry before the store so `cache.*` counters register; the
    // same order `repro` uses.
    desc_telemetry::set_enabled(true);
    if let Some(dir) = &cache_dir {
        match desc_cache::CacheStore::open(dir, desc_experiments::cache::CELL_SCHEMA_VERSION) {
            Ok(store) => {
                let store = std::sync::Arc::new(store);
                desc_experiments::cache::install(Some(std::sync::Arc::clone(&store)));
                if store.manifest_skipped() > 0 {
                    eprintln!(
                        "serve: warning: dropped {} malformed manifest line(s) in {}",
                        store.manifest_skipped(),
                        dir.display()
                    );
                }
                eprintln!(
                    "serve: sharing cell store {} ({} completed cell(s) in the manifest)",
                    dir.display(),
                    store.manifest_cells()
                );
            }
            Err(e) => {
                eprintln!("serve: unusable cache dir {}: {e}", dir.display());
                return ExitCode::from(EXIT_CACHE);
            }
        }
    }

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: could not bind: {e}");
            return ExitCode::from(EXIT_BIND);
        }
    };
    let addr = server.local_addr();
    // The one line scripts depend on; flush so a pipe reader sees it
    // before the first connection.
    println!("serve: listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let final_serve = match server.run() {
        Ok(stanza) => Some(stanza),
        Err(e) => {
            eprintln!("serve: accept loop failed: {e}");
            None
        }
    };
    eprintln!("serve: drained; shutting down");

    if let Some(path) = &report_path {
        let cache = desc_experiments::cache::active().map(|store| {
            let s = store.stats();
            desc_telemetry::CacheReport {
                dir: store.dir().map(|p| p.display().to_string()),
                schema_version: u64::from(store.version()),
                hits_memory: s.hits_memory,
                hits_disk: s.hits_disk,
                misses: s.misses,
                stores: s.stores,
                version_mismatches: s.version_mismatches,
                errors: s.errors,
                evictions: s.evictions,
                inflight_leads: s.inflight_leads,
                inflight_waits: s.inflight_waits,
                inflight_hits: s.inflight_hits,
                inflight_handoffs: s.inflight_handoffs,
                manifest_cells: store.manifest_cells(),
                resumed: false,
            }
        });
        let report = desc_telemetry::Report {
            meta: desc_telemetry::ReportMeta {
                tool: "serve".to_owned(),
                version: env!("CARGO_PKG_VERSION").to_owned(),
                seed: 0,
                scale: "service".to_owned(),
                jobs: 0,
                shards: 0,
                experiments: Vec::new(),
                spans_dropped: desc_telemetry::spans_dropped(),
            },
            snapshot: desc_telemetry::global().snapshot(),
            pool: Some(desc_exec::utilization()),
            cache,
            serve: final_serve,
            spans: Vec::new(),
        };
        if let Err(e) = report.write_to(path) {
            eprintln!("serve: failed to write report to {}: {e}", path.display());
            return ExitCode::from(EXIT_WRITE_FAILED);
        }
        eprintln!("serve: wrote run report to {}", path.display());
    }
    ExitCode::SUCCESS
}
