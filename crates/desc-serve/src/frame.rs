//! Length-prefixed framing for the `desc-run-request/v1` wire
//! protocol: every message in either direction is a 4-byte big-endian
//! payload length followed by exactly that many bytes of UTF-8 JSON.
//!
//! The prefix is what lets a malformed *payload* stay survivable: the
//! reader always knows where the next message starts, so the server
//! can reply with a structured error and keep the connection. An
//! *oversized* prefix is different — the reader refuses to consume the
//! payload, the stream position is no longer trustworthy, and the
//! connection must close after the error reply. `docs/SERVICE.md`
//! specifies both behaviours.

use std::io::{Read, Write};

/// Hard cap on a single frame's payload, both directions (1 MiB).
/// Far above any legitimate request and comfortably above the largest
/// full-scale run report, but small enough that a hostile or corrupt
/// length prefix cannot make the server allocate unbounded memory.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The length prefix exceeds [`MAX_FRAME`]. The payload was not
    /// consumed, so the stream is desynchronized: reply and close.
    Oversized {
        /// The length the prefix declared.
        declared: usize,
    },
    /// The connection failed or ended mid-frame.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Oversized { declared } => {
                write!(f, "frame of {declared} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one length-prefixed frame. `Err(Closed)` means the peer shut
/// down cleanly *between* frames (EOF before any prefix byte); EOF
/// mid-prefix or mid-payload is an [`FrameError::Io`] error.
pub fn read_frame(reader: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    // Distinguish clean EOF from a truncated prefix by hand: a single
    // `read_exact` reports both as `UnexpectedEof`.
    let mut got = 0;
    while got < prefix.len() {
        match reader.read(&mut prefix[got..])? {
            0 if got == 0 => return Err(FrameError::Closed),
            0 => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-prefix",
                )))
            }
            n => got += n,
        }
    }
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > MAX_FRAME {
        return Err(FrameError::Oversized { declared });
    }
    let mut payload = vec![0u8; declared];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one length-prefixed frame and flushes. Refuses payloads over
/// [`MAX_FRAME`] so a writer can never emit what a reader must reject.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME}-byte limit", payload.len()),
        ));
    }
    let prefix = u32::try_from(payload.len())
        .expect("MAX_FRAME fits in u32")
        .to_be_bytes();
    writer.write_all(&prefix)?;
    writer.write_all(payload)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"x\":1}").unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 7]);
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"{\"x\":1}");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn empty_frame_is_legal_framing() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
    }

    #[test]
    fn oversized_prefix_is_rejected_without_reading_the_payload() {
        let declared = (MAX_FRAME + 1) as u32;
        let mut cursor = std::io::Cursor::new(declared.to_be_bytes().to_vec());
        match read_frame(&mut cursor) {
            Err(FrameError::Oversized { declared: d }) => assert_eq!(d, MAX_FRAME + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert_eq!(cursor.position(), 4, "payload bytes must not be consumed");
    }

    #[test]
    fn truncated_payload_is_an_io_error_not_a_clean_close() {
        let mut bytes = 8u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    #[test]
    fn writer_refuses_oversized_payloads() {
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &vec![0u8; MAX_FRAME + 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "no partial frame may be emitted");
    }
}
