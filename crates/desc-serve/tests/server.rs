//! End-to-end service tests against an in-process [`Server`] plus one
//! spawn of the real `serve` binary.
//!
//! Telemetry, the executor pool, and the installed cell store are all
//! process-global, so every test takes the same mutex: the suites must
//! not interleave cache installs or capture expectations.

use desc_serve::client::{ping_request, shutdown_request, Client, RunRequest};
use desc_serve::proto::Tables;
use desc_serve::{ServeConfig, Server};
use desc_telemetry::Json;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A scratch directory unique to this test process + tag, recreated
/// empty.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("desc-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts an in-process server and returns its address plus the join
/// handle for [`Server::run`].
fn start_server(
    config: ServeConfig,
) -> (std::net::SocketAddr, std::thread::JoinHandle<std::io::Result<desc_telemetry::ServeReport>>)
{
    let server = Server::bind(config).expect("bind on loopback");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    let reply = c.request(&shutdown_request("bye")).expect("shutdown round-trip");
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
}

/// The small-but-real request shape shared by the tests: two
/// experiments spanning both machine organisations (UCA fig16,
/// S-NUCA-1 fig23) at reduced access counts so the suite stays fast.
const EXPERIMENTS: [&str; 2] = ["fig16", "fig23"];
const ACCESSES: u64 = 400;

fn tiny_request(id: &str) -> RunRequest {
    RunRequest {
        id: Some(id.to_owned()),
        accesses: Some(ACCESSES),
        deadline_ms: None,
        ..RunRequest::new(&EXPERIMENTS, "tiny")
    }
}

/// The `metrics` stanza a `repro`-style direct run records for the
/// same cells, captured through a sink exactly as a request capture
/// is. Computed without any cache store installed, so it exercises
/// the pure compute path the service must match byte for byte.
fn expected_metrics() -> String {
    desc_experiments::cache::install(None);
    desc_telemetry::set_enabled(true);
    let mut scale = desc_experiments::Scale::tiny();
    scale.accesses = ACCESSES as usize;
    let sink = desc_telemetry::CaptureSink::new();
    desc_telemetry::with_capture(&sink, || {
        for name in EXPERIMENTS {
            let _ = desc_experiments::run_experiment(name, &scale);
        }
    });
    let report = desc_telemetry::Report {
        meta: desc_telemetry::ReportMeta {
            tool: "expected".to_owned(),
            version: "0.0.0".to_owned(),
            seed: scale.seed,
            scale: "tiny".to_owned(),
            jobs: scale.jobs,
            shards: scale.shards,
            experiments: EXPERIMENTS.iter().map(|&e| e.to_owned()).collect(),
            spans_dropped: 0,
        },
        snapshot: sink.snapshot(),
        pool: None,
        cache: None,
        serve: None,
        spans: Vec::new(),
    };
    report.to_json().get("metrics").expect("report has metrics").to_pretty()
}

#[test]
fn concurrent_clients_match_repro_metrics_and_share_the_cache() {
    let _guard = serialize();
    let expected = expected_metrics();

    let dir = scratch_dir("shared");
    let store = Arc::new(
        desc_cache::CacheStore::open(&dir, desc_experiments::cache::CELL_SCHEMA_VERSION)
            .expect("open cell store"),
    );
    desc_experiments::cache::install(Some(Arc::clone(&store)));

    let (addr, server) = start_server(ServeConfig {
        workers: 4,
        queue: 8,
        ..ServeConfig::default()
    });

    // One warm-up request populates the store, so the concurrent
    // round below deterministically hits the shared hot map instead
    // of racing all clients through the same cold cells in lockstep.
    {
        let mut warm = Client::connect(addr).expect("warm-up client");
        let reply =
            warm.request(&tiny_request("warm-up").to_json()).expect("warm-up round-trip");
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
        let metrics = reply
            .get("report")
            .and_then(|r| r.get("metrics"))
            .expect("warm-up report has metrics")
            .to_pretty();
        assert_eq!(metrics, expected, "cold run metrics must match a direct run");
    }

    // N parallel clients, every one requesting the same overlapping
    // cell set: every cell is served warm from the shared store, and
    // every response still carries the full, identical metrics stanza.
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("client connects");
                let reply = c
                    .request(&tiny_request(&format!("client-{i}")).to_json())
                    .expect("run round-trip");
                (i, reply)
            })
        })
        .collect();
    for handle in clients {
        let (i, reply) = handle.join().expect("client thread");
        assert_eq!(
            reply.get("status").and_then(Json::as_str),
            Some("ok"),
            "client {i}: {}",
            reply.to_pretty()
        );
        assert_eq!(
            reply.get("id").and_then(Json::as_str),
            Some(format!("client-{i}").as_str())
        );
        let report = reply.get("report").expect("ok run embeds a report");
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some("desc-run-report/v1")
        );
        let metrics = report.get("metrics").expect("report has metrics").to_pretty();
        assert_eq!(
            metrics, expected,
            "client {i}: response metrics must be byte-identical to a direct run"
        );
        let serve = report.get("serve").expect("report has a serve stanza");
        assert!(serve.get("accepted").and_then(Json::as_u64) >= Some(1));
    }

    // Overlap must have hit the shared hot map: 4 identical requests,
    // each distinct cell computed at most a couple of times (races
    // aside), everything else warm.
    let stats = store.stats();
    assert!(stats.stores > 0, "cold cells must be stored");
    assert!(
        stats.hits_memory > 0,
        "overlapping clients must share the in-process hot map (stats: {stats:?})"
    );

    // `ping` exposes the same counters over the wire.
    let mut c = Client::connect(addr).expect("ping client");
    let pong = c.request(&ping_request("stats")).expect("ping round-trip");
    assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));
    let serve = pong.get("serve").expect("ping has a serve stanza");
    assert_eq!(serve.get("completed").and_then(Json::as_u64), Some(5));
    assert_eq!(serve.get("active").and_then(Json::as_u64), Some(0));
    let cache = pong.get("cache").expect("ping has a cache stanza with a store installed");
    assert!(cache.get("hits_memory").and_then(Json::as_u64) > Some(0));

    shutdown(addr);
    let stanza = server.join().expect("server thread").expect("clean drain");
    assert!(stanza.draining, "final stanza reports the drain");
    assert_eq!(stanza.completed, 5);

    // Drained, not lost: every completed cell survived to the store
    // of record and a fresh process can resume from it.
    desc_experiments::cache::install(None);
    let reopened =
        desc_cache::CacheStore::open(&dir, desc_experiments::cache::CELL_SCHEMA_VERSION)
            .expect("reopen store after drain");
    assert!(
        reopened.manifest_cells() > 0,
        "completed cells must survive shutdown in the manifest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_duplicate_requests_compute_each_cold_cell_exactly_once() {
    let _guard = serialize();
    let expected = expected_metrics();
    let version = desc_experiments::cache::CELL_SCHEMA_VERSION;
    let (addr, server) = start_server(ServeConfig {
        workers: 4,
        queue: 8,
        ..ServeConfig::default()
    });

    // Serial reference: one request against a fresh store records how
    // many distinct cells the sweep has (every store is one cell).
    let serial_store = Arc::new(desc_cache::CacheStore::in_memory(version));
    desc_experiments::cache::install(Some(Arc::clone(&serial_store)));
    {
        let mut c = Client::connect(addr).expect("serial client");
        let reply = c.request(&tiny_request("serial").to_json()).expect("serial round-trip");
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
    }
    let distinct_cells = serial_store.stats().stores;
    assert!(distinct_cells > 0, "the sweep must have at least one cell");

    // Concurrent duplicates: four clients submit the same cold sweep
    // simultaneously against a fresh store.
    let store = Arc::new(desc_cache::CacheStore::in_memory(version));
    desc_experiments::cache::install(Some(Arc::clone(&store)));
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("client connects");
                c.request(&tiny_request(&format!("dup-{i}")).to_json()).expect("run round-trip")
            })
        })
        .collect();
    let mut shared_cells = 0;
    for handle in clients {
        let reply = handle.join().expect("client thread");
        assert_eq!(
            reply.get("status").and_then(Json::as_str),
            Some("ok"),
            "{}",
            reply.to_pretty()
        );
        let metrics = reply
            .get("report")
            .and_then(|r| r.get("metrics"))
            .expect("report has metrics")
            .to_pretty();
        assert_eq!(metrics, expected, "duplicate responses must match a direct run byte for byte");
        shared_cells += reply.get("dedup_cells").and_then(Json::as_u64).expect("dedup_cells key");
    }
    desc_experiments::cache::install(None);

    // The tentpole invariant: four overlapping demanders, each cold
    // cell computed (and stored) exactly once, the rest shared.
    let stats = store.stats();
    assert_eq!(
        stats.stores, distinct_cells,
        "every cold cell must be computed exactly once across duplicates (stats: {stats:?})"
    );
    assert_eq!(stats.inflight_leads, distinct_cells, "{stats:?}");
    assert!(
        shared_cells >= 1,
        "concurrent duplicates must share at least one in-flight cell (stats: {stats:?})"
    );

    // The server accounts the sharing cumulatively.
    let mut c = Client::connect(addr).expect("ping client");
    let pong = c.request(&ping_request("dedup-stats")).expect("ping round-trip");
    let serve = pong.get("serve").expect("serve stanza");
    assert_eq!(serve.get("dedup_cells").and_then(Json::as_u64), Some(shared_cells));
    assert!(serve.get("dedup_requests").and_then(Json::as_u64) >= Some(1));

    shutdown(addr);
    server.join().expect("server thread").expect("clean drain");
}

#[test]
fn a_small_request_completes_while_a_large_sweep_is_in_flight() {
    let _guard = serialize();
    let version = desc_experiments::cache::CELL_SCHEMA_VERSION;
    desc_experiments::cache::install(Some(Arc::new(desc_cache::CacheStore::in_memory(version))));
    let (addr, server) = start_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // A deliberately large sweep (~20x the probe) under its own client
    // identity.
    let sweep = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("sweep client");
        let request = RunRequest {
            id: Some("sweep".to_owned()),
            client: Some("sweep-client".to_owned()),
            accesses: Some(ACCESSES * 20),
            ..RunRequest::new(&EXPERIMENTS, "tiny")
        };
        c.request(&request.to_json()).expect("sweep round-trip")
    });

    // Wait until the sweep is actually executing before probing.
    let mut c = Client::connect(addr).expect("probe client");
    loop {
        let pong = c.request(&ping_request("probe-poll")).expect("ping round-trip");
        let active = pong.get("serve").and_then(|s| s.get("active")).and_then(Json::as_u64);
        if active >= Some(1) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // The 1-experiment probe (distinct seed, so no cell overlap with
    // the sweep) must complete while the sweep is still in flight —
    // fair scheduling means it does not queue behind the sweep's
    // remaining cells.
    let request = RunRequest {
        id: Some("probe".to_owned()),
        client: Some("probe-client".to_owned()),
        accesses: Some(ACCESSES),
        seed: Some(7),
        ..RunRequest::new(&["fig16"], "tiny")
    };
    let reply = c.request(&request.to_json()).expect("probe round-trip");
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("ok"),
        "{}",
        reply.to_pretty()
    );
    assert!(
        !sweep.is_finished(),
        "the probe must complete while the large sweep is still in flight"
    );

    let sweep_reply = sweep.join().expect("sweep thread");
    assert_eq!(sweep_reply.get("status").and_then(Json::as_str), Some("ok"));
    desc_experiments::cache::install(None);
    shutdown(addr);
    server.join().expect("server thread").expect("clean drain");
}

#[test]
fn malformed_inputs_get_structured_errors_on_a_surviving_connection() {
    let _guard = serialize();
    desc_experiments::cache::install(None);
    let (addr, server) = start_server(ServeConfig::default());
    let mut c = Client::connect(addr).expect("client connects");

    // Garbage bytes in a well-formed frame: structured `malformed`
    // reply, connection stays usable.
    let reply = c.request_raw(b"definitely not json").expect("malformed round-trip");
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("error"));
    let code = reply.get("error").and_then(|e| e.get("code")).and_then(Json::as_str);
    assert_eq!(code, Some("malformed"));

    // Valid JSON, wrong shape — still `malformed`, id still echoed.
    let reply = c
        .request_raw(br#"{"schema":"desc-run-request/v1","op":"dance","id":"x7"}"#)
        .expect("bad-op round-trip");
    let code = reply.get("error").and_then(|e| e.get("code")).and_then(Json::as_str);
    assert_eq!(code, Some("malformed"));
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("x7"));

    // Unknown experiment: its own code, and the connection survives.
    let reply = c
        .request(&RunRequest::new(&["fig999"], "tiny").to_json())
        .expect("unknown-experiment round-trip");
    let code = reply.get("error").and_then(|e| e.get("code")).and_then(Json::as_str);
    assert_eq!(code, Some("unknown_experiment"));

    // The same connection still answers pings after three rejections.
    let pong = c.request(&ping_request("still-alive")).expect("ping after errors");
    assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));
    let serve = pong.get("serve").expect("serve stanza");
    assert!(serve.get("rejected_malformed").and_then(Json::as_u64) >= Some(3));

    shutdown(addr);
    server.join().expect("server thread").expect("clean drain");
}

#[test]
fn oversized_frame_is_rejected_then_the_connection_closes() {
    let _guard = serialize();
    let (addr, server) = start_server(ServeConfig::default());

    // Hand-write a frame whose prefix exceeds the limit — the client
    // helper refuses to, by design.
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr).expect("raw connect");
    let declared = (desc_serve::frame::MAX_FRAME as u32) + 1;
    stream.write_all(&declared.to_be_bytes()).expect("send bogus prefix");
    stream.flush().expect("flush");

    let reply = desc_serve::frame::read_frame(&mut stream).expect("error reply arrives");
    let reply = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    let code = reply.get("error").and_then(|e| e.get("code")).and_then(Json::as_str);
    assert_eq!(code, Some("oversized"));

    // The stream is desynchronized, so the server must close it.
    assert!(
        matches!(
            desc_serve::frame::read_frame(&mut stream),
            Err(desc_serve::frame::FrameError::Closed)
        ),
        "connection must close after an oversized frame"
    );

    shutdown(addr);
    server.join().expect("server thread").expect("clean drain");
}

#[test]
fn deadline_exceeded_cancels_the_run_and_reports_it() {
    let _guard = serialize();
    desc_experiments::cache::install(None);
    let (addr, server) = start_server(ServeConfig::default());
    let mut c = Client::connect(addr).expect("client connects");

    // 1 ms cannot cover even one tiny cell. `jobs: 1` keeps the cells
    // serial, so the expiry is observed at a between-cell check rather
    // than racing a burst of parallel task claims.
    let request = RunRequest {
        deadline_ms: Some(1),
        jobs: Some(1),
        ..RunRequest::new(&["fig16"], "tiny")
    };
    let reply = c.request(&request.to_json()).expect("deadline round-trip");
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("error"));
    let err = reply.get("error").expect("error body");
    assert_eq!(err.get("code").and_then(Json::as_str), Some("deadline"));
    assert!(err
        .get("message")
        .and_then(Json::as_str)
        .is_some_and(|m| m.contains("deadline")));

    // The failure is accounted and the server still takes work: the
    // same connection immediately runs the same cells undeadlined.
    let pong = c.request(&ping_request("after-deadline")).expect("ping");
    let serve = pong.get("serve").expect("serve stanza");
    assert!(serve.get("timed_out").and_then(Json::as_u64) >= Some(1));

    let reply = c.request(&tiny_request("retry").to_json()).expect("retry round-trip");
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("ok"),
        "server must keep serving after a deadline: {}",
        reply.to_pretty()
    );

    shutdown(addr);
    server.join().expect("server thread").expect("clean drain");
}

#[test]
fn tables_render_like_repro_and_csv_like_repro_csv() {
    let _guard = serialize();
    desc_experiments::cache::install(None);
    desc_telemetry::set_enabled(true);
    let mut scale = desc_experiments::Scale::tiny();
    scale.accesses = ACCESSES as usize;
    let direct = desc_experiments::run_experiment("fig16", &scale);

    let (addr, server) = start_server(ServeConfig::default());
    let mut c = Client::connect(addr).expect("client connects");
    let request = RunRequest {
        tables: Tables::Text,
        ..tiny_request("tables-text")
    };
    let reply = c.request(&request.to_json()).expect("run round-trip");
    let tables = reply.get("tables").expect("tables requested");
    assert_eq!(
        tables.get("fig16").and_then(Json::as_str),
        Some(direct.render().as_str()),
        "text tables must match Table::render"
    );

    let request = RunRequest {
        tables: Tables::Csv,
        ..tiny_request("tables-csv")
    };
    let reply = c.request(&request.to_json()).expect("csv round-trip");
    let tables = reply.get("tables").expect("tables requested");
    assert_eq!(
        tables.get("fig16").and_then(Json::as_str),
        Some(direct.to_csv().as_str()),
        "csv tables must match Table::to_csv"
    );

    shutdown(addr);
    server.join().expect("server thread").expect("clean drain");
}

#[test]
fn serve_binary_listens_answers_and_drains_clean() {
    let _guard = serialize();
    let dir = scratch_dir("bin");
    use std::io::BufRead;
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--cache-dir",
            dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve binary");

    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("serve prints a listening line")
        .expect("readable stdout");
    let addr = banner
        .strip_prefix("serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_owned();

    let mut c = Client::connect(addr.as_str()).expect("connect to binary");
    let pong = c.request(&ping_request("hello")).expect("ping binary");
    assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));

    let reply = c.request(&tiny_request("bin-run").to_json()).expect("run on binary");
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("ok"),
        "{}",
        reply.to_pretty()
    );
    // The binary installed the store: the run's report carries the
    // cache stanza with stores recorded.
    let cache = reply.get("report").and_then(|r| r.get("cache")).expect("cache stanza");
    assert!(cache.get("stores").and_then(Json::as_u64) > Some(0));

    let bye = c.request(&shutdown_request("bye")).expect("shutdown binary");
    assert_eq!(bye.get("status").and_then(Json::as_str), Some("ok"));
    let status = child.wait().expect("binary exits");
    assert!(status.success(), "clean drain must exit 0, got {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
