//! Pins `docs/SERVICE.md` to the code, in the style of
//! `desc-telemetry/tests/schema_doc.rs`: the document's "Key index"
//! block must list exactly the key paths the request encoder
//! ([`RunRequest::to_json`]) emits and the response builders
//! ([`proto::ok_run`] / [`proto::ok_ping`] / [`proto::error`])
//! produce. If the wire format or the document changes alone, this
//! test fails.

use desc_serve::client::RunRequest;
use desc_serve::proto::{self, ErrorCode, Tables};
use desc_telemetry::Json;
use std::collections::BTreeSet;

/// Extracts the fenced block following the "## Key index" heading.
fn documented_paths(doc: &str) -> BTreeSet<String> {
    let index = doc.split("## Key index").nth(1).expect("doc has a Key index section");
    let block = index.split("```").nth(1).expect("Key index has a fenced block");
    block
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && *l != "text")
        .map(|l| l.trim_end_matches('?').to_owned())
        .collect()
}

/// Flattens a document into the doc's path notation under `prefix`:
/// `scale` and `error` expand one level; `report`, `serve`, and
/// `cache` collapse to single leaves (their interiors belong to
/// `docs/REPORT_SCHEMA.md`); `tables` entries collapse to
/// `tables.<experiment>`.
fn flatten(prefix: &str, doc: &Json, out: &mut BTreeSet<String>) {
    let Json::Obj(top) = doc else { panic!("{prefix} document is an object") };
    for (key, value) in top {
        match key.as_str() {
            "scale" | "error" => {
                let Json::Obj(fields) = value else { panic!("{prefix}.{key} is an object") };
                for (k, _) in fields {
                    out.insert(format!("{prefix}.{key}.{k}"));
                }
            }
            // In a response `tables` is an object of rendered tables;
            // in a request it is the format selector string.
            "tables" if matches!(value, Json::Obj(_)) => {
                let Json::Obj(fields) = value else { unreachable!() };
                assert!(!fields.is_empty(), "representative tables must not be empty");
                out.insert(format!("{prefix}.tables.<experiment>"));
            }
            other => {
                out.insert(format!("{prefix}.{other}"));
            }
        }
    }
}

#[test]
fn service_document_matches_the_wire_encoders() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVICE.md");
    let doc = std::fs::read_to_string(doc_path).expect("docs/SERVICE.md exists");
    let documented = documented_paths(&doc);

    let mut emitted = BTreeSet::new();

    // A representative request exercising every optional key.
    let request = RunRequest {
        id: Some("conformance".to_owned()),
        client: Some("conformance-suite".to_owned()),
        accesses: Some(400),
        apps: Some(2),
        seed: Some(2013),
        shards: Some(2),
        jobs: Some(4),
        deadline_ms: Some(60_000),
        tables: Tables::Csv,
        ..RunRequest::new(&["fig16"], "tiny")
    };
    flatten("request", &request.to_json(), &mut emitted);

    // Representative responses covering every `ok` shape and the
    // error shape with its conditional retry hint.
    let report = Json::obj().with("schema", Json::Str("desc-run-report/v1".to_owned()));
    let tables = Json::obj().with("fig16", Json::Str("rendered".to_owned()));
    flatten("response", &proto::ok_run("id", 1, 1, report, Some(tables)), &mut emitted);
    let serve = Json::obj();
    let cache = Json::obj();
    flatten("response", &proto::ok_ping("id", 0, serve, Some(cache)), &mut emitted);
    flatten("response", &proto::ok_shutdown("id", 0), &mut emitted);
    flatten(
        "response",
        &proto::error("id", ErrorCode::Busy, "queue full", Some(250)),
        &mut emitted,
    );

    assert_eq!(
        documented, emitted,
        "docs/SERVICE.md Key index disagrees with the wire encoders \
         (left: documented, right: emitted)"
    );

    // The parser accepts exactly what the reference encoder emits.
    let round_trip = request.to_json().to_pretty();
    let parsed = desc_serve::proto::Request::parse(round_trip.as_bytes())
        .expect("reference-encoded request parses");
    assert_eq!(parsed.id, "conformance");
    assert_eq!(parsed.experiments, ["fig16"]);
    assert_eq!(parsed.deadline_ms, Some(60_000));

    // The document names both schema tags and every error code.
    for needle in [proto::REQUEST_SCHEMA, proto::RESPONSE_SCHEMA] {
        assert!(doc.contains(needle), "SERVICE.md must name {needle:?}");
    }
    for code in [
        ErrorCode::Busy,
        ErrorCode::Deadline,
        ErrorCode::Malformed,
        ErrorCode::Oversized,
        ErrorCode::UnknownExperiment,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ] {
        assert!(
            doc.contains(&format!("`{}`", code.as_str())),
            "SERVICE.md must document error code {:?}",
            code.as_str()
        );
    }
}
